//! Cross-crate integration: the seamless-refinement property.
//!
//! One behaviour — a producer task feeding a filtering shared object — is
//! expressed once and mapped three ways: Application Layer, VTA with a
//! shared bus, VTA with a point-to-point link. The functional output must
//! be identical in all three; only timing may change, and it must change
//! in the direction the architecture implies.

use std::sync::Arc;

use osss_jpeg2000::osss::{sched::Fcfs, SharedObject, TaskEnv};
use osss_jpeg2000::sim::{Frequency, SimError, SimTime, Simulation};
use osss_jpeg2000::vta::{BusConfig, Channel, OpbBus, P2pChannel, RmiService, SoftwareProcessor};

const BLOCKS: usize = 8;

fn behaviour_result() -> Vec<i64> {
    (0..BLOCKS as i64).map(|i| (i + 1) * 7).collect()
}

enum Mapping {
    Application,
    VtaBus,
    VtaP2p,
}

fn run(mapping: Mapping) -> Result<(SimTime, Vec<i64>), SimError> {
    let mut sim = Simulation::new();
    let so = SharedObject::new(&mut sim, "filter", Vec::<i64>::new(), Fcfs::new());

    // The channel/processor resources exist only on the VTA layer.
    let clk = Frequency::mhz(100);
    let (env, rmi): (TaskEnv, Option<RmiService<Vec<i64>>>) = match &mapping {
        Mapping::Application => (TaskEnv::application_layer("producer"), None),
        Mapping::VtaBus => {
            let cpu = SoftwareProcessor::new(&mut sim, "cpu", clk);
            let bus: Arc<dyn Channel> =
                Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
            (cpu.env("producer"), Some(RmiService::new(so.clone(), bus)))
        }
        Mapping::VtaP2p => {
            let cpu = SoftwareProcessor::new(&mut sim, "cpu", clk);
            let link: Arc<dyn Channel> = Arc::new(P2pChannel::new(&mut sim, "link", clk));
            (cpu.env("producer"), Some(RmiService::new(so.clone(), link)))
        }
    };

    let so_task = so.clone();
    sim.spawn_process("producer", move |ctx| {
        for i in 0..BLOCKS as i64 {
            let block = env.eet(ctx, SimTime::us(100), || i + 1)?;
            let body = move |acc: &mut Vec<i64>,
                             ctx: &osss_jpeg2000::sim::Context|
                  -> Result<(), SimError> {
                ctx.wait(SimTime::us(5))?;
                acc.push(block * 7);
                Ok(())
            };
            match &rmi {
                None => so_task.call(ctx, body)?,
                Some(rmi) => rmi.invoke(ctx, &vec![0u32; 1024], &(), body)?,
            }
        }
        Ok(())
    });
    let report = sim.run()?;
    report.expect_all_finished()?;
    Ok((report.end_time, so.inspect(|acc| acc.clone())))
}

#[test]
fn behaviour_is_identical_across_all_three_mappings() {
    let (_, app) = run(Mapping::Application).expect("app layer");
    let (_, bus) = run(Mapping::VtaBus).expect("vta bus");
    let (_, p2p) = run(Mapping::VtaP2p).expect("vta p2p");
    assert_eq!(app, behaviour_result());
    assert_eq!(app, bus);
    assert_eq!(app, p2p);
}

#[test]
fn refinement_adds_communication_time_in_the_expected_order() {
    let (t_app, _) = run(Mapping::Application).expect("app layer");
    let (t_bus, _) = run(Mapping::VtaBus).expect("vta bus");
    let (t_p2p, _) = run(Mapping::VtaP2p).expect("vta p2p");
    assert!(
        t_app < t_p2p,
        "P2P refinement adds transfer time: {t_app} vs {t_p2p}"
    );
    assert!(
        t_p2p < t_bus,
        "shared-bus transfers cost more than P2P: {t_p2p} vs {t_bus}"
    );
}

#[test]
fn multi_client_arbitration_preserves_every_item() {
    // Four tasks push disjoint values through one shared object under
    // FCFS arbitration — all values arrive exactly once.
    let mut sim = Simulation::new();
    let so = SharedObject::new(&mut sim, "sink", Vec::<u32>::new(), Fcfs::new());
    for k in 0..4u32 {
        let so = so.clone();
        sim.spawn_process(&format!("p{k}"), move |ctx| {
            for j in 0..8u32 {
                so.call(ctx, |acc, ctx| {
                    acc.push(k * 100 + j);
                    ctx.wait(SimTime::us(3))
                })?;
            }
            Ok(())
        });
    }
    sim.run().expect("run").expect_all_finished().expect("done");
    let mut got = so.inspect(|v| v.clone());
    got.sort();
    let mut want: Vec<u32> = (0..4)
        .flat_map(|k| (0..8).map(move |j| k * 100 + j))
        .collect();
    want.sort();
    assert_eq!(got, want);
    // Exclusive 3 us sections: exactly 32 × 3 us of busy time.
    assert_eq!(so.stats().total_busy, SimTime::us(96));
}
