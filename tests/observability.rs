//! Integration tests for the observability layer: the tracer feeding
//! off the *native* tile-parallel decoder (real threads, not simulated
//! processes), and the VCD artefact chain validated end to end with the
//! in-repo parser.

use std::sync::atomic::{AtomicU64, Ordering};

use osss_jpeg2000::models::observe::{derive_from_trace, run_version_observed};
use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::{ModeSel, VersionId};
use osss_jpeg2000::sim::{vcd, SimTime};
use osss_jpeg2000::Tracer;

/// Records from several native worker threads merge into one tracer
/// without loss: every tile claim lands exactly once, and the dump
/// still renders to valid, monotonic VCD.
#[test]
fn tracer_merges_parallel_worker_records_without_loss() {
    let wl = workload(ModeSel::Lossless);
    let tracer = Tracer::new();
    let seq = AtomicU64::new(0);
    let probe = |worker: usize, tile: usize| {
        // Logical time: the claim sequence number. Workers race, but
        // the tracer's lock serialises pushes — nothing is dropped.
        let t = seq.fetch_add(1, Ordering::Relaxed);
        tracer.record_at(SimTime::ns(t + 1), &format!("worker{worker}.tile"), tile);
    };
    let (out, stats) = osss_jpeg2000::decode_parallel_observed(&wl.codestream, 4, Some(&probe))
        .expect("parallel decode");
    assert_eq!(out.image, *wl.reference);

    let records = tracer.records();
    assert_eq!(records.len(), 16, "one claim record per tile");
    let mut tiles: Vec<usize> = records
        .iter()
        .map(|r| r.value.parse().expect("tile index"))
        .collect();
    tiles.sort_unstable();
    assert_eq!(tiles, (0..16).collect::<Vec<_>>(), "each tile exactly once");
    assert_eq!(stats.per_worker_tiles.iter().sum::<u64>(), 16);

    // The merged dump must still be valid VCD: every claim is a change
    // (all record times are distinct), one `workerN` scope per worker
    // that actually claimed tiles.
    let doc = vcd::parse(&tracer.to_vcd()).expect("valid VCD from threaded records");
    assert_eq!(doc.changes.len(), 16);
    let active_workers = stats.per_worker_tiles.iter().filter(|&&n| n > 0).count();
    assert_eq!(doc.vars.len(), active_workers);
}

/// The full artefact chain on one observed model run: hierarchical
/// scopes, string-typed non-numeric signals absent here, a signed
/// signal encoded in two's complement, and derivation matching the
/// report.
#[test]
fn observed_model_run_yields_valid_hierarchical_vcd() {
    let run = run_version_observed(VersionId::V3, ModeSel::Lossless).expect("run");
    assert!(run.result.functional_ok);

    let text = run.tracer.to_vcd();
    let doc = vcd::parse(&text).expect("valid VCD");

    // Hierarchical scopes from the dotted signal names.
    let busy = doc.var_named("busy").expect("idwt.busy declared");
    assert_eq!(busy.scope, vec!["idwt".to_string()]);
    let credit = doc.var_named("credit").expect("hwsw.credit declared");
    assert_eq!(credit.scope, vec!["hwsw".to_string()]);

    // The credit dips negative while tiles are in flight; a correct
    // dump encodes that as full-width two's complement, not the old
    // `unsigned_abs` truncation (which would have emitted `b1` for -1).
    let minus_one = format!("{:b}", -1i64 as u64);
    assert!(
        text.contains(&minus_one),
        "-1 credit must appear as 64-bit two's complement"
    );

    // Trace-derived Table-1 values equal the simulation's own report.
    let derived = derive_from_trace(&run.tracer.records());
    assert_eq!(derived.decode_time, run.result.decode_time);
    assert_eq!(derived.idwt_time, run.result.idwt_time);
    assert!(derived.idwt_occupancy > 0.0 && derived.idwt_occupancy < 1.0);

    // The metrics registry saw the same run.
    let snap = run.registry.snapshot();
    assert_eq!(snap.counters.get("model.tiles"), Some(&16));
    assert!(snap.counters.contains_key("sched.idwt2d_ctrl.activations"));
}
