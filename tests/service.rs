//! Fixed-seed stress smoke for the persistent decode service.
//!
//! A handful of client threads drive a deliberately small service
//! (few workers, short queue, tight cache budgets) with a seeded mix
//! of request kinds, deadlines, cancellations and backpressure. The
//! contract under test is the service's accounting identity: **no
//! submission is ever silently dropped** — every attempt resolves to a
//! response, `QueueFull`, `DeadlineExceeded`, `Cancelled` or a decode
//! error, and after a drain the stats reconcile exactly with the
//! submissions. Completed strict responses must also stay bit-exact
//! against the one-shot decoder.
//!
//! Knobs (environment, same pattern as `FUZZ_ITERS`):
//! * `SERVICE_STRESS_ITERS` — requests per client thread (default 40).
//! * `SERVICE_STRESS_SEED` — master RNG seed (default fixed).
//! * `STAMPEDE_ITERS` — stampede requests per client (default 30).
//! * `STAMPEDE_SEED` — stampede RNG seed (default fixed).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use osss_jpeg2000::jpeg2000::codec::{decode, encode, EncodeParams, Mode};
use osss_jpeg2000::jpeg2000::image::Image;
use osss_jpeg2000::{DecodeService, Request, ServiceConfig, ServiceError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 4;
const DEFAULT_ITERS: usize = 40;
const DEFAULT_SEED: u64 = 0x5345_5256_4943_4531; // "SERVICE1"

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn stress_no_request_is_silently_dropped() {
    let iters = env_u64("SERVICE_STRESS_ITERS", DEFAULT_ITERS as u64) as usize;
    let master_seed = env_u64("SERVICE_STRESS_SEED", DEFAULT_SEED);

    // A few distinct streams (Table-1-style geometry, small) plus their
    // strict references for bit-exactness spot checks.
    let streams: Vec<(Vec<u8>, Image)> = (0..3)
        .map(|i| {
            let img = Image::synthetic_rgb(64, 64, 9000 + i);
            let mode = if i % 2 == 0 {
                Mode::Lossless
            } else {
                Mode::lossy_default()
            };
            let bytes = encode(&img, &EncodeParams::new(mode).tile_size(32, 32)).unwrap();
            let reference = decode(&bytes).unwrap().image;
            (bytes, reference)
        })
        .collect();

    let svc = DecodeService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        // Tight budgets: roughly one header and one image fit, so
        // eviction churn is part of the stress.
        header_cache_bytes: streams.iter().map(|(b, _)| b.len()).max().unwrap(),
        image_cache_bytes: 64 * 64 * 3 * 4,
        metrics: None,
    });

    let attempts = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let resolved = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let svc = &svc;
            let streams = &streams;
            let (attempts, rejected, resolved) = (&attempts, &rejected, &resolved);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(
                    master_seed ^ (client as u64).wrapping_mul(0x9e3779b97f4a7c15),
                );
                for _ in 0..iters {
                    let (bytes, reference) = &streams[rng.gen_range(0..streams.len())];
                    let mut request = match rng.gen_range(0..4) {
                        0 => Request::strict(),
                        1 => Request::tolerant(),
                        2 => Request::quality(rng.gen_range(1..3)),
                        _ => Request::thumbnail(rng.gen_range(0..3)),
                    };
                    if rng.gen_bool(0.2) {
                        // Some absurdly tight, some generous.
                        let us = if rng.gen_bool(0.5) { 50 } else { 200_000 };
                        request = request.with_timeout(Duration::from_micros(us));
                    }
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let submitted = if rng.gen_bool(0.5) {
                        svc.submit(&bytes[..], request)
                    } else {
                        svc.submit_wait(
                            &bytes[..],
                            request,
                            Duration::from_millis(rng.gen_range(0..5)),
                        )
                    };
                    let ticket = match submitted {
                        Ok(t) => t,
                        Err(ServiceError::QueueFull) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    };
                    if rng.gen_bool(0.1) {
                        ticket.cancel();
                    }
                    // Every accepted submission must resolve.
                    match ticket.wait() {
                        Ok(resp) => {
                            if request.kind == osss_jpeg2000::RequestKind::Strict {
                                assert_eq!(&*resp.image, reference, "strict response bit-drift");
                            }
                        }
                        Err(ServiceError::DeadlineExceeded | ServiceError::Cancelled) => {}
                        Err(e) => panic!("unexpected outcome: {e}"),
                    }
                    resolved.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let stats = svc.shutdown();
    let attempts = attempts.load(Ordering::Relaxed);
    let rejected_seen = rejected.load(Ordering::Relaxed);
    let resolved = resolved.load(Ordering::Relaxed);

    // Client-side and service-side accounting must agree exactly. An
    // accepted attempt either queued its own job (`submitted`) or
    // attached to an identical in-flight one (`coalesced`) — the
    // client cannot tell which, so only their sum is observable.
    assert_eq!(stats.rejected, rejected_seen, "rejection accounting");
    assert_eq!(
        stats.submitted + stats.coalesced,
        attempts - rejected_seen,
        "admission accounting"
    );
    assert_eq!(
        stats.submitted + stats.coalesced,
        resolved,
        "every accepted submission resolved"
    );
    assert!(
        stats.reconciles(),
        "outcomes must partition submissions exactly: {stats:?}"
    );
    assert_eq!(
        stats.submitted + stats.coalesced,
        stats.completed + stats.expired + stats.cancelled + stats.failed,
    );
    assert_eq!(stats.failed, 0, "well-formed streams never fail to decode");
}

/// Single-flight stampede stress: every client hammers **one** hot
/// stream through a single worker with the image cache disabled, so
/// almost every submission lands while an identical decode is in
/// flight. The seeded mix exercises the whole coalescing state
/// machine — followers expiring mid-flight, leaders cancelling with
/// followers attached (promotion), plain pile-ons — and the contract
/// is exact reconciliation: nothing hangs, nothing double-decodes,
/// nothing resolves twice.
#[test]
fn stampede_on_one_hot_stream_reconciles_exactly() {
    const STAMPEDE_CLIENTS: usize = 6;
    let iters = env_u64("STAMPEDE_ITERS", 30) as usize;
    let master_seed = env_u64("STAMPEDE_SEED", 0x5354_414D_5045_4445); // "STAMPEDE"

    let img = Image::synthetic_rgb(64, 64, 9100);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
    let reference = decode(&bytes).unwrap().image;

    let svc = DecodeService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        header_cache_bytes: bytes.len(),
        // No image cache: every flight costs a real decode, so the
        // only thing standing between the hot stream and N duplicate
        // decodes is coalescing itself.
        image_cache_bytes: 0,
        metrics: None,
    });

    let attempts = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let resolved = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..STAMPEDE_CLIENTS {
            let svc = &svc;
            let (bytes, reference) = (&bytes, &reference);
            let (attempts, rejected, resolved) = (&attempts, &rejected, &resolved);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(
                    master_seed ^ (client as u64).wrapping_mul(0x9e3779b97f4a7c15),
                );
                for _ in 0..iters {
                    let mut request = Request::strict();
                    if rng.gen_bool(0.25) {
                        // Tight deadlines expire followers (and
                        // leaders) at tile boundaries mid-flight.
                        let us = if rng.gen_bool(0.5) { 50 } else { 100_000 };
                        request = request.with_timeout(Duration::from_micros(us));
                    }
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let ticket = match svc.submit(&bytes[..], request) {
                        Ok(t) => t,
                        Err(ServiceError::QueueFull) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    };
                    if rng.gen_bool(0.2) {
                        // Cancelling the leader while followers are
                        // attached must promote, not kill the flight.
                        ticket.cancel();
                    }
                    match ticket.wait() {
                        Ok(resp) => {
                            assert_eq!(&*resp.image, reference, "stampede response bit-drift");
                        }
                        Err(ServiceError::DeadlineExceeded | ServiceError::Cancelled) => {}
                        Err(e) => panic!("unexpected outcome: {e}"),
                    }
                    resolved.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let stats = svc.shutdown();
    let attempts = attempts.load(Ordering::Relaxed);
    let rejected_seen = rejected.load(Ordering::Relaxed);
    let resolved = resolved.load(Ordering::Relaxed);

    assert_eq!(stats.rejected, rejected_seen, "rejection accounting");
    assert_eq!(
        stats.submitted + stats.coalesced,
        attempts - rejected_seen,
        "admission accounting"
    );
    assert_eq!(
        stats.submitted + stats.coalesced,
        resolved,
        "every accepted submission resolved"
    );
    assert!(stats.reconciles(), "stampede must reconcile: {stats:?}");
    assert_eq!(stats.failed, 0, "a well-formed stream never fails");
    assert!(
        stats.coalesced > 0,
        "six clients × one hot stream × one worker must coalesce: {stats:?}"
    );
    // The decode count (image-cache misses, cache disabled) is what
    // coalescing bounds: it can never exceed the number of queued
    // jobs, which coalescing keeps far below the attempt count.
    assert_eq!(
        stats.image_hits, 0,
        "image cache is disabled in this config"
    );
    assert!(
        stats.image_misses <= stats.submitted,
        "no flight decodes twice: {stats:?}"
    );
}
