//! Integration smoke tests of the paper experiments: a representative
//! subset of Table 1, the whole of Table 2, the Figure 1 profile and the
//! two ablation axes. (The full Table 1 shape suite lives in the
//! `jpeg2000-models` crate.)

use osss_jpeg2000::models::report::{check_table1_shape, format_table1, format_table2};
use osss_jpeg2000::models::synth::table2;
use osss_jpeg2000::models::{
    profile, run_scaling, run_v5_with_policy, run_version, ArbPolicy, ModeSel, VersionId,
};

#[test]
fn key_table1_versions_run_and_are_functionally_correct() {
    let mut results = Vec::new();
    for v in [VersionId::V1, VersionId::V4, VersionId::V5] {
        for mode in ModeSel::ALL {
            let r = run_version(v, mode).expect("simulation");
            assert!(r.functional_ok, "{v} {mode}");
            results.push(r);
        }
    }
    // Formatting must include what we ran.
    let text = format_table1(&results);
    assert!(text.contains("SW only"));
    assert!(text.contains("SW parallel"));
    // Speed relations for what we have.
    let checks = check_table1_shape(&results);
    for c in checks {
        assert!(c.pass, "{}: measured {}", c.name, c.measured);
    }
}

#[test]
fn vta_pair_preserves_functionality_and_bus_penalty() {
    let a = run_version(VersionId::V6a, ModeSel::Lossless).expect("6a");
    let b = run_version(VersionId::V6b, ModeSel::Lossless).expect("6b");
    assert!(a.functional_ok && b.functional_ok);
    assert!(a.idwt_time > b.idwt_time, "bus mapping must cost IDWT time");
}

#[test]
fn table2_regenerates_with_correct_shape() {
    let rows = table2();
    let text = format_table2(&rows);
    assert!(text.contains("Slice flip-flops"));
    assert!(text.contains("Est. frequency"));
    // The two headline relations of the paper's conclusion.
    assert!(rows[0].fossy.slices > rows[0].reference.slices); // 5/3: FOSSY bigger
    assert!(rows[1].fossy.slices < rows[1].reference.slices); // 9/7: FOSSY smaller
    assert!(rows[1].fossy.fmax_mhz < rows[1].reference.fmax_mhz); // ... and slower
}

#[test]
fn figure1_profile_is_entropy_dominated() {
    for mode in ModeSel::ALL {
        let p = profile::profile(mode, 96);
        assert!(
            p.entropy_dominates(),
            "{mode}: {:?} (paper: {:?})",
            p.measured,
            p.paper
        );
    }
}

#[test]
fn scaling_ablation_shows_7b_scales_better() {
    // The paper's closing Table 1 remark in miniature: at 8-way
    // parallelism the bus mapping pays a pronounced IDWT penalty, the
    // P2P mapping none.
    let a2 = run_scaling(ModeSel::Lossless, 2, false).expect("2-way bus");
    let a8 = run_scaling(ModeSel::Lossless, 8, false).expect("8-way bus");
    let b2 = run_scaling(ModeSel::Lossless, 2, true).expect("2-way p2p");
    let b8 = run_scaling(ModeSel::Lossless, 8, true).expect("8-way p2p");
    assert!(a8.idwt_time > a2.idwt_time, "bus penalty grows with CPUs");
    let p2p_drift = b8.idwt_time.as_ms_f64() / b2.idwt_time.as_ms_f64();
    assert!(
        (0.99..=1.01).contains(&p2p_drift),
        "P2P IDWT flat: {p2p_drift}"
    );
    assert!(b8.decode_time < a8.decode_time, "7b wins at 8-way");
}

#[test]
fn arbitration_policy_is_second_order() {
    let base = run_v5_with_policy(ModeSel::Lossless, ArbPolicy::Fcfs).expect("fcfs");
    for policy in [ArbPolicy::RoundRobin, ArbPolicy::StaticPriority] {
        let r = run_v5_with_policy(ModeSel::Lossless, policy).expect("run");
        assert!(r.functional_ok, "{policy} broke the output");
        let ratio = r.decode_time.as_ms_f64() / base.decode_time.as_ms_f64();
        assert!(
            (0.98..=1.02).contains(&ratio),
            "{policy}: decode ratio {ratio} should be second-order"
        );
    }
}
