//! Integration: the generated implementation-model artefacts of Figure 4
//! are complete, structurally sound, and traceable back to the input —
//! and the synthesis passes are provably behaviour-preserving on the
//! shipped designs (checked with the IR interpreter).

use osss_jpeg2000::fossy::emit::{c, loc, vhdl};
use osss_jpeg2000::fossy::estimate::{estimate_design, Virtex4};
use osss_jpeg2000::fossy::idwt;
use osss_jpeg2000::fossy::interp::Interp;
use osss_jpeg2000::fossy::ir::Design;
use osss_jpeg2000::fossy::passes::{eliminate_dead_signals, fold_entity, inline_entity};
use osss_jpeg2000::models::synth::synthesis_flow;

#[test]
fn flow_generates_all_five_artefact_kinds() {
    let a = synthesis_flow();
    assert_eq!(a.vhdl.len(), 2, "IDWT53 + IDWT97");
    assert!(!a.c_sources.is_empty());
    assert!(!a.runtime_header.is_empty());
    assert!(a.mhs.contains("TARGET_DEVICE = virtex4-lx25"));
    assert!(a.mss.contains("osss_embedded"));
}

#[test]
fn generated_vhdl_is_structurally_sound_and_traceable() {
    let a = synthesis_flow();
    for (name, code) in &a.vhdl {
        vhdl::structural_check(code).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Identifiers preserved: the line buffer of the paper's listing.
        assert!(code.contains("linebuf"), "{name} lost its identifiers");
        // Fully inlined: no function declarations remain.
        assert!(!code.contains("function "), "{name} still has functions");
    }
    for (name, code) in &a.c_sources {
        c::structural_check(code).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn pass_pipeline_is_idempotent_and_meaning_preserving() {
    for input in [idwt::idwt53_fossy_input(), idwt::idwt97_fossy_input()] {
        let once = eliminate_dead_signals(&fold_entity(&inline_entity(&input)));
        let twice = eliminate_dead_signals(&fold_entity(&inline_entity(&once)));
        assert_eq!(once, twice, "{}: passes must be idempotent", input.name);
        once.validate().expect("still well-formed");

        // Behaviour preservation, cycle by cycle, on the real design.
        let mut a = Interp::new(&input);
        let mut b = Interp::new(&once);
        for m in [&mut a, &mut b] {
            m.set_input("n_cols", 4);
            m.set_input("n_rows", 4);
            m.set_input("start", 1);
        }
        for cycle in 0..300 {
            a.step();
            b.step();
            assert_eq!(
                a.get("done"),
                b.get("done"),
                "{}: done diverged at cycle {cycle}",
                input.name
            );
        }
    }
}

#[test]
fn vhdl_and_systemc_views_agree_on_interface() {
    use osss_jpeg2000::fossy::emit::systemc;
    for ent in [idwt::idwt53_fossy_input(), idwt::idwt97_reference()] {
        let v = vhdl::emit_entity(&ent);
        let s = systemc::emit_entity(&ent);
        for port in &ent.ports {
            assert!(
                v.contains(&port.name),
                "{}: VHDL lost {}",
                ent.name,
                port.name
            );
            assert!(
                s.contains(&port.name),
                "{}: SystemC lost {}",
                ent.name,
                port.name
            );
        }
        assert!(loc(&v) > 20 && loc(&s) > 20);
    }
}

#[test]
fn whole_hw_subsystem_fits_the_lx25() {
    // The full generated hardware subsystem — both IDWT blocks in their
    // FOSSY form — against the case study's device.
    let design = Design {
        name: "jpeg2000_hw_subsystem".into(),
        entities: vec![
            inline_entity(&idwt::idwt53_fossy_input()),
            inline_entity(&idwt::idwt97_fossy_input()),
        ],
    };
    let report = estimate_design(&design, &Virtex4::lx25());
    assert!(report.total.utilisation < 0.5, "plenty of LX25 headroom");
    assert!(
        report.total.fmax_mhz > 50.0,
        "subsystem clock {:.1} MHz",
        report.total.fmax_mhz
    );
}
