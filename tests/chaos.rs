//! Seeded chaos soak over the network decode stack.
//!
//! A multi-client Table-1 workload runs through the deterministic
//! [`ChaosProxy`] under three fault profiles (clean / lossy /
//! adversarial), and the suite asserts the invariants that must
//! survive **any** schedule:
//!
//! 1. **Structured outcomes only** — every request terminates, within
//!    its deadline, in either a bit-exact image or a structured
//!    [`NetError`]; never a hang (suite-level watchdog), a panic, or a
//!    garbage raster.
//! 2. **Accounting holds under fire** — after the run,
//!    `ServerStats::reconciles()` and `ServiceStats::reconciles()`
//!    hold, the `server.*`/`service.*` metric mirrors equal the
//!    stats, and the cross-family identity (one service submission
//!    per admitted request) is exact.
//! 3. **Isolation** — the server keeps serving clean, well-behaved
//!    clients while chaotic ones are being shed.
//!
//! Knobs (environment):
//! * `CHAOS_ITERS` — requests per client per profile (default 6).
//! * `CHAOS_SEED` — master seed for every proxy schedule, client
//!   jitter stream and breaker cooldown (default fixed, so CI runs
//!   are deterministic).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::ModeSel;
use osss_jpeg2000::sim::probe::MetricsRegistry;
use osss_jpeg2000::{
    ChaosConfig, ChaosProxy, ChaosProxyStats, CircuitBreaker, Client, DecodeServer, DecodeService,
    NetError, NetRetryPolicy, Request, ServerConfig, ServerStats, ServiceConfig, ServiceStats,
};

const CLIENTS: usize = 3;
const DEFAULT_ITERS: usize = 6;
const DEFAULT_SEED: u64 = 0x4348_414F_5321; // "CHAOS!"-flavoured
/// Wall-clock budget for one whole profile soak (debug builds on a
/// loaded 1-CPU machine included). Any overrun is, by definition, a
/// hang somewhere in the stack.
const SOAK_BUDGET: Duration = Duration::from_secs(240);

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-profile outcome tallies, for the invariant checks and the
/// EXPERIMENTS.md table.
#[derive(Debug, Default, Clone, Copy)]
struct Outcomes {
    ok: u64,
    busy_exhausted: u64,
    timeout: u64,
    wire: u64,
    protocol: u64,
    circuit_open: u64,
    other: u64,
}

struct SoakReport {
    outcomes: Outcomes,
    server: ServerStats,
    service: ServiceStats,
    proxy: ChaosProxyStats,
}

/// One profile soak: CLIENTS threads × `iters` requests through the
/// proxy. Panics on any non-structured outcome or broken identity;
/// returns the tallies for reporting.
fn soak(config: ChaosConfig, iters: usize, seed: u64) -> SoakReport {
    let registry = MetricsRegistry::new();
    let service = Arc::new(DecodeService::new(ServiceConfig {
        workers: 2,
        metrics: Some(registry.clone()),
        ..ServiceConfig::default()
    }));
    let server = DecodeServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            handler_threads: CLIENTS + 1,
            poll_interval: Duration::from_millis(10),
            submit_timeout: Duration::from_millis(100),
            // Tight enough that a stalled chaotic peer is evicted well
            // inside the soak budget.
            frame_deadline: Some(Duration::from_millis(500)),
            idle_timeout: Some(Duration::from_secs(5)),
            metrics: Some(registry.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind server");

    // Warm the image cache through a direct connection so proxied
    // repeats are cache-served — the soak then measures the transport,
    // not 2×CLIENTS×iters cold decodes.
    {
        let mut warm = Client::connect(server.local_addr()).expect("warm connect");
        for mode in [ModeSel::Lossless, ModeSel::Lossy] {
            let wl = workload(mode);
            let resp = warm
                .request(&Request::strict(), &wl.codestream)
                .expect("warm decode");
            assert_eq!(resp.image, *wl.reference, "warm-up must be bit-exact");
        }
    }

    let proxy = ChaosProxy::start(server.local_addr(), config).expect("start proxy");
    let addr = proxy.local_addr();
    let totals = Arc::new((0..7).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let totals = Arc::clone(&totals);
            thread::spawn(move || {
                let policy = NetRetryPolicy {
                    max_retries: 4,
                    backoff_base: Duration::from_millis(1),
                    backoff_cap: Duration::from_millis(20),
                    jitter_seed: seed ^ c as u64,
                };
                let mut breaker = CircuitBreaker::new(3, Duration::from_millis(200));
                let mut client = match Client::connect(addr) {
                    Ok(cl) => cl.op_deadline(Duration::from_secs(3)),
                    Err(e) => panic!("client {c} connect: {e}"),
                };
                for i in 0..iters {
                    let wl = workload(if (c + i) % 2 == 0 {
                        ModeSel::Lossless
                    } else {
                        ModeSel::Lossy
                    });
                    let slot = match client.decode_retry_guarded(
                        &Request::strict(),
                        &wl.codestream,
                        &policy,
                        &mut breaker,
                    ) {
                        Ok(resp) => {
                            // The one unacceptable failure mode is a
                            // *wrong* image: CRC + bit-exactness mean
                            // chaos may kill a request but never warp
                            // one.
                            assert_eq!(
                                resp.image, *wl.reference,
                                "client {c} iter {i}: garbage raster through chaos"
                            );
                            0
                        }
                        Err(NetError::RetriesExhausted { .. }) => 1,
                        Err(NetError::Timeout) => 2,
                        Err(NetError::Wire(_)) => 3,
                        Err(NetError::Protocol(_)) => 4,
                        Err(NetError::CircuitOpen) => {
                            // Fail-fast is the breaker working; let the
                            // cooldown elapse so later iterations probe.
                            thread::sleep(Duration::from_millis(220));
                            5
                        }
                        Err(NetError::Busy | NetError::Expired | NetError::Refused) => 6,
                        Err(NetError::Decode(d) | NetError::Internal(d)) => {
                            panic!("client {c} iter {i}: unexpected {d}")
                        }
                        Err(other) => panic!("client {c} iter {i}: unexpected {other:?}"),
                    };
                    totals[slot].fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        if let Err(payload) = h.join() {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!("chaos client {c} panicked: {msg}");
        }
    }

    let proxy_stats = proxy.shutdown();
    let server_stats = server.shutdown();
    let svc = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner after server shutdown")
        .shutdown();

    // Invariant 2: accounting holds under fire.
    assert!(server_stats.reconciles(), "server: {server_stats:?}");
    assert!(svc.reconciles(), "service: {svc:?}");
    // Every server-resolved request was either its own service
    // submission or coalesced onto an identical in-flight one.
    assert_eq!(
        svc.submitted + svc.coalesced,
        server_stats.ok + server_stats.expired + server_stats.failed + server_stats.internal,
        "cross-family identity: service {svc:?} vs server {server_stats:?}"
    );
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    for (name, value) in [
        ("server.frames_in", server_stats.frames_in),
        ("server.frames_out", server_stats.frames_out),
        ("server.ok", server_stats.ok),
        ("server.busy", server_stats.busy),
        ("server.crc_rejects", server_stats.crc_rejects),
        ("server.frame_rejects", server_stats.frame_rejects),
        ("server.frame_timeouts", server_stats.frame_timeouts),
        ("server.idle_reaped", server_stats.idle_reaped),
        ("server.conn_capped", server_stats.conn_capped),
        ("server.admission_rejected", server_stats.admission_rejected),
        ("service.submitted", svc.submitted),
        ("service.coalesced", svc.coalesced),
        ("service.completed", svc.completed),
    ] {
        assert_eq!(counter(name), value, "{name} mirror drifted");
    }
    // Nothing left open or in flight once everything shut down.
    assert_eq!(snap.gauges.get("server.open_conns").copied(), Some(0));
    assert!(matches!(
        snap.gauges.get("server.inflight_bytes").copied(),
        None | Some(0)
    ));

    let get = |i: usize| totals[i].load(Ordering::Relaxed);
    let outcomes = Outcomes {
        ok: get(0),
        busy_exhausted: get(1),
        timeout: get(2),
        wire: get(3),
        protocol: get(4),
        circuit_open: get(5),
        other: get(6),
    };
    // Invariant 1: every request resolved exactly once, structurally.
    let total = outcomes.ok
        + outcomes.busy_exhausted
        + outcomes.timeout
        + outcomes.wire
        + outcomes.protocol
        + outcomes.circuit_open
        + outcomes.other;
    assert_eq!(
        total,
        (CLIENTS * iters) as u64,
        "every request accounted for: {outcomes:?}"
    );
    SoakReport {
        outcomes,
        server: server_stats,
        service: svc,
        proxy: proxy_stats,
    }
}

/// Runs `body` under the suite watchdog; an overrun fails the test
/// (the stuck worker is leaked — fine in a test process).
fn with_watchdog<F: FnOnce() -> SoakReport + Send + 'static>(name: &str, body: F) -> SoakReport {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(SOAK_BUDGET) {
        Ok(report) => report,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: soak exceeded {SOAK_BUDGET:?} — something hangs")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{name}: soak worker died (panic already reported above)")
        }
    }
}

#[test]
fn soak_clean_profile_is_transparent() {
    let iters = env_usize("CHAOS_ITERS", DEFAULT_ITERS);
    let seed = env_u64("CHAOS_SEED", DEFAULT_SEED);
    let report = with_watchdog("clean", move || soak(ChaosConfig::clean(seed), iters, seed));
    // A fault-free schedule must be invisible: every request lands.
    assert_eq!(
        report.outcomes.ok,
        (CLIENTS * iters) as u64,
        "{:?}",
        report.outcomes
    );
    assert_eq!(report.proxy.blackholed, 0);
    assert_eq!(
        report.proxy.upstream.drops + report.proxy.downstream.drops,
        0
    );
    assert_eq!(report.server.crc_rejects, 0, "{:?}", report.server);
    eprintln!(
        "chaos soak [clean]   seed={seed:#x} iters={iters}: {:?}",
        report.outcomes
    );
}

#[test]
fn soak_lossy_profile_never_hangs_or_corrupts() {
    let iters = env_usize("CHAOS_ITERS", DEFAULT_ITERS);
    let seed = env_u64("CHAOS_SEED", DEFAULT_SEED);
    let report = with_watchdog("lossy", move || soak(ChaosConfig::lossy(seed), iters, seed));
    // Fragmentation alone must not kill requests: most still land.
    assert!(
        report.outcomes.ok > 0,
        "a lossy-but-honest link still serves: {:?} / proxy {:?}",
        report.outcomes,
        report.proxy
    );
    assert!(
        report.proxy.upstream.splits + report.proxy.downstream.splits > 0,
        "the schedule actually fragmented: {:?}",
        report.proxy
    );
    // Single-flight accounting holds under the lossy profile too: the
    // coalesced term partitions into outcomes like every submission
    // (the soak already asserted `reconciles()`), and a degraded link
    // never inflates decode work past the accepted flights.
    let svc = report.service;
    assert_eq!(
        svc.submitted + svc.coalesced,
        svc.completed + svc.expired + svc.cancelled + svc.failed,
        "coalesced accounting under loss: {svc:?}"
    );
    assert!(
        svc.image_misses <= svc.submitted,
        "no flight decodes twice under loss: {svc:?}"
    );
    eprintln!(
        "chaos soak [lossy]   seed={seed:#x} iters={iters}: {:?} | coalesced={} | proxy {:?}",
        report.outcomes, svc.coalesced, report.proxy
    );
}

#[test]
fn soak_adversarial_profile_fails_structurally() {
    let iters = env_usize("CHAOS_ITERS", DEFAULT_ITERS);
    let seed = env_u64("CHAOS_SEED", DEFAULT_SEED);
    let report = with_watchdog("adversarial", move || {
        soak(ChaosConfig::adversarial(seed), iters, seed)
    });
    // The soak's internal asserts carry the invariants; here, prove the
    // schedule was actually hostile.
    let injected = report.proxy.upstream.corrupted_bytes
        + report.proxy.downstream.corrupted_bytes
        + report.proxy.upstream.drops
        + report.proxy.downstream.drops
        + report.proxy.blackholed;
    assert!(
        injected > 0,
        "adversarial schedule injected nothing: {:?}",
        report.proxy
    );
    eprintln!(
        "chaos soak [advers.] seed={seed:#x} iters={iters}: {:?} | proxy {:?}",
        report.outcomes, report.proxy
    );
}

/// Invariant 3: clean clients keep decoding, bit-exact, while chaotic
/// traffic is being shed next to them.
#[test]
fn clean_clients_survive_alongside_chaotic_ones() {
    let seed = env_u64("CHAOS_SEED", DEFAULT_SEED);
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let service = Arc::new(DecodeService::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        }));
        let server = DecodeServer::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServerConfig {
                handler_threads: 4,
                poll_interval: Duration::from_millis(10),
                frame_deadline: Some(Duration::from_millis(300)),
                idle_timeout: Some(Duration::from_secs(5)),
                ..ServerConfig::default()
            },
        )
        .expect("bind server");
        let proxy =
            ChaosProxy::start(server.local_addr(), ChaosConfig::adversarial(seed)).expect("proxy");
        let chaos_addr = proxy.local_addr();
        let direct_addr = server.local_addr();

        // Two chaotic clients hammer through the proxy...
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let chaos_threads: Vec<_> = (0..2)
            .map(|c| {
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut breaker = CircuitBreaker::new(2, Duration::from_millis(100));
                    let policy = NetRetryPolicy {
                        max_retries: 2,
                        backoff_base: Duration::from_millis(1),
                        jitter_seed: seed ^ c,
                        ..NetRetryPolicy::default()
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let Ok(cl) = Client::connect(chaos_addr) else {
                            thread::sleep(Duration::from_millis(20));
                            continue;
                        };
                        let mut cl = cl.op_deadline(Duration::from_millis(500));
                        let wl = workload(ModeSel::Lossless);
                        // Outcome irrelevant — only structure matters,
                        // and panics would fail the join below.
                        let _ = cl.decode_retry_guarded(
                            &Request::strict(),
                            &wl.codestream,
                            &policy,
                            &mut breaker,
                        );
                    }
                })
            })
            .collect();

        // ...while a clean client on a direct connection must keep
        // landing bit-exact decodes, absorbing at most Busy.
        let mut clean = Client::connect(direct_addr).expect("clean connect");
        let policy = NetRetryPolicy {
            max_retries: 50,
            jitter_seed: seed,
            ..NetRetryPolicy::default()
        };
        for i in 0..5 {
            let wl = workload(if i % 2 == 0 {
                ModeSel::Lossless
            } else {
                ModeSel::Lossy
            });
            let resp = clean
                .decode_retry(&Request::strict(), &wl.codestream, &policy)
                .unwrap_or_else(|e| panic!("clean client starved at iter {i}: {e:?}"));
            assert_eq!(resp.image, *wl.reference, "clean client iter {i}");
        }
        stop.store(true, Ordering::Relaxed);
        for (c, h) in chaos_threads.into_iter().enumerate() {
            if h.join().is_err() {
                panic!("chaotic client {c} panicked");
            }
        }
        proxy.shutdown();
        let stats = server.shutdown();
        assert!(stats.reconciles(), "{stats:?}");
        let _ = tx.send(());
    });
    rx.recv_timeout(SOAK_BUDGET)
        .expect("clean-vs-chaos run exceeded the watchdog budget");
}
