//! Cross-crate integration: the full codec through the facade crate,
//! including staged decoding (the seam the OSSS models consume) and
//! failure injection on malformed codestreams.

use osss_jpeg2000::jpeg2000::codec::{
    decode, decode_thumbnail, encode, EncodeParams, Mode, StagedDecoder,
};
use osss_jpeg2000::jpeg2000::error::CodecError;
use osss_jpeg2000::jpeg2000::image::Image;
use osss_jpeg2000::jpeg2000::io::{read_pnm, write_pnm};

#[test]
fn lossless_roundtrips_bit_exactly_across_geometries() {
    for &(w, h, tw, th) in &[
        (96usize, 96usize, 32usize, 32usize),
        (100, 60, 32, 32),
        (65, 33, 16, 16),
        (48, 48, 48, 48),
    ] {
        let img = Image::synthetic_rgb(w, h, (w + h) as u64);
        let bytes =
            encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(tw, th)).expect("encode");
        let out = decode(&bytes).expect("decode");
        assert_eq!(out.image, img, "{w}x{h} tiles {tw}x{th}");
    }
}

#[test]
fn staged_decode_tile_order_is_irrelevant() {
    let img = Image::synthetic_rgb(64, 64, 5);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).expect("encode");
    let dec = StagedDecoder::new(&bytes).expect("parse");
    let mut out = dec.blank_image();
    // Decode tiles in reverse order — each tile is independent.
    for t in (0..dec.num_tiles()).rev() {
        let coeffs = dec.entropy_decode_tile(t).expect("entropy");
        let samples =
            dec.dc_unshift_tile(dec.inverse_mct_tile(dec.idwt_tile(dec.dequantize_tile(&coeffs))));
        dec.place_tile(&mut out, &samples);
    }
    assert_eq!(out, img);
}

#[test]
fn every_prefix_truncation_fails_cleanly() {
    let img = Image::synthetic_rgb(48, 48, 6);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).expect("encode");
    for frac in 1..20 {
        let cut = &bytes[..bytes.len() * frac / 20];
        match decode(cut) {
            Err(_) => {}
            Ok(_) => panic!("prefix of {} bytes decoded successfully", cut.len()),
        }
    }
}

#[test]
fn corrupted_markers_are_rejected_not_panicking() {
    let img = Image::synthetic_grey(32, 32, 7);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).expect("encode");
    // Flip single bytes through the header region; decoding must never
    // panic — only succeed or return a structured error.
    for i in 0..bytes.len().min(64) {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        let _ = decode(&bad);
    }
}

#[test]
fn absurd_siz_dimensions_are_rejected_before_allocation() {
    // A crafted SIZ can claim a u32::MAX × u32::MAX image; the decoder
    // must refuse with a structured error instead of attempting the
    // multi-exabyte plane allocation (which would abort the process).
    let img = Image::synthetic_grey(32, 32, 7);
    let mut bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).expect("encode");
    // SIZ layout: SOC(2) SIZ-marker(2) len(2) width(4) height(4) ...
    bytes[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
    bytes[10..14].copy_from_slice(&u32::MAX.to_be_bytes());
    match decode(&bytes) {
        Err(CodecError::Malformed { detail, .. }) => {
            assert!(
                detail.contains("decoder limit"),
                "unexpected detail: {detail}"
            )
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn zero_bitplane_consistency_is_enforced() {
    // A decoder invariant check: tamper with single bytes anywhere in the
    // stream; structural errors must be *reported*, never panicked, and
    // at least one corruption must be detected.
    let img = Image::synthetic_grey(32, 32, 9);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).expect("encode");
    let mut tripped = false;
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        match decode(&bad) {
            Err(CodecError::Malformed { .. }) | Err(CodecError::Truncated { .. }) => {
                tripped = true;
            }
            // MQ payload corruption may decode to different pixels
            // without structural damage — acceptable.
            _ => {}
        }
    }
    assert!(
        tripped,
        "no corruption was ever detected in the whole stream"
    );
}

#[test]
fn lossy_quality_scales_monotonically_with_step() {
    let img = Image::synthetic_rgb(64, 64, 10);
    let mut last_psnr = f64::INFINITY;
    let mut last_size = usize::MAX;
    for step in [0.125, 0.5, 2.0, 8.0] {
        let bytes =
            encode(&img, &EncodeParams::new(Mode::Lossy { base_step: step })).expect("encode");
        let out = decode(&bytes).expect("decode");
        let psnr = img.psnr(&out.image);
        assert!(
            psnr <= last_psnr,
            "PSNR must not improve with coarser steps: {psnr} after {last_psnr}"
        );
        assert!(
            bytes.len() <= last_size,
            "stream must not grow with coarser steps"
        );
        last_psnr = psnr;
        last_size = bytes.len();
    }
    assert!(last_psnr > 20.0, "even step 8 keeps recognisable quality");
}

#[test]
fn pnm_in_codec_out_pipeline() {
    // External tool -> PNM -> encode -> decode -> PNM, bit-exact.
    let img = Image::synthetic_rgb(40, 30, 11);
    let pnm_in = write_pnm(&img).expect("pnm write");
    let loaded = read_pnm(&pnm_in).expect("pnm read");
    let stream = encode(&loaded, &EncodeParams::new(Mode::Lossless)).expect("encode");
    let out = decode(&stream).expect("decode");
    assert_eq!(write_pnm(&out.image).expect("pnm out"), pnm_in);
}

#[test]
fn thumbnail_pipeline_shrinks_by_powers_of_two() {
    let img = Image::synthetic_rgb(64, 64, 12);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).expect("encode");
    let mut last_w = 0;
    for res in 0..=3 {
        let thumb = decode_thumbnail(&bytes, res).expect("thumbnail");
        assert_eq!(thumb.width, 64 >> (3 - res));
        assert!(thumb.width > last_w, "each resolution doubles the width");
        last_w = thumb.width;
    }
    assert_eq!(
        decode_thumbnail(&bytes, usize::MAX).expect("full"),
        img,
        "max_res beyond the level count degenerates to a full decode"
    );
}
