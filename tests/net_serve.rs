//! Loopback integration tests for the network decode server.
//!
//! Three contracts, each over real TCP on 127.0.0.1:
//!
//! 1. **Bit-exactness** — a networked strict decode of every pinned
//!    Table-1 stream returns exactly the bytes the in-process
//!    `decode()` produces; the wire layer adds framing, never drift.
//! 2. **Backpressure, not failure** — a client flood against a full
//!    queue resolves every request as an image or an explicit
//!    retryable-busy frame; retry-with-backoff then always succeeds.
//! 3. **Accounting** — the `server.*` and `service.*` tallies (and
//!    their metric mirrors) reconcile exactly once the server drains.

use std::sync::Arc;
use std::time::Duration;

use osss_jpeg2000::jpeg2000::codec::decode;
use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::ModeSel;
use osss_jpeg2000::sim::probe::MetricsRegistry;
use osss_jpeg2000::{
    Client, DecodeServer, DecodeService, NetError, NetRetryPolicy, Request, ServerConfig,
    ServiceConfig,
};

fn start_server(
    config: ServiceConfig,
    server_config: ServerConfig,
) -> (Arc<DecodeService>, DecodeServer) {
    let service = Arc::new(DecodeService::new(config));
    let server = DecodeServer::start(Arc::clone(&service), "127.0.0.1:0", server_config)
        .expect("bind loopback");
    (service, server)
}

#[test]
fn networked_strict_decode_is_bit_exact_on_all_table1_streams() {
    let (service, server) = start_server(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ServerConfig::default(),
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for mode in [ModeSel::Lossless, ModeSel::Lossy] {
        let wl = workload(mode);
        let resp = client
            .request(&Request::strict(), &wl.codestream)
            .expect("networked strict decode");
        // Exact against both the pinned reference and a fresh
        // in-process decode of the same bytes.
        assert_eq!(
            resp.image, *wl.reference,
            "{mode:?}: drifted from reference"
        );
        assert_eq!(
            resp.image,
            decode(&wl.codestream).expect("in-process decode").image,
            "{mode:?}: network and in-process disagree"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.ok, 2);
    assert!(stats.reconciles(), "{stats:?}");
    drop(service);
}

#[test]
fn flood_gets_busy_frames_and_retry_always_lands() {
    // 1 worker, queue of 1, near-zero submit patience: a 10-client
    // flood must resolve every request explicitly.
    let (service, server) = start_server(
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            // Disable caches so every request costs a real decode and
            // the queue genuinely fills.
            header_cache_bytes: 0,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        },
        ServerConfig {
            handler_threads: 10,
            submit_timeout: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let wl = workload(ModeSel::Lossless);
    let wl = &wl;
    let outcomes: Vec<&str> = std::thread::scope(|scope| {
        (0..10)
            .map(|_| {
                let stream = &wl.codestream;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    match client.request(&Request::strict(), stream) {
                        Ok(resp) => {
                            assert_eq!(resp.image, *wl.reference);
                            "ok"
                        }
                        Err(NetError::Busy) => "busy",
                        Err(other) => panic!("flood client: unexpected {other:?}"),
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("flood client"))
            .collect()
    });
    let ok = outcomes.iter().filter(|o| **o == "ok").count();
    let busy = outcomes.iter().filter(|o| **o == "busy").count();
    assert_eq!(ok + busy, 10, "every request resolved explicitly");
    assert!(ok >= 1, "at least the queued request decodes: {outcomes:?}");

    // Retry-with-backoff against the same tiny queue must eventually
    // land even while competing traffic runs.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .decode_retry(
            &Request::strict(),
            &wl.codestream,
            &NetRetryPolicy {
                max_retries: 200,
                ..NetRetryPolicy::default()
            },
        )
        .expect("retry must eventually land");
    assert_eq!(resp.image, *wl.reference);

    let stats = server.shutdown();
    assert!(stats.reconciles(), "{stats:?}");
    assert_eq!(stats.busy as usize, busy, "busy frames match busy outcomes");
    let svc = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
    assert!(svc.reconciles(), "{svc:?}");
    assert_eq!(svc.rejected, stats.busy, "queue rejections == busy frames");
}

#[test]
fn server_and_service_metrics_reconcile_exactly() {
    let registry = MetricsRegistry::new();
    let (service, server) = start_server(
        ServiceConfig {
            workers: 2,
            metrics: Some(registry.clone()),
            ..ServiceConfig::default()
        },
        ServerConfig {
            metrics: Some(registry.clone()),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);

    let mut client = Client::connect(addr).expect("connect");
    // A mix: strict (cold + cached repeat), tolerant, thumbnail, and a
    // doomed deadline.
    for _ in 0..2 {
        client
            .request(&Request::strict(), &lossless.codestream)
            .expect("strict");
    }
    client
        .request(&Request::tolerant(), &lossy.codestream)
        .expect("tolerant");
    client
        .request(&Request::thumbnail(0), &lossless.codestream)
        .expect("thumbnail");
    let doomed = client
        .request(
            &Request::strict().with_timeout(Duration::from_nanos(1)),
            &lossy.codestream,
        )
        .expect_err("a 1ns deadline must expire");
    assert!(matches!(doomed, NetError::Expired), "{doomed:?}");
    drop(client);

    let stats = server.shutdown();
    let svc = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Frame-level identity.
    assert_eq!(stats.frames_in, 5);
    assert_eq!(stats.frames_out, 5);
    assert!(stats.reconciles(), "{stats:?}");
    assert_eq!(stats.ok, 4);
    assert_eq!(stats.expired, 1);

    // Server tallies and their metric mirrors agree exactly.
    for (name, value) in [
        ("server.accepted", stats.accepted),
        ("server.frames_in", stats.frames_in),
        ("server.frames_out", stats.frames_out),
        ("server.ok", stats.ok),
        ("server.busy", stats.busy),
        ("server.expired", stats.expired),
        ("server.failed", stats.failed),
        ("server.crc_rejects", stats.crc_rejects),
        ("server.protocol_errors", stats.protocol_errors),
    ] {
        assert_eq!(counter(name), value, "{name}");
    }

    // Cross-family: every admitted network request is exactly one
    // service submission (queued or coalesced onto an identical
    // in-flight one), and the service saw no other traffic.
    assert!(svc.reconciles(), "{svc:?}");
    assert_eq!(
        svc.submitted + svc.coalesced,
        stats.ok + stats.expired + stats.failed + stats.internal
    );
    assert_eq!(counter("service.submitted"), svc.submitted);
    assert_eq!(counter("service.coalesced"), svc.coalesced);
    assert_eq!(counter("service.completed"), svc.completed);
    assert_eq!(counter("service.expired"), svc.expired);

    // The latency histogram saw every resolved request.
    assert_eq!(
        snap.histograms.get("server.latency").map(|h| h.count()),
        Some(stats.ok + stats.expired),
    );
    // No connection left active after shutdown.
    assert_eq!(snap.gauges.get("server.active").copied(), Some(0));
}
