//! Deterministic fuzz / fault-injection harness over the decode surface.
//!
//! Structure-aware seeded mutations (see `jpeg2000::fuzz`) of valid
//! codestreams are thrown at every public decode entry point. The
//! contract under test: **no input may panic or hang** — malformed
//! bytes produce structured `CodecError`s (strict API) or a best-effort
//! image plus `DecodeReport` (tolerant API), never a crash.
//!
//! Reproducibility: every case is identified by `(FUZZ_SEED, seed
//! stream name, iteration)`. A failing input is written to
//! `tests/corpus/` and the harness panics with the triple; the corpus
//! file is then replayed forever after by `corpus_replays_cleanly`.
//!
//! Knobs (environment):
//! * `FUZZ_ITERS` — mutations per seed stream (default: 30 for the
//!   smoke test, 2000 for the `#[ignore]`d deep test).
//! * `FUZZ_SEED` — master RNG seed (default fixed, so CI runs are
//!   deterministic).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use osss_jpeg2000::jpeg2000::codec::{decode, decode_tolerant};
use osss_jpeg2000::jpeg2000::fuzz::{
    exercise_decode_surface, marker_boundaries, seed_streams, Mutator,
};

/// Wall-clock budget per mutated input across the whole decode surface
/// (debug builds on loaded CI machines included). A decoder hang —
/// an unbounded parse loop — shows up as a budget overrun.
const CASE_BUDGET: Duration = Duration::from_secs(30);

const DEFAULT_SMOKE_ITERS: usize = 30;
/// 2000 per seed × 5 seed streams = 10 000 mutations, the CI-smoke
/// floor from the issue's acceptance criteria.
const DEFAULT_DEEP_ITERS: usize = 2000;
const DEFAULT_SEED: u64 = 0x4A50_3230_3030_2101; // "JP2000!."-flavoured

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Runs the full decode surface on `bytes` inside a watchdog: a worker
/// thread executes, the caller waits with a deadline. Panics are caught
/// (`Err("panic")`), deadline overruns detected (`Err("hang")` — the
/// stuck thread is leaked, which is fine for a test process).
fn run_case(bytes: Vec<u8>) -> Result<(), &'static str> {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let ok = catch_unwind(AssertUnwindSafe(|| exercise_decode_surface(&bytes))).is_ok();
        let _ = tx.send(ok);
    });
    match rx.recv_timeout(CASE_BUDGET) {
        Ok(true) => Ok(()),
        Ok(false) => Err("panic"),
        Err(_) => Err("hang (wall-clock budget exceeded)"),
    }
}

/// The shared fuzz loop: `iters` mutations of every seed stream. On
/// failure the offending input is persisted to the corpus and the test
/// panics with everything needed to reproduce.
fn fuzz_all_seeds(iters: usize, master_seed: u64) {
    for (name, seed_bytes) in seed_streams() {
        // Derive a per-stream RNG so adding a seed stream does not
        // shift the mutation sequence of the others.
        let stream_seed = master_seed ^ (name.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut mutator = Mutator::new(stream_seed);
        for i in 0..iters {
            let (mutated, mutation) = mutator.mutate(&seed_bytes);
            if let Err(kind) = run_case(mutated.clone()) {
                let file = corpus_dir().join(format!("{kind}-{name}-{master_seed:#x}-{i}.j2k"));
                let _ = std::fs::create_dir_all(corpus_dir());
                let _ = std::fs::write(&file, &mutated);
                panic!(
                    "decode surface {kind} — seed stream `{name}`, FUZZ_SEED {master_seed:#x}, \
                     iteration {i}, mutation {} ({}); input saved to {}",
                    mutation.kind,
                    mutation.detail,
                    file.display()
                );
            }
        }
    }
}

/// Tier-1 smoke: a bounded deterministic slice of the mutation space on
/// every `cargo test`. The deep version below covers the acceptance
/// floor of ≥ 10k mutations in release builds (CI fuzz job).
#[test]
fn fuzz_smoke_no_panic_no_hang() {
    fuzz_all_seeds(
        env_usize("FUZZ_ITERS", DEFAULT_SMOKE_ITERS),
        env_u64("FUZZ_SEED", DEFAULT_SEED),
    );
}

/// ≥ 10 000 seeded mutations across both coding modes. Run by the CI
/// fuzz job as `cargo test --release -- --ignored fuzz_deep`.
#[test]
#[ignore = "deep fuzz (10k mutations): run in release, e.g. via the CI fuzz job"]
fn fuzz_deep_10k_mutations() {
    fuzz_all_seeds(
        env_usize("FUZZ_ITERS", DEFAULT_DEEP_ITERS),
        env_u64("FUZZ_SEED", DEFAULT_SEED),
    );
}

/// Every input that ever crashed the decoder is replayed on every test
/// run — the corpus is the regression memory of the fuzz harness.
#[test]
fn corpus_replays_cleanly() {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no corpus yet
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "j2k"))
        .collect();
    files.sort();
    for f in files {
        let bytes = std::fs::read(&f).expect("corpus file readable");
        if let Err(kind) = run_case(bytes) {
            panic!("corpus input {} regressed: {kind}", f.display());
        }
    }
}

/// Exhaustive truncation sweep, strict API: every byte-length prefix of
/// the pinned Table-1 streams must fail (or, at full length, succeed)
/// without panicking. Strict parsing fails fast, so the full sweep is
/// cheap even in debug builds.
#[test]
fn truncation_sweep_strict_every_prefix() {
    for (name, bytes) in seed_streams().into_iter().take(2) {
        for cut in 0..=bytes.len() {
            let r = decode(&bytes[..cut]);
            if cut == bytes.len() {
                assert!(r.is_ok(), "{name}: full stream must decode");
            } else {
                assert!(r.is_err(), "{name}: prefix {cut} cannot be a valid stream");
            }
        }
    }
}

/// Truncation sweep, tolerant API: `decode_tolerant` on prefixes. The
/// default run covers every marker boundary (±2 bytes) plus a byte
/// stride; the `#[ignore]`d exhaustive version covers every prefix in
/// release builds. Invariant: once the main header parses, the output
/// image always has the SIZ geometry.
#[test]
fn truncation_sweep_tolerant_boundaries() {
    for (name, bytes) in seed_streams().into_iter().take(2) {
        let mut cuts: Vec<usize> = marker_boundaries(&bytes)
            .into_iter()
            .flat_map(|p| [p.saturating_sub(2), p, (p + 2).min(bytes.len())])
            .collect();
        cuts.extend((0..=bytes.len()).step_by(997));
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            tolerant_prefix_holds_geometry(name, &bytes, cut);
        }
    }
}

/// Exhaustive tolerant sweep — every prefix of both Table-1 streams.
/// O(prefix-count × decode), so kept out of the debug tier-1 run.
#[test]
#[ignore = "exhaustive tolerant truncation sweep: run in release via the CI fuzz job"]
fn truncation_sweep_tolerant_every_prefix() {
    for (name, bytes) in seed_streams().into_iter().take(2) {
        for cut in 0..=bytes.len() {
            tolerant_prefix_holds_geometry(name, &bytes, cut);
        }
    }
}

fn tolerant_prefix_holds_geometry(name: &str, bytes: &[u8], cut: usize) {
    match decode_tolerant(&bytes[..cut]) {
        Ok((image, report)) => {
            // Geometry invariant: the image matches the SIZ header.
            assert_eq!(
                (image.width, image.height),
                (128, 128),
                "{name}: prefix {cut}"
            );
            if cut < bytes.len() {
                assert!(
                    !report.is_clean(),
                    "{name}: prefix {cut} lost data but reported clean"
                );
            }
        }
        Err(_) => {
            // Acceptable only while the main header is incomplete.
            // Both Table-1 streams share the same header layout:
            // SOC(2) + SIZ(2+2+16+2+3) + COD(2+2+7) + QCD ends later;
            // any cut past the QCD segment has a full main header.
            let segs = osss_jpeg2000::jpeg2000::fuzz::scan_markers(bytes);
            let header_end = segs
                .iter()
                .find(|s| s.marker == osss_jpeg2000::jpeg2000::codestream::MARKER_QCD)
                .map(|s| s.offset + s.len)
                .expect("seed has QCD");
            assert!(
                cut < header_end,
                "{name}: prefix {cut} has a complete main header yet decode_tolerant failed"
            );
        }
    }
}

/// Named regression: the corrupt-single-tile acceptance scenario at the
/// integration level (the unit-level twin lives in `codec.rs`), via the
/// facade exports.
#[test]
fn facade_tolerant_exports_work() {
    use osss_jpeg2000::jpeg2000::codec::{encode, EncodeParams, Mode};
    use osss_jpeg2000::jpeg2000::image::Image;

    let img = Image::synthetic_rgb(64, 64, 31);
    let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
    let (seq, seq_report) = osss_jpeg2000::decode_tolerant(&bytes).unwrap();
    let (par, par_report) = osss_jpeg2000::decode_tolerant_workers(&bytes, 4).unwrap();
    assert!(seq_report.is_clean() && par_report.is_clean());
    assert_eq!(seq, par);
    assert_eq!(seq, decode(&bytes).unwrap().image);
}
