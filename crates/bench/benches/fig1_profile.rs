//! Figure 1: the per-stage decode profile. Benches the instrumented
//! decode as a whole and each stage in isolation so the measured shares
//! can be cross-checked.

use criterion::{criterion_group, criterion_main, Criterion};
use jpeg2000::codec::{decode, StagedDecoder};
use osss_bench::encoded_workload;

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_profile");
    group.sample_size(20);
    for (label, lossless) in [("lossless", true), ("lossy", false)] {
        let (_, bytes) = encoded_workload(lossless, 128);
        group.bench_function(format!("full_decode_{label}"), |b| {
            b.iter(|| decode(&bytes).expect("decode"))
        });
        let dec = StagedDecoder::new(&bytes).expect("parse");
        group.bench_function(format!("stage_entropy_{label}"), |b| {
            b.iter(|| dec.entropy_decode_tile(0).expect("entropy"))
        });
        let coeffs = dec.entropy_decode_tile(0).expect("entropy");
        group.bench_function(format!("stage_iq_{label}"), |b| {
            b.iter(|| dec.dequantize_tile(&coeffs))
        });
        let wavelet = dec.dequantize_tile(&coeffs);
        group.bench_function(format!("stage_idwt_{label}"), |b| {
            b.iter(|| dec.idwt_tile(wavelet.clone()))
        });
        let samples = dec.idwt_tile(wavelet);
        group.bench_function(format!("stage_mct_dc_{label}"), |b| {
            b.iter(|| dec.dc_unshift_tile(dec.inverse_mct_tile(samples.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
