//! The codec throughput benchmark: flags-lattice Tier-1 kernel vs the
//! retained reference, the inverse-DWT kernels, per-tile entropy decode
//! on the Table-1 workload, and end-to-end decode throughput.
//!
//! Unlike the criterion-based benches this one writes its results to
//! `BENCH_decode.json` at the repository root — the machine-readable
//! trajectory future PRs compare against. The `baseline_pre_pr` block
//! holds the numbers measured on this machine immediately before the
//! flags-lattice rewrite (PR 2) and the `baseline_pre_dwt` block the
//! numbers immediately before the fixed-point/cache-blocked DWT rewrite
//! (PR 7), so the recorded speedups are like-for-like.
//!
//! Modes: `--test` (how `cargo test --benches` invokes bench targets) or
//! `BENCH_QUICK=1` run a reduced smoke pass and skip the JSON write, so
//! CI never clobbers the recorded trajectory with noisy quick numbers.
//! Both modes *gate* on the committed trajectory: if the measured
//! end-to-end decode regresses more than 25% against the `decode_ns`
//! recorded in `BENCH_decode.json`, the bench fails.

use std::time::Instant;

use jpeg2000::codec::{decode, StagedDecoder};
use jpeg2000::dwt::{fdwt53_2d, fdwt97_2d, fixed_from_real, idwt53_2d, idwt97_2d_fixed};
use jpeg2000::scratch::DecodeScratch;
use jpeg2000::t1::{decode_block, encode_block, reference};
use jpeg2000::tile::BandKind;
use jpeg2000_models::workload::workload;
use jpeg2000_models::ModeSel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pre-PR-2 Tier-1 kernel time (64×64 HL block, min-of-samples), ns.
const BASELINE_KERNEL_NS: u64 = 1_490_728;
/// Pre-PR-2 per-tile entropy decode on the Table-1 workload, ns.
const BASELINE_ENTROPY_NS: [(&str, u64); 2] = [("lossless", 729_004), ("lossy", 795_882)];
/// Pre-PR-2 end-to-end decode of the Table-1 workload (best-of-20), ns.
const BASELINE_DECODE_NS: [(&str, u64); 2] = [("lossless", 12_371_732), ("lossy", 14_835_234)];
/// Inverse-DWT kernel times (256×256 tile, 3 levels, min-of-samples)
/// measured immediately before the strip-blocked rewrite, ns: the
/// per-column integer 5/3 and the retired f64 9/7.
const BASELINE_IDWT53_NS: u64 = 607_515;
const BASELINE_IDWT97_F64_NS: u64 = 954_323;
/// End-to-end decode immediately before the fixed-point DWT rewrite —
/// the committed `decode_ns` trajectory as of PR 6, ns.
const BASELINE_PRE_DWT_DECODE_NS: [(&str, u64); 2] =
    [("lossless", 7_352_701), ("lossy", 10_077_050)];

/// Maximum tolerated end-to-end decode slowdown vs the committed
/// `BENCH_decode.json` before the bench fails. Generous because the CI
/// quick pass uses few samples on a noisy shared CPU; it exists to catch
/// real regressions (a lost kernel optimisation), not jitter.
const GATE_MAX_RATIO: f64 = 1.25;

/// Best-of-`samples` wall-clock of `f`, in ns. Min (not mean) because a
/// 1-CPU container's scheduler noise only ever adds time.
fn best_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Extracts one named entry of the *top-level* `decode_ns` block from
/// the committed `BENCH_decode.json` (the first `decode_ns` in the file;
/// the baseline blocks repeat the key further down). Hand-rolled so the
/// bench needs no JSON dependency.
fn committed_decode_ns(json: &str, name: &str) -> Option<u64> {
    let obj = &json[json.find("\"decode_ns\"")?..];
    let obj = &obj[..obj.find('}')? + 1];
    let v = &obj[obj.find(&format!("\"{name}\""))?..];
    let digits: String = v
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test") || std::env::var_os("BENCH_QUICK").is_some();
    // Quick mode takes enough samples that a best-of min is a stable
    // input to the regression gate; the whole pass still runs in
    // seconds.
    let (warmup, samples) = if quick { (2, 5) } else { (5, 30) };

    // --- Kernel: 64×64 HL code-block, same data as codec_kernels.rs ---
    let (w, h) = (64usize, 64usize);
    let mut rng = StdRng::seed_from_u64(2);
    let mags: Vec<u32> = (0..w * h)
        .map(|_| {
            if rng.gen_bool(0.3) {
                rng.gen_range(1..512)
            } else {
                0
            }
        })
        .collect();
    let negative: Vec<bool> = (0..w * h).map(|_| rng.gen_bool(0.5)).collect();
    let enc = encode_block(&mags, &negative, w, h, BandKind::Hl);
    let check = decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes);
    assert_eq!(
        check,
        reference::decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes),
        "fast path must match the reference before being timed"
    );

    for _ in 0..warmup {
        let _ = decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes);
    }
    let opt_ns = best_ns(samples, || {
        let _ = decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes);
    });
    let ref_ns = best_ns(samples, || {
        let _ = reference::decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes);
    });
    let samples_per_sec = (w * h) as f64 / (opt_ns as f64 / 1e9);
    println!(
        "t1 kernel 64x64 HL: optimized {opt_ns} ns, reference {ref_ns} ns \
         ({:.2}x vs in-tree reference, {:.2}x vs pre-PR {BASELINE_KERNEL_NS} ns)",
        ref_ns as f64 / opt_ns as f64,
        BASELINE_KERNEL_NS as f64 / opt_ns as f64,
    );

    // --- DWT kernels: 256×256 tile, 3 levels --------------------------
    let n = 256usize;
    let mut rng = StdRng::seed_from_u64(3);
    let tile: Vec<i32> = (0..n * n).map(|_| rng.gen_range(-128..128)).collect();
    let mut fwd53 = tile.clone();
    fdwt53_2d(&mut fwd53, n, n, 3);
    for _ in 0..warmup {
        let mut buf = fwd53.clone();
        idwt53_2d(&mut buf, n, n, 3);
    }
    let idwt53_ns = best_ns(samples, || {
        let mut buf = fwd53.clone();
        idwt53_2d(&mut buf, n, n, 3);
    });
    let mut fwd97: Vec<f64> = tile.iter().map(|&v| f64::from(v)).collect();
    fdwt97_2d(&mut fwd97, n, n, 3);
    let fwd97_fixed: Vec<i32> = fwd97.iter().map(|&v| fixed_from_real(v)).collect();
    for _ in 0..warmup {
        let mut buf = fwd97_fixed.clone();
        idwt97_2d_fixed(&mut buf, n, n, 3);
    }
    let idwt97_ns = best_ns(samples, || {
        let mut buf = fwd97_fixed.clone();
        idwt97_2d_fixed(&mut buf, n, n, 3);
    });
    println!(
        "dwt 256x256 l3: idwt53 {idwt53_ns} ns ({:.2}x vs pre-PR {BASELINE_IDWT53_NS} ns), \
         idwt97_fixed {idwt97_ns} ns ({:.2}x vs pre-PR f64 {BASELINE_IDWT97_F64_NS} ns)",
        BASELINE_IDWT53_NS as f64 / idwt53_ns as f64,
        BASELINE_IDWT97_F64_NS as f64 / idwt97_ns as f64,
    );

    // --- Per-tile entropy decode + end-to-end decode, both modes ------
    let mut entropy_ns = Vec::new();
    let mut decode_ns = Vec::new();
    let mut decode_mbps = Vec::new();
    for (name, mode) in [("lossless", ModeSel::Lossless), ("lossy", ModeSel::Lossy)] {
        let wl = workload(mode);
        let dec: &StagedDecoder = &wl.decoder;
        let tiles = dec.num_tiles();
        let mut scratch = DecodeScratch::new();
        for _ in 0..warmup {
            for t in 0..tiles {
                let _ = dec.entropy_decode_tile_with(t, &mut scratch).unwrap();
            }
        }
        let per_tile = best_ns(samples, || {
            for t in 0..tiles {
                let _ = dec.entropy_decode_tile_with(t, &mut scratch).unwrap();
            }
        }) / tiles as u64;
        entropy_ns.push((name, per_tile));

        let bytes = &wl.codestream;
        for _ in 0..warmup {
            let _ = decode(bytes).unwrap();
        }
        let total = best_ns(samples, || {
            let _ = decode(bytes).unwrap();
        });
        // Throughput over decoded samples at one byte per 8-bit sample.
        let out_bytes = (wl.image.width * wl.image.height * wl.image.components.len()) as f64;
        let mbps = out_bytes / (total as f64 / 1e9) / 1e6;
        decode_ns.push((name, total));
        decode_mbps.push((name, mbps));
        println!("{name}: entropy {per_tile} ns/tile, decode {total} ns ({mbps:.3} MB/s)");
    }

    // --- Regression gate vs the committed trajectory ------------------
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode.json");
    match std::fs::read_to_string(path) {
        Ok(committed) => {
            for &(name, measured) in &decode_ns {
                let pinned = committed_decode_ns(&committed, name)
                    .unwrap_or_else(|| panic!("BENCH_decode.json has no decode_ns.{name}"));
                let ratio = measured as f64 / pinned as f64;
                println!("gate {name}: {measured} ns vs committed {pinned} ns ({ratio:.3}x)");
                assert!(
                    ratio <= GATE_MAX_RATIO,
                    "{name} decode regressed to {ratio:.3}x of the committed \
                     BENCH_decode.json ({measured} ns vs {pinned} ns, limit {GATE_MAX_RATIO}x)"
                );
            }
        }
        Err(e) => println!("no committed BENCH_decode.json to gate against ({e})"),
    }

    if quick {
        println!("quick mode: skipping BENCH_decode.json");
        return;
    }

    let kv = |pairs: &[(&str, String)]| {
        pairs
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let num = |pairs: &[(&str, u64)]| {
        kv(&pairs
            .iter()
            .map(|&(k, v)| (k, v.to_string()))
            .collect::<Vec<_>>())
    };
    let flt = |pairs: &[(&str, f64)]| {
        kv(&pairs
            .iter()
            .map(|&(k, v)| (k, format!("{v:.3}")))
            .collect::<Vec<_>>())
    };
    let json = format!(
        "{{\n  \"bench\": \"t1_throughput\",\n  \"workload\": \"table1_128x128_rgb_16_tiles\",\n  \
         \"kernel_64x64_hl\": {{ \"optimized_ns\": {opt_ns}, \"reference_ns\": {ref_ns}, \
         \"samples_per_sec\": {samples_per_sec:.0}, \
         \"speedup_vs_reference\": {:.3}, \"speedup_vs_pre_pr\": {:.3} }},\n  \
         \"idwt_256x256_l3\": {{ \"idwt53_ns\": {idwt53_ns}, \"idwt97_fixed_ns\": {idwt97_ns}, \
         \"speedup_53_vs_pre_dwt\": {:.3}, \"speedup_97_vs_pre_dwt_f64\": {:.3} }},\n  \
         \"entropy_per_tile_ns\": {{ {} }},\n  \"decode_ns\": {{ {} }},\n  \
         \"decode_mb_per_s\": {{ {} }},\n  \
         \"baseline_pre_pr\": {{ \"kernel_64x64_hl_ns\": {BASELINE_KERNEL_NS}, \
         \"entropy_per_tile_ns\": {{ {} }}, \"decode_ns\": {{ {} }} }},\n  \
         \"baseline_pre_dwt\": {{ \"idwt53_ns\": {BASELINE_IDWT53_NS}, \
         \"idwt97_f64_ns\": {BASELINE_IDWT97_F64_NS}, \"decode_ns\": {{ {} }} }},\n  \
         \"entropy_speedup_vs_pre_pr\": {{ {} }},\n  \"decode_speedup_vs_pre_pr\": {{ {} }},\n  \
         \"decode_speedup_vs_pre_dwt\": {{ {} }}\n}}\n",
        ref_ns as f64 / opt_ns as f64,
        BASELINE_KERNEL_NS as f64 / opt_ns as f64,
        BASELINE_IDWT53_NS as f64 / idwt53_ns as f64,
        BASELINE_IDWT97_F64_NS as f64 / idwt97_ns as f64,
        num(&entropy_ns),
        num(&decode_ns),
        flt(&decode_mbps),
        num(&BASELINE_ENTROPY_NS),
        num(&BASELINE_DECODE_NS),
        num(&BASELINE_PRE_DWT_DECODE_NS),
        flt(&entropy_ns
            .iter()
            .zip(&BASELINE_ENTROPY_NS)
            .map(|(&(k, v), &(_, b))| (k, b as f64 / v as f64))
            .collect::<Vec<_>>()),
        flt(&decode_ns
            .iter()
            .zip(&BASELINE_DECODE_NS)
            .map(|(&(k, v), &(_, b))| (k, b as f64 / v as f64))
            .collect::<Vec<_>>()),
        flt(&decode_ns
            .iter()
            .zip(&BASELINE_PRE_DWT_DECODE_NS)
            .map(|(&(k, v), &(_, b))| (k, b as f64 / v as f64))
            .collect::<Vec<_>>()),
    );
    std::fs::write(path, &json).expect("write BENCH_decode.json");
    println!("wrote {path}");
}
