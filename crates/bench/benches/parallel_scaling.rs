//! Tile-parallel decode scaling: sequential `decode` versus
//! `decode_parallel` with 2 and 4 workers on the Table 1 workload
//! (128×128, 16 tiles, 3 components), in both modes.
//!
//! This is the native-execution counterpart of the paper's model
//! versions 2–5 (1, 2 or 4 decoder pipelines): the models predict the
//! scaling in simulated time, this bench measures it on the host. On a
//! single-core host the parallel backend degrades gracefully to
//! roughly sequential speed (the work queue just serialises).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jpeg2000::codec::decode;
use jpeg2000::parallel::decode_parallel;
use jpeg2000_models::{workload::workload, ModeSel};

fn bench_parallel_scaling(c: &mut Criterion) {
    for mode in ModeSel::ALL {
        let w = workload(mode);
        let bytes = &*w.codestream;
        let tiles = w.decoder.num_tiles() as u64;
        let mut group = c.benchmark_group(format!("parallel_scaling_{mode}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(tiles));
        group.bench_function("sequential", |b| {
            b.iter(|| decode(bytes).expect("decode").image)
        });
        for workers in [2usize, 4] {
            group.bench_function(format!("{workers}_workers"), |b| {
                b.iter(|| decode_parallel(bytes, workers).expect("decode").image)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
