//! Table 2: the full synthesis pipeline — inlining pass, three-address
//! VHDL emission and Virtex-4 estimation for both IDWT designs — plus
//! each pass in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use fossy::emit::vhdl;
use fossy::estimate::{estimate_entity, Virtex4};
use fossy::idwt;
use fossy::passes::inline_entity;
use jpeg2000_models::synth::table2;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_synth");
    group.bench_function("full_table2", |b| {
        b.iter(|| {
            let rows = table2();
            assert_eq!(rows.len(), 2);
            rows
        })
    });
    let input53 = idwt::idwt53_fossy_input();
    let input97 = idwt::idwt97_fossy_input();
    group.bench_function("inline_idwt53", |b| b.iter(|| inline_entity(&input53)));
    group.bench_function("inline_idwt97", |b| b.iter(|| inline_entity(&input97)));
    let inlined = inline_entity(&input97);
    group.bench_function("emit_vhdl_three_address_idwt97", |b| {
        b.iter(|| vhdl::emit_entity_styled(&inlined, vhdl::Style::ThreeAddress))
    });
    let device = Virtex4::lx25();
    group.bench_function("estimate_idwt97", |b| {
        b.iter(|| estimate_entity(&inlined, &device))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
