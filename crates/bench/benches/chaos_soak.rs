//! Chaos-soak benchmark: sustained goodput of the network decode
//! stack when the loopback path misbehaves. The same multi-client
//! Table-1 mix runs three times —
//!
//! * **direct** — straight to the `DecodeServer`, the `net_throughput`
//!   baseline;
//! * **clean proxy** — through a fault-free `ChaosProxy`, isolating
//!   the proxy's forwarding cost;
//! * **lossy proxy** — through the lossy profile (fragmentation,
//!   stalls, rare corruption/drops), measuring goodput when requests
//!   can fail and clients retry behind a circuit breaker.
//!
//! Every successful strict decode is asserted bit-exact and the
//! server/service accounting identities are checked per run. Results
//! go to `BENCH_chaos.json`; `--test` or `BENCH_QUICK=1` runs a
//! reduced smoke pass and skips the JSON write.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jpeg2000::chaos::{ChaosConfig, ChaosProxy};
use jpeg2000::net::{CircuitBreaker, Client, NetError, NetRetryPolicy};
use jpeg2000::server::{DecodeServer, ServerConfig};
use jpeg2000::service::{DecodeService, Request, ServiceConfig};
use jpeg2000_models::workload::workload;
use jpeg2000_models::ModeSel;

const CLIENTS: usize = 3;
const SEED: u64 = 0x50AB_5EED;

struct RunResult {
    ok: u64,
    failed: u64,
    rate: f64,
}

/// Drives `per_client` guarded requests from each of CLIENTS threads
/// at `addr`, returning goodput (successful decodes per second).
fn drive(addr: SocketAddr, per_client: usize) -> RunResult {
    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (ok, failed) = (&ok, &failed);
            let (lossless, lossy) = (&lossless, &lossy);
            scope.spawn(move || {
                let policy = NetRetryPolicy {
                    max_retries: 20,
                    backoff_base: Duration::from_millis(1),
                    jitter_seed: SEED ^ c as u64,
                    ..NetRetryPolicy::default()
                };
                let mut breaker = CircuitBreaker::new(4, Duration::from_millis(50));
                let mut client = Client::connect(addr)
                    .expect("connect")
                    .op_deadline(Duration::from_secs(5));
                for i in 0..per_client {
                    let wl = if (c + i) % 2 == 0 { lossless } else { lossy };
                    match client.decode_retry_guarded(
                        &Request::strict(),
                        &wl.codestream,
                        &policy,
                        &mut breaker,
                    ) {
                        Ok(resp) => {
                            assert_eq!(
                                resp.image, *wl.reference,
                                "chaos soak must never yield a wrong image"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(NetError::CircuitOpen) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(60));
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    RunResult {
        ok: ok.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        rate: ok.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64(),
    }
}

/// One full server lifecycle around `f`, asserting the accounting
/// identities on teardown.
fn with_server<F: FnOnce(SocketAddr) -> RunResult>(f: F) -> RunResult {
    let service = Arc::new(DecodeService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let server = DecodeServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            handler_threads: CLIENTS + 1,
            poll_interval: Duration::from_millis(10),
            frame_deadline: Some(Duration::from_secs(2)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let result = f(server.local_addr());
    let server_stats = server.shutdown();
    assert!(server_stats.reconciles(), "{server_stats:?}");
    let svc_stats = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
    assert!(svc_stats.reconciles(), "{svc_stats:?}");
    assert_eq!(
        svc_stats.submitted + svc_stats.coalesced,
        server_stats.ok + server_stats.expired + server_stats.failed + server_stats.internal,
        "one service submission or coalesce per admitted request"
    );
    result
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test") || std::env::var_os("BENCH_QUICK").is_some();
    let per_client = if quick { 4 } else { 30 };

    let direct = with_server(|addr| drive(addr, per_client));
    println!(
        "direct:      {:.1} ok/s ({} ok, {} failed)",
        direct.rate, direct.ok, direct.failed
    );
    assert_eq!(direct.failed, 0, "a perfect path must not fail requests");

    let clean = with_server(|addr| {
        let proxy = ChaosProxy::start(addr, ChaosConfig::clean(SEED)).expect("proxy");
        let r = drive(proxy.local_addr(), per_client);
        let stats = proxy.shutdown();
        assert_eq!(
            stats.upstream.drops + stats.downstream.drops + stats.blackholed,
            0,
            "clean schedule injects nothing"
        );
        r
    });
    println!(
        "clean proxy: {:.1} ok/s ({} ok, {} failed)",
        clean.rate, clean.ok, clean.failed
    );

    let lossy = with_server(|addr| {
        let proxy = ChaosProxy::start(addr, ChaosConfig::lossy(SEED)).expect("proxy");
        let r = drive(proxy.local_addr(), per_client);
        proxy.shutdown();
        r
    });
    println!(
        "lossy proxy: {:.1} ok/s ({} ok, {} failed)",
        lossy.rate, lossy.ok, lossy.failed
    );

    if quick {
        println!("quick mode: skipping BENCH_chaos.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"chaos_soak\",\n  \
         \"workload\": \"table1_128x128_rgb_16_tiles_x2_modes\",\n  \
         \"clients\": {CLIENTS},\n  \"requests_per_client\": {per_client},\n  \
         \"seed\": {SEED},\n  \
         \"goodput_ok_per_s\": {{ \"direct\": {:.3}, \"clean_proxy\": {:.3}, \
         \"lossy_proxy\": {:.3} }},\n  \
         \"lossy_outcomes\": {{ \"ok\": {}, \"failed\": {} }}\n}}\n",
        direct.rate, clean.rate, lossy.rate, lossy.ok, lossy.failed,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, &json).expect("write BENCH_chaos.json");
    println!("wrote {path}");
}
