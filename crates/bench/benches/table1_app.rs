//! Table 1, Application-Layer rows: wall-clock cost of simulating each
//! model version (the *simulated* times are printed by the
//! `table1_simulation` binary; this bench tracks the simulator itself).

use criterion::{criterion_group, criterion_main, Criterion};
use jpeg2000_models::{run_version, ModeSel, VersionId};

fn bench_app_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_app");
    group.sample_size(10);
    for version in [
        VersionId::V1,
        VersionId::V2,
        VersionId::V3,
        VersionId::V4,
        VersionId::V5,
    ] {
        for mode in ModeSel::ALL {
            group.bench_function(format!("v{version}_{mode}"), |b| {
                b.iter(|| {
                    let r = run_version(version, mode).expect("simulation");
                    assert!(r.functional_ok);
                    r.decode_time
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_app_versions);
criterion_main!(benches);
