//! Sustained-throughput benchmark for the persistent decode service:
//! N concurrent synthetic clients hammer the Table-1 streams and the
//! three serving paths are isolated by cache configuration —
//!
//! * **cold** — both cache levels disabled: every request is a full
//!   parse + decode, the per-call cost `decode()` pays today;
//! * **header-cached** — header cache only: repeat streams skip the
//!   marker parse and tile segmentation but still decode pixels;
//! * **image-cached** — both levels on: repeat requests are served
//!   from memory.
//!
//! A fourth section stampedes `STAMPEDE_CLIENTS` concurrent clients
//! onto **one** hot stream with the image cache disabled: without
//! single-flight coalescing every request would cost a full decode;
//! with it, concurrent identical requests share one. The measured
//! dedup factor (requests per cold decode) is asserted ≥ K/2 in full
//! runs and ≥ 2 in quick mode.
//!
//! Results go to `BENCH_serve.json` at the repository root. `--test`
//! (how `cargo test --benches` invokes bench targets) or
//! `BENCH_QUICK=1` run a reduced smoke pass and skip the JSON write.
//! The image-cached path must sustain ≥ 10× the cold request rate on
//! repeat streams — the tentpole's acceptance criterion — and that is
//! asserted here, in quick mode too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use jpeg2000::service::{DecodeService, Request, RequestKind, ServiceConfig};
use jpeg2000_models::workload::workload;
use jpeg2000_models::ModeSel;

const CLIENTS: usize = 4;
const STAMPEDE_CLIENTS: usize = 8;

/// Stampede: every client hammers the same stream with identical
/// strict requests, image cache off, so each served request is either
/// a real decode (an image-cache miss) or a coalesced ride on one.
/// Returns (req/s, cold_decodes, coalesced).
fn stampede(hot: &[u8], per_client: usize) -> (f64, u64, u64) {
    let svc = DecodeService::new(ServiceConfig {
        workers: 2,
        queue_capacity: STAMPEDE_CLIENTS,
        header_cache_bytes: 8 << 20,
        image_cache_bytes: 0,
        metrics: None,
    });
    let barrier = Barrier::new(STAMPEDE_CLIENTS);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..STAMPEDE_CLIENTS {
            let (svc, barrier) = (&svc, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..per_client {
                    let ticket = svc
                        .submit_wait(
                            hot,
                            Request {
                                kind: RequestKind::Strict,
                                timeout: None,
                            },
                            std::time::Duration::from_secs(60),
                        )
                        .expect("stampede submission");
                    ticket.wait().expect("stampede decode");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = svc.shutdown();
    assert!(stats.reconciles(), "stampede accounting must reconcile");
    assert_eq!(stats.image_hits, 0, "image cache is disabled");
    let requests = (STAMPEDE_CLIENTS * per_client) as u64;
    assert_eq!(stats.submitted + stats.coalesced, requests);
    (
        requests as f64 / elapsed,
        stats.image_misses,
        stats.coalesced,
    )
}

/// Drives `CLIENTS` threads round-robin over the streams for
/// `per_client` requests each; returns sustained requests/second.
fn sustained_req_per_s(svc: &DecodeService, streams: &[&[u8]], per_client: usize) -> f64 {
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let done = &done;
            scope.spawn(move || {
                for i in 0..per_client {
                    let bytes = streams[(c + i) % streams.len()];
                    let kind = match i % 3 {
                        0 => RequestKind::Strict,
                        1 => RequestKind::Tolerant,
                        _ => RequestKind::Thumbnail { max_res: 0 },
                    };
                    let req = Request {
                        kind,
                        timeout: None,
                    };
                    // Block for space rather than drop: throughput, not
                    // backpressure, is what is being measured.
                    let ticket = svc
                        .submit_wait(bytes, req, std::time::Duration::from_secs(60))
                        .expect("bench submission");
                    ticket.wait().expect("bench decode");
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let reqs = done.load(Ordering::Relaxed) as f64;
    reqs / t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test") || std::env::var_os("BENCH_QUICK").is_some();
    let per_client = if quick { 6 } else { 40 };

    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let streams: Vec<&[u8]> = vec![&lossless.codestream, &lossy.codestream];

    let configs: [(&str, usize, usize); 3] = [
        ("cold", 0, 0),
        ("header_cached", 8 << 20, 0),
        ("image_cached", 8 << 20, 32 << 20),
    ];
    let mut rates = Vec::new();
    for (name, header_bytes, image_bytes) in configs {
        let svc = DecodeService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 2 * CLIENTS,
            header_cache_bytes: header_bytes,
            image_cache_bytes: image_bytes,
            metrics: None,
        });
        // Warm the caches (a no-op for the cold config) so the timed
        // window measures the steady state of each path.
        for bytes in &streams {
            for kind in [
                RequestKind::Strict,
                RequestKind::Tolerant,
                RequestKind::Thumbnail { max_res: 0 },
            ] {
                svc.decode(
                    *bytes,
                    Request {
                        kind,
                        timeout: None,
                    },
                )
                .expect("warmup decode");
            }
        }
        let rate = sustained_req_per_s(&svc, &streams, per_client);
        let stats = svc.shutdown();
        assert!(stats.reconciles(), "bench accounting must reconcile");
        println!(
            "{name}: {rate:.1} req/s  (header hit/miss {}/{}, image hit/miss {}/{})",
            stats.header_hits, stats.header_misses, stats.image_hits, stats.image_misses
        );
        rates.push((name, rate));
    }

    let cold = rates[0].1;
    let header = rates[1].1;
    let image = rates[2].1;
    println!(
        "speedups vs cold: header-cached {:.2}x, image-cached {:.2}x",
        header / cold,
        image / cold
    );
    assert!(
        image >= 10.0 * cold,
        "image-cached path must sustain >= 10x the cold rate on repeat \
         streams (got {:.1} vs {:.1} req/s)",
        image,
        cold
    );

    // Single-flight stampede: K clients, one hot stream, no image
    // cache. The dedup factor (requests per cold decode) is what
    // coalescing buys — a non-coalescing service scores exactly 1.
    let (st_rate, st_misses, st_coalesced) = stampede(&lossless.codestream, per_client);
    let st_requests = (STAMPEDE_CLIENTS * per_client) as u64;
    let dedup = st_requests as f64 / st_misses.max(1) as f64;
    println!(
        "stampede: {st_rate:.1} req/s  ({st_requests} requests -> {st_misses} cold decodes, \
         coalesced={st_coalesced}, dedup {dedup:.1}x)"
    );
    let floor = if quick {
        2
    } else {
        (STAMPEDE_CLIENTS / 2) as u64
    };
    assert!(
        st_misses * floor <= st_requests,
        "coalescing must cut cold decodes by >= {floor}x under a \
         {STAMPEDE_CLIENTS}-client stampede (got {st_misses} decodes \
         for {st_requests} requests)"
    );

    if quick {
        println!("quick mode: skipping BENCH_serve.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \
         \"workload\": \"table1_128x128_rgb_16_tiles_x2_modes\",\n  \
         \"clients\": {CLIENTS},\n  \"requests_per_client\": {per_client},\n  \
         \"sustained_req_per_s\": {{ \"cold\": {cold:.3}, \
         \"header_cached\": {header:.3}, \"image_cached\": {image:.3} }},\n  \
         \"speedup_vs_cold\": {{ \"header_cached\": {:.3}, \"image_cached\": {:.3} }},\n  \
         \"stampede\": {{ \"clients\": {STAMPEDE_CLIENTS}, \"requests\": {st_requests}, \
         \"req_per_s\": {st_rate:.3}, \"cold_decodes\": {st_misses}, \
         \"coalesced\": {st_coalesced}, \"dedup_factor\": {dedup:.3} }}\n}}\n",
        header / cold,
        image / cold,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
