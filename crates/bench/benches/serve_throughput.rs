//! Sustained-throughput benchmark for the persistent decode service:
//! N concurrent synthetic clients hammer the Table-1 streams and the
//! three serving paths are isolated by cache configuration —
//!
//! * **cold** — both cache levels disabled: every request is a full
//!   parse + decode, the per-call cost `decode()` pays today;
//! * **header-cached** — header cache only: repeat streams skip the
//!   marker parse and tile segmentation but still decode pixels;
//! * **image-cached** — both levels on: repeat requests are served
//!   from memory.
//!
//! Results go to `BENCH_serve.json` at the repository root. `--test`
//! (how `cargo test --benches` invokes bench targets) or
//! `BENCH_QUICK=1` run a reduced smoke pass and skip the JSON write.
//! The image-cached path must sustain ≥ 10× the cold request rate on
//! repeat streams — the tentpole's acceptance criterion — and that is
//! asserted here, in quick mode too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use jpeg2000::service::{DecodeService, Request, RequestKind, ServiceConfig};
use jpeg2000_models::workload::workload;
use jpeg2000_models::ModeSel;

const CLIENTS: usize = 4;

/// Drives `CLIENTS` threads round-robin over the streams for
/// `per_client` requests each; returns sustained requests/second.
fn sustained_req_per_s(svc: &DecodeService, streams: &[&[u8]], per_client: usize) -> f64 {
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let done = &done;
            scope.spawn(move || {
                for i in 0..per_client {
                    let bytes = streams[(c + i) % streams.len()];
                    let kind = match i % 3 {
                        0 => RequestKind::Strict,
                        1 => RequestKind::Tolerant,
                        _ => RequestKind::Thumbnail { max_res: 0 },
                    };
                    let req = Request {
                        kind,
                        timeout: None,
                    };
                    // Block for space rather than drop: throughput, not
                    // backpressure, is what is being measured.
                    let ticket = svc
                        .submit_wait(bytes, req, std::time::Duration::from_secs(60))
                        .expect("bench submission");
                    ticket.wait().expect("bench decode");
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let reqs = done.load(Ordering::Relaxed) as f64;
    reqs / t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test") || std::env::var_os("BENCH_QUICK").is_some();
    let per_client = if quick { 6 } else { 40 };

    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let streams: Vec<&[u8]> = vec![&lossless.codestream, &lossy.codestream];

    let configs: [(&str, usize, usize); 3] = [
        ("cold", 0, 0),
        ("header_cached", 8 << 20, 0),
        ("image_cached", 8 << 20, 32 << 20),
    ];
    let mut rates = Vec::new();
    for (name, header_bytes, image_bytes) in configs {
        let svc = DecodeService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 2 * CLIENTS,
            header_cache_bytes: header_bytes,
            image_cache_bytes: image_bytes,
            metrics: None,
        });
        // Warm the caches (a no-op for the cold config) so the timed
        // window measures the steady state of each path.
        for bytes in &streams {
            for kind in [
                RequestKind::Strict,
                RequestKind::Tolerant,
                RequestKind::Thumbnail { max_res: 0 },
            ] {
                svc.decode(
                    *bytes,
                    Request {
                        kind,
                        timeout: None,
                    },
                )
                .expect("warmup decode");
            }
        }
        let rate = sustained_req_per_s(&svc, &streams, per_client);
        let stats = svc.shutdown();
        assert!(stats.reconciles(), "bench accounting must reconcile");
        println!(
            "{name}: {rate:.1} req/s  (header hit/miss {}/{}, image hit/miss {}/{})",
            stats.header_hits, stats.header_misses, stats.image_hits, stats.image_misses
        );
        rates.push((name, rate));
    }

    let cold = rates[0].1;
    let header = rates[1].1;
    let image = rates[2].1;
    println!(
        "speedups vs cold: header-cached {:.2}x, image-cached {:.2}x",
        header / cold,
        image / cold
    );
    assert!(
        image >= 10.0 * cold,
        "image-cached path must sustain >= 10x the cold rate on repeat \
         streams (got {:.1} vs {:.1} req/s)",
        image,
        cold
    );

    if quick {
        println!("quick mode: skipping BENCH_serve.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \
         \"workload\": \"table1_128x128_rgb_16_tiles_x2_modes\",\n  \
         \"clients\": {CLIENTS},\n  \"requests_per_client\": {per_client},\n  \
         \"sustained_req_per_s\": {{ \"cold\": {cold:.3}, \
         \"header_cached\": {header:.3}, \"image_cached\": {image:.3} }},\n  \
         \"speedup_vs_cold\": {{ \"header_cached\": {:.3}, \"image_cached\": {:.3} }}\n}}\n",
        header / cold,
        image / cold,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
