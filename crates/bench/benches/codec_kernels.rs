//! The codec's hot kernels in isolation: the MQ coder, Tier-1 bit-plane
//! coding and the wavelet lifting — the pieces whose software cost
//! motivates the paper's hardware/software partitioning.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jpeg2000::dwt::{fdwt53_2d, fdwt97_2d, fixed_from_real, idwt53_2d, idwt97_2d_fixed};
use jpeg2000::mq::{MqContext, MqDecoder, MqEncoder};
use jpeg2000::t1::{decode_block, encode_block};
use jpeg2000::tile::BandKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_mq(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let bits: Vec<bool> = (0..100_000).map(|_| rng.gen_bool(0.2)).collect();
    let mut group = c.benchmark_group("mq_coder");
    group.throughput(Throughput::Elements(bits.len() as u64));
    group.bench_function("encode_100k_bits", |b| {
        b.iter(|| {
            let mut cx = MqContext::default();
            let mut enc = MqEncoder::new();
            for &bit in &bits {
                enc.encode(&mut cx, bit);
            }
            enc.finish()
        })
    });
    let bytes = {
        let mut cx = MqContext::default();
        let mut enc = MqEncoder::new();
        for &bit in &bits {
            enc.encode(&mut cx, bit);
        }
        enc.finish()
    };
    group.bench_function("decode_100k_bits", |b| {
        b.iter(|| {
            let mut cx = MqContext::default();
            let mut dec = MqDecoder::new(&bytes);
            let mut ones = 0u32;
            for _ in 0..bits.len() {
                ones += dec.decode(&mut cx) as u32;
            }
            ones
        })
    });
    group.finish();
}

fn bench_t1(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let (w, h) = (64, 64);
    let mags: Vec<u32> = (0..w * h)
        .map(|_| {
            if rng.gen_bool(0.7) {
                0
            } else {
                rng.gen_range(1..512)
            }
        })
        .collect();
    let negative: Vec<bool> = (0..w * h).map(|_| rng.gen_bool(0.5)).collect();
    let mut group = c.benchmark_group("t1_codeblock_64x64");
    group.throughput(Throughput::Elements((w * h) as u64));
    group.bench_function("encode", |b| {
        b.iter(|| encode_block(&mags, &negative, w, h, BandKind::Hl))
    });
    let enc = encode_block(&mags, &negative, w, h, BandKind::Hl);
    group.bench_function("decode", |b| {
        b.iter(|| decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes))
    });
    group.finish();
}

fn bench_dwt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 256;
    let tile_i: Vec<i32> = (0..n * n).map(|_| rng.gen_range(-128..128)).collect();
    let tile_f: Vec<f64> = tile_i.iter().map(|&v| v as f64).collect();
    let mut group = c.benchmark_group("dwt_256x256_l3");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("fdwt53", |b| {
        b.iter(|| {
            let mut buf = tile_i.clone();
            fdwt53_2d(&mut buf, n, n, 3);
            buf
        })
    });
    group.bench_function("idwt53", |b| {
        let mut fwd = tile_i.clone();
        fdwt53_2d(&mut fwd, n, n, 3);
        b.iter(|| {
            let mut buf = fwd.clone();
            idwt53_2d(&mut buf, n, n, 3);
            buf
        })
    });
    group.bench_function("fdwt97", |b| {
        b.iter(|| {
            let mut buf = tile_f.clone();
            fdwt97_2d(&mut buf, n, n, 3);
            buf
        })
    });
    group.bench_function("idwt97_fixed", |b| {
        let mut fwd = tile_f.clone();
        fdwt97_2d(&mut fwd, n, n, 3);
        let fixed: Vec<i32> = fwd.iter().map(|&v| fixed_from_real(v)).collect();
        b.iter(|| {
            let mut buf = fixed.clone();
            idwt97_2d_fixed(&mut buf, n, n, 3);
            buf
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mq, bench_t1, bench_dwt);
criterion_main!(benches);
