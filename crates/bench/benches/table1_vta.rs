//! Table 1, Virtual-Target-Architecture rows: simulating the refined
//! models 6a/6b/7a/7b (bus transfers, RMI, block-RAM charging included).

use criterion::{criterion_group, criterion_main, Criterion};
use jpeg2000_models::{run_version, ModeSel, VersionId};

fn bench_vta_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_vta");
    group.sample_size(10);
    for version in [
        VersionId::V6a,
        VersionId::V6b,
        VersionId::V7a,
        VersionId::V7b,
    ] {
        for mode in ModeSel::ALL {
            group.bench_function(format!("v{version}_{mode}"), |b| {
                b.iter(|| {
                    let r = run_version(version, mode).expect("simulation");
                    assert!(r.functional_ok);
                    (r.decode_time, r.idwt_time)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vta_versions);
criterion_main!(benches);
