//! Figure 4: generating the complete implementation model (VHDL + C +
//! MHS/MSS) for the case-study platform.

use criterion::{criterion_group, criterion_main, Criterion};
use fossy::emit::platform::{emit_mhs, emit_mss};
use jpeg2000_models::synth::synthesis_flow;
use osss_vta::PlatformDesc;

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_synthesis_flow");
    group.bench_function("full_flow", |b| {
        b.iter(|| {
            let a = synthesis_flow();
            assert_eq!(a.vhdl.len(), 2);
            a
        })
    });
    let platform = PlatformDesc::ml401_case_study();
    group.bench_function("emit_mhs", |b| b.iter(|| emit_mhs(&platform)));
    group.bench_function("emit_mss", |b| b.iter(|| emit_mss(&platform)));
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
