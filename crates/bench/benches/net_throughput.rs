//! Sustained-throughput benchmark for the network decode server: N
//! concurrent TCP clients hammer the Table-1 streams over loopback,
//! measuring what the framed wire protocol and handler pool cost on
//! top of the in-process service —
//!
//! * **in_process** — the same request mix straight into the
//!   `DecodeService`, the baseline `serve_throughput` measures;
//! * **networked** — identical mix through `DecodeServer` + `Client`
//!   over 127.0.0.1, so the delta is framing + CRC + TCP.
//!
//! Results go to `BENCH_net.json` at the repository root. `--test`
//! (how `cargo test --benches` invokes bench targets) or
//! `BENCH_QUICK=1` run a reduced smoke pass and skip the JSON write.
//! In every mode the run asserts the server and service accounting
//! identities and that every networked strict decode is bit-exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jpeg2000::image::Image;
use jpeg2000::net::{Client, NetRetryPolicy};
use jpeg2000::server::{DecodeServer, ServerConfig};
use jpeg2000::service::{DecodeService, Request, RequestKind, ServiceConfig};
use jpeg2000_models::workload::workload;
use jpeg2000_models::ModeSel;

const CLIENTS: usize = 4;

fn request_for(i: usize) -> Request {
    let kind = match i % 3 {
        0 => RequestKind::Strict,
        1 => RequestKind::Tolerant,
        _ => RequestKind::Thumbnail { max_res: 0 },
    };
    Request {
        kind,
        timeout: None,
    }
}

fn service() -> Arc<DecodeService> {
    Arc::new(DecodeService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 2 * CLIENTS,
        ..ServiceConfig::default()
    }))
}

/// In-process baseline: requests/second straight into the service.
fn in_process_rate(svc: &DecodeService, streams: &[&[u8]], per_client: usize) -> f64 {
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let done = &done;
            scope.spawn(move || {
                for i in 0..per_client {
                    let bytes = streams[(c + i) % streams.len()];
                    let ticket = svc
                        .submit_wait(bytes, request_for(i), Duration::from_secs(60))
                        .expect("bench submission");
                    ticket.wait().expect("bench decode");
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

/// Networked rate: the same mix through TCP clients with
/// retry-on-busy, asserting strict responses bit-exact against the
/// pinned references.
fn networked_rate(
    server: &DecodeServer,
    streams: &[&[u8]],
    references: &[&Image],
    per_client: usize,
) -> f64 {
    let addr = server.local_addr();
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let done = &done;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let policy = NetRetryPolicy {
                    max_retries: 100,
                    jitter_seed: c as u64,
                    ..NetRetryPolicy::default()
                };
                for i in 0..per_client {
                    let si = (c + i) % streams.len();
                    let req = request_for(i);
                    let resp = client
                        .decode_retry(&req, streams[si], &policy)
                        .expect("networked decode");
                    if req.kind == RequestKind::Strict {
                        assert_eq!(
                            resp.image, *references[si],
                            "networked strict decode must be bit-exact"
                        );
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test") || std::env::var_os("BENCH_QUICK").is_some();
    let per_client = if quick { 6 } else { 40 };

    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let streams: Vec<&[u8]> = vec![&lossless.codestream, &lossy.codestream];
    let references: Vec<&Image> = vec![&lossless.reference, &lossy.reference];

    let svc = service();
    let in_process = in_process_rate(&svc, &streams, per_client);
    let stats = Arc::try_unwrap(svc).ok().expect("sole owner").shutdown();
    assert!(stats.reconciles(), "in-process accounting must reconcile");
    println!("in_process: {in_process:.1} req/s");

    let svc = service();
    let server = DecodeServer::start(
        Arc::clone(&svc),
        "127.0.0.1:0",
        ServerConfig {
            handler_threads: CLIENTS,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let networked = networked_rate(&server, &streams, &references, per_client);
    let server_stats = server.shutdown();
    assert!(
        server_stats.reconciles(),
        "server accounting must reconcile: {server_stats:?}"
    );
    let svc_stats = Arc::try_unwrap(svc).ok().expect("sole owner").shutdown();
    assert!(svc_stats.reconciles(), "service accounting must reconcile");
    assert_eq!(
        svc_stats.submitted + svc_stats.coalesced,
        server_stats.ok + server_stats.expired + server_stats.failed + server_stats.internal,
        "one service submission or coalesce per admitted request"
    );
    println!(
        "networked:  {networked:.1} req/s  (busy retries {}, frames {}/{})",
        server_stats.busy, server_stats.frames_in, server_stats.frames_out
    );
    let overhead = in_process / networked;
    println!("network overhead: {overhead:.2}x vs in-process");

    if quick {
        println!("quick mode: skipping BENCH_net.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \
         \"workload\": \"table1_128x128_rgb_16_tiles_x2_modes\",\n  \
         \"clients\": {CLIENTS},\n  \"requests_per_client\": {per_client},\n  \
         \"sustained_req_per_s\": {{ \"in_process\": {in_process:.3}, \
         \"networked\": {networked:.3} }},\n  \
         \"network_overhead_factor\": {overhead:.3},\n  \
         \"busy_retries\": {},\n  \"frames_in\": {},\n  \"frames_out\": {}\n}}\n",
        server_stats.busy, server_stats.frames_in, server_stats.frames_out,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(path, &json).expect("write BENCH_net.json");
    println!("wrote {path}");
}
