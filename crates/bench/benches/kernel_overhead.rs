//! The simulation kernel's own costs: process context switches, event
//! notification fan-out and shared-object arbitration throughput — the
//! quantities that bound how large an OSSS model this kernel can carry.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use osss_core::{sched::Fcfs, SharedObject};
use osss_sim::{SimTime, Simulation};

fn bench_context_switches(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    const SWITCHES: u64 = 10_000;
    group.throughput(Throughput::Elements(SWITCHES));
    group.sample_size(10);
    group.bench_function("wait_switches_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.spawn_process("spinner", |ctx| {
                for _ in 0..SWITCHES {
                    ctx.wait(SimTime::ns(1))?;
                }
                Ok(())
            });
            sim.run().expect("run")
        })
    });
    group.bench_function("ping_pong_events_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let ping = sim.event("ping");
            let pong = sim.event("pong");
            let (ping2, pong2) = (ping.clone(), pong.clone());
            sim.spawn_process("a", move |ctx| {
                for _ in 0..SWITCHES / 2 {
                    ctx.notify(&ping2);
                    ctx.wait_event(&pong2)?;
                }
                Ok(())
            });
            sim.spawn_process("b", move |ctx| {
                for _ in 0..SWITCHES / 2 {
                    ctx.wait_event(&ping)?;
                    ctx.notify(&pong);
                }
                Ok(())
            });
            // Delta-cycle ping-pong needs headroom over the default cap.
            sim.set_max_deltas_per_step(SWITCHES * 2);
            sim.run().expect("run")
        })
    });
    group.bench_function("shared_object_calls_4x1k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let so = SharedObject::new(&mut sim, "so", 0u64, Fcfs::new());
            for i in 0..4 {
                let so = so.clone();
                sim.spawn_process(&format!("c{i}"), move |ctx| {
                    for _ in 0..1_000 {
                        so.call(ctx, |v, ctx| {
                            *v += 1;
                            ctx.wait(SimTime::ns(5))
                        })?;
                    }
                    Ok(())
                });
            }
            sim.run().expect("run");
            assert_eq!(so.inspect(|v| *v), 4_000);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_context_switches);
criterion_main!(benches);
