//! # osss-bench — benchmark harness for the paper's tables and figures
//!
//! One Criterion bench per evaluation artefact:
//!
//! | Bench | Regenerates |
//! |---|---|
//! | `table1_app` | Table 1, Application-Layer rows (versions 1–5) |
//! | `table1_vta` | Table 1, VTA rows (6a, 6b, 7a, 7b) |
//! | `table2_synth` | Table 2 (FOSSY vs reference synthesis) |
//! | `fig1_profile` | Figure 1 (per-stage decode profile) |
//! | `fig4_synthesis_flow` | Figure 4 (artefact generation) |
//! | `codec_kernels` | the codec's hot kernels (MQ, T1, DWT) |
//! | `kernel_overhead` | the simulation kernel's context-switch cost |
//!
//! Run them all with `cargo bench --workspace`; the printable tables come
//! from the `jpeg2000-models` binaries instead (`table1_simulation`,
//! `table2_synthesis`, `figure1_profile`).

use jpeg2000::codec::{encode, EncodeParams, Mode};
use jpeg2000::image::Image;

/// A small encoded workload shared by the codec kernel benches.
pub fn encoded_workload(lossless: bool, size: usize) -> (Image, Vec<u8>) {
    let image = Image::synthetic_rgb(size, size, 77);
    let mode = if lossless {
        Mode::Lossless
    } else {
        Mode::lossy_default()
    };
    let bytes = encode(
        &image,
        &EncodeParams::new(mode).tile_size(size / 2, size / 2),
    )
    .expect("encode bench workload");
    (image, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builder_works() {
        let (img, bytes) = encoded_workload(true, 32);
        assert_eq!(img.width, 32);
        assert!(!bytes.is_empty());
    }
}
