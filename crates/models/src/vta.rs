//! Virtual-Target-Architecture model versions 6a, 6b, 7a and 7b.
//!
//! The pipelined Application-Layer structure (versions 3 and 5) is mapped
//! onto architecture resources:
//!
//! * software tasks → [`SoftwareProcessor`]s (one per task),
//! * the HW/SW shared object behind the **OPB bus** via RMI — tile
//!   payloads are serialised into bus words,
//! * the IDWT-params object behind dedicated **point-to-point** links,
//! * the IDWT blocks' data links to the HW/SW object on the bus (6a/7a)
//!   or on point-to-point channels (6b/7b),
//! * the shared object's tile storage in explicit **block RAM**, whose
//!   per-access cycles the filter blocks pay during the transform.

use std::sync::Arc;

use bytes::BytesMut;
use parking_lot::Mutex;

use jpeg2000::codec::{StagedDecoder, TileSamples, TileWavelet};
use osss_core::{sched::Fcfs, SharedObject, SwTask};
use osss_sim::{SimError, SimTime, Simulation};
use osss_vta::{
    BusConfig, Channel, ChannelStats, FaultConfig, FaultStats, FaultyChannel, OpbBus, P2pChannel,
    ReliableRmi, RetryPolicy, RmiError, RmiService, RmiStats, Serialise, SoftwareProcessor,
    XilinxBlockRam,
};

use crate::app::{finish, HwSwState, Metrics, Outputs, ParamsState};
use crate::timing::{
    hw_idwt_time, hw_iq_time, platform_clock, sw_stage_times, vta_idwt_mem_accesses,
    FILTER_CMD_WORDS, NUM_TILES, PARAM_WORDS, TILE_WORDS,
};
use crate::workload::workload;
use crate::{ModeSel, VersionId, VersionResult};

/// A payload whose only role is its serialised size in words — RMI costs
/// depend on the declared interface width, and moving real megabytes
/// through the byte buffers would change nothing but heat.
struct Words(usize);

impl Serialise for Words {
    fn serialised_bytes(&self) -> usize {
        self.0 * 4
    }
    fn write(&self, out: &mut BytesMut) {
        out.resize(out.len() + self.serialised_bytes(), 0);
    }
}

/// Architecture choices distinguishing the four VTA models.
pub(crate) struct VtaConfig {
    n_sw_tasks: usize,
    filter_links_p2p: bool,
    version: VersionId,
}

impl VtaConfig {
    /// An exploration point for the scaling ablation: `n` software tasks
    /// on `n` processors, filter links on the bus or on P2P channels.
    pub(crate) fn scaling(n: usize, p2p: bool) -> Self {
        VtaConfig {
            n_sw_tasks: n,
            filter_links_p2p: p2p,
            version: if p2p { VersionId::V7b } else { VersionId::V7a },
        }
    }

    pub(crate) fn v6a() -> Self {
        VtaConfig {
            n_sw_tasks: 1,
            filter_links_p2p: false,
            version: VersionId::V6a,
        }
    }
    pub(crate) fn v6b() -> Self {
        VtaConfig {
            n_sw_tasks: 1,
            filter_links_p2p: true,
            version: VersionId::V6b,
        }
    }
    pub(crate) fn v7a() -> Self {
        VtaConfig {
            n_sw_tasks: 4,
            filter_links_p2p: false,
            version: VersionId::V7a,
        }
    }
    pub(crate) fn v7b() -> Self {
        VtaConfig {
            n_sw_tasks: 4,
            filter_links_p2p: true,
            version: VersionId::V7b,
        }
    }
}

pub(crate) fn run_vta(
    mode: ModeSel,
    cfg: VtaConfig,
    metrics: Metrics,
) -> Result<VersionResult, SimError> {
    let w = workload(mode);
    let t = sw_stage_times(mode);
    let (hw_iq, hw_idwt) = (hw_iq_time(mode), hw_idwt_time(mode));
    let clk = platform_clock();
    let mut sim = Simulation::new();
    if metrics.is_observed() {
        sim.enable_sched_probe();
    }
    let outputs = Outputs::new(NUM_TILES);

    // Architecture resources.
    let bus = Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
    let hwsw = SharedObject::new(&mut sim, "hwsw_so", HwSwState::new(2), Fcfs::new());
    let params = SharedObject::new(
        &mut sim,
        "idwt_params_so",
        ParamsState::default(),
        Fcfs::new(),
    );
    let bram = XilinxBlockRam::<i16>::new(&mut sim, "tile_bram", 2 * 65_536, clk);

    // RMI bindings. Software side always crosses the OPB bus.
    let sw_rmi = RmiService::new(hwsw.clone(), Arc::clone(&bus) as Arc<dyn Channel>);
    // IDWT blocks: bus in the *a* variants, dedicated links in *b*.
    let filter_channel: Arc<dyn Channel> = if cfg.filter_links_p2p {
        Arc::new(P2pChannel::new(&mut sim, "link_idwt_data", clk))
    } else {
        Arc::clone(&bus) as Arc<dyn Channel>
    };
    let filter_rmi = RmiService::new(hwsw.clone(), Arc::clone(&filter_channel));
    // Params object always sits behind point-to-point links.
    let params_link = Arc::new(P2pChannel::new(&mut sim, "link_idwt_params", clk));
    let params_rmi = RmiService::new(params.clone(), Arc::clone(&params_link) as Arc<dyn Channel>);

    // Software tasks, each mapped onto its own processor (the paper's
    // version 7 has "three more processors" competing for the bus).
    let mut cpus = Vec::with_capacity(cfg.n_sw_tasks);
    for k in 0..cfg.n_sw_tasks {
        let cpu = SoftwareProcessor::new(&mut sim, &format!("ppc405_{k}"), clk);
        let dec = Arc::clone(&w.decoder);
        let o2 = outputs.clone();
        let m2 = metrics.clone();
        let rmi = sw_rmi.clone();
        let n = cfg.n_sw_tasks;
        let env = cpu.env(&format!("sw_task{k}"));
        cpus.push(cpu);
        SwTask::spawn_with_env(&mut sim, &format!("sw_task{k}"), env, move |env, ctx| {
            for i in (k..NUM_TILES).step_by(n) {
                let coeffs = env.eet(ctx, t.arith, || {
                    dec.entropy_decode_tile(i).expect("entropy decode")
                })?;
                // Serialised tile transfer over the bus, then the guarded
                // store into the object's bounded buffer.
                rmi.invoke_guarded(
                    ctx,
                    &Words(TILE_WORDS),
                    &Words(0),
                    |s| s.pending.len() < s.capacity,
                    |s, _| {
                        s.pending.push_back((i, coeffs));
                        Ok(())
                    },
                )?;
                m2.credit(ctx.now(), -1);
            }
            for i in (k..NUM_TILES).step_by(n) {
                let samples = rmi.invoke_guarded(
                    ctx,
                    &Words(1),
                    &Words(TILE_WORDS),
                    move |s| s.results.contains_key(&i),
                    move |s, _| Ok(s.results.remove(&i).expect("guard held")),
                )?;
                m2.credit(ctx.now(), 1);
                let samples = env.eet(ctx, t.ict, || dec.inverse_mct_tile(samples))?;
                let samples = env.eet(ctx, t.dc, || dec.dc_unshift_tile(samples))?;
                o2.place(i, samples);
                m2.tile_done(ctx.now());
            }
            Ok(())
        });
    }

    // IDWT2D control block.
    {
        let dec = Arc::clone(&w.decoder);
        let ctrl_rmi = filter_rmi.clone();
        let params_rmi = params_rmi.clone();
        let m2 = metrics.clone();
        sim.spawn_process("idwt2d_ctrl", move |ctx| loop {
            let i = ctrl_rmi.invoke_guarded(
                ctx,
                &Words(FILTER_CMD_WORDS),
                &Words(FILTER_CMD_WORDS),
                |s| !s.pending.is_empty(),
                |s, ctx| {
                    let (i, coeffs) = s.pending.pop_front().expect("guard held");
                    let wavelet = dec.dequantize_tile(&coeffs);
                    ctx.wait(hw_iq)?;
                    s.wavelets.insert(i, wavelet);
                    Ok(i)
                },
            )?;
            let t0 = ctx.now();
            params_rmi.invoke(ctx, &Words(PARAM_WORDS), &Words(0), |p, _| {
                p.request = Some(i);
                Ok(())
            })?;
            params_rmi.invoke_guarded(
                ctx,
                &Words(PARAM_WORDS),
                &Words(PARAM_WORDS),
                move |p| p.response == Some(i),
                |p, _| {
                    p.response = None;
                    Ok(())
                },
            )?;
            m2.idwt_span(t0, ctx.now());
        });
    }

    // Filter blocks with explicit-memory traffic.
    let (mem_reads, mem_writes) = vta_idwt_mem_accesses(mode);
    for (name, serves) in [("idwt53", ModeSel::Lossless), ("idwt97", ModeSel::Lossy)] {
        let dec = Arc::clone(&w.decoder);
        let filter_rmi = filter_rmi.clone();
        let params_rmi = params_rmi.clone();
        let bram = bram.clone();
        let active = serves == mode;
        sim.spawn_process(name, move |ctx| loop {
            if !active {
                return Ok(());
            }
            let i = params_rmi.invoke_guarded(
                ctx,
                &Words(PARAM_WORDS),
                &Words(PARAM_WORDS),
                |p| p.request.is_some(),
                |p, _| Ok(p.request.take().expect("guard held")),
            )?;
            let wavelet: TileWavelet = filter_rmi.invoke_guarded(
                ctx,
                &Words(FILTER_CMD_WORDS),
                &Words(FILTER_CMD_WORDS),
                move |s| s.wavelets.contains_key(&i),
                move |s, _| Ok(s.wavelets.remove(&i).expect("guard held")),
            )?;
            // The transform: every lifting pass streams the tile through
            // the object's block RAM, plus the datapath time itself.
            let samples: TileSamples = {
                let out = dec.idwt_tile(wavelet);
                bram.charge_burst(ctx, mem_reads, mem_writes)?;
                ctx.wait(hw_idwt)?;
                out
            };
            filter_rmi.invoke(ctx, &Words(FILTER_CMD_WORDS), &Words(0), move |s, _| {
                s.results.insert(i, samples);
                Ok(())
            })?;
            params_rmi.invoke(ctx, &Words(PARAM_WORDS), &Words(0), |p, _| {
                p.response = Some(i);
                Ok(())
            })?;
        });
    }

    let report = sim.run()?;
    crate::app::export_sched(&sim, &metrics);
    if let Some(reg) = metrics.registry() {
        bus.stats().export_to(reg, "vta.opb");
        if cfg.filter_links_p2p {
            filter_channel.stats().export_to(reg, "vta.link_idwt_data");
        }
        params_link.stats().export_to(reg, "vta.link_idwt_params");
        bram.stats().export_to(reg, "vta.tile_bram");
        for (k, cpu) in cpus.iter().enumerate() {
            cpu.stats().export_to(reg, &format!("vta.ppc405_{k}"));
        }
    }
    let mut so_stats = hwsw.stats();
    so_stats.merge(&params.stats());
    let wait = so_stats.total_arbitration_wait;
    finish(cfg.version, mode, &w, &report, &metrics, &outputs, wait)
}

/// The outcome of decoding the Table-1 workload over a faulty transport.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunResult {
    /// Which mode ran.
    pub mode: ModeSel,
    /// The injected fault process.
    pub fault: FaultConfig,
    /// The reliability policy in force.
    pub policy: RetryPolicy,
    /// Time to decode (or give up on) all 16 tiles.
    pub decode_time: SimTime,
    /// Tiles delivered bit-exactly after at least one retry.
    pub tiles_recovered: usize,
    /// Tiles past the retry budget, rendered mid-gray.
    pub tiles_degraded: usize,
    /// Whether the image matches the degraded-mode expectation exactly
    /// (recovered tiles bit-exact, degraded tiles mid-gray).
    pub image_ok: bool,
    /// Whether the image matches the fault-free reference bit-exactly.
    pub bit_exact: bool,
    /// What the fault process injected.
    pub fault_stats: FaultStats,
    /// What the reliable-RMI protocol observed and spent.
    pub rmi_stats: RmiStats,
    /// Combined transport statistics (faulty bus + filter links).
    pub transport: ChannelStats,
}

impl FaultRunResult {
    /// Fraction of transferred words that were useful traffic (headers +
    /// payload of delivered frames) rather than trailers or lost frames.
    pub fn goodput(&self) -> f64 {
        let useful = self.rmi_stats.payload_words as f64;
        let total = useful + self.rmi_stats.overhead_words as f64;
        if total == 0.0 {
            1.0
        } else {
            useful / total
        }
    }

    /// Mean simulated latency of one reliable invocation.
    pub fn avg_invoke_latency(&self) -> SimTime {
        self.rmi_stats.invoke_time / self.rmi_stats.invokes.max(1)
    }
}

/// PR 3's tolerant-decode convention for a tile the transport lost: all
/// coefficients zero, so after IQ → IDWT → ICT → DC unshift every sample
/// sits at mid-gray (128).
fn mid_gray_tile(dec: &StagedDecoder, i: usize) -> TileSamples {
    let mut coeffs = dec.entropy_decode_tile(i).expect("entropy decode");
    for plane in &mut coeffs.planes {
        for v in plane {
            *v = 0;
        }
    }
    let wavelet = dec.dequantize_tile(&coeffs);
    let samples = dec.idwt_tile(wavelet);
    let samples = dec.inverse_mct_tile(samples);
    dec.dc_unshift_tile(samples)
}

/// Decodes the Table-1 workload with the software task's OPB traffic
/// routed through a [`FaultyChannel`] and the reliable-RMI protocol.
///
/// One software task pushes all 16 entropy-decoded tiles into the HW/SW
/// shared object over the faulty bus and picks the transformed tiles
/// back up; the IDWT pipeline keeps its clean point-to-point links.
/// A tile whose push or pickup exhausts the retry budget is rendered
/// mid-gray ([`mid_gray_tile`]) — the simulation itself never fails on
/// transport faults.
pub(crate) fn run_fault_vta(
    mode: ModeSel,
    fault: FaultConfig,
    policy: RetryPolicy,
) -> Result<FaultRunResult, SimError> {
    let w = workload(mode);
    let t = sw_stage_times(mode);
    let (hw_iq, hw_idwt) = (hw_iq_time(mode), hw_idwt_time(mode));
    let clk = platform_clock();
    let mut sim = Simulation::new();
    let outputs = Outputs::new(NUM_TILES);

    // Architecture resources: the OPB bus decorated with the fault
    // process; the IDWT data and params links stay clean P2P.
    let bus = Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
    let faulty = Arc::new(FaultyChannel::new(bus as Arc<dyn Channel>, fault));
    let hwsw = SharedObject::new(&mut sim, "hwsw_so", HwSwState::new(2), Fcfs::new());
    let params = SharedObject::new(
        &mut sim,
        "idwt_params_so",
        ParamsState::default(),
        Fcfs::new(),
    );
    let bram = XilinxBlockRam::<i16>::new(&mut sim, "tile_bram", 2 * 65_536, clk);

    let sw_rmi = ReliableRmi::new(
        RmiService::new(hwsw.clone(), Arc::clone(&faulty) as Arc<dyn Channel>),
        policy,
    );
    let filter_channel: Arc<dyn Channel> =
        Arc::new(P2pChannel::new(&mut sim, "link_idwt_data", clk));
    let filter_rmi = RmiService::new(hwsw.clone(), Arc::clone(&filter_channel));
    let params_rmi = RmiService::new(
        params.clone(),
        Arc::new(P2pChannel::new(&mut sim, "link_idwt_params", clk)) as Arc<dyn Channel>,
    );

    let recovered = Arc::new(Mutex::new(0usize));
    let degraded = Arc::new(Mutex::new(Vec::<usize>::new()));

    // The software task: one task, so retry accounting attributes to
    // tiles exactly (invocations are sequential).
    {
        let cpu = SoftwareProcessor::new(&mut sim, "ppc405_0", clk);
        let dec = Arc::clone(&w.decoder);
        let o2 = outputs.clone();
        let rmi = sw_rmi.clone();
        let env = cpu.env("sw_task0");
        let recovered = Arc::clone(&recovered);
        let degraded = Arc::clone(&degraded);
        SwTask::spawn_with_env(&mut sim, "sw_task0", env, move |env, ctx| {
            let mut pushed = Vec::with_capacity(NUM_TILES);
            for i in 0..NUM_TILES {
                let coeffs = env.eet(ctx, t.arith, || {
                    dec.entropy_decode_tile(i).expect("entropy decode")
                })?;
                let r0 = rmi.stats().retries;
                match rmi.try_invoke_guarded(
                    ctx,
                    &Words(TILE_WORDS),
                    &Words(0),
                    |s| s.pending.len() < s.capacity,
                    |s, _| {
                        s.pending.push_back((i, coeffs));
                        Ok(())
                    },
                ) {
                    Ok(()) => {
                        pushed.push((i, rmi.stats().retries > r0));
                    }
                    Err(RmiError::Sim(e)) => return Err(e),
                    Err(_) => {
                        // Past the retry budget: the tile never (reliably)
                        // reached the pipeline. Render it mid-gray. No sim
                        // time is charged — the budget was already paid in
                        // transfer, deadline and backoff waits.
                        degraded.lock().push(i);
                        o2.place(i, mid_gray_tile(&dec, i));
                    }
                }
            }
            for (i, push_retried) in pushed {
                let r0 = rmi.stats().retries;
                match rmi.try_invoke_guarded(
                    ctx,
                    &Words(1),
                    &Words(TILE_WORDS),
                    move |s| s.results.contains_key(&i),
                    move |s, _| Ok(s.results.remove(&i).expect("guard held")),
                ) {
                    Ok(samples) => {
                        if push_retried || rmi.stats().retries > r0 {
                            *recovered.lock() += 1;
                        }
                        let samples = env.eet(ctx, t.ict, || dec.inverse_mct_tile(samples))?;
                        let samples = env.eet(ctx, t.dc, || dec.dc_unshift_tile(samples))?;
                        o2.place(i, samples);
                    }
                    Err(RmiError::Sim(e)) => return Err(e),
                    Err(_) => {
                        degraded.lock().push(i);
                        o2.place(i, mid_gray_tile(&dec, i));
                    }
                }
            }
            Ok(())
        });
    }

    // IDWT2D control block and filter blocks: identical to `run_vta` —
    // the pipeline is oblivious to the software side's faulty transport.
    {
        let dec = Arc::clone(&w.decoder);
        let ctrl_rmi = filter_rmi.clone();
        let params_rmi = params_rmi.clone();
        sim.spawn_process("idwt2d_ctrl", move |ctx| loop {
            let i = ctrl_rmi.invoke_guarded(
                ctx,
                &Words(FILTER_CMD_WORDS),
                &Words(FILTER_CMD_WORDS),
                |s| !s.pending.is_empty(),
                |s, ctx| {
                    let (i, coeffs) = s.pending.pop_front().expect("guard held");
                    let wavelet = dec.dequantize_tile(&coeffs);
                    ctx.wait(hw_iq)?;
                    s.wavelets.insert(i, wavelet);
                    Ok(i)
                },
            )?;
            params_rmi.invoke(ctx, &Words(PARAM_WORDS), &Words(0), |p, _| {
                p.request = Some(i);
                Ok(())
            })?;
            params_rmi.invoke_guarded(
                ctx,
                &Words(PARAM_WORDS),
                &Words(PARAM_WORDS),
                move |p| p.response == Some(i),
                |p, _| {
                    p.response = None;
                    Ok(())
                },
            )?;
        });
    }
    let (mem_reads, mem_writes) = vta_idwt_mem_accesses(mode);
    for (name, serves) in [("idwt53", ModeSel::Lossless), ("idwt97", ModeSel::Lossy)] {
        let dec = Arc::clone(&w.decoder);
        let filter_rmi = filter_rmi.clone();
        let params_rmi = params_rmi.clone();
        let bram = bram.clone();
        let active = serves == mode;
        sim.spawn_process(name, move |ctx| loop {
            if !active {
                return Ok(());
            }
            let i = params_rmi.invoke_guarded(
                ctx,
                &Words(PARAM_WORDS),
                &Words(PARAM_WORDS),
                |p| p.request.is_some(),
                |p, _| Ok(p.request.take().expect("guard held")),
            )?;
            let wavelet: TileWavelet = filter_rmi.invoke_guarded(
                ctx,
                &Words(FILTER_CMD_WORDS),
                &Words(FILTER_CMD_WORDS),
                move |s| s.wavelets.contains_key(&i),
                move |s, _| Ok(s.wavelets.remove(&i).expect("guard held")),
            )?;
            let samples: TileSamples = {
                let out = dec.idwt_tile(wavelet);
                bram.charge_burst(ctx, mem_reads, mem_writes)?;
                ctx.wait(hw_idwt)?;
                out
            };
            filter_rmi.invoke(ctx, &Words(FILTER_CMD_WORDS), &Words(0), move |s, _| {
                s.results.insert(i, samples);
                Ok(())
            })?;
            params_rmi.invoke(ctx, &Words(PARAM_WORDS), &Words(0), |p, _| {
                p.response = Some(i);
                Ok(())
            })?;
        });
    }

    let report = sim.run()?;
    let degraded = {
        let mut d = degraded.lock().clone();
        d.sort_unstable();
        d
    };
    let assembled = outputs
        .assemble(&w.decoder)
        .ok_or_else(|| SimError::model("fault run: missing decoded tiles".to_string()))?;
    let bit_exact = degraded.is_empty() && assembled == *w.reference;
    // The degraded-mode expectation: the reference with every abandoned
    // tile overwritten by its mid-gray rendering.
    let mut expected = (*w.reference).clone();
    for &i in &degraded {
        w.decoder
            .place_tile(&mut expected, &mid_gray_tile(&w.decoder, i));
    }
    let image_ok = assembled == expected;
    let mut transport = faulty.stats();
    transport.merge(&filter_channel.stats());
    let tiles_recovered = *recovered.lock();
    Ok(FaultRunResult {
        mode,
        fault,
        policy,
        decode_time: report.end_time,
        tiles_recovered,
        tiles_degraded: degraded.len(),
        image_ok,
        bit_exact,
        fault_stats: faulty.fault_stats(),
        rmi_stats: sw_rmi.stats(),
        transport,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_version;
    use osss_sim::SimTime;

    fn ms(t: SimTime) -> f64 {
        t.as_ms_f64()
    }

    #[test]
    fn vta_models_are_functionally_correct() {
        for v in [
            VersionId::V6a,
            VersionId::V6b,
            VersionId::V7a,
            VersionId::V7b,
        ] {
            let r = run_version(v, ModeSel::Lossless).expect("run");
            assert!(r.functional_ok, "{v} output mismatch");
        }
    }

    #[test]
    fn idwt_inflation_from_refinement_is_bounded_by_about_8x() {
        for mode in ModeSel::ALL {
            let v3 = run_version(VersionId::V3, mode).expect("v3");
            let v6b = run_version(VersionId::V6b, mode).expect("v6b");
            let inflation = ms(v6b.idwt_time) / ms(v3.idwt_time);
            assert!(
                (4.0..=10.0).contains(&inflation),
                "{mode}: inflation {inflation:.1}"
            );
        }
    }

    #[test]
    fn bus_only_mapping_is_slower_for_idwt_than_p2p() {
        for (va, vb) in [
            (VersionId::V6a, VersionId::V6b),
            (VersionId::V7a, VersionId::V7b),
        ] {
            let a = run_version(va, ModeSel::Lossless).expect("a");
            let b = run_version(vb, ModeSel::Lossless).expect("b");
            assert!(
                a.idwt_time > b.idwt_time,
                "{va} IDWT {} should exceed {vb} IDWT {}",
                a.idwt_time,
                b.idwt_time
            );
        }
    }

    #[test]
    fn more_processors_worsen_bus_idwt_but_not_p2p() {
        let mode = ModeSel::Lossless;
        let v6a = run_version(VersionId::V6a, mode).expect("6a");
        let v7a = run_version(VersionId::V7a, mode).expect("7a");
        assert!(
            v7a.idwt_time > v6a.idwt_time,
            "four processors on the bus must hurt: 6a {} vs 7a {}",
            v6a.idwt_time,
            v7a.idwt_time
        );
        let v6b = run_version(VersionId::V6b, mode).expect("6b");
        let v7b = run_version(VersionId::V7b, mode).expect("7b");
        let ratio = ms(v7b.idwt_time) / ms(v6b.idwt_time);
        assert!(
            (0.97..=1.03).contains(&ratio),
            "P2P decouples the IDWT from the bus: 6b {} vs 7b {}",
            v6b.idwt_time,
            v7b.idwt_time
        );
    }

    #[test]
    fn hw_idwt_advantage_survives_refinement_12x_16x() {
        for (mode, lo, hi) in [(ModeSel::Lossless, 9.0, 14.0), (ModeSel::Lossy, 12.0, 18.0)] {
            let v1 = run_version(VersionId::V1, mode).expect("v1");
            let v6b = run_version(VersionId::V6b, mode).expect("6b");
            let advantage = ms(v1.idwt_time) / ms(v6b.idwt_time);
            assert!(
                (lo..=hi).contains(&advantage),
                "{mode}: advantage {advantage:.1} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn fault_free_run_is_bit_exact_with_pinned_overhead() {
        let policy = RetryPolicy::new(SimTime::ms(2)).with_max_retries(8);
        let r = run_fault_vta(ModeSel::Lossless, FaultConfig::none(1), policy).expect("run");
        assert!(r.bit_exact, "no faults means bit-exact output");
        assert!(r.image_ok);
        assert_eq!(r.tiles_degraded, 0);
        assert_eq!(r.tiles_recovered, 0);
        assert_eq!(r.rmi_stats.retries, 0);
        assert_eq!(r.rmi_stats.invokes, 2 * NUM_TILES as u64);
        // Exactly one CRC trailer per frame, two frames per invocation.
        assert_eq!(
            r.rmi_stats.overhead_words,
            2 * NUM_TILES as u64 * 2 * osss_vta::RELIABLE_TRAILER_WORDS as u64
        );
        assert!(r.goodput() > 0.999, "goodput {} too low", r.goodput());
    }

    #[test]
    fn moderate_faults_recover_bit_exact_with_retries() {
        let fault = FaultConfig::none(42).with_drops(0.1).with_bit_flips(1e-5);
        let policy = RetryPolicy::new(SimTime::ms(2)).with_max_retries(8);
        let r = run_fault_vta(ModeSel::Lossless, fault, policy).expect("run");
        assert!(r.bit_exact, "retry budget must absorb moderate faults");
        assert_eq!(r.tiles_degraded, 0);
        assert!(r.rmi_stats.retries > 0, "10% drops must trigger retries");
        assert!(r.tiles_recovered > 0);
        assert!(
            r.fault_stats.dropped > 0 || r.fault_stats.corrupt_transfers > 0,
            "the fault process must have fired"
        );
        assert!(r.goodput() < 1.0);
        // Recovery costs time: the faulty run is slower than fault-free.
        let clean = run_fault_vta(ModeSel::Lossless, FaultConfig::none(42), policy).expect("clean");
        assert!(r.decode_time > clean.decode_time);
    }

    #[test]
    fn fault_sweep_is_deterministic_across_runs() {
        let fault = FaultConfig::none(7).with_drops(0.2).with_bit_flips(1e-5);
        let policy = RetryPolicy::new(SimTime::ms(2)).with_max_retries(8);
        let a = run_fault_vta(ModeSel::Lossless, fault, policy).expect("first");
        let b = run_fault_vta(ModeSel::Lossless, fault, policy).expect("second");
        assert_eq!(a, b, "same seed must replay bit-identically");
    }

    #[test]
    fn heavy_faults_degrade_per_tile_but_never_fail() {
        let fault = FaultConfig::none(3).with_drops(0.5).with_bit_flips(3e-5);
        let policy = RetryPolicy::new(SimTime::ms(2)).with_max_retries(1);
        let r = run_fault_vta(ModeSel::Lossless, fault, policy).expect("must not fail");
        assert!(r.tiles_degraded > 0, "past the budget tiles must degrade");
        assert!(!r.bit_exact);
        assert!(
            r.image_ok,
            "degradation must be exactly per-tile mid-gray, nothing else"
        );
        assert!(r.rmi_stats.failed > 0);
        assert!(r.tiles_degraded <= NUM_TILES);
    }

    /// Deep sweep: the full fault axis, several seeds, both as a CI smoke
    /// (fixed seed, `FAULT_ITERS` iterations) and as an `#[ignore]`d
    /// long-runner. Every point must keep the degraded-mode invariants.
    #[test]
    #[ignore = "deep sweep; run explicitly (CI sets FAULT_ITERS)"]
    fn fault_sweep_deep() {
        let iters: u64 = std::env::var("FAULT_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        for seed in 0..iters {
            let points = crate::fault_axis(seed);
            let results = crate::fault_sweep(ModeSel::Lossless, &points).expect("sweep");
            let replay = crate::fault_sweep(ModeSel::Lossless, &points).expect("replay");
            assert_eq!(results, replay, "seed {seed}: sweep must be deterministic");
            assert!(results[0].bit_exact, "seed {seed}: fault-free point");
            for r in &results {
                assert!(r.image_ok, "seed {seed}: {:?} degraded wrongly", r.fault);
                assert!(
                    r.bit_exact || r.tiles_degraded > 0,
                    "seed {seed}: inexact output must come from degraded tiles"
                );
            }
        }
    }

    #[test]
    fn overall_decode_time_stays_sw_dominated() {
        let mode = ModeSel::Lossless;
        let v3 = run_version(VersionId::V3, mode).expect("v3");
        let v6b = run_version(VersionId::V6b, mode).expect("6b");
        let overhead = ms(v6b.decode_time) / ms(v3.decode_time);
        assert!(
            (1.0..=1.10).contains(&overhead),
            "refinement must not change the big picture: {overhead:.3}"
        );
    }
}
