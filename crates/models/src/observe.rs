//! Observed model runs: every Table-1 version re-run with the unified
//! observability sinks attached — a [`Tracer`] capturing VCD-able
//! signals (`idwt.busy`, `sw.tiles_done`, `hwsw.credit`) and a
//! [`MetricsRegistry`] collecting scheduler, channel and model-level
//! counters.
//!
//! The point of this module is the paper's *seamless refinement* claim
//! turned into a checkable artefact: [`derive_from_trace`] recomputes
//! the Table-1 "Decoding Time" and "IDWT Time" columns from the signal
//! dump alone, and the observed run asserts they match the values the
//! simulation reported directly. If a refinement step ever changed
//! what the waveforms say versus what the report says, the
//! `examples/observability.rs` run would fail.

use osss_sim::probe::MetricsRegistry;
use osss_sim::trace::{TraceRecord, Tracer};
use osss_sim::{SimError, SimTime};

use crate::app::{self, ArbPolicy, Metrics, PipelineModel};
use crate::vta::{self, VtaConfig};
use crate::{ModeSel, VersionId, VersionResult};

/// One model version's result together with its observability sinks.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The ordinary Table-1 measurements.
    pub result: VersionResult,
    /// The signal dump — render with [`Tracer::to_vcd`].
    pub tracer: Tracer,
    /// Counters/gauges/histograms — render with
    /// [`MetricsRegistry::to_json`].
    pub registry: MetricsRegistry,
}

/// Runs one model version with tracing, the scheduler probe and the
/// metrics registry attached.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_version_observed(version: VersionId, mode: ModeSel) -> Result<ObservedRun, SimError> {
    let metrics = Metrics::observed();
    let tracer = metrics.tracer().expect("observed metrics").clone();
    let registry = metrics.registry().expect("observed metrics").clone();
    let result = match version {
        VersionId::V1 => app::run_v1_metrics(mode, metrics),
        VersionId::V2 => app::run_sw_parallel_metrics(mode, 1, metrics),
        VersionId::V4 => app::run_sw_parallel_metrics(mode, 4, metrics),
        VersionId::V3 => app::run_pipeline_app(
            mode,
            PipelineModel {
                n_sw_tasks: 1,
                version: VersionId::V3,
                policy: ArbPolicy::Fcfs,
            },
            metrics,
        ),
        VersionId::V5 => app::run_pipeline_app(
            mode,
            PipelineModel {
                n_sw_tasks: 4,
                version: VersionId::V5,
                policy: ArbPolicy::Fcfs,
            },
            metrics,
        ),
        VersionId::V6a => vta::run_vta(mode, VtaConfig::v6a(), metrics),
        VersionId::V6b => vta::run_vta(mode, VtaConfig::v6b(), metrics),
        VersionId::V7a => vta::run_vta(mode, VtaConfig::v7a(), metrics),
        VersionId::V7b => vta::run_vta(mode, VtaConfig::v7b(), metrics),
    }?;
    Ok(ObservedRun {
        result,
        tracer,
        registry,
    })
}

/// Table-1 measurements recomputed from a signal dump alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceDerived {
    /// Time of the last signal change — the decode finishes with the
    /// final tile's `sw.tiles_done` step, so this equals the reported
    /// decoding time.
    pub decode_time: SimTime,
    /// Sum of all `idwt.busy` 1→0 pulse widths — the reported IDWT
    /// time.
    pub idwt_time: SimTime,
    /// `idwt_time / decode_time` (0 when the dump is empty).
    pub idwt_occupancy: f64,
}

/// Recomputes decoding time, IDWT time and IDWT occupancy from trace
/// records, independent of the simulation's own accounting.
pub fn derive_from_trace(records: &[TraceRecord]) -> TraceDerived {
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.time);
    let decode_time = sorted.last().map_or(SimTime::ZERO, |r| r.time);
    let mut idwt_time = SimTime::ZERO;
    let mut busy_since: Option<SimTime> = None;
    for r in &sorted {
        if r.name != "idwt.busy" {
            continue;
        }
        match r.value.as_str() {
            "1" => busy_since = Some(r.time),
            "0" => {
                if let Some(t0) = busy_since.take() {
                    idwt_time += r.time - t0;
                }
            }
            _ => {}
        }
    }
    let idwt_occupancy = if decode_time == SimTime::ZERO {
        0.0
    } else {
        idwt_time.as_ps() as f64 / decode_time.as_ps() as f64
    };
    TraceDerived {
        decode_time,
        idwt_time,
        idwt_occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times_match_reported_times_for_v1() {
        let run = run_version_observed(VersionId::V1, ModeSel::Lossless).expect("run");
        assert!(run.result.functional_ok);
        let d = derive_from_trace(&run.tracer.records());
        assert_eq!(d.decode_time, run.result.decode_time);
        assert_eq!(d.idwt_time, run.result.idwt_time);
        assert!(d.idwt_occupancy > 0.0 && d.idwt_occupancy < 1.0);
    }

    #[test]
    fn derived_times_match_for_pipeline_and_vta_versions() {
        for v in [VersionId::V5, VersionId::V7b] {
            let run = run_version_observed(v, ModeSel::Lossless).expect("run");
            let d = derive_from_trace(&run.tracer.records());
            assert_eq!(d.decode_time, run.result.decode_time, "{v} decode");
            assert_eq!(d.idwt_time, run.result.idwt_time, "{v} idwt");
        }
    }

    #[test]
    fn observed_run_matches_plain_run_exactly() {
        // Attaching the sinks must not perturb the simulated timing.
        for v in [VersionId::V2, VersionId::V6a] {
            let plain = crate::run_version(v, ModeSel::Lossy).expect("plain");
            let observed = run_version_observed(v, ModeSel::Lossy).expect("observed");
            assert_eq!(plain, observed.result, "{v}");
        }
    }

    #[test]
    fn credit_signal_goes_negative_and_returns_to_zero() {
        let run = run_version_observed(VersionId::V3, ModeSel::Lossless).expect("run");
        let credits: Vec<i64> = run
            .tracer
            .records()
            .iter()
            .filter(|r| r.name == "hwsw.credit")
            .map(|r| r.value.parse().expect("signed credit"))
            .collect();
        assert!(!credits.is_empty());
        assert!(
            credits.iter().any(|&c| c < 0),
            "in-flight tiles must drive the credit negative: {credits:?}"
        );
        assert_eq!(*credits.last().expect("non-empty"), 0);
    }

    #[test]
    fn registry_captures_scheduler_and_model_metrics() {
        let run = run_version_observed(VersionId::V7b, ModeSel::Lossless).expect("run");
        let snap = run.registry.snapshot();
        assert_eq!(snap.counters.get("model.tiles"), Some(&16));
        assert_eq!(
            snap.gauges.get("model.decode_ps").copied(),
            i64::try_from(run.result.decode_time.as_ps()).ok()
        );
        // The scheduler probe saw the software tasks...
        assert!(snap.counters.contains_key("sched.sw_task0.activations"));
        // ...and the VTA channels moved real words.
        assert!(snap.counters.get("vta.opb.words").copied().unwrap_or(0) > 0);
        assert!(
            snap.counters
                .get("vta.link_idwt_data.words")
                .copied()
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn empty_trace_derives_zeroes() {
        let d = derive_from_trace(&[]);
        assert_eq!(d.decode_time, SimTime::ZERO);
        assert_eq!(d.idwt_time, SimTime::ZERO);
        assert_eq!(d.idwt_occupancy, 0.0);
    }
}
