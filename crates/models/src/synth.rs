//! The Table 2 experiment: RTL synthesis of the IDWT blocks, FOSSY flow
//! versus hand-written reference, plus the Figure 4 artefact generation.

use fossy::emit::{loc, platform, systemc, vhdl};
use fossy::estimate::{estimate_entity, ResourceReport, Virtex4};
use fossy::idwt;
use fossy::passes::inline_entity;
use osss_vta::PlatformDesc;

/// One Table 2 column pair: a design synthesised through FOSSY and its
/// hand-written reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisRow {
    /// `"IDWT53"` or `"IDWT97"`.
    pub design: &'static str,
    /// FOSSY-flow estimate.
    pub fossy: ResourceReport,
    /// Hand-reference estimate.
    pub reference: ResourceReport,
    /// Lines of the synthesisable input description (SystemC rendering).
    pub input_loc: usize,
    /// Lines of the FOSSY-generated VHDL.
    pub generated_loc: usize,
    /// Lines of the reference VHDL.
    pub reference_loc: usize,
}

/// Runs both IDWT designs through the synthesis flow and the estimator.
pub fn table2() -> Vec<SynthesisRow> {
    let device = Virtex4::lx25();
    let mut rows = Vec::with_capacity(2);
    for (design, input, reference) in [
        (
            "IDWT53",
            idwt::idwt53_fossy_input(),
            idwt::idwt53_reference(),
        ),
        (
            "IDWT97",
            idwt::idwt97_fossy_input(),
            idwt::idwt97_reference(),
        ),
    ] {
        let synthesised = inline_entity(&input);
        let generated = vhdl::emit_entity_styled(&synthesised, vhdl::Style::ThreeAddress);
        vhdl::structural_check(&generated).expect("generated VHDL is sound");
        let reference_code = vhdl::emit_entity(&reference);
        vhdl::structural_check(&reference_code).expect("reference VHDL is sound");
        rows.push(SynthesisRow {
            design,
            fossy: estimate_entity(&synthesised, &device),
            reference: estimate_entity(&reference, &device),
            input_loc: loc(&systemc::emit_entity(&input)),
            generated_loc: loc(&generated),
            reference_loc: loc(&reference_code),
        });
    }
    rows
}

/// The generated implementation-model artefacts of Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowArtefacts {
    /// FOSSY VHDL per hardware block, `(entity name, code)`.
    pub vhdl: Vec<(String, String)>,
    /// The generated C task sources, `(task name, code)`.
    pub c_sources: Vec<(String, String)>,
    /// The OSSS embedded runtime header.
    pub runtime_header: String,
    /// The MHS platform file.
    pub mhs: String,
    /// The MSS platform file.
    pub mss: String,
}

/// Generates every implementation-model artefact for the case-study
/// platform (the output side of Figure 4).
pub fn synthesis_flow() -> FlowArtefacts {
    let platform = PlatformDesc::ml401_case_study();
    platform.validate().expect("case-study platform is valid");
    let mut vhdl_out = Vec::new();
    for input in [idwt::idwt53_fossy_input(), idwt::idwt97_fossy_input()] {
        let synthesised = inline_entity(&input);
        vhdl_out.push((
            synthesised.name.clone(),
            vhdl::emit_entity_styled(&synthesised, vhdl::Style::ThreeAddress),
        ));
    }
    let task = fossy::emit::c::SwTaskDesc {
        name: "arith_decoder_ict_dcshift".to_string(),
        calls: vec![
            fossy::emit::c::RemoteCall {
                name: "so_put_tile".to_string(),
                method_id: 1,
                arg_words: crate::timing::TILE_WORDS as u32,
                result_words: 0,
            },
            fossy::emit::c::RemoteCall {
                name: "so_get_tile".to_string(),
                method_id: 2,
                arg_words: 1,
                result_words: crate::timing::TILE_WORDS as u32,
            },
        ],
        body: vec![
            "uint32_t tile[TILE_WORDS];".to_string(),
            "arith_decode_tile(tile);".to_string(),
            "so_put_tile(tile, 0);".to_string(),
            "so_get_tile(tile, 0);".to_string(),
            "ict_and_dc_shift(tile);".to_string(),
        ],
    };
    FlowArtefacts {
        vhdl: vhdl_out,
        c_sources: vec![(task.name.clone(), fossy::emit::c::emit_task(&task))],
        runtime_header: fossy::emit::c::emit_runtime_header(),
        mhs: platform::emit_mhs(&platform),
        mss: platform::emit_mss(&platform),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_the_paper_shape() {
        let rows = table2();
        assert_eq!(rows.len(), 2);
        let r53 = &rows[0];
        // 5/3: FOSSY moderately larger, similar speed.
        let area = r53.fossy.slices as f64 / r53.reference.slices as f64;
        assert!((1.0..1.5).contains(&area), "53 area ratio {area:.2}");
        let speed = r53.fossy.fmax_mhz / r53.reference.fmax_mhz;
        assert!((0.8..1.2).contains(&speed), "53 speed ratio {speed:.2}");
        // Both meet the 100 MHz platform clock.
        assert!(r53.fossy.fmax_mhz > 100.0 && r53.reference.fmax_mhz > 100.0);

        let r97 = &rows[1];
        // 9/7: FOSSY smaller but slower.
        assert!(r97.fossy.slices < r97.reference.slices);
        assert!(r97.fossy.fmax_mhz < r97.reference.fmax_mhz);
        // Generated code far exceeds its input; reference stays close.
        for r in &rows {
            assert!(r.generated_loc as f64 > 1.5 * r.input_loc as f64);
            assert!(r.generated_loc > r.reference_loc);
        }
    }

    #[test]
    fn flow_artefacts_are_complete_and_sound() {
        let a = synthesis_flow();
        assert_eq!(a.vhdl.len(), 2);
        for (name, code) in &a.vhdl {
            assert!(code.contains(&format!("entity {name}")));
        }
        assert_eq!(a.c_sources.len(), 1);
        fossy::emit::c::structural_check(&a.c_sources[0].1).expect("C sound");
        fossy::emit::c::structural_check(&a.runtime_header).expect("header sound");
        assert!(a.mhs.contains("ppc405_0"));
        assert!(a.mss.contains("osss_embedded"));
    }
}
