//! Regenerates the paper's Table 1: simulation results of all nine model
//! versions, plus the paper-shape verification and (with `--flow`) the
//! Figure 3 model lineage.

use jpeg2000_models::report::{check_table1_shape, flow_text, format_table1};
use jpeg2000_models::table1;

fn main() {
    if std::env::args().any(|a| a == "--flow") {
        println!("{}", flow_text());
        println!();
    }
    println!("Running all 9 model versions × 2 modes (simulated time)...");
    let results = table1().expect("simulations complete");
    println!();
    println!("{}", format_table1(&results));
    println!("Paper-shape verification:");
    let checks = check_table1_shape(&results);
    let mut all_ok = true;
    for c in &checks {
        println!(
            "  [{}] {:<28} paper: {:<48} measured: {}",
            if c.pass { "ok" } else { "FAIL" },
            c.name,
            c.paper,
            c.measured
        );
        all_ok &= c.pass;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
