//! Regenerates the paper's Figure 1 profile: per-stage execution-time
//! shares of the software-only decoder, measured natively and compared
//! against the published percentages.

use jpeg2000_models::profile::profile;
use jpeg2000_models::ModeSel;

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256usize);
    println!("Figure 1 — per-stage decode profile ({size}×{size} synthetic image)");
    println!(
        "{:<10} {:>22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "mode", "", "decoder", "IQ", "IDWT", "ICT", "DC shift"
    );
    for mode in ModeSel::ALL {
        let p = profile(mode, size);
        let row = |label: &str, shares: &[f64; 5]| {
            println!(
                "{:<10} {:>22} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                mode.to_string(),
                label,
                shares[0],
                shares[1],
                shares[2],
                shares[3],
                shares[4]
            );
        };
        row("paper (PowerPC/C)", &p.paper);
        row("measured (this host)", &p.measured);
        assert!(
            p.entropy_dominates(),
            "{mode}: entropy decoding no longer dominates — profile shape broken"
        );
    }
    println!();
    println!(
        "Shape check: the arithmetic (entropy) decoder dominates in both modes,\n\
         the property motivating the case study's HW/SW partitioning."
    );
}
