//! Scaling ablation: the paper closes its Table 1 discussion with
//! "7a is an affordable implementation of the JPEG 2000 decoder while 7b
//! does better scale with increasing parallelism". This binary sweeps the
//! software-task/processor count for both mappings and shows the claim.

use jpeg2000_models::{run_scaling, ModeSel};

fn main() {
    let mode = ModeSel::Lossless;
    println!("Scaling ablation, {mode}: n software tasks on n processors");
    println!(
        "{:>3} {:>14} {:>14} {:>13} {:>13} {:>16}",
        "n", "7a dec [ms]", "7b dec [ms]", "7a IDWT [ms]", "7b IDWT [ms]", "7a/7b IDWT"
    );
    let mut ratios = Vec::new();
    let mut p2p_idwt = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let a = run_scaling(mode, n, false).expect("bus mapping");
        let b = run_scaling(mode, n, true).expect("p2p mapping");
        assert!(a.functional_ok && b.functional_ok);
        let ratio = a.idwt_time.as_ms_f64() / b.idwt_time.as_ms_f64();
        println!(
            "{:>3} {:>14.1} {:>14.1} {:>13.2} {:>13.2} {:>15.2}x",
            n,
            a.decode_time.as_ms_f64(),
            b.decode_time.as_ms_f64(),
            a.idwt_time.as_ms_f64(),
            b.idwt_time.as_ms_f64(),
            ratio
        );
        ratios.push(ratio);
        p2p_idwt.push(b.idwt_time.as_ms_f64());
    }
    println!();
    println!(
        "The bus mapping's IDWT penalty grows with parallelism (more \n\
         processors fight for the single OPB), while the P2P mapping's IDWT \n\
         time is flat — \"7b does better scale with increasing parallelism\"."
    );
    // The bus penalty must grow monotonically with parallelism and be
    // pronounced at 8-way, while the P2P IDWT time stays flat. (At 16-way
    // each task holds a single tile, so the workload degenerates into one
    // burst with no steady-state overlap — outside the paper's regime.)
    assert!(
        ratios.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        "bus penalty should grow with parallelism: {ratios:?}"
    );
    assert!(
        ratios.last().unwrap() > &1.5,
        "8-way penalty pronounced: {ratios:?}"
    );
    let (min, max) = (
        p2p_idwt.iter().cloned().fold(f64::INFINITY, f64::min),
        p2p_idwt.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max / min < 1.02,
        "P2P IDWT flat across parallelism: {p2p_idwt:?}"
    );
}
