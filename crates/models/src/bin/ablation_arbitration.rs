//! Arbitration-policy ablation: version 5's seven-client HW/SW shared
//! object under each of the OSSS scheduler-library policies. The paper
//! attributes version 5's slowdown to arbitration overhead; this sweep
//! shows how much the *choice of policy* moves the needle (little — the
//! grant latency, not the order, dominates) while all policies remain
//! functionally correct.

use jpeg2000_models::{run_v5_with_policy, ArbPolicy, ModeSel};

fn main() {
    println!("Arbitration-policy ablation: version 5, HW/SW SO with 7 clients");
    println!(
        "{:<18} {:>14} {:>14} {:>16} {:>16}",
        "policy", "dec ll [ms]", "dec lossy [ms]", "SO wait ll [ms]", "SO wait lossy"
    );
    let mut decode_spread = Vec::new();
    for policy in ArbPolicy::ALL {
        let ll = run_v5_with_policy(ModeSel::Lossless, policy).expect("run");
        let lo = run_v5_with_policy(ModeSel::Lossy, policy).expect("run");
        assert!(
            ll.functional_ok && lo.functional_ok,
            "{policy} broke the output"
        );
        println!(
            "{:<18} {:>14.1} {:>14.1} {:>16.2} {:>16.2}",
            policy.to_string(),
            ll.decode_time.as_ms_f64(),
            lo.decode_time.as_ms_f64(),
            ll.so_arbitration_wait.as_ms_f64(),
            lo.so_arbitration_wait.as_ms_f64()
        );
        decode_spread.push(ll.decode_time.as_ms_f64());
    }
    let (min, max) = (
        decode_spread.iter().cloned().fold(f64::INFINITY, f64::min),
        decode_spread.iter().cloned().fold(0.0, f64::max),
    );
    println!();
    println!(
        "Decode-time spread across policies: {:.2} ms ({:.2} %) — the object's\n\
         grant latency dominates; the grant *order* barely matters at this\n\
         utilisation, which is why the case study ships plain FCFS.",
        max - min,
        (max - min) / min * 100.0
    );
    assert!(
        (max - min) / min < 0.02,
        "policy choice should be second-order"
    );
}
