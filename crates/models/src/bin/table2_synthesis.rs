//! Regenerates the paper's Table 2: RTL synthesis results of the IDWT
//! blocks, FOSSY flow versus hand-written VHDL reference.

use jpeg2000_models::report::format_table2;
use jpeg2000_models::synth::table2;

fn main() {
    let rows = table2();
    println!("{}", format_table2(&rows));
    println!("Paper-shape summary:");
    let r53 = &rows[0];
    let r97 = &rows[1];
    println!(
        "  IDWT53: FOSSY/reference area ratio {:.2} (paper: ≈ +10 % area), \
         fmax ratio {:.2} (paper: similar)",
        r53.fossy.slices as f64 / r53.reference.slices as f64,
        r53.fossy.fmax_mhz / r53.reference.fmax_mhz
    );
    println!(
        "  IDWT97: FOSSY/reference area ratio {:.2} (paper: ≈ −15 %), \
         fmax ratio {:.2} (paper: ≈ −28 %)",
        r97.fossy.slices as f64 / r97.reference.slices as f64,
        r97.fossy.fmax_mhz / r97.reference.fmax_mhz
    );
    println!(
        "  Generated-vs-input code growth: IDWT53 ×{:.1}, IDWT97 ×{:.1}",
        r53.generated_loc as f64 / r53.input_loc as f64,
        r97.generated_loc as f64 / r97.input_loc as f64
    );
    println!(
        "  Both meet the 100 MHz platform clock for the 5/3: FOSSY {:.1} MHz, ref {:.1} MHz",
        r53.fossy.fmax_mhz, r53.reference.fmax_mhz
    );
}
