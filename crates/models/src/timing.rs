//! Timing calibration from the paper's published measurements.
//!
//! The paper gives two anchors: the per-stage execution-time profile of
//! the software-only decoder (Figure 1) and the ~180 ms the arithmetic
//! decoder takes per tile on the target processor (the `OSSS_EET`
//! listing). Everything else — hardware acceleration on the Application
//! Layer, channel word counts and memory access counts on the VTA layer —
//! is expressed through those anchors plus the cycle-accurate resource
//! models in `osss-vta`.

use osss_sim::{Frequency, SimTime};

use crate::ModeSel;

/// Platform clock: both the processor and the OPB bus run at 100 MHz.
pub fn platform_clock() -> Frequency {
    Frequency::mhz(100)
}

/// Figure 1 stage shares in percent:
/// `[arith decoder, IQ, IDWT, ICT, DC shift]`.
pub fn figure1_shares(mode: ModeSel) -> [f64; 5] {
    match mode {
        ModeSel::Lossless => [88.8, 3.2, 5.5, 0.7, 1.8],
        ModeSel::Lossy => [78.6, 4.2, 12.4, 1.2, 3.6],
    }
}

/// Arithmetic decoding of a single tile on the target CPU (the paper's
/// software timing annotation).
pub const ARITH_PER_TILE: SimTime = SimTime::ms(180);

/// Tiles in the evaluation workload ("16 tiles with 3 components").
pub const NUM_TILES: usize = 16;

/// Per-tile software execution times of each stage, derived from the
/// 180 ms arithmetic anchor and the Figure 1 shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    /// Arithmetic (MQ/EBCOT) decoding.
    pub arith: SimTime,
    /// Inverse quantisation.
    pub iq: SimTime,
    /// Inverse DWT.
    pub idwt: SimTime,
    /// Inverse component transform.
    pub ict: SimTime,
    /// DC level shift.
    pub dc: SimTime,
}

impl StageTimes {
    /// Total per-tile software time.
    pub fn total(&self) -> SimTime {
        self.arith + self.iq + self.idwt + self.ict + self.dc
    }
}

/// Software (CPU) per-tile stage times for `mode`.
pub fn sw_stage_times(mode: ModeSel) -> StageTimes {
    let shares = figure1_shares(mode);
    let arith_ps = ARITH_PER_TILE.as_ps() as f64;
    let total = arith_ps / (shares[0] / 100.0);
    let of = |pct: f64| SimTime::ps((total * pct / 100.0) as u64);
    StageTimes {
        arith: ARITH_PER_TILE,
        iq: of(shares[1]),
        idwt: of(shares[2]),
        ict: of(shares[3]),
        dc: of(shares[4]),
    }
}

/// Application-Layer hardware acceleration for the IQ + IDWT co-processor
/// (parallel lifting datapath vs. sequential software): the value is
/// chosen so that the ×8 VTA refinement inflation of the IDWT time still
/// leaves the 12×/16× end-to-end hardware advantage the paper reports.
pub const HW_ACCEL_APP: u64 = 96;

/// Hardware IQ time per tile on the Application Layer.
pub fn hw_iq_time(mode: ModeSel) -> SimTime {
    sw_stage_times(mode).iq / HW_ACCEL_APP
}

/// Hardware IDWT time per tile on the Application Layer.
pub fn hw_idwt_time(mode: ModeSel) -> SimTime {
    sw_stage_times(mode).idwt / HW_ACCEL_APP
}

/// Tile copy into/out of the HW/SW shared object's internal data
/// structure (versions 3 and 5 store tiles *inside* the object; the plain
/// co-processor calls of versions 2 and 4 pass them by reference).
pub fn so_copy_time() -> SimTime {
    SimTime::us(100)
}

/// Per-call arbitration/grant latency of a shared object, growing with
/// the number of connected clients (the synthesised arbiter's grant path
/// does). Version 5's seven-client object pays this on every one of its
/// five accesses per tile — the paper's "arbitration overhead" that makes
/// 5 slightly slower than 4.
pub fn so_arb_delay(clients: usize) -> SimTime {
    SimTime::us(25) * clients as u64
}

/// Paper-scale tile payload in 32-bit bus words (256×256 16-bit samples,
/// two per word): what one RMI tile transfer moves at the VTA layer.
pub const TILE_WORDS: usize = 32_768;

/// IDWT parameter-set size in words (the "IDWT params" shared object
/// moves filter/geometry parameter sequences, not bulk data).
pub const PARAM_WORDS: usize = 16;

/// Parameter exchanges between IDWT2D and the filter blocks per tile.
pub const PARAM_EXCHANGES_PER_TILE: usize = 8;

/// Command/descriptor words exchanged when an IDWT block fetches work
/// from / stores results into the HW/SW shared object (the bulk samples
/// live in the object's block RAM and are charged there).
pub const FILTER_CMD_WORDS: usize = 64;

/// Block-RAM accesses of the VTA IDWT per tile: after explicit memory
/// insertion every lifting pass reads and writes the 256×256 tile from
/// block RAM. Calibrated so the refined IDWT (memory + compute) lands at
/// the paper's 12× (lossless) / 16× (lossy) overall advantage versus
/// software: 5/3 ≈ 1.2 accesses/sample, 9/7 ≈ 2.25 accesses/sample
/// (more lifting steps).
pub fn vta_idwt_mem_accesses(mode: ModeSel) -> (u64, u64) {
    let samples = 65_536u64; // 256×256 paper-scale tile
    match mode {
        // (reads, writes) — totals 1.2× / 2.25× samples.
        ModeSel::Lossless => (samples * 6 / 10, samples * 6 / 10),
        ModeSel::Lossy => (samples * 12 / 10, samples * 21 / 20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_100() {
        for mode in ModeSel::ALL {
            let sum: f64 = figure1_shares(mode).iter().sum();
            assert!((sum - 100.0).abs() < 1e-9, "{mode}: {sum}");
        }
    }

    #[test]
    fn stage_times_match_shares() {
        let t = sw_stage_times(ModeSel::Lossless);
        assert_eq!(t.arith, SimTime::ms(180));
        // Total ≈ 180 / 0.888 ≈ 202.7 ms.
        assert!((t.total().as_ms_f64() - 202.7).abs() < 0.2);
        // IDWT ≈ 5.5 % of total ≈ 11.15 ms.
        assert!((t.idwt.as_ms_f64() - 11.15).abs() < 0.1);

        let t = sw_stage_times(ModeSel::Lossy);
        assert!((t.total().as_ms_f64() - 229.0).abs() < 0.3);
        assert!((t.idwt.as_ms_f64() - 28.4).abs() < 0.2);
    }

    #[test]
    fn hw_times_are_much_smaller() {
        for mode in ModeSel::ALL {
            let sw = sw_stage_times(mode);
            assert_eq!(hw_idwt_time(mode), sw.idwt / 96);
            assert!(hw_idwt_time(mode) < sw.idwt / 50);
        }
    }

    #[test]
    fn vta_idwt_memory_cost_targets_12x_16x() {
        let clk = platform_clock();
        // Refined IDWT = BRAM traffic + hardware compute.
        let (r, w) = vta_idwt_mem_accesses(ModeSel::Lossless);
        let refined = clk.cycles(r + w) + hw_idwt_time(ModeSel::Lossless);
        let sw = sw_stage_times(ModeSel::Lossless).idwt;
        let ratio = sw.as_ps() as f64 / refined.as_ps() as f64;
        assert!((10.0..=14.0).contains(&ratio), "lossless ratio {ratio:.1}");

        let (r, w) = vta_idwt_mem_accesses(ModeSel::Lossy);
        let refined = clk.cycles(r + w) + hw_idwt_time(ModeSel::Lossy);
        let sw = sw_stage_times(ModeSel::Lossy).idwt;
        let ratio = sw.as_ps() as f64 / refined.as_ps() as f64;
        assert!((14.0..=18.0).contains(&ratio), "lossy ratio {ratio:.1}");
    }

    #[test]
    fn vta_inflation_is_at_most_about_8x() {
        // (6a/6b vs 3): BRAM-refined IDWT over Application-Layer HW IDWT —
        // the paper reports an increase "up to a factor of 8".
        for mode in ModeSel::ALL {
            let (r, w) = vta_idwt_mem_accesses(mode);
            let refined = platform_clock().cycles(r + w) + hw_idwt_time(mode);
            let app = hw_idwt_time(mode);
            let inflation = refined.as_ps() as f64 / app.as_ps() as f64;
            assert!(
                (4.0..=9.0).contains(&inflation),
                "{mode}: inflation {inflation:.1}"
            );
        }
    }
}
