//! The Figure 1 experiment: per-stage execution-time profile of the
//! software-only decoder.
//!
//! The paper profiled a C implementation on the target processor; here
//! the Rust decoder is profiled natively (wall clock per stage) and the
//! resulting shares are compared against the published percentages.

use jpeg2000::codec::{decode, encode, EncodeParams, Mode};
use jpeg2000::image::Image;

use crate::timing::figure1_shares;
use crate::ModeSel;

/// Measured and published per-stage shares, in percent, ordered
/// `[arith decoder, IQ, IDWT, ICT, DC shift]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// Which mode was profiled.
    pub mode: ModeSel,
    /// Shares measured on this machine's decoder.
    pub measured: [f64; 5],
    /// The shares Figure 1 reports.
    pub paper: [f64; 5],
}

impl ProfileResult {
    /// Whether the measured profile is entropy-decoder dominated, the
    /// property the whole case study builds on.
    pub fn entropy_dominates(&self) -> bool {
        self.measured[0] > 50.0
    }
}

/// Profiles a decode of a synthetic image and reports the stage shares.
///
/// `size` is the square image edge; larger images give more stable
/// shares (256 is a good default).
///
/// # Panics
///
/// Panics if encoding or decoding the synthetic workload fails — that
/// would be a codec bug, not a usage error.
pub fn profile(mode: ModeSel, size: usize) -> ProfileResult {
    let image = Image::synthetic_rgb(size, size, 1);
    let params = match mode {
        ModeSel::Lossless => EncodeParams::new(Mode::Lossless),
        ModeSel::Lossy => EncodeParams::new(Mode::lossy_default()),
    }
    .tile_size(size / 4, size / 4);
    let bytes = encode(&image, &params).expect("encode profile workload");
    let out = decode(&bytes).expect("decode profile workload");
    ProfileResult {
        mode,
        measured: out.timings.shares(),
        paper: figure1_shares(mode),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_shares_sum_to_100() {
        let p = profile(ModeSel::Lossless, 64);
        let sum: f64 = p.measured.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn entropy_decoder_dominates_both_modes() {
        for mode in ModeSel::ALL {
            let p = profile(mode, 64);
            assert!(p.entropy_dominates(), "{mode}: measured {:?}", p.measured);
        }
    }
}
