//! The Figure 1 experiment: per-stage execution-time profile of the
//! software-only decoder.
//!
//! The paper profiled a C implementation on the target processor; here
//! the Rust decoder is profiled natively (wall clock per stage) and the
//! resulting shares are compared against the published percentages.

use std::time::Instant;

use jpeg2000::codec::{decode, encode, EncodeParams, Mode};
use jpeg2000::image::Image;
use jpeg2000::scratch::DecodeScratch;
use osss_sim::SimTime;

use crate::timing::{figure1_shares, ARITH_PER_TILE};
use crate::workload::workload;
use crate::ModeSel;

/// Measured and published per-stage shares, in percent, ordered
/// `[arith decoder, IQ, IDWT, ICT, DC shift]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// Which mode was profiled.
    pub mode: ModeSel,
    /// Shares measured on this machine's decoder.
    pub measured: [f64; 5],
    /// The shares Figure 1 reports.
    pub paper: [f64; 5],
}

impl ProfileResult {
    /// Whether the measured profile is entropy-decoder dominated, the
    /// property the whole case study builds on.
    pub fn entropy_dominates(&self) -> bool {
        self.measured[0] > 50.0
    }
}

/// Profiles a decode of a synthetic image and reports the stage shares.
///
/// `size` is the square image edge; larger images give more stable
/// shares (256 is a good default).
///
/// # Panics
///
/// Panics if encoding or decoding the synthetic workload fails — that
/// would be a codec bug, not a usage error.
pub fn profile(mode: ModeSel, size: usize) -> ProfileResult {
    let image = Image::synthetic_rgb(size, size, 1);
    let params = match mode {
        ModeSel::Lossless => EncodeParams::new(Mode::Lossless),
        ModeSel::Lossy => EncodeParams::new(Mode::lossy_default()),
    }
    .tile_size(size / 4, size / 4);
    let bytes = encode(&image, &params).expect("encode profile workload");
    let out = decode(&bytes).expect("decode profile workload");
    ProfileResult {
        mode,
        measured: out.timings.shares(),
        paper: figure1_shares(mode),
    }
}

/// Native per-tile entropy-decode time of the *pre-optimisation* Tier-1
/// kernel on the Table-1 workload, in ns. Measured on this machine
/// immediately before the flags-lattice rewrite; the same numbers live
/// in `BENCH_decode.json` under `baseline_pre_pr`. The paper's 180 ms
/// `OSSS_EET` annotation corresponds to *that* implementation, so the
/// ratio of a fresh measurement to this anchor is exactly the factor by
/// which the software EET must shrink for the simulation to keep
/// tracking the shipped kernel.
pub fn pre_optimisation_entropy_ns(mode: ModeSel) -> u64 {
    match mode {
        ModeSel::Lossless => 729_004,
        ModeSel::Lossy => 795_882,
    }
}

/// The arithmetic-stage software EET, re-derived from a kernel
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArithEet {
    /// Which mode was measured.
    pub mode: ModeSel,
    /// Fresh per-tile entropy-decode time of the current kernel, ns.
    pub measured_ns: u64,
    /// `pre_optimisation_entropy_ns / measured_ns` — how much faster the
    /// current kernel is than the one the paper anchor describes.
    pub kernel_speedup: f64,
    /// The paper's anchor: 180 ms per tile on the target CPU.
    pub paper: SimTime,
    /// The anchor scaled by the measured speedup — what the software
    /// timing annotation should be for the optimised implementation.
    pub rederived: SimTime,
}

/// Scales the paper's 180 ms arithmetic anchor by the ratio of the given
/// measurement to the pre-optimisation native baseline. Pure so it can
/// be tested deterministically; see [`measure_arith_eet`] for the
/// measuring front-end.
pub fn rederive_arith_eet(mode: ModeSel, measured_ns: u64) -> ArithEet {
    let baseline = pre_optimisation_entropy_ns(mode);
    let speedup = baseline as f64 / measured_ns.max(1) as f64;
    let rederived = SimTime::ps((ARITH_PER_TILE.as_ps() as f64 / speedup) as u64);
    ArithEet {
        mode,
        measured_ns: measured_ns.max(1),
        kernel_speedup: speedup,
        paper: ARITH_PER_TILE,
        rederived,
    }
}

/// Measures the current Tier-1 kernel on the Table-1 workload
/// (best-of-`samples` per-tile entropy decode, one reused scratch arena)
/// and re-derives the arithmetic-stage software EET from it.
pub fn measure_arith_eet(mode: ModeSel, samples: usize) -> ArithEet {
    let wl = workload(mode);
    let tiles = wl.decoder.num_tiles();
    let mut scratch = DecodeScratch::new();
    let mut best = u64::MAX;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        for t in 0..tiles {
            let _ = wl
                .decoder
                .entropy_decode_tile_with(t, &mut scratch)
                .expect("entropy decode workload tile");
        }
        // `as_nanos()` is u128; a plain `as u64` cast would silently
        // wrap a pathological (stalled-clock) measurement. Saturate
        // instead — `u64::MAX` ns keeps the `min` fold correct.
        best = best.min(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    rederive_arith_eet(mode, best / tiles.max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_shares_sum_to_100() {
        let p = profile(ModeSel::Lossless, 64);
        let sum: f64 = p.measured.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn entropy_decoder_dominates_both_modes() {
        for mode in ModeSel::ALL {
            let p = profile(mode, 64);
            assert!(p.entropy_dominates(), "{mode}: measured {:?}", p.measured);
        }
    }

    #[test]
    fn rederived_eet_scales_with_measured_kernel() {
        // A kernel exactly at the baseline keeps the paper anchor.
        let same = rederive_arith_eet(
            ModeSel::Lossless,
            pre_optimisation_entropy_ns(ModeSel::Lossless),
        );
        assert!((same.kernel_speedup - 1.0).abs() < 1e-9);
        assert_eq!(same.rederived, same.paper);

        // A 2x-faster kernel halves the EET.
        let half = rederive_arith_eet(
            ModeSel::Lossy,
            pre_optimisation_entropy_ns(ModeSel::Lossy) / 2,
        );
        assert!((half.kernel_speedup - 2.0).abs() < 1e-2);
        let ratio = half.paper.as_ps() as f64 / half.rederived.as_ps() as f64;
        assert!((ratio - half.kernel_speedup).abs() < 1e-2);
    }

    #[test]
    fn rederive_survives_degenerate_measurements() {
        // A zero measurement (timer resolution floor) must not divide
        // by zero — it clamps to 1 ns.
        let z = rederive_arith_eet(ModeSel::Lossless, 0);
        assert_eq!(z.measured_ns, 1);
        assert!(z.kernel_speedup.is_finite() && z.kernel_speedup > 0.0);
        // An absurdly slow measurement keeps everything finite too.
        let slow = rederive_arith_eet(ModeSel::Lossy, u64::MAX);
        assert!(slow.kernel_speedup > 0.0);
        assert!(slow.rederived.as_ps() > 0);
    }

    /// The EET re-derivation has exactly two inputs besides the fresh
    /// measurement: the paper's 180 ms/tile anchor and the
    /// pre-optimisation native entropy baseline. Neither depends on the
    /// reconstruction stages, so datapath work (e.g. the fixed-point
    /// DWT rewrite) must leave them — and every simulated latency built
    /// on them — untouched. Pin both, and cross-check that the
    /// committed `BENCH_decode.json` still records the same anchor
    /// under `baseline_pre_pr`.
    #[test]
    fn eet_derivation_inputs_are_pinned() {
        assert_eq!(pre_optimisation_entropy_ns(ModeSel::Lossless), 729_004);
        assert_eq!(pre_optimisation_entropy_ns(ModeSel::Lossy), 795_882);
        assert_eq!(ARITH_PER_TILE, SimTime::ms(180));

        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode.json");
        let json = std::fs::read_to_string(path).expect("committed BENCH_decode.json");
        let pre_pr = &json[json
            .find("\"baseline_pre_pr\"")
            .expect("baseline_pre_pr block")..];
        let entropy = &pre_pr[pre_pr
            .find("\"entropy_per_tile_ns\"")
            .expect("entropy_per_tile_ns block")..];
        let entropy = &entropy[..entropy.find('}').expect("closing brace") + 1];
        for (name, mode) in [("lossless", ModeSel::Lossless), ("lossy", ModeSel::Lossy)] {
            let v = &entropy[entropy.find(&format!("\"{name}\"")).expect(name)..];
            let digits: String = v
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(|c| c.is_ascii_digit())
                .collect();
            assert_eq!(
                digits.parse::<u64>().unwrap(),
                pre_optimisation_entropy_ns(mode),
                "{name}: BENCH_decode.json baseline_pre_pr drifted from the EET anchor"
            );
        }
    }

    #[test]
    fn measured_eet_is_sane_and_not_slower_than_paper_anchor_by_much() {
        for mode in ModeSel::ALL {
            let eet = measure_arith_eet(mode, 3);
            assert!(eet.measured_ns > 0);
            assert_eq!(eet.paper, ARITH_PER_TILE);
            // The flags-lattice kernel should not regress below the
            // pre-optimisation baseline; a wide margin keeps the test
            // robust on loaded CI machines. The baseline was measured
            // on an optimised build, so the comparison only means
            // something in release mode.
            if cfg!(debug_assertions) {
                assert!(eet.kernel_speedup > 0.0);
            } else {
                assert!(
                    eet.kernel_speedup > 0.5,
                    "{mode}: speedup {:.2}",
                    eet.kernel_speedup
                );
            }
            assert!(eet.rederived.as_ps() > 0);
        }
    }
}
