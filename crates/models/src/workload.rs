//! The evaluation workload: a synthetic 3-component image encoded into a
//! 16-tile codestream, matching the paper's "16 tiles with 3 components".
//!
//! Built once per mode and shared by every model run (the codestream is
//! immutable; the staged decoder is `Sync`).

use std::sync::{Arc, OnceLock};

use jpeg2000::codec::{decode, encode, EncodeParams, Mode, StagedDecoder};
use jpeg2000::image::Image;

use crate::ModeSel;

/// The shared workload of one mode.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The original image.
    pub image: Arc<Image>,
    /// The encoded codestream.
    pub codestream: Arc<Vec<u8>>,
    /// The staged decoder over that codestream.
    pub decoder: Arc<StagedDecoder>,
    /// The reference decode result (what every model must reproduce).
    pub reference: Arc<Image>,
}

fn build(mode: ModeSel) -> Workload {
    // 128×128 with 32×32 tiles = 16 tiles, 3 components.
    let image = Image::synthetic_rgb(128, 128, 2008);
    let params = match mode {
        ModeSel::Lossless => EncodeParams::new(Mode::Lossless),
        ModeSel::Lossy => EncodeParams::new(Mode::lossy_default()),
    }
    .tile_size(32, 32);
    let codestream = encode(&image, &params).expect("encode workload");
    let decoder = StagedDecoder::new(&codestream).expect("parse workload");
    assert_eq!(decoder.num_tiles(), crate::timing::NUM_TILES);
    let reference = decode(&codestream).expect("reference decode").image;
    Workload {
        image: Arc::new(image),
        codestream: Arc::new(codestream),
        decoder: Arc::new(decoder),
        reference: Arc::new(reference),
    }
}

/// The cached workload for `mode`.
pub fn workload(mode: ModeSel) -> Workload {
    static LOSSLESS: OnceLock<Workload> = OnceLock::new();
    static LOSSY: OnceLock<Workload> = OnceLock::new();
    match mode {
        ModeSel::Lossless => LOSSLESS.get_or_init(|| build(ModeSel::Lossless)).clone(),
        ModeSel::Lossy => LOSSY.get_or_init(|| build(ModeSel::Lossy)).clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_16_tiles_3_components() {
        for mode in ModeSel::ALL {
            let w = workload(mode);
            assert_eq!(w.decoder.num_tiles(), 16);
            assert_eq!(w.decoder.header().num_components, 3);
        }
    }

    #[test]
    fn lossless_reference_is_exact() {
        let w = workload(ModeSel::Lossless);
        assert_eq!(*w.reference, *w.image);
    }

    #[test]
    fn lossy_reference_is_close() {
        let w = workload(ModeSel::Lossy);
        let psnr = w.image.psnr(&w.reference);
        assert!(psnr > 30.0, "PSNR {psnr:.1}");
    }

    #[test]
    fn workload_is_cached() {
        let a = workload(ModeSel::Lossless);
        let b = workload(ModeSel::Lossless);
        assert!(Arc::ptr_eq(&a.decoder, &b.decoder));
    }
}
