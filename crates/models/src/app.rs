//! Application-Layer model versions 1–5.
//!
//! All versions move **real tile data** through the simulated structure:
//! the entropy decoder, IQ, IDWT, ICT and DC-shift stages call the
//! [`jpeg2000`] staged decoder inside their EET blocks, and the decoded
//! image is compared against the reference decoder at the end of every
//! run.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use jpeg2000::codec::{StagedDecoder, TileCoeffs, TileSamples, TileWavelet};
use jpeg2000::image::Image;
use osss_core::sched::{Arbiter, Fcfs, RoundRobin, StaticPriority};
use osss_core::{SharedObject, SwTask};
use osss_sim::probe::MetricsRegistry;
use osss_sim::trace::Tracer;
use osss_sim::{SimError, SimReport, SimTime, Simulation};

use crate::timing::{
    hw_idwt_time, hw_iq_time, so_arb_delay, so_copy_time, sw_stage_times, NUM_TILES,
};
use crate::workload::{workload, Workload};
use crate::{ModeSel, VersionId, VersionResult};

/// Shared measurement sink.
///
/// The plain variant ([`Metrics::new`]) carries only the IDWT-time
/// accumulator the Table-1 runs always need. The observed variant
/// ([`Metrics::observed`]) additionally carries a [`Tracer`] (VCD-able
/// signal dump) and a [`MetricsRegistry`] (counter/gauge snapshot); the
/// run functions emit into both only when they are present, so the
/// un-observed runs pay nothing beyond an `Option` check.
#[derive(Clone, Default)]
pub(crate) struct Metrics {
    inner: Arc<Mutex<SimTime>>,
    tiles_done: Arc<Mutex<u64>>,
    credit: Arc<Mutex<i64>>,
    tracer: Option<Tracer>,
    registry: Option<MetricsRegistry>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A sink with trace and registry attached — every helper below
    /// starts emitting signal records and counters.
    pub(crate) fn observed() -> Self {
        Metrics {
            tracer: Some(Tracer::new()),
            registry: Some(MetricsRegistry::new()),
            ..Self::default()
        }
    }

    pub(crate) fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    pub(crate) fn registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_ref()
    }

    pub(crate) fn is_observed(&self) -> bool {
        self.tracer.is_some() || self.registry.is_some()
    }

    pub(crate) fn tiles_count(&self) -> u64 {
        *self.tiles_done.lock()
    }

    pub(crate) fn add_idwt(&self, d: SimTime) {
        *self.inner.lock() += d;
    }

    pub(crate) fn idwt(&self) -> SimTime {
        *self.inner.lock()
    }

    /// Accounts one IDWT busy interval `[start, end]`: accumulates the
    /// Table-1 IDWT time and, when observed, traces the `idwt.busy`
    /// signal as a 1→0 pulse — `examples/observability.rs` re-derives
    /// the IDWT column from exactly these pulses.
    pub(crate) fn idwt_span(&self, start: SimTime, end: SimTime) {
        self.add_idwt(end - start);
        if let Some(tr) = &self.tracer {
            tr.record_at(start, "idwt.busy", 1);
            tr.record_at(end, "idwt.busy", 0);
        }
    }

    /// Marks one tile fully decoded at `now`; traces the cumulative
    /// `sw.tiles_done` staircase (its last step lands exactly at the
    /// run's end time).
    pub(crate) fn tile_done(&self, now: SimTime) {
        let mut done = self.tiles_done.lock();
        *done += 1;
        if let Some(tr) = &self.tracer {
            tr.record_at(now, "sw.tiles_done", *done);
        }
    }

    /// Adjusts the HW/SW hand-off credit: −1 when a software task
    /// submits work to the co-processor object, +1 when it picks a
    /// result back up. The running value is −(tiles in flight), so the
    /// traced `hwsw.credit` signal is *negative* whenever the pipeline
    /// holds work — the guaranteed signed signal in every observed VCD.
    pub(crate) fn credit(&self, now: SimTime, delta: i64) {
        let mut c = self.credit.lock();
        *c += delta;
        if let Some(tr) = &self.tracer {
            tr.record_at(now, "hwsw.credit", *c);
        }
    }
}

/// Collects decoded tiles for final assembly.
#[derive(Clone)]
pub(crate) struct Outputs {
    tiles: Arc<Mutex<Vec<Option<TileSamples>>>>,
}

impl Outputs {
    pub(crate) fn new(n: usize) -> Self {
        Outputs {
            tiles: Arc::new(Mutex::new(vec![None; n])),
        }
    }

    pub(crate) fn place(&self, index: usize, samples: TileSamples) {
        self.tiles.lock()[index] = Some(samples);
    }

    pub(crate) fn assemble(&self, dec: &StagedDecoder) -> Option<Image> {
        let tiles = self.tiles.lock();
        let mut img = dec.blank_image();
        for t in tiles.iter() {
            dec.place_tile(&mut img, t.as_ref()?);
        }
        Some(img)
    }
}

/// Builds the final [`VersionResult`] from a finished simulation.
pub(crate) fn finish(
    version: VersionId,
    mode: ModeSel,
    w: &Workload,
    report: &SimReport,
    metrics: &Metrics,
    outputs: &Outputs,
    so_arbitration_wait: SimTime,
) -> Result<VersionResult, SimError> {
    let assembled = outputs
        .assemble(&w.decoder)
        .ok_or_else(|| SimError::model(format!("{version}: missing decoded tiles")))?;
    if let Some(reg) = metrics.registry() {
        reg.add_counter("model.tiles", metrics.tiles_count());
        reg.set_gauge(
            "model.decode_ps",
            i64::try_from(report.end_time.as_ps()).unwrap_or(i64::MAX),
        );
        reg.set_gauge(
            "model.idwt_ps",
            i64::try_from(metrics.idwt().as_ps()).unwrap_or(i64::MAX),
        );
        reg.set_gauge(
            "model.arb_wait_ps",
            i64::try_from(so_arbitration_wait.as_ps()).unwrap_or(i64::MAX),
        );
    }
    Ok(VersionResult {
        version,
        mode,
        decode_time: report.end_time,
        idwt_time: metrics.idwt(),
        functional_ok: assembled == *w.reference,
        so_arbitration_wait,
    })
}

/// The HW/SW shared object's storage: pending entropy-decoded tiles,
/// dequantised tiles awaiting a filter block, and finished tiles.
pub(crate) struct HwSwState {
    pub(crate) pending: VecDeque<(usize, TileCoeffs)>,
    pub(crate) wavelets: HashMap<usize, TileWavelet>,
    pub(crate) results: HashMap<usize, TileSamples>,
    pub(crate) capacity: usize,
}

impl HwSwState {
    pub(crate) fn new(capacity: usize) -> Self {
        HwSwState {
            pending: VecDeque::new(),
            wavelets: HashMap::new(),
            results: HashMap::new(),
            capacity,
        }
    }
}

/// The IDWT-params shared object: parameter exchange and arbitration
/// between IDWT2D (control) and the two filter blocks.
#[derive(Default)]
pub(crate) struct ParamsState {
    pub(crate) request: Option<usize>,
    pub(crate) response: Option<usize>,
}

/// Version 1 — software only: one task runs all five stages per tile.
pub fn run_v1(mode: ModeSel) -> Result<VersionResult, SimError> {
    run_v1_metrics(mode, Metrics::new())
}

pub(crate) fn run_v1_metrics(mode: ModeSel, metrics: Metrics) -> Result<VersionResult, SimError> {
    let w = workload(mode);
    let t = sw_stage_times(mode);
    let mut sim = Simulation::new();
    if metrics.is_observed() {
        sim.enable_sched_probe();
    }
    let outputs = Outputs::new(NUM_TILES);
    let dec = Arc::clone(&w.decoder);
    let (m2, o2) = (metrics.clone(), outputs.clone());
    SwTask::spawn(&mut sim, "decoder_sw", move |env, ctx| {
        for i in 0..NUM_TILES {
            let coeffs = env.eet(ctx, t.arith, || {
                dec.entropy_decode_tile(i).expect("entropy decode")
            })?;
            let wavelet = env.eet(ctx, t.iq, || dec.dequantize_tile(&coeffs))?;
            let t0 = ctx.now();
            let samples = env.eet(ctx, t.idwt, || dec.idwt_tile(wavelet))?;
            m2.idwt_span(t0, ctx.now());
            let samples = env.eet(ctx, t.ict, || dec.inverse_mct_tile(samples))?;
            let samples = env.eet(ctx, t.dc, || dec.dc_unshift_tile(samples))?;
            o2.place(i, samples);
            m2.tile_done(ctx.now());
        }
        Ok(())
    });
    let report = sim.run()?;
    export_sched(&sim, &metrics);
    finish(
        VersionId::V1,
        mode,
        &w,
        &report,
        &metrics,
        &outputs,
        SimTime::ZERO,
    )
}

/// Exports the scheduler-probe snapshot into the observed registry (a
/// no-op for plain runs — the probe is only enabled when observed).
pub(crate) fn export_sched(sim: &Simulation, metrics: &Metrics) {
    if let (Some(reg), Some(snap)) = (metrics.registry(), sim.sched_snapshot()) {
        snap.export_to(reg);
    }
}

/// The shared structure of versions 2 and 4 generalised over the
/// pipeline count: `n_tasks` software tasks decode disjoint tile sets,
/// sharing one blocking IQ+IDWT co-processor object. `n_tasks = 1` is
/// version 2 ("HW/SW not parallel"), `n_tasks = 4` is version 4 ("SW
/// parallel"); other counts are exploration points on the same axis —
/// the design space the native [`jpeg2000::parallel`] backend mirrors
/// with its `workers(n)` knob.
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics if `n_tasks` is zero or exceeds the tile count.
pub fn run_sw_parallel(mode: ModeSel, n_tasks: usize) -> Result<VersionResult, SimError> {
    run_sw_parallel_metrics(mode, n_tasks, Metrics::new())
}

pub(crate) fn run_sw_parallel_metrics(
    mode: ModeSel,
    n_tasks: usize,
    metrics: Metrics,
) -> Result<VersionResult, SimError> {
    assert!(
        (1..=NUM_TILES).contains(&n_tasks),
        "n_tasks must be in 1..={NUM_TILES}"
    );
    let version = if n_tasks == 1 {
        VersionId::V2
    } else {
        VersionId::V4
    };
    let w = workload(mode);
    let t = sw_stage_times(mode);
    let (hw_iq, hw_idwt) = (hw_iq_time(mode), hw_idwt_time(mode));
    let mut sim = Simulation::new();
    if metrics.is_observed() {
        sim.enable_sched_probe();
    }
    let outputs = Outputs::new(NUM_TILES);
    let so = SharedObject::new(&mut sim, "hwsw_so", (), Fcfs::new());
    for k in 0..n_tasks {
        let dec = Arc::clone(&w.decoder);
        let (m2, o2) = (metrics.clone(), outputs.clone());
        let so2 = so.clone();
        SwTask::spawn(&mut sim, &format!("sw_task{k}"), move |env, ctx| {
            for i in (k..NUM_TILES).step_by(n_tasks) {
                let coeffs = env.eet(ctx, t.arith, || {
                    dec.entropy_decode_tile(i).expect("entropy decode")
                })?;
                // Blocking co-processor call: IQ then IDWT inside the
                // object, with arbiter grant plus by-value
                // argument/result copies (OSSS method calls serialise
                // their arguments).
                let dec2 = Arc::clone(&dec);
                let m3 = m2.clone();
                m2.credit(ctx.now(), -1);
                let samples = so2.call(ctx, move |_, ctx| {
                    ctx.wait(so_arb_delay(n_tasks) + so_copy_time())?;
                    let wavelet = dec2.dequantize_tile(&coeffs);
                    ctx.wait(hw_iq)?;
                    let t0 = ctx.now();
                    let samples = dec2.idwt_tile(wavelet);
                    ctx.wait(hw_idwt)?;
                    m3.idwt_span(t0, ctx.now());
                    ctx.wait(so_copy_time())?;
                    Ok(samples)
                })?;
                m2.credit(ctx.now(), 1);
                let samples = env.eet(ctx, t.ict, || dec.inverse_mct_tile(samples))?;
                let samples = env.eet(ctx, t.dc, || dec.dc_unshift_tile(samples))?;
                o2.place(i, samples);
                m2.tile_done(ctx.now());
            }
            Ok(())
        });
    }
    let report = sim.run()?;
    export_sched(&sim, &metrics);
    let wait = so.stats().total_arbitration_wait;
    finish(version, mode, &w, &report, &metrics, &outputs, wait)
}

/// Version 2 — HW/SW not parallel: the software task performs the
/// arithmetic decoding, then a **blocking** method call on the shared
/// object computes IQ + IDWT in hardware, then ICT + DC shift in software.
pub fn run_v2(mode: ModeSel) -> Result<VersionResult, SimError> {
    run_sw_parallel(mode, 1)
}

/// Version 4 — SW parallel (cp. 2): four software tasks decode disjoint
/// tile sets, sharing one IQ+IDWT co-processor object.
pub fn run_v4(mode: ModeSel) -> Result<VersionResult, SimError> {
    run_sw_parallel(mode, 4)
}

/// Shared structure of versions 3 and 5 (and, with channel/memory
/// refinements, 6a–7b): `n_sw_tasks` software tasks feed the HW/SW
/// shared object; the IDWT2D control block and the IDWT53/IDWT97 filter
/// blocks process tiles through the IDWT-params object.
pub(crate) struct PipelineModel {
    pub(crate) n_sw_tasks: usize,
    pub(crate) version: VersionId,
    pub(crate) policy: ArbPolicy,
}

/// Which arbitration policy the HW/SW shared object uses — an ablation
/// axis over the OSSS scheduler library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbPolicy {
    /// First-come-first-served (the case study's choice).
    Fcfs,
    /// Round-robin over client identities.
    RoundRobin,
    /// Static priority (software tasks get ascending priorities).
    StaticPriority,
}

impl ArbPolicy {
    /// All policies, FCFS first.
    pub const ALL: [ArbPolicy; 3] = [
        ArbPolicy::Fcfs,
        ArbPolicy::RoundRobin,
        ArbPolicy::StaticPriority,
    ];

    fn arbiter(self) -> Box<dyn Arbiter> {
        match self {
            ArbPolicy::Fcfs => Box::new(Fcfs::new()),
            ArbPolicy::RoundRobin => Box::new(RoundRobin::new()),
            ArbPolicy::StaticPriority => Box::new(StaticPriority::new()),
        }
    }
}

impl std::fmt::Display for ArbPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArbPolicy::Fcfs => write!(f, "fcfs"),
            ArbPolicy::RoundRobin => write!(f, "round-robin"),
            ArbPolicy::StaticPriority => write!(f, "static-priority"),
        }
    }
}

pub(crate) fn run_pipeline_app(
    mode: ModeSel,
    cfg: PipelineModel,
    metrics: Metrics,
) -> Result<VersionResult, SimError> {
    let w = workload(mode);
    let t = sw_stage_times(mode);
    let (hw_iq, hw_idwt) = (hw_iq_time(mode), hw_idwt_time(mode));
    let copy = so_copy_time();
    // HW/SW object clients: the software tasks plus IDWT2D and the two
    // filter blocks; the params object serves the three IDWT components.
    let hwsw_arb = so_arb_delay(cfg.n_sw_tasks + 3);
    let params_arb = so_arb_delay(3);
    let mut sim = Simulation::new();
    if metrics.is_observed() {
        sim.enable_sched_probe();
    }
    let outputs = Outputs::new(NUM_TILES);
    let hwsw = SharedObject::new(&mut sim, "hwsw_so", HwSwState::new(2), cfg.policy.arbiter());
    let params = SharedObject::new(
        &mut sim,
        "idwt_params_so",
        ParamsState::default(),
        Fcfs::new(),
    );

    // Software tasks: arithmetic decoding + tile hand-off, then pick-up,
    // ICT and DC shift for their own tiles.
    for k in 0..cfg.n_sw_tasks {
        let dec = Arc::clone(&w.decoder);
        let o2 = outputs.clone();
        let m2 = metrics.clone();
        let hwsw = hwsw.clone();
        let n = cfg.n_sw_tasks;
        SwTask::spawn(&mut sim, &format!("sw_task{k}"), move |env, ctx| {
            for i in (k..NUM_TILES).step_by(n) {
                let coeffs = env.eet(ctx, t.arith, || {
                    dec.entropy_decode_tile(i).expect("entropy decode")
                })?;
                // Bounded hand-off buffer inside the shared object.
                hwsw.call_guarded(
                    ctx,
                    |s| s.pending.len() < s.capacity,
                    |s, ctx| {
                        ctx.wait(hwsw_arb + copy)?;
                        s.pending.push_back((i, coeffs));
                        Ok(())
                    },
                )?;
                m2.credit(ctx.now(), -1);
            }
            for i in (k..NUM_TILES).step_by(n) {
                let samples = hwsw.call_guarded(
                    ctx,
                    move |s| s.results.contains_key(&i),
                    move |s, ctx| {
                        ctx.wait(hwsw_arb + copy)?;
                        Ok(s.results.remove(&i).expect("guard held"))
                    },
                )?;
                m2.credit(ctx.now(), 1);
                let samples = env.eet(ctx, t.ict, || dec.inverse_mct_tile(samples))?;
                let samples = env.eet(ctx, t.dc, || dec.dc_unshift_tile(samples))?;
                o2.place(i, samples);
                m2.tile_done(ctx.now());
            }
            Ok(())
        });
    }

    // IDWT2D control block: drains the pending queue, performs IQ inside
    // the shared object, then drives a filter block through the params
    // object. One process — tiles serialise through it, but overlap with
    // the software pipeline.
    {
        let dec = Arc::clone(&w.decoder);
        let hwsw = hwsw.clone();
        let params = params.clone();
        sim.spawn_process("idwt2d_ctrl", move |ctx| loop {
            let i = hwsw.call_guarded(
                ctx,
                |s| !s.pending.is_empty(),
                |s, ctx| {
                    ctx.wait(hwsw_arb + copy)?;
                    let (i, coeffs) = s.pending.pop_front().expect("guard held");
                    let wavelet = dec.dequantize_tile(&coeffs);
                    ctx.wait(hw_iq)?;
                    s.wavelets.insert(i, wavelet);
                    Ok(i)
                },
            )?;
            params.call(ctx, |p, ctx| {
                ctx.wait(params_arb)?;
                p.request = Some(i);
                Ok(())
            })?;
            params.call_guarded(
                ctx,
                move |p| p.response == Some(i),
                |p, ctx| {
                    ctx.wait(params_arb)?;
                    p.response = None;
                    Ok(())
                },
            )?;
        });
    }

    // Filter blocks: IDWT53 serves the lossless path, IDWT97 the lossy
    // path; both contend for the params object (its arbiter is the
    // "arbitration unit between the three concurrent IDWT components").
    for (name, serves) in [("idwt53", ModeSel::Lossless), ("idwt97", ModeSel::Lossy)] {
        let dec = Arc::clone(&w.decoder);
        let hwsw = hwsw.clone();
        let params = params.clone();
        let m2 = metrics.clone();
        let active = serves == mode;
        sim.spawn_process(name, move |ctx| {
            loop {
                if !active {
                    // The other filter block stays idle in this mode.
                    return Ok(());
                }
                let i = params.call_guarded(
                    ctx,
                    |p| p.request.is_some(),
                    |p, ctx| {
                        ctx.wait(params_arb)?;
                        Ok(p.request.take().expect("guard held"))
                    },
                )?;
                // Fetch the dequantised tile from the shared object,
                // transform, store the spatial samples back.
                let wavelet = hwsw.call_guarded(
                    ctx,
                    move |s| s.wavelets.contains_key(&i),
                    move |s, ctx| {
                        ctx.wait(hwsw_arb + copy)?;
                        Ok(s.wavelets.remove(&i).expect("guard held"))
                    },
                )?;
                let samples = {
                    let t0 = ctx.now();
                    let out = dec.idwt_tile(wavelet);
                    ctx.wait(hw_idwt)?;
                    // On the Application Layer the IDWT time is the pure
                    // hardware compute — communication is still abstract.
                    m2.idwt_span(t0, ctx.now());
                    out
                };
                hwsw.call(ctx, move |s, ctx| {
                    ctx.wait(hwsw_arb + copy)?;
                    s.results.insert(i, samples);
                    Ok(())
                })?;
                params.call(ctx, |p, ctx| {
                    ctx.wait(params_arb)?;
                    p.response = Some(i);
                    Ok(())
                })?;
            }
        });
    }

    let report = sim.run()?;
    export_sched(&sim, &metrics);
    let wait = hwsw.stats().total_arbitration_wait + params.stats().total_arbitration_wait;
    finish(cfg.version, mode, &w, &report, &metrics, &outputs, wait)
}

/// The shared structure of versions 3 and 5 generalised over the
/// pipeline count: `n_sw_tasks` software pipelines feed the three-block
/// IDWT hardware pipeline through the HW/SW shared object. `n_sw_tasks
/// = 1` is version 3, `n_sw_tasks = 4` is version 5; other counts are
/// exploration points on the same axis.
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics if `n_sw_tasks` is zero or exceeds the tile count.
pub fn run_hw_sw_parallel(mode: ModeSel, n_sw_tasks: usize) -> Result<VersionResult, SimError> {
    assert!(
        (1..=NUM_TILES).contains(&n_sw_tasks),
        "n_sw_tasks must be in 1..={NUM_TILES}"
    );
    run_pipeline_app(
        mode,
        PipelineModel {
            n_sw_tasks,
            version: if n_sw_tasks == 1 {
                VersionId::V3
            } else {
                VersionId::V5
            },
            policy: ArbPolicy::Fcfs,
        },
        Metrics::new(),
    )
}

/// Runs the version 2↔4 axis (blocking co-processor, `n` software
/// pipelines) for each count in `counts` — the Application-Layer
/// scaling curve that the native tile-parallel backend's `workers(n)`
/// knob mirrors in real execution.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sw_scaling_curve(
    mode: ModeSel,
    counts: &[usize],
) -> Result<Vec<(usize, VersionResult)>, SimError> {
    counts
        .iter()
        .map(|&n| run_sw_parallel(mode, n).map(|r| (n, r)))
        .collect()
}

/// Version 3 — HW/SW parallel: one software task plus the three-block
/// hardware pipeline.
pub fn run_v3(mode: ModeSel) -> Result<VersionResult, SimError> {
    run_hw_sw_parallel(mode, 1)
}

/// Version 5 — SW & HW/SW parallel: four software tasks plus the
/// hardware pipeline; the HW/SW shared object serves seven clients.
pub fn run_v5(mode: ModeSel) -> Result<VersionResult, SimError> {
    run_v5_with_policy(mode, ArbPolicy::Fcfs)
}

/// Version 5 with an explicit arbitration policy on the HW/SW shared
/// object (the policy ablation of the OSSS scheduler library).
pub fn run_v5_with_policy(mode: ModeSel, policy: ArbPolicy) -> Result<VersionResult, SimError> {
    run_pipeline_app(
        mode,
        PipelineModel {
            n_sw_tasks: 4,
            version: VersionId::V5,
            policy,
        },
        Metrics::new(),
    )
}

#[cfg(test)]
mod scaling_tests {
    use super::*;

    #[test]
    fn sw_pipeline_count_scales_decode_time() {
        for mode in ModeSel::ALL {
            let curve = sw_scaling_curve(mode, &[1, 2, 4]).expect("curve");
            for (n, r) in &curve {
                assert!(r.functional_ok, "{mode}: {n} pipelines output mismatch");
            }
            assert!(
                curve[0].1.decode_time > curve[1].1.decode_time
                    && curve[1].1.decode_time > curve[2].1.decode_time,
                "{mode}: decode time must fall with pipeline count: {:?}",
                curve
                    .iter()
                    .map(|(n, r)| (*n, r.decode_time))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn two_pipelines_land_between_v2_and_v4() {
        let mode = ModeSel::Lossless;
        let v2 = run_sw_parallel(mode, 1).expect("v2");
        let mid = run_sw_parallel(mode, 2).expect("n=2");
        let v4 = run_sw_parallel(mode, 4).expect("v4");
        assert_eq!(mid.version, VersionId::V4);
        assert!(v4.decode_time < mid.decode_time && mid.decode_time < v2.decode_time);
    }

    #[test]
    fn hw_pipeline_variant_scales_too() {
        let mode = ModeSel::Lossy;
        let one = run_hw_sw_parallel(mode, 1).expect("n=1");
        let two = run_hw_sw_parallel(mode, 2).expect("n=2");
        let four = run_hw_sw_parallel(mode, 4).expect("n=4");
        assert!(one.functional_ok && two.functional_ok && four.functional_ok);
        assert!(two.decode_time < one.decode_time);
        assert!(four.decode_time < two.decode_time);
    }

    #[test]
    fn native_parallel_backend_reproduces_model_reference() {
        // The design space the models explore in simulated time, the
        // native backend executes for real: same codestream, same
        // reference image, for 1, 2 and 4 pipelines.
        for mode in ModeSel::ALL {
            let w = workload(mode);
            for n in [1usize, 2, 4] {
                let out =
                    jpeg2000::parallel::decode_parallel(&w.codestream, n).expect("parallel decode");
                assert_eq!(out.image, *w.reference, "{mode}: {n} workers");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(t: SimTime) -> f64 {
        t.as_ms_f64()
    }

    #[test]
    fn v1_matches_the_analytic_total() {
        let r = run_v1(ModeSel::Lossless).expect("v1");
        assert!(r.functional_ok, "decoded image must match reference");
        let expected = sw_stage_times(ModeSel::Lossless).total() * NUM_TILES as u64;
        assert_eq!(r.decode_time, expected);
        // IDWT time = 16 × SW IDWT.
        let idwt = sw_stage_times(ModeSel::Lossless).idwt * NUM_TILES as u64;
        assert_eq!(r.idwt_time, idwt);
    }

    #[test]
    fn v2_speedup_is_about_10_19_percent() {
        for (mode, lo, hi) in [
            (ModeSel::Lossless, 1.05, 1.15),
            (ModeSel::Lossy, 1.12, 1.25),
        ] {
            let v1 = run_v1(mode).expect("v1");
            let v2 = run_v2(mode).expect("v2");
            assert!(v2.functional_ok);
            let speedup = ms(v1.decode_time) / ms(v2.decode_time);
            assert!(
                (lo..=hi).contains(&speedup),
                "{mode}: v2 speedup {speedup:.3} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn v3_improves_slightly_over_v2() {
        let mode = ModeSel::Lossless;
        let v2 = run_v2(mode).expect("v2");
        let v3 = run_v3(mode).expect("v3");
        assert!(v3.functional_ok);
        assert!(
            v3.decode_time < v2.decode_time,
            "pipeline should help: v2 {} vs v3 {}",
            v2.decode_time,
            v3.decode_time
        );
        // ... but only slightly (the arithmetic decoder dominates).
        let gain = ms(v2.decode_time) / ms(v3.decode_time);
        assert!(gain < 1.10, "gain {gain:.3} should be small");
    }

    #[test]
    fn v4_speedup_is_about_4_5x() {
        for (mode, lo, hi) in [(ModeSel::Lossless, 3.9, 4.8), (ModeSel::Lossy, 4.2, 5.3)] {
            let v1 = run_v1(mode).expect("v1");
            let v4 = run_v4(mode).expect("v4");
            assert!(v4.functional_ok);
            let speedup = ms(v1.decode_time) / ms(v4.decode_time);
            assert!(
                (lo..=hi).contains(&speedup),
                "{mode}: v4 speedup {speedup:.2} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn v5_is_slightly_slower_than_v4() {
        for mode in ModeSel::ALL {
            let v4 = run_v4(mode).expect("v4");
            let v5 = run_v5(mode).expect("v5");
            assert!(v5.functional_ok);
            assert!(
                v5.decode_time > v4.decode_time,
                "{mode}: v5 {} should exceed v4 {}",
                v5.decode_time,
                v4.decode_time
            );
            let ratio = ms(v5.decode_time) / ms(v4.decode_time);
            assert!(ratio < 1.25, "{mode}: v5/v4 {ratio:.3} should stay small");
            // The seven-client object shows real arbitration pressure.
            assert!(v5.so_arbitration_wait > SimTime::ZERO);
        }
    }

    #[test]
    fn all_app_versions_are_functionally_correct_lossy() {
        for (v, f) in [
            (
                VersionId::V1,
                run_v1 as fn(ModeSel) -> Result<VersionResult, SimError>,
            ),
            (VersionId::V2, run_v2),
            (VersionId::V3, run_v3),
            (VersionId::V4, run_v4),
            (VersionId::V5, run_v5),
        ] {
            let r = f(ModeSel::Lossy).expect("run");
            assert!(r.functional_ok, "{v} lossy output mismatch");
            assert_eq!(r.version, v);
        }
    }
}
