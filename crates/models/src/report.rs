//! Table formatting and paper-shape verification.

use std::fmt::Write as _;

use osss_sim::SimTime;

use crate::synth::SynthesisRow;
use crate::{FaultRunResult, ModeSel, VersionId, VersionResult};

/// One verified relation between the paper's claims and the measured
/// reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// Short name of the relation.
    pub name: &'static str,
    /// What the paper states.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the relation holds.
    pub pass: bool,
}

fn get(results: &[VersionResult], v: VersionId, m: ModeSel) -> Option<&VersionResult> {
    results.iter().find(|r| r.version == v && r.mode == m)
}

/// `a / b` as a float, defined on degenerate runs: a zero denominator
/// yields 1.0 when the numerator is also zero (equal times) and
/// `f64::INFINITY` otherwise, never NaN — shape checks compare these
/// against finite bands, so a NaN would silently pass every `!(..)`
/// style assertion.
fn ratio(a: SimTime, b: SimTime) -> f64 {
    if b == SimTime::ZERO {
        return if a == SimTime::ZERO {
            1.0
        } else {
            f64::INFINITY
        };
    }
    a.as_ps() as f64 / b.as_ps() as f64
}

/// Checks every quantitative relation the paper states about Table 1.
pub fn check_table1_shape(results: &[VersionResult]) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();
    let mut push = |name, paper: String, measured: String, pass: bool| {
        checks.push(ShapeCheck {
            name,
            paper,
            measured,
            pass,
        });
    };
    let ll = ModeSel::Lossless;
    let lo = ModeSel::Lossy;

    if let (Some(v1l), Some(v1y), Some(v2l), Some(v2y)) = (
        get(results, VersionId::V1, ll),
        get(results, VersionId::V1, lo),
        get(results, VersionId::V2, ll),
        get(results, VersionId::V2, lo),
    ) {
        let sl = ratio(v1l.decode_time, v2l.decode_time);
        let sy = ratio(v1y.decode_time, v2y.decode_time);
        push(
            "v2 speedup",
            "≈ 1.10 / 1.19 (lossless/lossy)".to_string(),
            format!("{sl:.2} / {sy:.2}"),
            (1.05..=1.15).contains(&sl) && (1.12..=1.25).contains(&sy),
        );
    }
    if let (Some(v1l), Some(v1y), Some(v4l), Some(v4y)) = (
        get(results, VersionId::V1, ll),
        get(results, VersionId::V1, lo),
        get(results, VersionId::V4, ll),
        get(results, VersionId::V4, lo),
    ) {
        let sl = ratio(v1l.decode_time, v4l.decode_time);
        let sy = ratio(v1y.decode_time, v4y.decode_time);
        push(
            "v4/v5 speedup",
            "≈ 4.5 / 5".to_string(),
            format!("{sl:.2} / {sy:.2}"),
            (3.9..=4.8).contains(&sl) && (4.2..=5.3).contains(&sy),
        );
    }
    if let (Some(v4), Some(v5)) = (
        get(results, VersionId::V4, ll),
        get(results, VersionId::V5, ll),
    ) {
        push(
            "v5 vs v4",
            "5 slightly slower than 4 (arbitration overhead)".to_string(),
            format!(
                "v4 {:.0} ms, v5 {:.0} ms",
                v4.decode_time.as_ms_f64(),
                v5.decode_time.as_ms_f64()
            ),
            v5.decode_time > v4.decode_time && ratio(v5.decode_time, v4.decode_time) < 1.25,
        );
    }
    if let (Some(v3), Some(v6a), Some(v6b)) = (
        get(results, VersionId::V3, ll),
        get(results, VersionId::V6a, ll),
        get(results, VersionId::V6b, ll),
    ) {
        let ia = ratio(v6a.idwt_time, v3.idwt_time);
        let ib = ratio(v6b.idwt_time, v3.idwt_time);
        push(
            "VTA IDWT inflation",
            "increased up to a factor of 8".to_string(),
            format!("6a ×{ia:.1}, 6b ×{ib:.1}"),
            (4.0..=11.0).contains(&ia) && (4.0..=10.0).contains(&ib),
        );
    }
    if let (Some(v6a), Some(v7a)) = (
        get(results, VersionId::V6a, ll),
        get(results, VersionId::V7a, ll),
    ) {
        push(
            "7a vs 6a IDWT",
            "7a worse: three more processors compete for the bus".to_string(),
            format!(
                "6a {:.2} ms, 7a {:.2} ms",
                v6a.idwt_time.as_ms_f64(),
                v7a.idwt_time.as_ms_f64()
            ),
            v7a.idwt_time > v6a.idwt_time,
        );
    }
    if let (Some(v6b), Some(v7b)) = (
        get(results, VersionId::V6b, ll),
        get(results, VersionId::V7b, ll),
    ) {
        let r = ratio(v7b.idwt_time, v6b.idwt_time);
        push(
            "6b vs 7b IDWT",
            "equal (same P2P connections, SO decouples bus)".to_string(),
            format!("ratio {r:.3}"),
            (0.97..=1.03).contains(&r),
        );
    }
    for (mode, band, label) in [
        (ll, (9.0, 14.0), "12× lossless"),
        (lo, (12.0, 18.0), "16× lossy"),
    ] {
        if let (Some(v1), Some(v6b)) = (
            get(results, VersionId::V1, mode),
            get(results, VersionId::V6b, mode),
        ) {
            let adv = ratio(v1.idwt_time, v6b.idwt_time);
            push(
                if mode == ll {
                    "HW IDWT advantage (lossless)"
                } else {
                    "HW IDWT advantage (lossy)"
                },
                format!("≈ {label}"),
                format!("×{adv:.1}"),
                adv >= band.0 && adv <= band.1,
            );
        }
    }
    checks
}

/// Renders Table 1 in the paper's layout.
pub fn format_table1(results: &[VersionResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — Simulation results (16 tiles, 3 components, 100 MHz)"
    );
    let _ = writeln!(
        out,
        "{:<4} {:<36} {:>12} {:>12} {:>12} {:>12}  func",
        "Ver", "Model", "Dec[ms] ll", "Dec[ms] lossy", "IDWT[ms] ll", "IDWT[ms] lossy"
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    let mut section = false;
    for v in VersionId::ALL {
        if v.is_vta() && !section {
            let _ = writeln!(out, "--- Virtual Target Architecture Layer ---");
            section = true;
        }
        let l = get(results, v, ModeSel::Lossless);
        let y = get(results, v, ModeSel::Lossy);
        if let (Some(l), Some(y)) = (l, y) {
            let _ = writeln!(
                out,
                "{:<4} {:<36} {:>12.1} {:>12.1} {:>12.2} {:>12.2}  {}",
                v.to_string(),
                v.description(),
                l.decode_time.as_ms_f64(),
                y.decode_time.as_ms_f64(),
                l.idwt_time.as_ms_f64(),
                y.idwt_time.as_ms_f64(),
                if l.functional_ok && y.functional_ok {
                    "ok"
                } else {
                    "MISMATCH"
                }
            );
        }
    }
    out
}

/// Renders the fault-sweep experiment: transport fault rates against
/// recovery effort, goodput, latency and the delivered image quality.
pub fn format_fault_sweep(results: &[FaultRunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault sweep — Table-1 workload over a faulty OPB with reliable RMI"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>7} {:>8} {:>8} {:>5} {:>9} {:>9} {:>11} {:>11}  image",
        "drop",
        "flip/w",
        "budget",
        "retries",
        "timeouts",
        "crc",
        "recovered",
        "degraded",
        "goodput[%]",
        "decode[ms]"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    for r in results {
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>7} {:>8} {:>8} {:>5} {:>9} {:>9} {:>11.2} {:>11.1}  {}",
            format!("{:.0e}", r.fault.drop_rate),
            format!("{:.0e}", r.fault.bit_flip_per_word),
            r.policy.max_retries,
            r.rmi_stats.retries,
            r.rmi_stats.timeouts,
            r.rmi_stats.crc_failures,
            r.tiles_recovered,
            r.tiles_degraded,
            r.goodput() * 100.0,
            r.decode_time.as_ms_f64(),
            if r.bit_exact {
                "bit-exact"
            } else if r.image_ok {
                "degraded"
            } else {
                "MISMATCH"
            }
        );
    }
    out
}

/// Renders Table 2 in the paper's layout.
pub fn format_table2(rows: &[SynthesisRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — RTL synthesis results of the IDWT (Virtex-4 LX25)"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "", "53 FOSSY", "53 ref", "97 FOSSY", "97 ref"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    if rows.is_empty() {
        // Degenerate input (e.g. a synthesis sweep that produced no
        // rows): header only, instead of panicking on `rows[0]` below.
        return out;
    }
    let cell = |f: &dyn Fn(&SynthesisRow, bool) -> String| -> Vec<String> {
        rows.iter()
            .flat_map(|r| [f(r, true), f(r, false)])
            .collect()
    };
    let lines: Vec<(&str, Vec<String>)> = vec![
        (
            "Slice flip-flops",
            cell(&|r, fossy| format!("{}", if fossy { r.fossy.ffs } else { r.reference.ffs })),
        ),
        (
            "4-input LUTs",
            cell(&|r, fossy| {
                format!(
                    "{}",
                    if fossy {
                        r.fossy.luts
                    } else {
                        r.reference.luts
                    }
                )
            }),
        ),
        (
            "Occupied slices",
            cell(&|r, fossy| {
                format!(
                    "{}",
                    if fossy {
                        r.fossy.slices
                    } else {
                        r.reference.slices
                    }
                )
            }),
        ),
        (
            "Equivalent gates",
            cell(&|r, fossy| {
                format!(
                    "{}",
                    if fossy {
                        r.fossy.gates
                    } else {
                        r.reference.gates
                    }
                )
            }),
        ),
        (
            "Est. frequency [MHz]",
            cell(&|r, fossy| {
                format!(
                    "{:.1}",
                    if fossy {
                        r.fossy.fmax_mhz
                    } else {
                        r.reference.fmax_mhz
                    }
                )
            }),
        ),
        (
            "Lines of code",
            cell(&|r, fossy| {
                format!(
                    "{}",
                    if fossy {
                        r.generated_loc
                    } else {
                        r.reference_loc
                    }
                )
            }),
        ),
    ];
    for (label, cells) in lines {
        let _ = write!(out, "{label:<28}");
        for c in &cells {
            let _ = write!(out, " {c:>12}");
        }
        let _ = writeln!(out);
    }
    let loc: Vec<String> = rows
        .iter()
        .map(|r| format!("{} {}", r.design, r.input_loc))
        .collect();
    let _ = writeln!(out, "(input LoC: {})", loc.join(" / "));
    out
}

/// The model-version lineage of the paper's Figure 3.
pub fn flow_text() -> String {
    [
        "Figure 3 — Implementation flow:",
        "  reference SW -> profiling -> 1 (SW only)",
        "  1 -> HW/SW partitioning (co-processor) -> 2",
        "  2 -> re-scheduling (parallelisation & pipelining) -> 3",
        "  2 -> SW parallelisation -> 4",
        "  3 + 4 -> 5",
        "  3 -> refinement & mapping -> 6a / 6b",
        "  5 -> refinement & mapping -> 7a / 7b",
        "  6/7 -> FOSSY -> implementation model",
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(v: VersionId, m: ModeSel, dec_ms: u64, idwt_ms: u64) -> VersionResult {
        VersionResult {
            version: v,
            mode: m,
            decode_time: SimTime::ms(dec_ms),
            idwt_time: SimTime::ms(idwt_ms),
            functional_ok: true,
            so_arbitration_wait: SimTime::ZERO,
        }
    }

    #[test]
    fn formatting_includes_all_versions() {
        let results: Vec<VersionResult> = VersionId::ALL
            .iter()
            .flat_map(|&v| ModeSel::ALL.iter().map(move |&m| fake(v, m, 1000, 100)))
            .collect();
        let text = format_table1(&results);
        for v in VersionId::ALL {
            assert!(
                text.contains(&format!("\n{v} "))
                    || text.starts_with(&format!("{v} "))
                    || text.contains(&format!("{v}  "))
                    || text.contains(v.description()),
                "{v} missing"
            );
        }
        assert!(text.contains("Virtual Target Architecture"));
    }

    #[test]
    fn shape_checks_pass_on_constructed_ideal_data() {
        // Construct results that match every paper relation.
        let mut results = Vec::new();
        for (v, dl, dy, il, iy) in [
            (VersionId::V1, 3243u64, 3664u64, 178u64, 454u64),
            (VersionId::V2, 2980, 3090, 2, 5),
            (VersionId::V3, 2900, 2930, 2, 5),
            (VersionId::V4, 741, 766, 2, 5),
            (VersionId::V5, 760, 790, 2, 5),
            (VersionId::V6a, 2950, 2990, 17, 36),
            (VersionId::V6b, 2940, 2980, 15, 30),
            (VersionId::V7a, 800, 830, 21, 44),
            (VersionId::V7b, 790, 820, 15, 30),
        ] {
            results.push(fake(v, ModeSel::Lossless, dl, il));
            results.push(fake(v, ModeSel::Lossy, dy, iy));
        }
        let checks = check_table1_shape(&results);
        assert!(checks.len() >= 7);
        for c in &checks {
            assert!(
                c.pass,
                "{}: paper `{}` measured `{}`",
                c.name, c.paper, c.measured
            );
        }
    }

    #[test]
    fn fault_sweep_formatting_labels_every_outcome() {
        use crate::{FaultConfig, RetryPolicy};
        let base = FaultRunResult {
            mode: ModeSel::Lossless,
            fault: FaultConfig::none(1).with_drops(0.1),
            policy: RetryPolicy::new(SimTime::ms(2)),
            decode_time: SimTime::ms(3000),
            tiles_recovered: 0,
            tiles_degraded: 0,
            image_ok: true,
            bit_exact: true,
            fault_stats: osss_vta::FaultStats::default(),
            rmi_stats: osss_vta::RmiStats::default(),
            transport: osss_vta::ChannelStats::default(),
        };
        let degraded = FaultRunResult {
            bit_exact: false,
            tiles_degraded: 3,
            ..base.clone()
        };
        let text = format_fault_sweep(&[base, degraded]);
        assert!(text.contains("bit-exact"));
        assert!(text.contains("degraded"));
        assert!(text.contains("goodput"));
        assert!(!text.contains("MISMATCH"));
    }

    #[test]
    fn ratio_survives_zero_denominators() {
        assert_eq!(ratio(SimTime::ZERO, SimTime::ZERO), 1.0);
        assert_eq!(ratio(SimTime::ms(5), SimTime::ZERO), f64::INFINITY);
        assert!(!ratio(SimTime::ZERO, SimTime::ZERO).is_nan());
        assert_eq!(ratio(SimTime::ms(4), SimTime::ms(2)), 2.0);
    }

    #[test]
    fn shape_checks_do_not_panic_on_degenerate_zero_time_results() {
        // A broken run reporting all-zero times must yield failing
        // checks, not NaN comparisons or panics.
        let results: Vec<VersionResult> = VersionId::ALL
            .iter()
            .flat_map(|&v| ModeSel::ALL.iter().map(move |&m| fake(v, m, 0, 0)))
            .collect();
        for c in check_table1_shape(&results) {
            assert!(
                c.measured.parse::<f64>().map_or(true, |x| !x.is_nan()),
                "{}: NaN leaked into `{}`",
                c.name,
                c.measured
            );
        }
    }

    #[test]
    fn table2_with_no_rows_is_header_only() {
        let text = format_table2(&[]);
        assert!(text.contains("Table 2"));
        assert!(!text.contains("Slice flip-flops"));
    }

    #[test]
    fn fault_sweep_formats_degenerate_zero_transfer_run() {
        use crate::{FaultConfig, RetryPolicy};
        // 0 tiles, 0 transfers: goodput must print as 100%, not NaN.
        let empty = FaultRunResult {
            mode: ModeSel::Lossless,
            fault: FaultConfig::none(1),
            policy: RetryPolicy::new(SimTime::ms(2)),
            decode_time: SimTime::ZERO,
            tiles_recovered: 0,
            tiles_degraded: 0,
            image_ok: true,
            bit_exact: true,
            fault_stats: osss_vta::FaultStats::default(),
            rmi_stats: osss_vta::RmiStats::default(),
            transport: osss_vta::ChannelStats::default(),
        };
        assert_eq!(empty.goodput(), 1.0);
        let text = format_fault_sweep(&[empty]);
        assert!(text.contains("100.00"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn flow_text_mentions_every_version() {
        let f = flow_text();
        for s in ["1", "2", "3", "4", "5", "6a", "7b", "FOSSY"] {
            assert!(f.contains(s));
        }
    }
}
