//! # jpeg2000-models — the DATE 2008 case-study design space
//!
//! The nine JPEG 2000 decoder models of the paper's Table 1, built on the
//! OSSS layers and carrying **real tile data** from the [`jpeg2000`]
//! codec through every simulated component (so functional correctness is
//! checked inside the timed experiments):
//!
//! | Version | Layer | Structure |
//! |---|---|---|
//! | 1 | Application | software only |
//! | 2 | Application | HW/SW, sequential co-processor calls |
//! | 3 | Application | HW/SW pipelined, 3 IDWT hardware blocks |
//! | 4 | Application | 4 parallel software tasks (cp. 2) |
//! | 5 | Application | 4 SW tasks + HW pipeline (cp. 3) |
//! | 6a/6b | VTA | mapping of 3 — shared bus only / bus + P2P |
//! | 7a/7b | VTA | mapping of 5 — shared bus only / bus + P2P |
//!
//! Timing is calibrated from the paper's published profile (Figure 1
//! percentages, 180 ms arithmetic decoding per tile) in [`timing`];
//! the VTA versions add channel transfer and explicit-memory costs
//! through the `osss-vta` resource models.
//!
//! [`run_version`] executes one model; [`table1`] regenerates the whole
//! table; [`report`] formats it and checks the paper-shape relations.
//!
//! ## Example
//!
//! ```no_run
//! use jpeg2000_models::{run_version, ModeSel, VersionId};
//!
//! let r = run_version(VersionId::V1, ModeSel::Lossless).unwrap();
//! assert!(r.functional_ok);
//! println!("v1 decodes 16 tiles in {}", r.decode_time);
//! ```

mod app;
pub use app::{
    run_hw_sw_parallel, run_sw_parallel, run_v5_with_policy, sw_scaling_curve, ArbPolicy,
};
pub mod observe;
pub mod profile;
pub mod report;
pub mod synth;
pub mod timing;
mod vta;
pub use vta::FaultRunResult;
pub mod workload;

use osss_sim::{SimError, SimTime};
// Re-exported so fault-sweep callers need not depend on `osss-vta`.
pub use osss_vta::{FaultConfig, RetryPolicy};

/// Lossless (5/3) or lossy (9/7) operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeSel {
    /// Reversible path.
    Lossless,
    /// Irreversible path.
    Lossy,
}

impl ModeSel {
    /// Both modes, lossless first (Table 1 column order).
    pub const ALL: [ModeSel; 2] = [ModeSel::Lossless, ModeSel::Lossy];
}

impl std::fmt::Display for ModeSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModeSel::Lossless => write!(f, "lossless"),
            ModeSel::Lossy => write!(f, "lossy"),
        }
    }
}

/// The nine model versions of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VersionId {
    /// Software only.
    V1,
    /// HW/SW not parallel.
    V2,
    /// HW/SW parallel (3 IDWT modules).
    V3,
    /// SW parallel (cp. 2).
    V4,
    /// SW & HW/SW parallel (cp. 3).
    V5,
    /// VTA mapping of 3, HW/SW SO connected to bus only.
    V6a,
    /// VTA mapping of 3, bus + point-to-point.
    V6b,
    /// VTA mapping of 5, bus only.
    V7a,
    /// VTA mapping of 5, bus + point-to-point.
    V7b,
}

impl VersionId {
    /// All versions in table order.
    pub const ALL: [VersionId; 9] = [
        VersionId::V1,
        VersionId::V2,
        VersionId::V3,
        VersionId::V4,
        VersionId::V5,
        VersionId::V6a,
        VersionId::V6b,
        VersionId::V7a,
        VersionId::V7b,
    ];

    /// The Table 1 row description.
    pub fn description(self) -> &'static str {
        match self {
            VersionId::V1 => "SW only",
            VersionId::V2 => "HW/SW not parallel",
            VersionId::V3 => "HW/SW parallel (3 IDWT modules)",
            VersionId::V4 => "SW parallel (cp. 2)",
            VersionId::V5 => "SW & HW/SW parallel (cp. 3)",
            VersionId::V6a => "VTA of 3: HW/SW SO on bus only",
            VersionId::V6b => "VTA of 3: bus & P2P",
            VersionId::V7a => "VTA of 5: HW/SW SO on bus only",
            VersionId::V7b => "VTA of 5: bus & P2P",
        }
    }

    /// Whether this is a Virtual-Target-Architecture-layer model.
    pub fn is_vta(self) -> bool {
        matches!(
            self,
            VersionId::V6a | VersionId::V6b | VersionId::V7a | VersionId::V7b
        )
    }
}

impl std::fmt::Display for VersionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VersionId::V1 => "1",
            VersionId::V2 => "2",
            VersionId::V3 => "3",
            VersionId::V4 => "4",
            VersionId::V5 => "5",
            VersionId::V6a => "6a",
            VersionId::V6b => "6b",
            VersionId::V7a => "7a",
            VersionId::V7b => "7b",
        };
        write!(f, "{s}")
    }
}

/// The outcome of simulating one model version in one mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionResult {
    /// Which model ran.
    pub version: VersionId,
    /// Which mode.
    pub mode: ModeSel,
    /// Time to decode all 16 tiles (3 components), the paper's
    /// "Decoding Time" column.
    pub decode_time: SimTime,
    /// Accumulated time spent in the IDWT subsystem, the paper's
    /// "IDWT Time" column.
    pub idwt_time: SimTime,
    /// Whether the decoded image matched the reference decoder exactly.
    pub functional_ok: bool,
    /// Total arbitration wait observed at the HW/SW shared object
    /// (zero where no such object exists).
    pub so_arbitration_wait: SimTime,
}

/// Runs one model version and returns its measurements.
///
/// # Errors
///
/// Propagates simulation failures (process panics, model errors).
pub fn run_version(version: VersionId, mode: ModeSel) -> Result<VersionResult, SimError> {
    match version {
        VersionId::V1 => app::run_v1(mode),
        VersionId::V2 => app::run_v2(mode),
        VersionId::V3 => app::run_v3(mode),
        VersionId::V4 => app::run_v4(mode),
        VersionId::V5 => app::run_v5(mode),
        VersionId::V6a => vta::run_vta(mode, vta::VtaConfig::v6a(), app::Metrics::new()),
        VersionId::V6b => vta::run_vta(mode, vta::VtaConfig::v6b(), app::Metrics::new()),
        VersionId::V7a => vta::run_vta(mode, vta::VtaConfig::v7a(), app::Metrics::new()),
        VersionId::V7b => vta::run_vta(mode, vta::VtaConfig::v7b(), app::Metrics::new()),
    }
}

/// Runs a VTA scaling exploration point: `n_sw_tasks` software tasks on
/// as many processors, with the IDWT data links on the shared bus
/// (`p2p = false`, the 7a mapping) or on point-to-point channels
/// (`p2p = true`, the 7b mapping). Used by the scaling ablation that
/// backs the paper's closing claim that "7b does better scale with
/// increasing parallelism".
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics if `n_sw_tasks` is zero or exceeds the tile count.
pub fn run_scaling(mode: ModeSel, n_sw_tasks: usize, p2p: bool) -> Result<VersionResult, SimError> {
    assert!(
        (1..=timing::NUM_TILES).contains(&n_sw_tasks),
        "1..=16 software tasks"
    );
    vta::run_vta(
        mode,
        vta::VtaConfig::scaling(n_sw_tasks, p2p),
        app::Metrics::new(),
    )
}

/// Decodes the Table-1 workload with the software task's bus traffic
/// passed through a deterministic fault process and the reliable-RMI
/// protocol. Tiles recovered within the retry budget stay bit-exact;
/// tiles past it render mid-gray — the run itself never fails on
/// transport faults.
///
/// # Errors
///
/// Propagates simulation failures (never transport faults).
pub fn run_fault_injection(
    mode: ModeSel,
    fault: FaultConfig,
    policy: RetryPolicy,
) -> Result<FaultRunResult, SimError> {
    vta::run_fault_vta(mode, fault, policy)
}

/// Runs [`run_fault_injection`] for every `(fault, policy)` point.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn fault_sweep(
    mode: ModeSel,
    points: &[(FaultConfig, RetryPolicy)],
) -> Result<Vec<FaultRunResult>, SimError> {
    points
        .iter()
        .map(|&(fault, policy)| run_fault_injection(mode, fault, policy))
        .collect()
}

/// The default fault-rate axis of the robustness experiment: from a
/// fault-free transport through rates the retry budget absorbs, up to a
/// loss rate that exhausts a deliberately small budget and forces
/// per-tile degradation. All points derive from `seed` so the whole
/// sweep replays bit-identically.
pub fn fault_axis(seed: u64) -> Vec<(FaultConfig, RetryPolicy)> {
    // A full tile frame is ~32.8k words ≈ 983 µs on the 100 MHz OPB, so
    // a 2 ms deadline comfortably covers one transfer.
    let policy = RetryPolicy::new(SimTime::ms(2)).with_max_retries(8);
    vec![
        (FaultConfig::none(seed), policy),
        (
            FaultConfig::none(seed)
                .with_drops(1e-3)
                .with_bit_flips(1e-7),
            policy,
        ),
        (
            FaultConfig::none(seed)
                .with_drops(1e-2)
                .with_bit_flips(1e-6),
            policy,
        ),
        (
            FaultConfig::none(seed).with_drops(0.1).with_bit_flips(1e-5),
            policy,
        ),
        // Past the budget: every other frame lost, most large frames
        // corrupted, only one retry — tiles must degrade, not fail.
        (
            FaultConfig::none(seed).with_drops(0.5).with_bit_flips(3e-5),
            RetryPolicy::new(SimTime::ms(2)).with_max_retries(1),
        ),
    ]
}

/// Regenerates the full Table 1 (all versions × both modes).
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn table1() -> Result<Vec<VersionResult>, SimError> {
    let mut out = Vec::with_capacity(18);
    for version in VersionId::ALL {
        for mode in ModeSel::ALL {
            out.push(run_version(version, mode)?);
        }
    }
    Ok(out)
}
