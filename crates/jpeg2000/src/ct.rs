//! Component transforms (RCT / ICT) and DC level shift.
//!
//! * **RCT** — the reversible colour transform paired with the 5/3 wavelet
//!   on the lossless path; integer, bit-exact invertible.
//! * **ICT** — the irreversible (floating-point YCbCr) transform paired
//!   with the 9/7 wavelet on the lossy path.
//! * **DC level shift** — recentres unsigned samples around zero before
//!   the wavelet and restores them afterwards.

use crate::image::Plane;

/// Subtracts `2^(depth-1)` from every sample (forward DC level shift).
pub fn dc_shift_forward(plane: &mut Plane, depth: u8) {
    let off = 1i32 << (depth - 1);
    for v in &mut plane.data {
        *v -= off;
    }
}

/// Adds `2^(depth-1)` back and clamps to the valid range (inverse shift).
pub fn dc_shift_inverse(plane: &mut Plane, depth: u8) {
    let off = 1i32 << (depth - 1);
    let max = (1i32 << depth) - 1;
    for v in &mut plane.data {
        *v = (*v + off).clamp(0, max);
    }
}

/// Forward reversible colour transform on level-shifted RGB planes.
///
/// `Y = ⌊(R + 2G + B)/4⌋`, `Cb = B − G`, `Cr = R − G`.
///
/// # Panics
///
/// Panics if the planes differ in geometry.
pub fn rct_forward(r: &mut Plane, g: &mut Plane, b: &mut Plane) {
    assert_eq!(r.data.len(), g.data.len());
    assert_eq!(g.data.len(), b.data.len());
    for i in 0..r.data.len() {
        let (rv, gv, bv) = (r.data[i], g.data[i], b.data[i]);
        let y = (rv + 2 * gv + bv) >> 2;
        let cb = bv - gv;
        let cr = rv - gv;
        r.data[i] = y;
        g.data[i] = cb;
        b.data[i] = cr;
    }
}

/// Inverse reversible colour transform (bit-exact inverse of
/// [`rct_forward`]).
///
/// # Panics
///
/// Panics if the planes differ in geometry.
pub fn rct_inverse(y: &mut Plane, cb: &mut Plane, cr: &mut Plane) {
    assert_eq!(y.data.len(), cb.data.len());
    assert_eq!(cb.data.len(), cr.data.len());
    for i in 0..y.data.len() {
        let (yv, cbv, crv) = (y.data[i], cb.data[i], cr.data[i]);
        let g = yv - ((cbv + crv) >> 2);
        let r = crv + g;
        let b = cbv + g;
        y.data[i] = r;
        cb.data[i] = g;
        cr.data[i] = b;
    }
}

/// Forward irreversible colour transform (floating-point YCbCr), rounding
/// to integers.
///
/// # Panics
///
/// Panics if the planes differ in geometry.
pub fn ict_forward(r: &mut Plane, g: &mut Plane, b: &mut Plane) {
    assert_eq!(r.data.len(), g.data.len());
    assert_eq!(g.data.len(), b.data.len());
    for i in 0..r.data.len() {
        let (rv, gv, bv) = (r.data[i] as f64, g.data[i] as f64, b.data[i] as f64);
        let y = 0.299 * rv + 0.587 * gv + 0.114 * bv;
        let cb = -0.168_736 * rv - 0.331_264 * gv + 0.5 * bv;
        let cr = 0.5 * rv - 0.418_688 * gv - 0.081_312 * bv;
        r.data[i] = y.round() as i32;
        g.data[i] = cb.round() as i32;
        b.data[i] = cr.round() as i32;
    }
}

/// Q16 fixed-point ICT inverse coefficients (rounded at compile time).
mod ict_fix {
    use crate::dwt::consts::FIX_ONE;

    const fn q16(c: f64) -> i64 {
        (c * FIX_ONE as f64 + 0.5) as i64
    }

    pub const R_CR: i64 = q16(1.402);
    pub const G_CB: i64 = q16(0.344_136);
    pub const G_CR: i64 = q16(0.714_136);
    pub const B_CB: i64 = q16(1.772);
}

/// Inverse irreversible colour transform as integer multiply–shift: the
/// matrix coefficients are pre-scaled to Q16 and each output channel is
/// rounded once (`i64` accumulation, so hostile sample magnitudes cannot
/// overflow). Matches the former `f64` implementation to within one LSB.
///
/// # Panics
///
/// Panics if the planes differ in geometry.
pub fn ict_inverse(y: &mut Plane, cb: &mut Plane, cr: &mut Plane) {
    use crate::dwt::consts::{FIX_HALF, FIX_SHIFT};
    assert_eq!(y.data.len(), cb.data.len());
    assert_eq!(cb.data.len(), cr.data.len());
    for i in 0..y.data.len() {
        let (yv, cbv, crv) = (y.data[i] as i64, cb.data[i] as i64, cr.data[i] as i64);
        let r = yv + ((ict_fix::R_CR * crv + FIX_HALF) >> FIX_SHIFT);
        let g = yv - ((ict_fix::G_CB * cbv + ict_fix::G_CR * crv + FIX_HALF) >> FIX_SHIFT);
        let b = yv + ((ict_fix::B_CB * cbv + FIX_HALF) >> FIX_SHIFT);
        y.data[i] = r.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        cb.data[i] = g.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        cr.data[i] = b.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    fn planes(seed: u64) -> (Plane, Plane, Plane) {
        let img = Image::synthetic_rgb(23, 17, seed);
        (
            img.components[0].clone(),
            img.components[1].clone(),
            img.components[2].clone(),
        )
    }

    #[test]
    fn dc_shift_roundtrip() {
        let (mut p, _, _) = planes(0);
        let orig = p.clone();
        dc_shift_forward(&mut p, 8);
        assert!(p.data.iter().all(|&v| (-128..=127).contains(&v)));
        dc_shift_inverse(&mut p, 8);
        assert_eq!(p, orig);
    }

    #[test]
    fn rct_is_bit_exact_invertible() {
        let (mut r, mut g, mut b) = planes(1);
        for p in [&mut r, &mut g, &mut b] {
            dc_shift_forward(p, 8);
        }
        let (r0, g0, b0) = (r.clone(), g.clone(), b.clone());
        rct_forward(&mut r, &mut g, &mut b);
        rct_inverse(&mut r, &mut g, &mut b);
        assert_eq!((r, g, b), (r0, g0, b0));
    }

    #[test]
    fn rct_luma_of_grey_is_identity() {
        // R = G = B = v  =>  Y = v, Cb = Cr = 0.
        let mut r = Plane::from_data(2, 1, vec![10, -5]);
        let mut g = r.clone();
        let mut b = r.clone();
        rct_forward(&mut r, &mut g, &mut b);
        assert_eq!(r.data, vec![10, -5]);
        assert_eq!(g.data, vec![0, 0]);
        assert_eq!(b.data, vec![0, 0]);
    }

    #[test]
    fn ict_roundtrip_is_close() {
        let (mut r, mut g, mut b) = planes(2);
        for p in [&mut r, &mut g, &mut b] {
            dc_shift_forward(p, 8);
        }
        let (r0, g0, b0) = (r.clone(), g.clone(), b.clone());
        ict_forward(&mut r, &mut g, &mut b);
        ict_inverse(&mut r, &mut g, &mut b);
        // Rounding in both directions: at most ±2 per sample.
        for (a, b_) in [(&r, &r0), (&g, &g0), (&b, &b0)] {
            for (x, y) in a.data.iter().zip(&b_.data) {
                assert!((x - y).abs() <= 2, "ICT roundtrip drifted: {x} vs {y}");
            }
        }
    }

    #[test]
    fn ict_inverse_matches_f64_within_one_lsb() {
        // The fixed-point inverse against the former per-sample f64 one,
        // across the whole useful YCbCr range.
        let f64_inverse = |yv: i32, cbv: i32, crv: i32| {
            let (yv, cbv, crv) = (yv as f64, cbv as f64, crv as f64);
            let r = yv + 1.402 * crv;
            let g = yv - 0.344_136 * cbv - 0.714_136 * crv;
            let b = yv + 1.772 * cbv;
            (r.round() as i32, g.round() as i32, b.round() as i32)
        };
        for yv in (-128..=127).step_by(17) {
            for cbv in (-180..=180).step_by(11) {
                for crv in (-180..=180).step_by(13) {
                    let mut y = Plane::from_data(1, 1, vec![yv]);
                    let mut cb = Plane::from_data(1, 1, vec![cbv]);
                    let mut cr = Plane::from_data(1, 1, vec![crv]);
                    ict_inverse(&mut y, &mut cb, &mut cr);
                    let (r, g, b) = f64_inverse(yv, cbv, crv);
                    assert!(
                        (y.data[0] - r).abs() <= 1
                            && (cb.data[0] - g).abs() <= 1
                            && (cr.data[0] - b).abs() <= 1,
                        "({yv},{cbv},{crv}): fixed ({},{},{}) vs f64 ({r},{g},{b})",
                        y.data[0],
                        cb.data[0],
                        cr.data[0]
                    );
                }
            }
        }
    }

    #[test]
    fn ict_grey_has_zero_chroma() {
        let mut r = Plane::from_data(1, 1, vec![100]);
        let mut g = r.clone();
        let mut b = r.clone();
        ict_forward(&mut r, &mut g, &mut b);
        assert_eq!(r.data[0], 100);
        assert_eq!(g.data[0], 0);
        assert_eq!(b.data[0], 0);
    }
}
