//! The decode scratch arena: every reusable buffer the staged decoder
//! needs, bundled so one allocation set serves a whole decode.
//!
//! The paper's profile makes Tier-1 the hot stage, and the Tier-1 inner
//! loop used to allocate three fresh `Vec`s per code-block (flags,
//! magnitudes, signs) plus four more per inverse-DWT call. A
//! [`DecodeScratch`] owns all of them; [`crate::codec::decode`] reuses
//! one across every tile, and [`crate::parallel`] gives each worker its
//! own so no synchronisation is needed.

use crate::dwt::DwtScratch;
use crate::t1::T1Scratch;

/// Reusable decode buffers: the Tier-1 flags/magnitude/sign planes and
/// the DWT row/column scratch. Buffers grow to the largest code-block,
/// column and row seen and are then reused; dropping the arena frees
/// everything at once.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Tier-1 per-code-block buffers.
    pub(crate) t1: T1Scratch,
    /// Inverse-DWT row/column buffers.
    pub(crate) dwt: DwtScratch,
}

impl DecodeScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
