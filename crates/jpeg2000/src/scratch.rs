//! The decode scratch arena: every reusable buffer the staged decoder
//! needs, bundled so one allocation set serves a whole decode.
//!
//! The paper's profile makes Tier-1 the hot stage, and the Tier-1 inner
//! loop used to allocate three fresh `Vec`s per code-block (flags,
//! magnitudes, signs) plus four more per inverse-DWT call. A
//! [`DecodeScratch`] owns all of them; [`crate::codec::decode`] reuses
//! one across every tile, and [`crate::parallel`] gives each worker its
//! own so no synchronisation is needed. Since the irreversible path went
//! fixed point, the DWT part is two `i32` buffers (one interleaved row,
//! one saved half-plane) — the arena carries no `f64` at all.

use crate::dwt::DwtScratch;
use crate::t1::T1Scratch;

/// Per-arena decode work counters: what the decoder *did*, as plain
/// integer tallies on the per-tile and per-block paths (never per
/// decision), so they stay enabled unconditionally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCounters {
    /// Tiles entropy-decoded through this arena.
    pub tiles: u64,
    /// Code-blocks decoded.
    pub code_blocks: u64,
    /// Coding passes executed.
    pub coding_passes: u64,
    /// MQ renormalisations (exits from the MPS fast path).
    pub mq_renorms: u64,
    /// Compressed bytes consumed by Tier-1.
    pub bytes_in: u64,
    /// Coefficient samples produced (tile area × components).
    pub samples_out: u64,
    /// Tiles that reused already-grown buffers (every tile after the
    /// arena's first).
    pub arena_reuses: u64,
}

impl DecodeCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &DecodeCounters) {
        self.tiles = self.tiles.saturating_add(other.tiles);
        self.code_blocks = self.code_blocks.saturating_add(other.code_blocks);
        self.coding_passes = self.coding_passes.saturating_add(other.coding_passes);
        self.mq_renorms = self.mq_renorms.saturating_add(other.mq_renorms);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.samples_out = self.samples_out.saturating_add(other.samples_out);
        self.arena_reuses = self.arena_reuses.saturating_add(other.arena_reuses);
    }
}

/// Reusable decode buffers: the Tier-1 flags/magnitude/sign planes and
/// the DWT row/half-plane scratch. Buffers grow to the largest
/// code-block, row and half-plane seen and are then reused; dropping the
/// arena frees everything at once.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Tier-1 per-code-block buffers.
    pub(crate) t1: T1Scratch,
    /// Inverse-DWT row and saved-half-plane buffers.
    pub(crate) dwt: DwtScratch,
    /// Tile-level tallies (the block-level ones live in `t1`).
    pub(crate) tiles: u64,
    pub(crate) samples_out: u64,
}

impl DecodeScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The work counters accumulated by every decode that used this
    /// arena.
    pub fn counters(&self) -> DecodeCounters {
        let t1 = self.t1.counters();
        DecodeCounters {
            tiles: self.tiles,
            code_blocks: t1.blocks,
            coding_passes: t1.coding_passes,
            mq_renorms: t1.mq_renorms,
            bytes_in: t1.bytes_in,
            samples_out: self.samples_out,
            arena_reuses: self.tiles.saturating_sub(1),
        }
    }
}
