//! Deterministic, structure-aware fuzzing of the decode surface.
//!
//! The paper's deployment target is a set-top box decoding whatever
//! bitstream the transport delivers; the decoder must treat every byte
//! as hostile. This module is the fault-injection engine behind
//! `tests/fuzz_decode.rs` and the CI fuzz-smoke job: starting from
//! *valid* encoded codestreams, a seeded [`Mutator`] applies
//! structure-aware damage — bit flips, truncations at marker
//! boundaries, length-field corruption, segment splices, duplicated and
//! deleted marker segments, region overwrites — and
//! [`exercise_decode_surface`] asserts the whole public decode surface
//! survives: structured [`crate::error::CodecError`]s are fine, panics
//! and hangs are bugs.
//!
//! Everything is deterministic: the same `(seed, iteration)` pair
//! reproduces the same mutated stream on every platform, so a CI
//! failure is replayable locally from the two numbers alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{
    decode, decode_quality, decode_thumbnail, decode_tolerant, encode, EncodeParams, Mode,
};
use crate::codestream::{
    parse_codestream_tolerant, MARKER_COD, MARKER_EOC, MARKER_QCD, MARKER_SIZ, MARKER_SOC,
    MARKER_SOT,
};
use crate::image::Image;
use crate::parallel::{decode_parallel, decode_tolerant_parallel};

/// A marker segment located by [`scan_markers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerSeg {
    /// The 16-bit marker code (`0xFF4F` …).
    pub marker: u16,
    /// Byte offset of the marker itself.
    pub offset: usize,
    /// Total segment length in bytes, marker included (2 for the bare
    /// `SOC`/`EOC` markers, `Psot` for a whole tile-part).
    pub len: usize,
}

/// Walks a *well-formed* codestream (a fuzz seed, produced by our own
/// encoder) and returns its marker segments in order. Stops at `EOC`
/// or at the first structure it cannot follow — callers only use this
/// on valid seeds, where it always reaches `EOC`.
pub fn scan_markers(bytes: &[u8]) -> Vec<MarkerSeg> {
    let mut segs = Vec::new();
    let mut pos = 0usize;
    let rd_u16 = |p: usize| -> Option<u16> {
        Some(u16::from_be_bytes([*bytes.get(p)?, *bytes.get(p + 1)?]))
    };
    let rd_u32 = |p: usize| -> Option<u32> {
        Some(u32::from_be_bytes([
            *bytes.get(p)?,
            *bytes.get(p + 1)?,
            *bytes.get(p + 2)?,
            *bytes.get(p + 3)?,
        ]))
    };
    while let Some(marker) = rd_u16(pos) {
        let len = match marker {
            MARKER_SOC => 2,
            MARKER_EOC => {
                segs.push(MarkerSeg {
                    marker,
                    offset: pos,
                    len: 2,
                });
                break;
            }
            MARKER_SIZ | MARKER_COD | MARKER_QCD => match rd_u16(pos + 2) {
                Some(l) => 2 + l as usize,
                None => break,
            },
            MARKER_SOT => match rd_u32(pos + 6) {
                // Psot counts from the SOT marker to the end of the
                // tile-part, so it *is* the segment length.
                Some(psot) if psot >= 14 => psot as usize,
                _ => break,
            },
            _ => break,
        };
        segs.push(MarkerSeg {
            marker,
            offset: pos,
            len,
        });
        pos += len;
    }
    segs
}

/// Every structurally interesting truncation point of a valid stream:
/// each marker boundary (start and end of every segment), for
/// truncation-sweep style mutations.
pub fn marker_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut points: Vec<usize> = scan_markers(bytes)
        .iter()
        .flat_map(|s| [s.offset, s.offset + s.len])
        .collect();
    points.push(bytes.len());
    points.sort_unstable();
    points.dedup();
    points
}

/// What a [`Mutator`] did to a seed stream — enough to name and
/// reproduce a failure.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Mutation family (`"bit-flip"`, `"truncate-marker"`, …).
    pub kind: &'static str,
    /// Human-readable specifics (offsets, lengths, values).
    pub detail: String,
}

/// Seeded structure-aware mutation engine. Deterministic: a `Mutator`
/// built from the same seed produces the same mutation sequence.
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// A mutation engine with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies one randomly chosen mutation to `seed_bytes`.
    pub fn mutate(&mut self, seed_bytes: &[u8]) -> (Vec<u8>, Mutation) {
        let segs = scan_markers(seed_bytes);
        let kind = self.rng.gen_range(0u32..8);
        match kind {
            0 => self.bit_flips(seed_bytes),
            1 => self.truncate_at_marker(seed_bytes, &segs),
            2 => self.truncate_random(seed_bytes),
            3 => self.corrupt_length_field(seed_bytes, &segs),
            4 => self.splice(seed_bytes),
            5 => self.duplicate_segment(seed_bytes, &segs),
            6 => self.delete_segment(seed_bytes, &segs),
            _ => self.overwrite_region(seed_bytes),
        }
    }

    /// Flips 1–8 random bits.
    fn bit_flips(&mut self, bytes: &[u8]) -> (Vec<u8>, Mutation) {
        let mut out = bytes.to_vec();
        let n = self.rng.gen_range(1usize..=8);
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.rng.gen_range(0..out.len());
            out[i] ^= 1 << self.rng.gen_range(0u32..8);
            offsets.push(i);
        }
        (
            out,
            Mutation {
                kind: "bit-flip",
                detail: format!("{n} flips at {offsets:?}"),
            },
        )
    }

    /// Truncates at a marker boundary, optionally a few bytes past it
    /// (cutting mid-segment-header).
    fn truncate_at_marker(&mut self, bytes: &[u8], segs: &[MarkerSeg]) -> (Vec<u8>, Mutation) {
        if segs.is_empty() {
            return self.truncate_random(bytes);
        }
        let s = segs[self.rng.gen_range(0..segs.len())];
        let extra = self.rng.gen_range(0usize..=12);
        let cut = (s.offset + extra).min(bytes.len());
        (
            bytes[..cut].to_vec(),
            Mutation {
                kind: "truncate-marker",
                detail: format!("cut at {cut} (marker {:#06x} + {extra})", s.marker),
            },
        )
    }

    /// Truncates at a uniformly random byte length.
    fn truncate_random(&mut self, bytes: &[u8]) -> (Vec<u8>, Mutation) {
        let cut = self.rng.gen_range(0..=bytes.len());
        (
            bytes[..cut].to_vec(),
            Mutation {
                kind: "truncate-random",
                detail: format!("cut at {cut}"),
            },
        )
    }

    /// Overwrites a length-bearing field of a random segment: the
    /// 16-bit `Lxxx` of SIZ/COD/QCD/SOT or the 32-bit `Psot`.
    fn corrupt_length_field(&mut self, bytes: &[u8], segs: &[MarkerSeg]) -> (Vec<u8>, Mutation) {
        let candidates: Vec<MarkerSeg> = segs
            .iter()
            .copied()
            .filter(|s| !matches!(s.marker, MARKER_SOC | MARKER_EOC))
            .collect();
        if candidates.is_empty() {
            return self.bit_flips(bytes);
        }
        let s = candidates[self.rng.gen_range(0..candidates.len())];
        let mut out = bytes.to_vec();
        let detail = if s.marker == MARKER_SOT && self.rng.gen_bool(0.5) {
            // Psot at offset+6: 32-bit, the field that delimits tile data.
            let v: u32 = match self.rng.gen_range(0u32..3) {
                0 => self.rng.gen::<u32>(),
                1 => self.rng.gen_range(0u32..32),
                _ => u32::MAX,
            };
            if s.offset + 10 <= out.len() {
                out[s.offset + 6..s.offset + 10].copy_from_slice(&v.to_be_bytes());
            }
            format!("Psot at {} := {v}", s.offset + 6)
        } else {
            let v: u16 = match self.rng.gen_range(0u32..3) {
                0 => self.rng.gen::<u16>(),
                1 => self.rng.gen_range(0u16..16),
                _ => u16::MAX,
            };
            if s.offset + 4 <= out.len() {
                out[s.offset + 2..s.offset + 4].copy_from_slice(&v.to_be_bytes());
            }
            format!("len field of {:#06x} at {} := {v}", s.marker, s.offset + 2)
        };
        (
            out,
            Mutation {
                kind: "length-corrupt",
                detail,
            },
        )
    }

    /// Copies a random chunk of the stream over another position
    /// (in-place splice, length preserved).
    fn splice(&mut self, bytes: &[u8]) -> (Vec<u8>, Mutation) {
        let mut out = bytes.to_vec();
        if out.len() < 4 {
            return self.bit_flips(bytes);
        }
        let len = self.rng.gen_range(1..=(out.len() / 2).max(1));
        let src = self.rng.gen_range(0..=out.len() - len);
        let dst = self.rng.gen_range(0..=out.len() - len);
        let chunk = out[src..src + len].to_vec();
        out[dst..dst + len].copy_from_slice(&chunk);
        (
            out,
            Mutation {
                kind: "splice",
                detail: format!("{len} bytes {src} -> {dst}"),
            },
        )
    }

    /// Inserts a copy of a whole marker segment after itself.
    fn duplicate_segment(&mut self, bytes: &[u8], segs: &[MarkerSeg]) -> (Vec<u8>, Mutation) {
        if segs.is_empty() {
            return self.bit_flips(bytes);
        }
        let s = segs[self.rng.gen_range(0..segs.len())];
        let end = (s.offset + s.len).min(bytes.len());
        let mut out = Vec::with_capacity(bytes.len() + s.len);
        out.extend_from_slice(&bytes[..end]);
        out.extend_from_slice(&bytes[s.offset..end]);
        out.extend_from_slice(&bytes[end..]);
        (
            out,
            Mutation {
                kind: "duplicate-segment",
                detail: format!("marker {:#06x} at {}", s.marker, s.offset),
            },
        )
    }

    /// Removes a whole marker segment.
    fn delete_segment(&mut self, bytes: &[u8], segs: &[MarkerSeg]) -> (Vec<u8>, Mutation) {
        if segs.is_empty() {
            return self.bit_flips(bytes);
        }
        let s = segs[self.rng.gen_range(0..segs.len())];
        let end = (s.offset + s.len).min(bytes.len());
        let mut out = Vec::with_capacity(bytes.len());
        out.extend_from_slice(&bytes[..s.offset]);
        out.extend_from_slice(&bytes[end..]);
        (
            out,
            Mutation {
                kind: "delete-segment",
                detail: format!("marker {:#06x} at {}", s.marker, s.offset),
            },
        )
    }

    /// Overwrites a random region with a constant byte (0x00 or 0xFF —
    /// 0xFF runs are marker-adjacent and stress the resync logic).
    fn overwrite_region(&mut self, bytes: &[u8]) -> (Vec<u8>, Mutation) {
        let mut out = bytes.to_vec();
        if out.is_empty() {
            return (
                out,
                Mutation {
                    kind: "overwrite",
                    detail: "empty input".into(),
                },
            );
        }
        let len = self.rng.gen_range(1..=out.len());
        let start = self.rng.gen_range(0..=out.len() - len);
        let fill = if self.rng.gen_bool(0.5) { 0x00 } else { 0xFF };
        for b in &mut out[start..start + len] {
            *b = fill;
        }
        (
            out,
            Mutation {
                kind: "overwrite",
                detail: format!("{len} bytes at {start} := {fill:#04x}"),
            },
        )
    }
}

/// The valid codestreams fuzzing starts from: the pinned Table-1
/// workload in both modes, plus smaller images covering single-tile,
/// multi-tile, grey, and non-tile-divisible geometry.
pub fn seed_streams() -> Vec<(&'static str, Vec<u8>)> {
    let enc = |img: &Image, p: &EncodeParams| encode(img, p).expect("fuzz seed must encode");
    let t1 = Image::synthetic_rgb(128, 128, 2008);
    vec![
        (
            "table1-lossless",
            enc(&t1, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)),
        ),
        (
            "table1-lossy",
            enc(
                &t1,
                &EncodeParams::new(Mode::lossy_default()).tile_size(32, 32),
            ),
        ),
        (
            "grey-single-tile",
            enc(
                &Image::synthetic_grey(33, 21, 5),
                &EncodeParams::new(Mode::Lossless),
            ),
        ),
        (
            "rgb-ragged-tiles",
            enc(
                &Image::synthetic_rgb(70, 50, 6),
                &EncodeParams::new(Mode::Lossless).tile_size(32, 32),
            ),
        ),
        (
            "lossy-ragged-tiles",
            enc(
                &Image::synthetic_rgb(48, 80, 7),
                &EncodeParams::new(Mode::lossy_default()).tile_size(16, 16),
            ),
        ),
    ]
}

/// Runs every public decode entry point on `bytes`, discarding results:
/// structured errors are expected, panics are bugs (callers wrap this
/// in `catch_unwind` and a wall-clock watchdog). Also asserts the
/// tolerant-decode geometry invariant: whenever the main header parses,
/// [`decode_tolerant`] must return an image of exactly the SIZ
/// dimensions.
pub fn exercise_decode_surface(bytes: &[u8]) {
    let _ = decode(bytes);
    for layers in [0usize, 1, 2, usize::MAX] {
        let _ = decode_quality(bytes, layers);
    }
    for max_res in [0usize, 1, 5, usize::MAX] {
        let _ = decode_thumbnail(bytes, max_res);
    }
    for workers in [1usize, 4] {
        let _ = decode_parallel(bytes, workers);
    }
    let header = parse_codestream_tolerant(bytes).map(|p| p.header);
    match (decode_tolerant(bytes), header) {
        (Ok((image, _report)), Ok(h)) => {
            assert_eq!(
                (image.width, image.height),
                (h.width as usize, h.height as usize),
                "decode_tolerant geometry must match SIZ"
            );
        }
        (Ok(_), Err(_)) => panic!("decode_tolerant succeeded where the header parser failed"),
        (Err(_), _) => {}
    }
    let _ = decode_tolerant_parallel(bytes, 4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_walks_a_valid_stream_to_eoc() {
        for (name, bytes) in seed_streams() {
            let segs = scan_markers(&bytes);
            assert_eq!(segs.first().map(|s| s.marker), Some(MARKER_SOC), "{name}");
            assert_eq!(segs.last().map(|s| s.marker), Some(MARKER_EOC), "{name}");
            // Segments must tile the stream exactly.
            let mut pos = 0;
            for s in &segs {
                assert_eq!(s.offset, pos, "{name}: gap before {:#06x}", s.marker);
                pos += s.len;
            }
            assert_eq!(pos, bytes.len(), "{name}: stream not fully covered");
        }
    }

    #[test]
    fn mutator_is_deterministic() {
        let (_, bytes) = &seed_streams()[2];
        let run = |seed| {
            let mut m = Mutator::new(seed);
            (0..20).map(|_| m.mutate(bytes).0).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn boundaries_are_sorted_and_bounded() {
        let (_, bytes) = &seed_streams()[0];
        let pts = marker_boundaries(bytes);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*pts.last().unwrap(), bytes.len());
    }
}
