//! Persistent decode service: a long-lived worker pool with a bounded
//! submission queue and a two-level LRU cache.
//!
//! The paper's Application-Layer exploration (model versions 2–5) is a
//! fixed pool of decode pipelines fed from a shared queue; the native
//! mirror in [`crate::parallel`] re-creates that pool on every call.
//! [`DecodeService`] keeps it alive instead — the serving shape the
//! ROADMAP's "heavy traffic" north star asks for:
//!
//! * **Worker pool** — a fixed number of persistent threads, each
//!   owning its [`DecodeScratch`] arena across *requests* (not just
//!   tiles), so steady-state serving does no arena re-allocation.
//! * **Bounded queue with explicit backpressure** — [`DecodeService::submit`]
//!   returns [`ServiceError::QueueFull`] instead of blocking
//!   unboundedly; [`DecodeService::submit_wait`] blocks for space up to
//!   a caller deadline.
//! * **Deadlines and cancellation** — per-request deadlines and
//!   cooperative cancellation, both checked at tile granularity, so an
//!   abandoned request stops burning a worker mid-image.
//! * **Two-level LRU cache** keyed by a content hash of the stream:
//!   parsed headers (a [`StagedDecoder`] reused across repeat decodes
//!   of the same stream) and full decoded images, each with its own
//!   byte budget and least-recently-used eviction.
//! * **Single-flight coalescing** — while a decode for a given
//!   `(stream, kind)` is queued or running, identical submissions
//!   attach to it as followers and share the leader's result
//!   ([`ServedFrom::Coalesced`]) instead of enqueueing duplicate work;
//!   each follower keeps its own deadline and cancellation, and a
//!   departing leader hands the decode to the oldest live follower.
//!
//! Strict, tolerant, quality, and thumbnail decodes all route through
//! the same pool and are bit-exact with the one-shot entry points
//! ([`crate::codec::decode`] and friends) — property-tested in
//! `tests/props.rs`.
//!
//! Every accepted submission resolves: the ticket yields a response,
//! [`ServiceError::DeadlineExceeded`], [`ServiceError::Cancelled`], or
//! a decode error — never silence — and [`ServiceStats::reconciles`]
//! checks the accounting identity after a drain.
//!
//! ```
//! use jpeg2000::codec::{encode, EncodeParams, Mode};
//! use jpeg2000::image::Image;
//! use jpeg2000::service::{DecodeService, Request, ServiceConfig};
//!
//! let img = Image::synthetic_rgb(64, 64, 7);
//! let stream = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
//! let service = DecodeService::new(ServiceConfig::default());
//! let resp = service.decode(&stream[..], Request::strict()).unwrap();
//! assert_eq!(*resp.image, img);
//! let stats = service.shutdown();
//! assert!(stats.reconciles());
//! ```

use crate::codec::{DecodeReport, StagedDecoder};
use crate::error::CodecError;
use crate::image::Image;
use crate::parallel::resolve_workers;
use crate::scratch::DecodeScratch;
use osss_sim::probe::{Counter, Gauge, Histogram, MetricsRegistry};
use osss_sim::SimTime;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks `m`, recovering from poisoning.
///
/// Poisoning only records that *some* thread panicked while holding the
/// guard; it does not mean the data is broken. Every critical section
/// in this module either performs a single push/pop on the queue or
/// goes through [`LruCache`] methods that restore their size
/// accounting before returning, so the state behind a poisoned lock is
/// still consistent and the right response is to keep serving — not to
/// propagate a panic into every later `submit`/`stats`/`shutdown`
/// (regression: `service_survives_a_poisoned_lock`).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// cover everything `panic!` produces in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Configuration and request types
// ---------------------------------------------------------------------------

/// Configuration for a [`DecodeService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. `0` selects the machine's available parallelism
    /// (probed once per process, see [`resolve_workers`]).
    pub workers: usize,
    /// Maximum queued (not yet claimed) requests before
    /// [`DecodeService::submit`] reports [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Byte budget for the parsed-header cache (`0` disables it). An
    /// entry's cost is the codestream length it retains.
    pub header_cache_bytes: usize,
    /// Byte budget for the decoded-image cache (`0` disables it). An
    /// entry's cost is `width * height * components * 4` bytes.
    pub image_cache_bytes: usize,
    /// Observability sink. When set, the service exports queue-depth,
    /// wait/service-time, cache and outcome metrics under `service.*`.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            header_cache_bytes: 8 << 20,
            image_cache_bytes: 32 << 20,
            metrics: None,
        }
    }
}

/// Which decode variant a request asks for. Doubles as part of the
/// image-cache key, so every variant caches independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Full strict decode ([`crate::codec::decode`]).
    Strict,
    /// Tolerant decode with a [`DecodeReport`]
    /// ([`crate::codec::decode_tolerant`]).
    Tolerant,
    /// Quality-progressive decode keeping `max_layers` layers
    /// ([`crate::codec::decode_quality`]).
    Quality {
        /// Layers to keep (`0` is clamped to 1, as in the one-shot).
        max_layers: usize,
    },
    /// Resolution-progressive decode of the lowest `max_res + 1`
    /// resolutions ([`crate::codec::decode_thumbnail`]).
    Thumbnail {
        /// Highest resolution level to decode.
        max_res: usize,
    },
}

impl RequestKind {
    /// Header-independent normalization. `Quality { max_layers: 0 }`
    /// decodes exactly like `Quality { max_layers: 1 }` (the one-shot
    /// entry point clamps, see [`crate::codec::decode_quality`]), so
    /// the two must share one image-cache entry and one single-flight
    /// group — before this, equivalent requests occupied distinct LRU
    /// entries and defeated both (regression:
    /// `quality_zero_shares_the_quality_one_cache_entry`).
    #[must_use]
    pub fn normalized(self) -> Self {
        match self {
            RequestKind::Quality { max_layers: 0 } => RequestKind::Quality { max_layers: 1 },
            other => other,
        }
    }

    /// Header-aware normalization: clamps the parameter against the
    /// stream's actual layer/level counts, under which the decode is
    /// provably identical — `Quality { n ≥ layers }` keeps every layer
    /// and `Thumbnail { r ≥ levels }` decodes the full image, exactly
    /// like the clamped forms. Applied once the parsed header is
    /// available (at submit time when the header cache already holds
    /// it, and again inside the worker once it must be parsed anyway).
    fn canonical(self, layers: usize, levels: usize) -> Self {
        match self {
            RequestKind::Quality { max_layers } => RequestKind::Quality {
                max_layers: max_layers.clamp(1, layers.max(1)),
            },
            RequestKind::Thumbnail { max_res } => RequestKind::Thumbnail {
                max_res: max_res.min(levels),
            },
            other => other,
        }
    }
}

/// One decode request: the variant plus an optional deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The decode variant.
    pub kind: RequestKind,
    /// Whole-request deadline, measured from submission. Checked when
    /// the request is claimed and before each tile; an expired request
    /// resolves to [`ServiceError::DeadlineExceeded`].
    pub timeout: Option<Duration>,
}

impl Request {
    /// A strict decode with no deadline.
    pub fn strict() -> Self {
        Request {
            kind: RequestKind::Strict,
            timeout: None,
        }
    }

    /// A tolerant decode with no deadline.
    pub fn tolerant() -> Self {
        Request {
            kind: RequestKind::Tolerant,
            timeout: None,
        }
    }

    /// A quality-progressive decode with no deadline.
    pub fn quality(max_layers: usize) -> Self {
        Request {
            kind: RequestKind::Quality { max_layers },
            timeout: None,
        }
    }

    /// A thumbnail decode with no deadline.
    pub fn thumbnail(max_res: usize) -> Self {
        Request {
            kind: RequestKind::Thumbnail { max_res },
            timeout: None,
        }
    }

    /// Sets the request deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// How a request failed (or was refused).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded queue was full — backpressure; retry later or use
    /// [`DecodeService::submit_wait`].
    QueueFull,
    /// The request's deadline passed before the decode finished.
    DeadlineExceeded,
    /// The requester cancelled via [`Ticket::cancel`].
    Cancelled,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The decode itself failed.
    Decode(CodecError),
    /// The worker panicked while serving this request. The panic was
    /// caught, the worker kept alive, and the request resolved as
    /// failed; the payload is the panic message.
    Panicked(String),
    /// The worker disappeared without replying (a worker panic —
    /// should not happen; reported rather than hanging the caller).
    Lost,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "submission queue full"),
            ServiceError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServiceError::Cancelled => write!(f, "request cancelled"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::Decode(e) => write!(f, "decode failed: {e}"),
            ServiceError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            ServiceError::Lost => write!(f, "worker lost before replying"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Which path produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Full parse + decode.
    Cold,
    /// Decoded from a cached parsed header ([`StagedDecoder`] reuse).
    HeaderCache,
    /// Returned a cached decoded image.
    ImageCache,
    /// Attached to an identical in-flight request (single-flight
    /// coalescing) and shared the leader's result — no decode of its
    /// own was ever queued.
    Coalesced,
}

/// A completed decode.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The decoded image (shared with the image cache when enabled).
    pub image: Arc<Image>,
    /// The tolerant report ([`RequestKind::Tolerant`] only).
    pub report: Option<DecodeReport>,
    /// Which cache level (if any) served the request.
    pub served_from: ServedFrom,
    /// Time spent queued before a worker claimed the request.
    pub queue_wait: Duration,
    /// Time the worker spent on the request.
    pub service_time: Duration,
}

/// A pending request: await the result, or cancel it.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServiceResponse, ServiceError>>,
    cancel: Arc<AtomicBool>,
}

impl Ticket {
    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] outcome of the request.
    pub fn wait(self) -> Result<ServiceResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Lost))
    }

    /// Blocks up to `timeout` for the result; `None` if it is still
    /// pending (the request keeps running — the ticket remains valid).
    ///
    /// # Contract
    ///
    /// `None` says only that the request has not *resolved* yet — it
    /// does not distinguish "still queued" from "decoding right now",
    /// and it never removes the request from the service. A caller
    /// that gives up must say so explicitly: call [`Ticket::cancel`]
    /// (then drop the ticket) and the request resolves
    /// [`ServiceError::Cancelled`] at its next tile boundary — or as
    /// its real outcome, if it won the race. Either way the request
    /// contributes **exactly one** outcome to [`ServiceStats`], alive
    /// ticket or not, so `reconciles()` holds after a drain
    /// (regression: `abandoned_then_cancelled_request_counts_once`).
    /// Simply dropping the ticket without cancelling also keeps the
    /// accounting exact, but the decode runs (and is tallied) to
    /// completion.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServiceResponse, ServiceError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::Lost)),
        }
    }

    /// Requests cooperative cancellation. The decode stops at the next
    /// tile boundary and the ticket resolves to
    /// [`ServiceError::Cancelled`] (or to its result, if it won the
    /// race).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Content-hash key and LRU cache
// ---------------------------------------------------------------------------

/// Content identity of a codestream: length plus two independent
/// FNV-1a-style hashes (different multipliers), computed in one pass.
/// A single 64-bit hash keyed from attacker-controlled bytes is too
/// easy to collide for a cache that returns *images* — a collision
/// would serve the wrong picture — so the key is 160 bits wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StreamKey {
    len: usize,
    h1: u64,
    h2: u64,
}

impl StreamKey {
    fn of(bytes: &[u8]) -> Self {
        let (mut h1, mut h2) = (0xcbf29ce484222325u64, 0xcbf29ce484222325u64);
        for &b in bytes {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(0x100000001b3);
            h2 = (h2 ^ u64::from(b)).wrapping_mul(0x100000001b5);
        }
        StreamKey {
            len: bytes.len(),
            h1,
            h2,
        }
    }
}

/// A byte-budgeted LRU map. Small and boring on purpose: an O(n) scan
/// for the eviction victim is fine at cache sizes where n is the number
/// of *distinct streams*, not tiles.
struct LruCache<K, V> {
    map: HashMap<K, LruEntry<V>>,
    budget: usize,
    used: usize,
    tick: u64,
}

struct LruEntry<V> {
    value: V,
    size: usize,
    last_used: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    fn new(budget: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            budget,
            used: 0,
            tick: 0,
        }
    }

    /// Reads an entry without refreshing its recency or counting a
    /// hit — for advisory lookups (submit-time kind canonicalization)
    /// that must not perturb eviction order or the hit/miss tallies.
    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|e| &e.value)
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Inserts `value`, evicting least-recently-used entries to fit.
    /// Returns the number of evictions. Oversized values (larger than
    /// the whole budget) are not cached at all.
    fn insert(&mut self, key: K, value: V, size: usize) -> u64 {
        if size > self.budget {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.size;
        }
        while self.used + size > self.budget {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = self.map.remove(&k).expect("victim key came from the map");
                    self.used -= e.size;
                    evicted += 1;
                }
                None => break,
            }
        }
        self.used += size;
        self.map.insert(
            key,
            LruEntry {
                value,
                size,
                last_used: self.tick,
            },
        );
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Header-cache value: the parsed decoder plus, for tolerant parses,
/// the parse-stage report to seed each decode's report with.
#[derive(Clone)]
struct CachedHeader {
    dec: Arc<StagedDecoder>,
    base_report: Option<DecodeReport>,
}

/// Image-cache value.
#[derive(Clone)]
struct CachedImage {
    image: Arc<Image>,
    report: Option<DecodeReport>,
}

fn image_bytes(image: &Image) -> usize {
    image.width * image.height * image.num_components() * std::mem::size_of::<i32>()
}

// ---------------------------------------------------------------------------
// Shared state, metrics, stats
// ---------------------------------------------------------------------------

/// Identity of a single-flight group: one queued-or-decoding job
/// exists per live key, and every identical submission attaches to it.
/// The kind is normalized (and, when the header is already cached,
/// canonicalized) before keying, so equivalent requests coalesce.
type FlightKey = (StreamKey, RequestKind);

/// One requester attached to a flight: its ticket plumbing plus its
/// *own* deadline/cancellation. The first waiter is the leader (its
/// submission created the queued job); later ones are coalesced
/// followers. A waiter leaving — expiry, cancellation — never disturbs
/// the decode while any other waiter remains: the oldest survivor is
/// implicitly the new leader.
struct Waiter {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    reply: mpsc::Sender<Result<ServiceResponse, ServiceError>>,
    enqueued: Instant,
    /// True for followers: reported as [`ServedFrom::Coalesced`].
    coalesced: bool,
}

/// A queued decode. Requester-specific state (deadline, cancel flag,
/// reply channel) lives in the flight's [`Waiter`]s, not here — the
/// job is the *shared* work, the waiters are who's asking for it.
struct Job {
    stream: Arc<[u8]>,
    key: StreamKey,
    /// Normalized request kind — the second half of the [`FlightKey`].
    kind: RequestKind,
    /// Test hook: artificial per-tile work, so deadline/cancel races
    /// are deterministic without huge images.
    #[cfg(test)]
    tile_delay: Option<Duration>,
    /// Test hook: panic inside the worker before this tile index — the
    /// injected failure behind the panic-containment regressions.
    #[cfg(test)]
    panic_at: Option<usize>,
    /// Test hook: the worker parks on this gate (open = true) after
    /// claiming the job, so tests can hold a worker busy at will.
    #[cfg(test)]
    gate: Option<Arc<Gate>>,
}

impl Job {
    fn flight_key(&self) -> FlightKey {
        (self.key, self.kind)
    }
}

/// Test gate with two phases: the worker announces *arrival* (so the
/// test knows the job left the queue), then parks until *opened*.
#[cfg(test)]
#[derive(Default)]
struct Gate {
    /// `(arrived, open)`.
    state: Mutex<(bool, bool)>,
    cv: Condvar,
}

#[cfg(test)]
impl Gate {
    fn open(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }

    /// Worker side: announce arrival, park until opened.
    fn pass(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 = true;
        self.cv.notify_all();
        while !s.1 {
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Test side: wait until a worker has claimed the gated job —
    /// without this, a subsequent submit races the worker for the
    /// queue slot the gated job may still occupy.
    fn await_arrival(&self) {
        let mut s = self.state.lock().unwrap();
        while !s.0 {
            s = self.cv.wait(s).unwrap();
        }
    }
}

struct QueueState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

/// Atomic outcome tallies; mirrored to the [`MetricsRegistry`] when
/// configured, kept here too so [`DecodeService::stats`] needs no
/// registry.
#[derive(Default)]
struct Tallies {
    submitted: AtomicU64,
    coalesced: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    header_hits: AtomicU64,
    header_misses: AtomicU64,
    header_evictions: AtomicU64,
    image_hits: AtomicU64,
    image_misses: AtomicU64,
    image_evictions: AtomicU64,
    max_queue_depth: AtomicU64,
    inflight_bytes: AtomicU64,
    max_inflight_bytes: AtomicU64,
}

/// Point-in-time service accounting, from [`DecodeService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that attached to an identical in-flight submission
    /// (single-flight coalescing) instead of queueing their own job.
    /// They resolve through the same outcome counters as queued
    /// requests, so they appear on the right-hand side of
    /// [`ServiceStats::reconciles`] alongside `submitted`.
    pub coalesced: u64,
    /// Requests that resolved with a response.
    pub completed: u64,
    /// Submissions refused with [`ServiceError::QueueFull`].
    pub rejected: u64,
    /// Requests that resolved [`ServiceError::DeadlineExceeded`].
    pub expired: u64,
    /// Requests that resolved [`ServiceError::Cancelled`].
    pub cancelled: u64,
    /// Requests that resolved with a decode error.
    pub failed: u64,
    /// Header-cache hits.
    pub header_hits: u64,
    /// Header-cache misses.
    pub header_misses: u64,
    /// Header-cache evictions.
    pub header_evictions: u64,
    /// Image-cache hits.
    pub image_hits: u64,
    /// Image-cache misses.
    pub image_misses: u64,
    /// Image-cache evictions.
    pub image_evictions: u64,
    /// High-water mark of the submission queue.
    pub max_queue_depth: u64,
    /// High-water mark of request bytes concurrently in flight
    /// (accepted into the queue or being decoded) — the quantity the
    /// server's admission budget bounds upstream.
    pub max_inflight_bytes: u64,
}

impl ServiceStats {
    /// The accounting identity: once the queue is drained, every
    /// accepted submission — queued (`submitted`) or attached to an
    /// in-flight twin (`coalesced`) — resolved exactly one way. (While
    /// requests are still in flight, the left side runs ahead of the
    /// outcomes.)
    pub fn reconciles(&self) -> bool {
        self.submitted + self.coalesced
            == self.completed + self.expired + self.cancelled + self.failed
    }
}

struct Meters {
    queue_depth: Gauge,
    inflight_bytes: Gauge,
    singleflight_inflight: Gauge,
    queue_wait: Histogram,
    service_time: Histogram,
    submitted: Counter,
    coalesced: Counter,
    completed: Counter,
    rejected: Counter,
    expired: Counter,
    cancelled: Counter,
    failed: Counter,
    header_hits: Counter,
    header_misses: Counter,
    header_evictions: Counter,
    image_hits: Counter,
    image_misses: Counter,
    image_evictions: Counter,
}

impl Meters {
    fn new(reg: &MetricsRegistry) -> Self {
        Meters {
            queue_depth: reg.gauge("service.queue.depth"),
            inflight_bytes: reg.gauge("service.inflight_bytes"),
            singleflight_inflight: reg.gauge("service.singleflight_inflight"),
            queue_wait: reg.histogram("service.queue_wait"),
            service_time: reg.histogram("service.service_time"),
            submitted: reg.counter("service.submitted"),
            coalesced: reg.counter("service.coalesced"),
            completed: reg.counter("service.completed"),
            rejected: reg.counter("service.rejected"),
            expired: reg.counter("service.expired"),
            cancelled: reg.counter("service.cancelled"),
            failed: reg.counter("service.failed"),
            header_hits: reg.counter("service.cache.header.hits"),
            header_misses: reg.counter("service.cache.header.misses"),
            header_evictions: reg.counter("service.cache.header.evictions"),
            image_hits: reg.counter("service.cache.image.hits"),
            image_misses: reg.counter("service.cache.image.misses"),
            image_evictions: reg.counter("service.cache.image.evictions"),
        }
    }
}

/// `Duration` → [`SimTime`], saturating: `as_nanos()` is `u128` and
/// `SimTime::ns` multiplies unchecked, so clamp at both steps.
fn sim_time(d: Duration) -> SimTime {
    let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    SimTime::ps(ns.saturating_mul(1_000))
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when work arrives (workers wait here).
    work: Condvar,
    /// Signalled when queue space frees up (`submit_wait` waits here).
    space: Condvar,
    capacity: usize,
    /// Single-flight groups: one entry per queued-or-decoding job,
    /// holding every requester awaiting that job's result.
    ///
    /// Lock order: `singleflight` before `state`, always; and never
    /// sleep on a condvar while holding `singleflight` — workers must
    /// be able to sweep/broadcast groups while submitters wait for
    /// queue space.
    singleflight: Mutex<HashMap<FlightKey, Vec<Waiter>>>,
    header_cache: Mutex<LruCache<(StreamKey, bool), CachedHeader>>,
    image_cache: Mutex<LruCache<(StreamKey, RequestKind), CachedImage>>,
    tallies: Tallies,
    meters: Option<Meters>,
}

impl Shared {
    fn bump(&self, tally: &AtomicU64, meter: impl FnOnce(&Meters) -> &Counter) {
        tally.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.meters {
            meter(m).add(1);
        }
    }

    fn set_depth(&self, depth: usize) {
        let d = depth as u64;
        self.tallies.max_queue_depth.fetch_max(d, Ordering::Relaxed);
        if let Some(m) = &self.meters {
            m.queue_depth.set(depth as i64);
        }
    }

    fn add_inflight(&self, bytes: u64) {
        let now = self
            .tallies
            .inflight_bytes
            .fetch_add(bytes, Ordering::Relaxed)
            + bytes;
        self.tallies
            .max_inflight_bytes
            .fetch_max(now, Ordering::Relaxed);
        if let Some(m) = &self.meters {
            m.inflight_bytes.set(now as i64);
        }
    }

    fn sub_inflight(&self, bytes: u64) {
        let now = self
            .tallies
            .inflight_bytes
            .fetch_sub(bytes, Ordering::Relaxed)
            - bytes;
        if let Some(m) = &self.meters {
            m.inflight_bytes.set(now as i64);
        }
    }

    fn set_singleflight(&self, groups: usize) {
        if let Some(m) = &self.meters {
            m.singleflight_inflight.set(groups as i64);
        }
    }

    /// Resolves one waiter with an error outcome, tallying it and
    /// recording how long it waited between submission and resolution.
    fn resolve_err(&self, waiter: &Waiter, err: ServiceError, now: Instant) {
        let (tally, meter): (&AtomicU64, fn(&Meters) -> &Counter) = match &err {
            ServiceError::DeadlineExceeded => (&self.tallies.expired, |m| &m.expired),
            ServiceError::Cancelled => (&self.tallies.cancelled, |m| &m.cancelled),
            _ => (&self.tallies.failed, |m| &m.failed),
        };
        self.bump(tally, meter);
        if let Some(m) = &self.meters {
            m.queue_wait
                .observe(sim_time(now.saturating_duration_since(waiter.enqueued)));
        }
        let _ = waiter.reply.send(Err(err));
    }
}

/// Verdict of a tile-boundary sweep over a flight's waiters.
#[derive(PartialEq, Eq)]
enum Sweep {
    /// At least one live waiter remains — keep decoding.
    Continue,
    /// Every waiter resolved (expired/cancelled) and the group is
    /// gone; the decode has nobody left to deliver to and stops.
    Abandon,
}

/// Resolves expired and cancelled waiters out of the flight `fkey`.
/// Run before every tile: this is the deadline/cancellation
/// granularity. Removing the *leader* (the oldest waiter) while
/// followers remain is the promotion case — the decode keeps running
/// and the oldest survivor inherits the result.
fn sweep(shared: &Shared, fkey: FlightKey) -> Sweep {
    let now = Instant::now();
    let mut flights = lock_unpoisoned(&shared.singleflight);
    let Some(group) = flights.get_mut(&fkey) else {
        // Defensive: the group is created with the job and removed
        // only by the worker that claimed it, so it must still exist.
        return Sweep::Abandon;
    };
    group.retain(|w| {
        if w.cancel.load(Ordering::Relaxed) {
            shared.resolve_err(w, ServiceError::Cancelled, now);
            false
        } else if w.deadline.is_some_and(|d| now >= d) {
            shared.resolve_err(w, ServiceError::DeadlineExceeded, now);
            false
        } else {
            true
        }
    });
    if group.is_empty() {
        flights.remove(&fkey);
        let groups = flights.len();
        drop(flights);
        shared.set_singleflight(groups);
        Sweep::Abandon
    } else {
        Sweep::Continue
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A long-lived decode service. See the [module docs](self).
pub struct DecodeService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DecodeService {
    /// Starts the worker pool.
    pub fn new(config: ServiceConfig) -> Self {
        let workers = resolve_workers(config.workers);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: config.queue_capacity,
            singleflight: Mutex::new(HashMap::new()),
            header_cache: Mutex::new(LruCache::new(config.header_cache_bytes)),
            image_cache: Mutex::new(LruCache::new(config.image_cache_bytes)),
            tallies: Tallies::default(),
            meters: config.metrics.as_ref().map(Meters::new),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("decode-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a decode worker thread")
            })
            .collect();
        DecodeService {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] under backpressure,
    /// [`ServiceError::ShuttingDown`] after [`Self::shutdown`] began.
    pub fn submit(
        &self,
        stream: impl Into<Arc<[u8]>>,
        request: Request,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(stream.into(), request, None)
    }

    /// Submits a request, blocking up to `space_timeout` for queue
    /// space.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] if no space freed up within
    /// `space_timeout`, [`ServiceError::ShuttingDown`] after
    /// [`Self::shutdown`] began.
    pub fn submit_wait(
        &self,
        stream: impl Into<Arc<[u8]>>,
        request: Request,
        space_timeout: Duration,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(stream.into(), request, Some(space_timeout))
    }

    /// Convenience: [`Self::submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`].
    pub fn decode(
        &self,
        stream: impl Into<Arc<[u8]>>,
        request: Request,
    ) -> Result<ServiceResponse, ServiceError> {
        self.submit(stream, request)?.wait()
    }

    fn submit_inner(
        &self,
        stream: Arc<[u8]>,
        request: Request,
        space_timeout: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let key = StreamKey::of(&stream);
        let kind = self.canonical_kind(key, request.kind);
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            stream,
            key,
            kind,
            #[cfg(test)]
            tile_delay: None,
            #[cfg(test)]
            panic_at: None,
            #[cfg(test)]
            gate: None,
        };
        let waiter = Waiter {
            deadline: request.timeout.map(|t| now + t),
            cancel: Arc::clone(&cancel),
            reply: tx,
            enqueued: now,
            coalesced: false,
        };
        self.enqueue(job, waiter, space_timeout)?;
        Ok(Ticket { rx, cancel })
    }

    /// The cache/flight identity of `kind` for this stream: always the
    /// header-independent [`RequestKind::normalized`] form, refined to
    /// the header-aware canonical form when the parsed header is
    /// already cached. When it is not, the worker re-canonicalizes
    /// after parsing (see [`serve`]) — a submission racing that first
    /// parse may key a separate flight, which costs a missed coalesce,
    /// never a wrong result.
    fn canonical_kind(&self, key: StreamKey, kind: RequestKind) -> RequestKind {
        let kind = kind.normalized();
        if !matches!(
            kind,
            RequestKind::Quality { .. } | RequestKind::Thumbnail { .. }
        ) {
            return kind;
        }
        let cache = lock_unpoisoned(&self.shared.header_cache);
        match cache.peek(&(key, false)) {
            Some(h) => {
                let hdr = h.dec.header();
                kind.canonical(hdr.layers as usize, hdr.levels as usize)
            }
            None => kind,
        }
    }

    /// Attaches the submission to an identical in-flight request, or
    /// enqueues it as a new flight's leader. The flight map is always
    /// examined before the queue — and re-examined after every
    /// queue-space wait — so two identical submissions can never both
    /// occupy queue slots.
    fn enqueue(
        &self,
        job: Job,
        mut waiter: Waiter,
        space_timeout: Option<Duration>,
    ) -> Result<(), ServiceError> {
        let shared = &self.shared;
        let fkey = job.flight_key();
        let wait_deadline = space_timeout.map(|t| Instant::now() + t);
        loop {
            let mut flights = lock_unpoisoned(&shared.singleflight);
            if let Some(group) = flights.get_mut(&fkey) {
                waiter.coalesced = true;
                group.push(waiter);
                drop(flights);
                shared.bump(&shared.tallies.coalesced, |m| &m.coalesced);
                return Ok(());
            }
            let mut state = lock_unpoisoned(&shared.state);
            if state.shutting_down {
                return Err(ServiceError::ShuttingDown);
            }
            if state.queue.len() < shared.capacity {
                flights.insert(fkey, vec![waiter]);
                let groups = flights.len();
                drop(flights);
                let bytes = job.stream.len() as u64;
                state.queue.push_back(job);
                let depth = state.queue.len();
                drop(state);
                shared.bump(&shared.tallies.submitted, |m| &m.submitted);
                shared.set_singleflight(groups);
                shared.set_depth(depth);
                shared.add_inflight(bytes);
                shared.work.notify_one();
                return Ok(());
            }
            // Queue full. Never sleep holding the flight map — workers
            // need it to sweep and broadcast.
            drop(flights);
            let Some(wait_deadline) = wait_deadline else {
                drop(state);
                shared.bump(&shared.tallies.rejected, |m| &m.rejected);
                return Err(ServiceError::QueueFull);
            };
            let now = Instant::now();
            if now >= wait_deadline {
                drop(state);
                shared.bump(&shared.tallies.rejected, |m| &m.rejected);
                return Err(ServiceError::QueueFull);
            }
            let state = shared
                .space
                .wait_timeout(state, wait_deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
            drop(state);
            // Loop: a flight for this key may have appeared while we
            // slept, letting the submission coalesce instead of queue.
        }
    }

    /// A snapshot of the outcome and cache tallies.
    pub fn stats(&self) -> ServiceStats {
        let t = &self.shared.tallies;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            submitted: get(&t.submitted),
            coalesced: get(&t.coalesced),
            completed: get(&t.completed),
            rejected: get(&t.rejected),
            expired: get(&t.expired),
            cancelled: get(&t.cancelled),
            failed: get(&t.failed),
            header_hits: get(&t.header_hits),
            header_misses: get(&t.header_misses),
            header_evictions: get(&t.header_evictions),
            image_hits: get(&t.image_hits),
            image_misses: get(&t.image_misses),
            image_evictions: get(&t.image_evictions),
            max_queue_depth: get(&t.max_queue_depth),
            max_inflight_bytes: get(&t.max_inflight_bytes),
        }
    }

    /// Entries currently held by the (header, image) caches.
    pub fn cache_entries(&self) -> (usize, usize) {
        (
            lock_unpoisoned(&self.shared.header_cache).len(),
            lock_unpoisoned(&self.shared.image_cache).len(),
        )
    }

    /// Graceful shutdown: stops accepting work, lets the workers drain
    /// every already-queued request (each still resolves its ticket),
    /// joins them, and returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut state = lock_unpoisoned(&self.shared.state);
        state.shutting_down = true;
        drop(state);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }
}

impl Drop for DecodeService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown();
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    // The arena lives for the thread's whole life — the point of a
    // *persistent* pool: steady-state requests re-use these buffers.
    let mut scratch = DecodeScratch::new();
    loop {
        let job = {
            let mut state = lock_unpoisoned(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.set_depth(state.queue.len());
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.space.notify_one();
        handle(shared, job, &mut scratch);
    }
}

fn handle(shared: &Shared, job: Job, scratch: &mut DecodeScratch) {
    #[cfg(test)]
    if let Some(gate) = &job.gate {
        gate.pass();
    }
    let started = Instant::now();
    // A panicking decode (or test hook) must not kill the worker: the
    // pool would silently shrink, the tickets would resolve `Lost` only
    // because the channel closed, and the identity behind
    // `ServiceStats::reconciles` would break. Catch the unwind, resolve
    // the flight as failed, keep serving.
    let outcome =
        catch_unwind(AssertUnwindSafe(|| serve(shared, &job, scratch))).unwrap_or_else(|payload| {
            // The arena may have been mid-rewrite when the stack
            // unwound; a fresh one is cheap and provably clean.
            *scratch = DecodeScratch::new();
            Err(Abort::Error(ServiceError::Panicked(panic_message(
                payload.as_ref(),
            ))))
        });
    let service_time = started.elapsed();
    if let Some(m) = &shared.meters {
        m.service_time.observe(sim_time(service_time));
    }
    // Retire the flight: everyone still attached gets this outcome —
    // including waiters whose deadline has passed by now (the result
    // won the race) and waiters who attached mid-decode. Removing the
    // entry under the lock means no submission can attach afterwards.
    //
    // Except when the flight was *abandoned*: the sweep already
    // resolved every waiter and removed the group, and an identical
    // submission may since have opened a fresh group (with its own
    // queued job) under the same key. That group belongs to the new
    // job — removing it here would orphan its waiters.
    let waiters = if matches!(outcome, Err(Abort::Abandoned)) {
        Vec::new()
    } else {
        let mut flights = lock_unpoisoned(&shared.singleflight);
        let ws = flights.remove(&job.flight_key()).unwrap_or_default();
        let groups = flights.len();
        drop(flights);
        shared.set_singleflight(groups);
        ws
    };
    match outcome {
        Ok((image, report, served_from)) => {
            for w in waiters {
                let queue_wait = started.saturating_duration_since(w.enqueued);
                shared.bump(&shared.tallies.completed, |m| &m.completed);
                if let Some(m) = &shared.meters {
                    m.queue_wait.observe(sim_time(queue_wait));
                }
                let from = if w.coalesced {
                    ServedFrom::Coalesced
                } else {
                    served_from
                };
                // The requester may have dropped its ticket; that is
                // its problem, the outcome is already recorded.
                let _ = w.reply.send(Ok(ServiceResponse {
                    image: Arc::clone(&image),
                    report: report.clone(),
                    served_from: from,
                    queue_wait,
                    service_time,
                }));
            }
        }
        // Every waiter was already resolved (and tallied) by the
        // tile-boundary sweep; nothing left to deliver.
        Err(Abort::Abandoned) => {}
        Err(Abort::Error(err)) => {
            let now = Instant::now();
            for w in waiters {
                shared.resolve_err(&w, err.clone(), now);
            }
        }
    }
    shared.sub_inflight(job.stream.len() as u64);
}

type Served = (Arc<Image>, Option<DecodeReport>, ServedFrom);

/// Why [`serve`] stopped without a result.
enum Abort {
    /// A real failure (parse/decode error, injected panic) — broadcast
    /// to every remaining waiter as `failed`.
    Error(ServiceError),
    /// The sweep resolved every waiter (deadlines/cancellations); the
    /// decode stops and nothing more is tallied.
    Abandoned,
}

fn serve(shared: &Shared, job: &Job, scratch: &mut DecodeScratch) -> Result<Served, Abort> {
    let check = |_tile: usize| -> Result<(), Abort> {
        if sweep(shared, job.flight_key()) == Sweep::Abandon {
            return Err(Abort::Abandoned);
        }
        #[cfg(test)]
        if job.panic_at.is_some_and(|at| _tile >= at) {
            panic!("injected worker panic before tile {_tile}");
        }
        #[cfg(test)]
        if let Some(d) = job.tile_delay {
            std::thread::sleep(d);
        }
        Ok(())
    };
    check(0)?;

    // Level 2: full decoded image, under the submit-time key.
    let image_key = (job.key, job.kind);
    if let Some(hit) = lock_unpoisoned(&shared.image_cache).get(&image_key) {
        shared.bump(&shared.tallies.image_hits, |m| &m.image_hits);
        return Ok((hit.image, hit.report, ServedFrom::ImageCache));
    }

    // Level 1: parsed header.
    let tolerant = job.kind == RequestKind::Tolerant;
    let header_key = (job.key, tolerant);
    let cached = lock_unpoisoned(&shared.header_cache).get(&header_key);
    let (header, served_from) = match cached {
        Some(h) => {
            shared.bump(&shared.tallies.header_hits, |m| &m.header_hits);
            (h, ServedFrom::HeaderCache)
        }
        None => {
            shared.bump(&shared.tallies.header_misses, |m| &m.header_misses);
            let parsed = if tolerant {
                StagedDecoder::new_tolerant(&job.stream).map(|(dec, report)| CachedHeader {
                    dec: Arc::new(dec),
                    base_report: Some(report),
                })
            } else {
                StagedDecoder::new(&job.stream).map(|dec| CachedHeader {
                    dec: Arc::new(dec),
                    base_report: None,
                })
            };
            let header = match parsed {
                Ok(h) => h,
                Err(e) => {
                    // The parse failure is this flight's one image-
                    // cache miss: it reached the decode path cold.
                    shared.bump(&shared.tallies.image_misses, |m| &m.image_misses);
                    return Err(Abort::Error(ServiceError::Decode(e)));
                }
            };
            let evicted = lock_unpoisoned(&shared.header_cache).insert(
                header_key,
                header.clone(),
                job.stream.len(),
            );
            shared
                .tallies
                .header_evictions
                .fetch_add(evicted, Ordering::Relaxed);
            if let Some(m) = &shared.meters {
                m.header_evictions.add(evicted);
            }
            (header, ServedFrom::Cold)
        }
    };

    // With the parsed header in hand, refine the kind to its canonical
    // form (submit-time normalization could not clamp against layer/
    // level counts it had not seen). A canonical twin already cached
    // counts as the flight's one image-cache hit.
    let hdr = header.dec.header();
    let kind = job.kind.canonical(hdr.layers as usize, hdr.levels as usize);
    let image_key = (job.key, kind);
    if kind != job.kind {
        if let Some(hit) = lock_unpoisoned(&shared.image_cache).get(&image_key) {
            shared.bump(&shared.tallies.image_hits, |m| &m.image_hits);
            return Ok((hit.image, hit.report, ServedFrom::ImageCache));
        }
    }
    shared.bump(&shared.tallies.image_misses, |m| &m.image_misses);

    let (image, report) = run_decode(&header, kind, scratch, &check)?;
    let image = Arc::new(image);
    let evicted = lock_unpoisoned(&shared.image_cache).insert(
        image_key,
        CachedImage {
            image: Arc::clone(&image),
            report: report.clone(),
        },
        image_bytes(&image),
    );
    shared
        .tallies
        .image_evictions
        .fetch_add(evicted, Ordering::Relaxed);
    if let Some(m) = &shared.meters {
        m.image_evictions.add(evicted);
    }
    Ok((image, report, served_from))
}

/// The decode proper — per-tile staged calls identical to the one-shot
/// entry points ([`crate::codec::decode`] and friends), so service
/// results are bit-exact by construction. `check` runs before every
/// tile: that is the deadline/cancellation granularity.
fn run_decode(
    header: &CachedHeader,
    kind: RequestKind,
    scratch: &mut DecodeScratch,
    check: &impl Fn(usize) -> Result<(), Abort>,
) -> Result<(Image, Option<DecodeReport>), Abort> {
    let decode_err = |e| Abort::Error(ServiceError::Decode(e));
    let dec = &header.dec;
    match kind {
        RequestKind::Strict => {
            let mut image = dec.blank_image();
            for t in 0..dec.num_tiles() {
                check(t)?;
                let samples = dec.decode_tile_with(t, scratch).map_err(decode_err)?;
                dec.place_tile(&mut image, &samples);
            }
            Ok((image, None))
        }
        RequestKind::Tolerant => {
            let mut report = header.base_report.clone().unwrap_or_default();
            let mut image = dec.blank_image();
            for t in 0..dec.num_tiles() {
                check(t)?;
                let samples = dec.decode_tile_tolerant_with(t, scratch, &mut report);
                dec.place_tile(&mut image, &samples);
            }
            Ok((image, Some(report)))
        }
        RequestKind::Quality { max_layers } => {
            let mut image = dec.blank_image();
            for t in 0..dec.num_tiles() {
                check(t)?;
                let samples = dec
                    .decode_tile_quality_with(t, max_layers, scratch)
                    .map_err(decode_err)?;
                dec.place_tile(&mut image, &samples);
            }
            Ok((image, None))
        }
        RequestKind::Thumbnail { max_res } => {
            let (out_w, out_h) = dec.thumbnail_size(max_res);
            let mut image = Image::new(
                out_w,
                out_h,
                dec.header().depth,
                dec.header().num_components as usize,
            );
            for t in 0..dec.num_tiles() {
                check(t)?;
                let samples = dec
                    .decode_tile_thumbnail_with(t, max_res, scratch)
                    .map_err(decode_err)?;
                dec.place_tile(&mut image, &samples);
            }
            Ok((image, None))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{
        decode, decode_quality, decode_thumbnail, decode_tolerant, encode, EncodeParams, Mode,
    };

    fn stream(seed: u64) -> Vec<u8> {
        let img = Image::synthetic_rgb(64, 64, seed);
        encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap()
    }

    fn service(cfg: ServiceConfig) -> DecodeService {
        DecodeService::new(cfg)
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        }
    }

    /// Opens the gate when dropped, so a failing assertion between
    /// gating and opening cannot leave a worker parked forever (the
    /// service's `Drop` joins its workers). Declare *after* the
    /// service so it drops first during unwinding.
    struct AutoOpen(Arc<Gate>);

    impl Drop for AutoOpen {
        fn drop(&mut self) {
            self.0.open();
        }
    }

    /// Submits a job with test hooks attached.
    fn submit_hooked(
        svc: &DecodeService,
        bytes: &[u8],
        request: Request,
        tile_delay: Option<Duration>,
        gate: Option<Arc<Gate>>,
    ) -> Result<Ticket, ServiceError> {
        submit_hooked_panicking(svc, bytes, request, tile_delay, gate, None)
    }

    fn submit_hooked_panicking(
        svc: &DecodeService,
        bytes: &[u8],
        request: Request,
        tile_delay: Option<Duration>,
        gate: Option<Arc<Gate>>,
        panic_at: Option<usize>,
    ) -> Result<Ticket, ServiceError> {
        let stream: Arc<[u8]> = bytes.into();
        let key = StreamKey::of(&stream);
        let kind = svc.canonical_kind(key, request.kind);
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            stream,
            key,
            kind,
            tile_delay,
            panic_at,
            gate,
        };
        let waiter = Waiter {
            deadline: request.timeout.map(|t| now + t),
            cancel: Arc::clone(&cancel),
            reply: tx,
            enqueued: now,
            coalesced: false,
        };
        svc.enqueue(job, waiter, None)?;
        Ok(Ticket { rx, cancel })
    }

    #[test]
    fn all_kinds_bit_exact_vs_one_shot() {
        let bytes = stream(1);
        let svc = service(small_cfg());
        let strict = svc.decode(&bytes[..], Request::strict()).unwrap();
        assert_eq!(*strict.image, decode(&bytes).unwrap().image);
        assert_eq!(strict.served_from, ServedFrom::Cold);

        let tol = svc.decode(&bytes[..], Request::tolerant()).unwrap();
        let (ref_img, ref_report) = decode_tolerant(&bytes).unwrap();
        assert_eq!(*tol.image, ref_img);
        assert_eq!(tol.report.unwrap(), ref_report);

        let q = svc.decode(&bytes[..], Request::quality(1)).unwrap();
        assert_eq!(*q.image, decode_quality(&bytes, 1).unwrap());

        let th = svc.decode(&bytes[..], Request::thumbnail(0)).unwrap();
        assert_eq!(*th.image, decode_thumbnail(&bytes, 0).unwrap());

        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert!(stats.reconciles());
    }

    #[test]
    fn repeat_requests_climb_the_cache_levels() {
        let bytes = stream(2);
        let svc = service(small_cfg());
        let first = svc.decode(&bytes[..], Request::strict()).unwrap();
        assert_eq!(first.served_from, ServedFrom::Cold);
        let second = svc.decode(&bytes[..], Request::strict()).unwrap();
        assert_eq!(second.served_from, ServedFrom::ImageCache);
        assert_eq!(second.image, first.image, "cache returns the same pixels");
        // A different kind misses the image cache but reuses the header.
        let q = svc.decode(&bytes[..], Request::quality(9)).unwrap();
        assert_eq!(q.served_from, ServedFrom::HeaderCache);
        let stats = svc.shutdown();
        assert_eq!(stats.image_hits, 1);
        assert_eq!(stats.image_misses, 2);
        assert_eq!(stats.header_hits, 1);
        assert_eq!(stats.header_misses, 1);
    }

    #[test]
    fn tolerant_served_from_cache_keeps_its_report() {
        let mut bytes = stream(3);
        let n = bytes.len();
        bytes[n / 2] ^= 0xa5; // damage somewhere in the tile data
        let svc = service(small_cfg());
        let Ok(cold) = svc.decode(&bytes[..], Request::tolerant()) else {
            // The flip may have hit the main header — pick different
            // damage rather than asserting on an unlucky byte.
            return;
        };
        let cached = svc.decode(&bytes[..], Request::tolerant()).unwrap();
        assert_eq!(cached.served_from, ServedFrom::ImageCache);
        assert_eq!(cached.report, cold.report);
        assert_eq!(cached.image, cold.image);
    }

    #[test]
    fn image_cache_evicts_under_a_tight_byte_budget() {
        let a = stream(10);
        let b = stream(11);
        // Budget fits exactly one 64×64×3 image.
        let one_image = 64 * 64 * 3 * 4;
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: one_image,
            ..ServiceConfig::default()
        });
        svc.decode(&a[..], Request::strict()).unwrap();
        svc.decode(&b[..], Request::strict()).unwrap(); // evicts a
        assert_eq!(svc.cache_entries().1, 1);
        let again = svc.decode(&a[..], Request::strict()).unwrap();
        assert_ne!(again.served_from, ServedFrom::ImageCache);
        let stats = svc.shutdown();
        assert_eq!(stats.image_evictions, 2, "b evicted a, then a evicted b");
        assert_eq!(stats.image_hits, 0);
    }

    #[test]
    fn zero_budget_disables_a_cache_level() {
        let bytes = stream(12);
        let svc = service(ServiceConfig {
            workers: 1,
            header_cache_bytes: 0,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        for _ in 0..2 {
            let r = svc.decode(&bytes[..], Request::strict()).unwrap();
            assert_eq!(r.served_from, ServedFrom::Cold);
        }
        assert_eq!(svc.cache_entries(), (0, 0));
        let stats = svc.shutdown();
        assert_eq!(stats.image_hits + stats.header_hits, 0);
    }

    #[test]
    fn queue_full_is_reported_and_tallied() {
        // Distinct streams throughout: identical ones would coalesce
        // into the held flight instead of contending for the queue.
        let streams: Vec<Vec<u8>> = (130..134).map(stream).collect();
        let svc = service(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        // Hold the single worker busy, then fill the 1-slot queue.
        let gate = Arc::new(Gate::default());
        let _guard = AutoOpen(Arc::clone(&gate));
        let held = submit_hooked(
            &svc,
            &streams[0],
            Request::strict(),
            None,
            Some(Arc::clone(&gate)),
        )
        .unwrap();
        gate.await_arrival();
        let queued = svc.submit(&streams[1][..], Request::strict()).unwrap();
        let full = svc.submit(&streams[2][..], Request::strict());
        assert_eq!(full.unwrap_err(), ServiceError::QueueFull);
        let timed = svc.submit_wait(
            &streams[3][..],
            Request::strict(),
            Duration::from_millis(10),
        );
        assert_eq!(timed.unwrap_err(), ServiceError::QueueFull);
        gate.open();
        held.wait().unwrap();
        queued.wait().unwrap();
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.completed, 2);
        assert!(stats.reconciles());
        assert_eq!(stats.max_queue_depth, 1);
    }

    #[test]
    fn submit_wait_gets_a_slot_when_space_frees() {
        // Distinct streams: identical ones would coalesce, not queue.
        let streams: Vec<Vec<u8>> = (140..143).map(stream).collect();
        let svc = service(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let gate = Arc::new(Gate::default());
        let _guard = AutoOpen(Arc::clone(&gate));
        let held = submit_hooked(
            &svc,
            &streams[0],
            Request::strict(),
            None,
            Some(Arc::clone(&gate)),
        )
        .unwrap();
        gate.await_arrival();
        let queued = svc.submit(&streams[1][..], Request::strict()).unwrap();
        // Waits for the worker to claim `queued`, freeing the slot.
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                gate.open();
            })
        };
        let waited = svc
            .submit_wait(&streams[2][..], Request::strict(), Duration::from_secs(30))
            .unwrap();
        held.wait().unwrap();
        queued.wait().unwrap();
        waited.wait().unwrap();
        opener.join().unwrap();
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.submitted, 3);
        assert!(stats.reconciles());
    }

    #[test]
    fn deadline_expires_while_queued() {
        // A distinct stream so `doomed` genuinely waits in the queue
        // (the same stream would attach to the held flight instead).
        let held_bytes = stream(15);
        let doomed_bytes = stream(150);
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        let gate = Arc::new(Gate::default());
        let _guard = AutoOpen(Arc::clone(&gate));
        let held = submit_hooked(
            &svc,
            &held_bytes,
            Request::strict(),
            None,
            Some(Arc::clone(&gate)),
        )
        .unwrap();
        gate.await_arrival();
        let doomed = svc
            .submit(
                &doomed_bytes[..],
                Request::strict().with_timeout(Duration::from_millis(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        gate.open();
        held.wait().unwrap();
        assert_eq!(doomed.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        let stats = svc.shutdown();
        assert_eq!(stats.expired, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn deadline_expires_mid_decode() {
        let bytes = stream(16);
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        // 4 tiles × 10 ms against a 5 ms deadline: expires on a tile
        // boundary, after the decode has started.
        let ticket = submit_hooked(
            &svc,
            &bytes,
            Request::strict().with_timeout(Duration::from_millis(5)),
            Some(Duration::from_millis(10)),
            None,
        )
        .unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        let stats = svc.shutdown();
        assert_eq!(stats.expired, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn cancellation_stops_a_running_decode() {
        let bytes = stream(17);
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        let ticket = submit_hooked(
            &svc,
            &bytes,
            Request::strict(),
            Some(Duration::from_millis(10)),
            None,
        )
        .unwrap();
        ticket.cancel();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::Cancelled);
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn decode_errors_surface_through_the_ticket() {
        let svc = service(small_cfg());
        let garbage = b"definitely not a codestream".to_vec();
        let err = svc.decode(&garbage[..], Request::strict()).unwrap_err();
        assert!(matches!(err, ServiceError::Decode(_)), "{err}");
        let stats = svc.shutdown();
        assert_eq!(stats.failed, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        // Distinct streams so four jobs genuinely sit in the queue at
        // shutdown (identical ones would coalesce into one flight).
        let held_bytes = stream(18);
        let queued_bytes: Vec<Vec<u8>> = (180..184).map(stream).collect();
        let svc = service(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        });
        let gate = Arc::new(Gate::default());
        let _guard = AutoOpen(Arc::clone(&gate));
        let held = submit_hooked(
            &svc,
            &held_bytes,
            Request::strict(),
            None,
            Some(Arc::clone(&gate)),
        )
        .unwrap();
        gate.await_arrival();
        let tickets: Vec<Ticket> = queued_bytes
            .iter()
            .map(|b| svc.submit(&b[..], Request::strict()).unwrap())
            .collect();
        gate.open();
        let stats = svc.shutdown();
        // Every queued request still resolved with a real result.
        for t in tickets {
            t.wait().unwrap();
        }
        held.wait().unwrap();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert!(stats.reconciles());
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let bytes = stream(19);
        let svc = service(small_cfg());
        svc.begin_shutdown();
        let err = svc.submit(&bytes[..], Request::strict()).unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn concurrent_clients_over_distinct_streams() {
        let streams: Vec<Vec<u8>> = (30..34).map(stream).collect();
        let svc = service(ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        });
        std::thread::scope(|scope| {
            for bytes in &streams {
                for _ in 0..3 {
                    scope.spawn(|| {
                        let r = svc.decode(&bytes[..], Request::strict()).unwrap();
                        assert_eq!(*r.image, decode(bytes).unwrap().image);
                    });
                }
            }
        });
        let stats = svc.shutdown();
        // Concurrent identical requests may coalesce, so only the sum
        // of queued and attached submissions is exact.
        assert_eq!(stats.submitted + stats.coalesced, 12);
        assert_eq!(stats.completed, 12);
        assert!(stats.submitted >= 4, "one leader per distinct stream");
        assert!(stats.reconciles());
        // Every queued job does exactly one image-cache lookup; each
        // distinct stream misses at least once (races may decode a
        // stream twice before its first insert lands, so only bound it).
        assert!(stats.image_misses >= 4);
        assert_eq!(stats.image_hits + stats.image_misses, stats.submitted);
    }

    #[test]
    fn metrics_registry_reconciles_with_stats() {
        let bytes = stream(20);
        let reg = MetricsRegistry::new();
        let svc = service(ServiceConfig {
            workers: 1,
            metrics: Some(reg.clone()),
            ..ServiceConfig::default()
        });
        svc.decode(&bytes[..], Request::strict()).unwrap();
        svc.decode(&bytes[..], Request::strict()).unwrap();
        let stats = svc.shutdown();
        let snap = reg.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or_default();
        assert_eq!(counter("service.submitted"), stats.submitted);
        assert_eq!(counter("service.completed"), stats.completed);
        assert_eq!(counter("service.cache.image.hits"), stats.image_hits);
        assert_eq!(counter("service.cache.image.misses"), stats.image_misses);
        let wait_samples = snap
            .histograms
            .get("service.queue_wait")
            .map(|h| h.count())
            .unwrap_or_default();
        assert_eq!(wait_samples, stats.submitted);
        // In-flight byte accounting: the high-water mark saw at least
        // one whole request, and everything drained by shutdown.
        assert!(
            stats.max_inflight_bytes >= bytes.len() as u64,
            "{stats:?} vs {} request bytes",
            bytes.len()
        );
        assert_eq!(snap.gauges.get("service.inflight_bytes").copied(), Some(0));
    }

    #[test]
    fn stream_key_separates_contents_and_lengths() {
        let a = StreamKey::of(b"abc");
        assert_eq!(a, StreamKey::of(b"abc"));
        assert_ne!(a, StreamKey::of(b"abd"));
        assert_ne!(a, StreamKey::of(b"abcc"));
        assert_ne!(StreamKey::of(b""), StreamKey::of(b"\0"));
    }

    #[test]
    fn worker_panic_resolves_the_ticket_and_keeps_the_worker_alive() {
        let bytes = stream(40);
        let svc = service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // The injected panic fires inside the (single) worker, before
        // tile 0. Without the unwind catch the worker thread dies: this
        // wait would report `Lost`, and the follow-up decode would hang
        // forever in an empty pool.
        let doomed =
            submit_hooked_panicking(&svc, &bytes, Request::strict(), None, None, Some(0)).unwrap();
        match doomed.wait().unwrap_err() {
            ServiceError::Panicked(msg) => assert!(msg.contains("injected worker panic"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Same worker, next request: still serving, bit-exact.
        let ok = svc.decode(&bytes[..], Request::strict()).unwrap();
        assert_eq!(*ok.image, decode(&bytes).unwrap().image);
        // A panic mid-decode resolves as failed, once.
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn worker_panic_mid_decode_still_reconciles() {
        let bytes = stream(41);
        let svc = service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        // Panic after the first tile (the stream has 4): the arena is
        // mid-request when the stack unwinds.
        let doomed =
            submit_hooked_panicking(&svc, &bytes, Request::strict(), None, None, Some(2)).unwrap();
        assert!(matches!(
            doomed.wait().unwrap_err(),
            ServiceError::Panicked(_)
        ));
        for _ in 0..3 {
            let ok = svc.decode(&bytes[..], Request::strict()).unwrap();
            assert_eq!(*ok.image, decode(&bytes).unwrap().image);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 3);
        assert!(stats.reconciles());
    }

    #[test]
    fn service_survives_a_poisoned_lock() {
        let bytes = stream(42);
        let svc = service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        svc.decode(&bytes[..], Request::strict()).unwrap();
        // Poison the queue mutex (and both cache mutexes) the way a
        // stray panic would: lock, panic, unwind. Before the recovery
        // fix, every later submit/stats/shutdown panicked on
        // `.expect("service queue lock")`.
        let shared = Arc::clone(&svc.shared);
        std::thread::spawn(move || {
            let _flights = shared.singleflight.lock().unwrap();
            let _queue = shared.state.lock().unwrap();
            let _headers = shared.header_cache.lock().unwrap();
            let _images = shared.image_cache.lock().unwrap();
            panic!("deliberate poisoning");
        })
        .join()
        .unwrap_err();
        assert!(svc.shared.state.is_poisoned(), "the panic must poison");
        // The service shrugs: submissions, cache reads, stats and the
        // graceful shutdown all still work.
        let r = svc.decode(&bytes[..], Request::strict()).unwrap();
        assert_eq!(r.served_from, ServedFrom::ImageCache);
        assert_eq!(svc.cache_entries().1, 1);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert!(stats.reconciles());
    }

    #[test]
    fn abandoned_then_cancelled_request_counts_once() {
        let bytes = stream(43);
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        // 4 tiles × 60 ms: wait_timeout(10 ms) fires mid-tile-0, the
        // cancel lands long before the tile-1 check.
        let ticket = submit_hooked(
            &svc,
            &bytes,
            Request::strict(),
            Some(Duration::from_millis(60)),
            None,
        )
        .unwrap();
        assert!(
            ticket.wait_timeout(Duration::from_millis(10)).is_none(),
            "request must still be running at the timeout"
        );
        // The documented abandonment protocol: cancel, then drop.
        ticket.cancel();
        drop(ticket);
        // Shutdown drains the request; it must be tallied exactly once,
        // as cancelled, despite nobody waiting on it.
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 0);
        assert!(stats.reconciles());
    }

    #[test]
    fn coalesced_followers_share_one_decode() {
        let filler = stream(50);
        let hot = stream(51);
        let svc = service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // Park the only worker on a filler stream; the hot leader then
        // sits in the queue, so followers deterministically attach.
        let gate = Arc::new(Gate::default());
        let _guard = AutoOpen(Arc::clone(&gate));
        let parked = submit_hooked(
            &svc,
            &filler,
            Request::strict(),
            None,
            Some(Arc::clone(&gate)),
        )
        .unwrap();
        gate.await_arrival();
        let leader = svc.submit(&hot[..], Request::strict()).unwrap();
        let followers: Vec<Ticket> = (0..3)
            .map(|_| svc.submit(&hot[..], Request::strict()).unwrap())
            .collect();
        gate.open();
        parked.wait().unwrap();
        let led = leader.wait().unwrap();
        assert_eq!(led.served_from, ServedFrom::Cold);
        assert_eq!(*led.image, decode(&hot).unwrap().image);
        for f in followers {
            let resp = f.wait().unwrap();
            assert_eq!(resp.served_from, ServedFrom::Coalesced);
            assert!(
                Arc::ptr_eq(&resp.image, &led.image),
                "followers share the leader's allocation, not a copy"
            );
        }
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 2, "filler + one hot leader");
        assert_eq!(stats.coalesced, 3);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.image_misses, 2, "exactly one decode per stream");
        assert!(stats.reconciles());
    }

    #[test]
    fn follower_deadline_expiry_never_disturbs_the_leader() {
        let bytes = stream(52);
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        // 4 tiles × 20 ms of injected work: the follower's 5 ms
        // deadline expires at a tile boundary mid-decode, long before
        // the leader finishes.
        let leader = submit_hooked(
            &svc,
            &bytes,
            Request::strict(),
            Some(Duration::from_millis(20)),
            None,
        )
        .unwrap();
        let follower = svc
            .submit(
                &bytes[..],
                Request::strict().with_timeout(Duration::from_millis(5)),
            )
            .unwrap();
        assert_eq!(follower.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        let led = leader.wait().unwrap();
        assert_eq!(*led.image, decode(&bytes).unwrap().image);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.image_misses, 1, "the expiry never re-queued work");
        assert!(stats.reconciles());
    }

    #[test]
    fn cancelled_leader_promotes_the_oldest_follower() {
        let bytes = stream(53);
        let svc = service(ServiceConfig {
            workers: 1,
            image_cache_bytes: 0,
            ..ServiceConfig::default()
        });
        let leader = submit_hooked(
            &svc,
            &bytes,
            Request::strict(),
            Some(Duration::from_millis(20)),
            None,
        )
        .unwrap();
        let follower = svc.submit(&bytes[..], Request::strict()).unwrap();
        leader.cancel();
        assert_eq!(leader.wait().unwrap_err(), ServiceError::Cancelled);
        // The decode survives its leader: the follower inherits it and
        // still gets the exact image — without a second decode.
        let resp = follower.wait().unwrap();
        assert_eq!(resp.served_from, ServedFrom::Coalesced);
        assert_eq!(*resp.image, decode(&bytes).unwrap().image);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.image_misses, 1, "promotion never re-queued work");
        assert!(stats.reconciles());
    }

    #[test]
    fn coalesced_outcomes_mirror_into_the_metrics_registry() {
        let filler = stream(54);
        let hot = stream(55);
        let reg = MetricsRegistry::new();
        let svc = service(ServiceConfig {
            workers: 1,
            metrics: Some(reg.clone()),
            ..ServiceConfig::default()
        });
        let gate = Arc::new(Gate::default());
        let _guard = AutoOpen(Arc::clone(&gate));
        let parked = submit_hooked(
            &svc,
            &filler,
            Request::strict(),
            None,
            Some(Arc::clone(&gate)),
        )
        .unwrap();
        gate.await_arrival();
        let leader = svc.submit(&hot[..], Request::strict()).unwrap();
        let follower = svc.submit(&hot[..], Request::strict()).unwrap();
        gate.open();
        parked.wait().unwrap();
        leader.wait().unwrap();
        follower.wait().unwrap();
        let stats = svc.shutdown();
        let snap = reg.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or_default();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(counter("service.coalesced"), stats.coalesced);
        assert_eq!(counter("service.submitted"), stats.submitted);
        assert_eq!(counter("service.completed"), stats.completed);
        assert_eq!(
            snap.gauges.get("service.singleflight_inflight").copied(),
            Some(0),
            "no flight survives the drain"
        );
        // Every waiter — queued or coalesced — left one queue-wait
        // sample on resolution.
        let wait_samples = snap
            .histograms
            .get("service.queue_wait")
            .map(|h| h.count())
            .unwrap_or_default();
        assert_eq!(wait_samples, stats.submitted + stats.coalesced);
    }

    #[test]
    fn quality_zero_shares_the_quality_one_cache_entry() {
        let bytes = stream(56);
        let svc = service(small_cfg());
        // `Quality{0}` clamps to one layer in the decoder, so it must
        // share a cache entry (and a flight key) with `Quality{1}` —
        // before normalization each occupied its own LRU slot.
        let cold = svc.decode(&bytes[..], Request::quality(0)).unwrap();
        let warm = svc.decode(&bytes[..], Request::quality(1)).unwrap();
        assert_eq!(warm.served_from, ServedFrom::ImageCache);
        assert_eq!(warm.image, cold.image);
        // Header-aware clamp: any `max_res ≥ levels` decodes the full
        // image, so two oversized thumbnail requests share one entry.
        let th_cold = svc.decode(&bytes[..], Request::thumbnail(50)).unwrap();
        let th_warm = svc.decode(&bytes[..], Request::thumbnail(99)).unwrap();
        assert_eq!(th_warm.served_from, ServedFrom::ImageCache);
        assert_eq!(th_warm.image, th_cold.image);
        let stats = svc.shutdown();
        assert_eq!(stats.image_hits, 2);
        assert_eq!(stats.image_misses, 2);
        assert!(stats.reconciles());
    }

    #[test]
    fn lru_cache_prefers_recently_used_entries() {
        let mut c: LruCache<u8, u8> = LruCache::new(3);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        c.insert(3, 30, 1);
        assert_eq!(c.get(&1), Some(10)); // refresh 1; 2 is now LRU
        assert_eq!(c.insert(4, 40, 1), 1);
        assert_eq!(c.get(&2), None, "the LRU entry was evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.insert(5, 50, 3), 3, "a full-budget entry evicts all");
        assert_eq!(c.len(), 1);
        assert_eq!(c.insert(6, 60, 4), 0, "oversized values are not cached");
        assert_eq!(c.get(&6), None);
    }
}
