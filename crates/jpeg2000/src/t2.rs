//! Tier-2: tag trees, stuffed bit I/O and packet headers (T.800 Annex B).
//!
//! One packet carries one (layer, resolution, component) triple — this
//! codec uses a single layer and a single precinct per resolution, so the
//! tile bitstream is simply one packet per resolution per component in
//! LRCP order.

use crate::error::{CodecError, CodecResult};
use crate::t1::T1EncodedBlock;

// ---------------------------------------------------------------------------
// Stuffed bit I/O
// ---------------------------------------------------------------------------

/// MSB-first bit writer with JPEG 2000 packet-header stuffing: after an
/// emitted `0xFF` byte, the next byte carries only 7 payload bits (its MSB
/// is a stuffed 0), so no marker can appear inside a header.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    acc: u16,
    nbits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn byte_capacity(&self) -> u8 {
        if self.bytes.last() == Some(&0xFF) {
            7
        } else {
            8
        }
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u16;
        self.nbits += 1;
        if self.nbits == self.byte_capacity() {
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Writes the low `n` bits of `v`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn put_bits(&mut self, v: u32, n: u8) {
        assert!(n <= 32);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 != 0);
        }
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    /// A trailing `0xFF` is padded with an extra `0x00` byte so the output
    /// can never end in a marker prefix.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = self.byte_capacity() - self.nbits;
            self.bytes.push((self.acc << pad) as u8);
        }
        if self.bytes.last() == Some(&0xFF) {
            self.bytes.push(0x00);
        }
        self.bytes
    }
}

/// MSB-first bit reader matching [`BitWriter`]'s stuffing rule.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u8,
    nbits: u8,
    prev_ff: bool,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over header bytes.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
            prev_ff: false,
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of data.
    pub fn get_bit(&mut self) -> CodecResult<bool> {
        if self.nbits == 0 {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| CodecError::truncated("packet header bits").at_offset(self.pos))?;
            self.pos += 1;
            if self.prev_ff {
                // Skip the stuffed MSB.
                self.acc = byte << 1;
                self.nbits = 7;
            } else {
                self.acc = byte;
                self.nbits = 8;
            }
            self.prev_ff = byte == 0xFF;
        }
        let bit = self.acc & 0x80 != 0;
        self.acc <<= 1;
        self.nbits -= 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB-first.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of data.
    pub fn get_bits(&mut self, n: u8) -> CodecResult<u32> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Ok(v)
    }

    /// Number of whole bytes consumed (after discarding buffered bits).
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }
}

// ---------------------------------------------------------------------------
// Tag trees
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct TagNode {
    parent: Option<usize>,
    value: u32,
    low: u32,
    known: bool,
}

/// A JPEG 2000 tag tree: codes a 2-D array of non-negative integers with
/// shared-prefix quadtree structure; used for code-block inclusion and
/// zero-bit-plane signalling.
///
/// # Example
///
/// ```
/// use jpeg2000::t2::{TagTree, BitWriter, BitReader};
///
/// # fn main() -> Result<(), jpeg2000::error::CodecError> {
/// let mut enc = TagTree::new(3, 2);
/// for (i, v) in [1u32, 3, 2, 0, 4, 1].iter().enumerate() {
///     enc.set_value(i % 3, i / 3, *v);
/// }
/// let mut bw = BitWriter::new();
/// for y in 0..2 {
///     for x in 0..3 {
///         enc.encode_value(&mut bw, x, y);
///     }
/// }
/// let bytes = bw.finish();
/// // Decode in the same leaf order the encoder used.
/// let mut dec = TagTree::new(3, 2);
/// let mut br = BitReader::new(&bytes);
/// let mut decoded = Vec::new();
/// for y in 0..2 {
///     for x in 0..3 {
///         decoded.push(dec.decode_value(&mut br, x, y)?);
///     }
/// }
/// assert_eq!(decoded, vec![1, 3, 2, 0, 4, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TagTree {
    w: usize,
    h: usize,
    nodes: Vec<TagNode>,
    /// `(offset, width, height)` per level, leaves first.
    levels: Vec<(usize, usize, usize)>,
    /// Leaf values changed since the last minima propagation.
    dirty: bool,
}

impl TagTree {
    /// Creates a tree over a `w × h` leaf grid (values initially 0).
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is zero. Audit (untrusted-byte safety): the
    /// decode path builds tag trees only in [`read_packet`], which
    /// clamps both grid dimensions with `.max(1)`, and `codec.rs`
    /// builds its grids with `div_ceil(..).max(1)` — so no header field
    /// parsed from a codestream can reach this assert. The encoder
    /// calls it with dimensions of real (non-empty) code-block grids.
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "tag tree needs at least one leaf");
        let mut dims = vec![(w, h)];
        while *dims.last().expect("non-empty") != (1, 1) {
            let (lw, lh) = *dims.last().expect("non-empty");
            dims.push((lw.div_ceil(2), lh.div_ceil(2)));
        }
        let mut levels = Vec::with_capacity(dims.len());
        let mut total = 0usize;
        for &(lw, lh) in &dims {
            levels.push((total, lw, lh));
            total += lw * lh;
        }
        let mut nodes = vec![
            TagNode {
                parent: None,
                value: 0,
                low: 0,
                known: false,
            };
            total
        ];
        for li in 0..levels.len().saturating_sub(1) {
            let (off, lw, lh) = levels[li];
            let (poff, pw, _) = levels[li + 1];
            for y in 0..lh {
                for x in 0..lw {
                    nodes[off + y * lw + x].parent = Some(poff + (y / 2) * pw + (x / 2));
                }
            }
        }
        TagTree {
            w,
            h,
            nodes,
            levels,
            dirty: false,
        }
    }

    fn leaf_index(&self, x: usize, y: usize) -> usize {
        assert!(x < self.w && y < self.h, "tag tree leaf out of range");
        y * self.w + x
    }

    /// Path from root to the given leaf.
    fn path(&self, x: usize, y: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut idx = Some(self.leaf_index(x, y));
        while let Some(i) = idx {
            path.push(i);
            idx = self.nodes[i].parent;
        }
        path.reverse();
        path
    }

    /// Sets leaf `(x, y)` to `value` (encoder side). Internal minima are
    /// recomputed lazily before the first encode.
    pub fn set_value(&mut self, x: usize, y: usize, value: u32) {
        let leaf = self.leaf_index(x, y);
        self.nodes[leaf].value = value;
        self.dirty = true;
    }

    /// Recomputes internal minima from the leaves.
    fn propagate(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        // Internal nodes: min over children, computed level by level.
        for li in 1..self.levels.len() {
            let (off, lw, lh) = self.levels[li];
            for i in 0..lw * lh {
                self.nodes[off + i].value = u32::MAX;
            }
        }
        for li in 0..self.levels.len().saturating_sub(1) {
            let (off, lw, lh) = self.levels[li];
            for i in 0..lw * lh {
                let v = self.nodes[off + i].value;
                let p = self.nodes[off + i].parent.expect("non-root has parent");
                if v < self.nodes[p].value {
                    self.nodes[p].value = v;
                }
            }
        }
    }

    /// Encodes the predicate `leaf(x, y) < threshold`, emitting as many
    /// bits as the decoder needs (encoder side).
    pub fn encode(&mut self, bw: &mut BitWriter, x: usize, y: usize, threshold: u32) {
        self.propagate();
        let path = self.path(x, y);
        let mut low = 0u32;
        for i in path {
            if low > self.nodes[i].low {
                self.nodes[i].low = low;
            }
            while threshold > self.nodes[i].low {
                if self.nodes[i].low >= self.nodes[i].value {
                    if !self.nodes[i].known {
                        bw.put_bit(true);
                        self.nodes[i].known = true;
                    }
                    break;
                }
                bw.put_bit(false);
                self.nodes[i].low += 1;
            }
            low = self.nodes[i].low;
        }
    }

    /// Encodes the full value of leaf `(x, y)` (enough bits for the decoder
    /// to learn it exactly).
    pub fn encode_value(&mut self, bw: &mut BitWriter, x: usize, y: usize) {
        let v = self.nodes[self.leaf_index(x, y)].value;
        self.encode(bw, x, y, v + 1);
    }

    /// Decodes the predicate `leaf(x, y) < threshold` (decoder side).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the header data runs out.
    pub fn decode(
        &mut self,
        br: &mut BitReader<'_>,
        x: usize,
        y: usize,
        threshold: u32,
    ) -> CodecResult<bool> {
        let path = self.path(x, y);
        let mut low = 0u32;
        let mut leaf = 0;
        for i in path {
            if low > self.nodes[i].low {
                self.nodes[i].low = low;
            }
            while !self.nodes[i].known && threshold > self.nodes[i].low {
                if br.get_bit()? {
                    self.nodes[i].known = true;
                } else {
                    self.nodes[i].low += 1;
                }
            }
            low = self.nodes[i].low;
            leaf = i;
        }
        Ok(self.nodes[leaf].known && self.nodes[leaf].low < threshold)
    }

    /// Decodes the exact value of leaf `(x, y)` by raising the threshold
    /// until the leaf becomes known.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the header data runs out.
    pub fn decode_value(&mut self, br: &mut BitReader<'_>, x: usize, y: usize) -> CodecResult<u32> {
        let leaf = self.leaf_index(x, y);
        let mut threshold = 1;
        while !self.nodes[leaf].known {
            self.decode(br, x, y, threshold)?;
            threshold += 1;
        }
        Ok(self.nodes[leaf].low)
    }
}

// ---------------------------------------------------------------------------
// Packet headers
// ---------------------------------------------------------------------------

/// Everything Tier-2 needs to know about one code-block when writing a
/// packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockContribution {
    /// Tier-1 output for the block.
    pub encoded: T1EncodedBlock,
    /// Zero bit-planes relative to the band's `Kmax`
    /// (`Kmax − num_bitplanes`).
    pub zero_bitplanes: u32,
}

/// One band's code-blocks as a `cols × rows` grid, raster order.
#[derive(Debug, Clone)]
pub struct BandBlocks {
    /// Grid width in blocks.
    pub cols: usize,
    /// Grid height in blocks.
    pub rows: usize,
    /// `cols * rows` contributions.
    pub blocks: Vec<BlockContribution>,
}

/// Decoded per-block packet info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedBlock {
    /// Whether the block contributed any passes.
    pub included: bool,
    /// Zero bit-planes signalled via the tag tree.
    pub zero_bitplanes: u32,
    /// Number of coding passes.
    pub num_passes: u32,
    /// The block's codeword bytes.
    pub data: Vec<u8>,
}

/// Writes one packet (single layer, single precinct): header then bodies.
///
/// `bands` lists the bands of this resolution in order.
pub fn write_packet(bands: &[BandBlocks]) -> Vec<u8> {
    let mut bw = BitWriter::new();
    let any = bands
        .iter()
        .any(|b| b.blocks.iter().any(|c| c.encoded.num_passes > 0));
    bw.put_bit(any);
    let mut bodies: Vec<u8> = Vec::new();
    if any {
        for band in bands {
            let mut incl_tree = TagTree::new(band.cols.max(1), band.rows.max(1));
            let mut zbp_tree = TagTree::new(band.cols.max(1), band.rows.max(1));
            for (i, c) in band.blocks.iter().enumerate() {
                let (x, y) = (i % band.cols, i / band.cols);
                let included = c.encoded.num_passes > 0;
                incl_tree.set_value(x, y, if included { 0 } else { 1 });
                zbp_tree.set_value(x, y, c.zero_bitplanes);
            }
            for (i, c) in band.blocks.iter().enumerate() {
                let (x, y) = (i % band.cols, i / band.cols);
                let included = c.encoded.num_passes > 0;
                incl_tree.encode(&mut bw, x, y, 1);
                if !included {
                    continue;
                }
                zbp_tree.encode_value(&mut bw, x, y);
                put_num_passes(&mut bw, c.encoded.num_passes);
                // Length signalling: fixed Lblock = 3 plus any increments.
                let len = c.encoded.data.len() as u32;
                let npass_bits = 32 - c.encoded.num_passes.leading_zeros() - 1; // floor(log2)
                let mut lblock = 3u32;
                let needed = 32 - len.leading_zeros(); // bits to express len
                while lblock + npass_bits < needed {
                    bw.put_bit(true);
                    lblock += 1;
                }
                bw.put_bit(false);
                bw.put_bits(len, (lblock + npass_bits) as u8);
                bodies.extend_from_slice(&c.encoded.data);
            }
        }
    }
    let mut out = bw.finish();
    out.extend_from_slice(&bodies);
    out
}

/// Parses one packet produced by [`write_packet`].
///
/// `grid_dims` gives each band's `(cols, rows)`. Returns the per-band
/// parsed blocks plus the number of bytes consumed from `data`.
///
/// # Errors
///
/// [`CodecError::Truncated`] if the packet is cut short.
pub fn read_packet(
    data: &[u8],
    grid_dims: &[(usize, usize)],
) -> CodecResult<(Vec<Vec<ParsedBlock>>, usize)> {
    let mut br = BitReader::new(data);
    let any = br.get_bit()?;
    let mut per_band: Vec<Vec<ParsedBlock>> = Vec::with_capacity(grid_dims.len());
    let mut lengths: Vec<usize> = Vec::new();
    if !any {
        for &(cols, rows) in grid_dims {
            per_band.push(
                (0..cols * rows)
                    .map(|_| ParsedBlock {
                        included: false,
                        zero_bitplanes: 0,
                        num_passes: 0,
                        data: Vec::new(),
                    })
                    .collect(),
            );
        }
        return Ok((per_band, br.bytes_consumed()));
    }
    for &(cols, rows) in grid_dims {
        let mut incl_tree = TagTree::new(cols.max(1), rows.max(1));
        let mut zbp_tree = TagTree::new(cols.max(1), rows.max(1));
        let mut blocks = Vec::with_capacity(cols * rows);
        for i in 0..cols * rows {
            let (x, y) = (i % cols, i / cols);
            let included = incl_tree.decode(&mut br, x, y, 1)?;
            if !included {
                blocks.push(ParsedBlock {
                    included: false,
                    zero_bitplanes: 0,
                    num_passes: 0,
                    data: Vec::new(),
                });
                continue;
            }
            let zbp = zbp_tree.decode_value(&mut br, x, y)?;
            let num_passes = get_num_passes(&mut br)?;
            let npass_bits = 32 - num_passes.leading_zeros() - 1;
            let mut lblock = 3u32;
            while br.get_bit()? {
                lblock += 1;
                // The writer only ever widens the length field up to the
                // 32 bits a block length can occupy; a longer run of 1-bits
                // is a corrupt header, not a bigger field (and unchecked it
                // would wrap the `as u8` width below).
                if lblock + npass_bits > 32 {
                    return Err(CodecError::malformed(
                        "code-block length field wider than 32 bits",
                    )
                    .at_offset(br.pos));
                }
            }
            let len = br.get_bits((lblock + npass_bits) as u8)? as usize;
            lengths.push(len);
            blocks.push(ParsedBlock {
                included: true,
                zero_bitplanes: zbp,
                num_passes,
                data: Vec::new(),
            });
        }
        per_band.push(blocks);
    }
    // Bodies follow the (byte-aligned) header. If the header's final byte
    // is 0xFF, the writer appended a 0x00 stuffing byte (headers may not
    // end in a marker prefix) — skip it symmetrically.
    let mut pos = br.bytes_consumed();
    if pos > 0 && data[pos - 1] == 0xFF {
        pos += 1;
        // A well-formed header never ends on 0xFF — the writer appends the
        // stuffing byte before any bodies. If it is missing, the returned
        // consumed count would point past the buffer and the caller's next
        // packet slice would be out of bounds.
        if pos > data.len() {
            return Err(CodecError::truncated("packet header stuffing byte").at_offset(data.len()));
        }
    }
    let mut li = 0;
    for band in &mut per_band {
        for b in band {
            if b.included {
                let len = lengths[li];
                li += 1;
                let end = pos + len;
                if end > data.len() {
                    return Err(CodecError::truncated("packet body").at_offset(data.len()));
                }
                b.data = data[pos..end].to_vec();
                pos = end;
            }
        }
    }
    Ok((per_band, pos))
}

/// Number-of-passes code (T.800 Table B.4).
///
/// Encoder-side only: the Tier-1 coder emits at most `3 * KMAX - 2 = 52`
/// passes per block, well inside the 1..=164 range this code can express,
/// so the panic below is an internal invariant, not reachable from
/// decoding untrusted bytes (the decode side, [`get_num_passes`], is
/// range-limited by construction).
fn put_num_passes(bw: &mut BitWriter, n: u32) {
    match n {
        1 => bw.put_bit(false),
        2 => {
            bw.put_bits(0b10, 2);
        }
        3..=5 => {
            bw.put_bits(0b11, 2);
            bw.put_bits(n - 3, 2);
        }
        6..=36 => {
            bw.put_bits(0b1111, 4);
            bw.put_bits(n - 6, 5);
        }
        37..=164 => {
            bw.put_bits(0b1_1111_1111, 9);
            bw.put_bits(n - 37, 7);
        }
        _ => panic!("pass count {n} out of representable range"),
    }
}

fn get_num_passes(br: &mut BitReader<'_>) -> CodecResult<u32> {
    if !br.get_bit()? {
        return Ok(1);
    }
    if !br.get_bit()? {
        return Ok(2);
    }
    let two = br.get_bits(2)?;
    if two != 0b11 {
        return Ok(3 + two);
    }
    let five = br.get_bits(5)?;
    if five != 0b11111 {
        return Ok(6 + five);
    }
    Ok(37 + br.get_bits(7)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bit_roundtrip_plain() {
        let mut bw = BitWriter::new();
        bw.put_bits(0b1011, 4);
        bw.put_bits(0xABCD, 16);
        bw.put_bit(true);
        let bytes = bw.finish();
        let mut br = BitReader::new(&bytes);
        assert_eq!(br.get_bits(4).unwrap(), 0b1011);
        assert_eq!(br.get_bits(16).unwrap(), 0xABCD);
        assert!(br.get_bit().unwrap());
    }

    #[test]
    fn stuffing_roundtrip() {
        // All-ones produces 0xFF bytes; the stuffing must be transparent.
        let mut bw = BitWriter::new();
        for _ in 0..64 {
            bw.put_bit(true);
        }
        let bytes = bw.finish();
        // Stuffed: more than 8 bytes for 64 bits.
        assert!(bytes.len() > 8);
        for w in bytes.windows(2) {
            if w[0] == 0xFF {
                assert!(w[1] & 0x80 == 0, "bit stuffed after FF");
            }
        }
        let mut br = BitReader::new(&bytes);
        for i in 0..64 {
            assert!(br.get_bit().unwrap(), "bit {i}");
        }
    }

    #[test]
    fn random_bit_sequences_roundtrip() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let bits: Vec<bool> = (0..rng.gen_range(1..300))
                .map(|_| rng.gen_bool(0.7))
                .collect();
            let mut bw = BitWriter::new();
            for &b in &bits {
                bw.put_bit(b);
            }
            let bytes = bw.finish();
            let mut br = BitReader::new(&bytes);
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(br.get_bit().unwrap(), b, "bit {i}");
            }
        }
    }

    #[test]
    fn reader_errors_on_truncation() {
        let mut br = BitReader::new(&[]);
        assert!(br.get_bit().is_err());
    }

    #[test]
    fn tag_tree_single_leaf() {
        let mut enc = TagTree::new(1, 1);
        enc.set_value(0, 0, 5);
        let mut bw = BitWriter::new();
        enc.encode_value(&mut bw, 0, 0);
        let bytes = bw.finish();
        let mut dec = TagTree::new(1, 1);
        let mut br = BitReader::new(&bytes);
        assert_eq!(dec.decode_value(&mut br, 0, 0).unwrap(), 5);
    }

    #[test]
    fn tag_tree_grid_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(w, h) in &[(2usize, 2usize), (3, 2), (5, 4), (7, 7), (1, 6)] {
            let values: Vec<u32> = (0..w * h).map(|_| rng.gen_range(0..10)).collect();
            let mut enc = TagTree::new(w, h);
            for (i, &v) in values.iter().enumerate() {
                enc.set_value(i % w, i / w, v);
            }
            let mut bw = BitWriter::new();
            for y in 0..h {
                for x in 0..w {
                    enc.encode_value(&mut bw, x, y);
                }
            }
            let bytes = bw.finish();
            let mut dec = TagTree::new(w, h);
            let mut br = BitReader::new(&bytes);
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(
                        dec.decode_value(&mut br, x, y).unwrap(),
                        values[y * w + x],
                        "{w}x{h} leaf {x},{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn tag_tree_threshold_queries() {
        let mut enc = TagTree::new(2, 1);
        enc.set_value(0, 0, 0);
        enc.set_value(1, 0, 3);
        let mut bw = BitWriter::new();
        enc.encode(&mut bw, 0, 0, 1);
        enc.encode(&mut bw, 1, 0, 1);
        let bytes = bw.finish();
        let mut dec = TagTree::new(2, 1);
        let mut br = BitReader::new(&bytes);
        assert!(dec.decode(&mut br, 0, 0, 1).unwrap(), "value 0 < 1");
        assert!(!dec.decode(&mut br, 1, 0, 1).unwrap(), "value 3 >= 1");
    }

    fn contribution(data: Vec<u8>, passes: u32, mb: u8, kmax: u32) -> BlockContribution {
        BlockContribution {
            encoded: T1EncodedBlock {
                data,
                num_passes: passes,
                num_bitplanes: mb,
            },
            zero_bitplanes: kmax - mb as u32,
        }
    }

    #[test]
    fn packet_roundtrip_mixed_blocks() {
        let band = BandBlocks {
            cols: 2,
            rows: 2,
            blocks: vec![
                contribution(vec![1, 2, 3, 4, 5], 7, 3, 16),
                contribution(Vec::new(), 0, 0, 16), // empty block
                contribution(vec![9; 300], 13, 5, 16),
                contribution(vec![0xFF, 0x00, 0xFF, 0x01], 1, 1, 16),
            ],
        };
        let bytes = write_packet(std::slice::from_ref(&band));
        let (parsed, consumed) = read_packet(&bytes, &[(2, 2)]).unwrap();
        assert_eq!(consumed, bytes.len());
        let blocks = &parsed[0];
        assert!(blocks[0].included);
        assert_eq!(blocks[0].num_passes, 7);
        assert_eq!(blocks[0].zero_bitplanes, 13);
        assert_eq!(blocks[0].data, vec![1, 2, 3, 4, 5]);
        assert!(!blocks[1].included);
        assert_eq!(blocks[2].data.len(), 300);
        assert_eq!(blocks[3].data, vec![0xFF, 0x00, 0xFF, 0x01]);
    }

    #[test]
    fn empty_packet() {
        let band = BandBlocks {
            cols: 1,
            rows: 1,
            blocks: vec![contribution(Vec::new(), 0, 0, 16)],
        };
        let bytes = write_packet(std::slice::from_ref(&band));
        assert_eq!(bytes.len(), 1); // single 0 bit, padded
        let (parsed, consumed) = read_packet(&bytes, &[(1, 1)]).unwrap();
        assert_eq!(consumed, 1);
        assert!(!parsed[0][0].included);
    }

    #[test]
    fn multi_band_packet() {
        let bands = vec![
            BandBlocks {
                cols: 1,
                rows: 1,
                blocks: vec![contribution(vec![7; 10], 4, 2, 16)],
            },
            BandBlocks {
                cols: 2,
                rows: 1,
                blocks: vec![
                    contribution(vec![8; 20], 1, 1, 16),
                    contribution(vec![9; 30], 10, 4, 16),
                ],
            },
        ];
        let bytes = write_packet(&bands);
        let (parsed, consumed) = read_packet(&bytes, &[(1, 1), (2, 1)]).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(parsed[0][0].data.len(), 10);
        assert_eq!(parsed[1][0].data.len(), 20);
        assert_eq!(parsed[1][1].data.len(), 30);
        assert_eq!(parsed[1][1].num_passes, 10);
    }

    #[test]
    fn num_passes_code_roundtrip() {
        for n in [1u32, 2, 3, 4, 5, 6, 7, 20, 36, 37, 100, 164] {
            let mut bw = BitWriter::new();
            put_num_passes(&mut bw, n);
            let bytes = bw.finish();
            let mut br = BitReader::new(&bytes);
            assert_eq!(get_num_passes(&mut br).unwrap(), n, "n={n}");
        }
    }

    #[test]
    fn header_ending_in_ff_keeps_body_aligned() {
        // Regression: craft headers until one ends in 0xFF (the writer
        // then appends a 0x00 stuffing byte); the reader must skip it so
        // the body bytes stay aligned.
        let mut hit = false;
        for zbp in 0..40u32 {
            for passes in [1u32, 2, 4, 9, 16, 30] {
                for dlen in 1..200usize {
                    let mb = passes.div_ceil(3);
                    let band = BandBlocks {
                        cols: 1,
                        rows: 1,
                        blocks: vec![BlockContribution {
                            encoded: T1EncodedBlock {
                                data: vec![0xAB; dlen],
                                num_passes: passes,
                                num_bitplanes: mb as u8,
                            },
                            zero_bitplanes: zbp,
                        }],
                    };
                    let bytes = write_packet(std::slice::from_ref(&band));
                    let (parsed, consumed) = read_packet(&bytes, &[(1, 1)]).unwrap();
                    assert_eq!(
                        consumed,
                        bytes.len(),
                        "zbp={zbp} passes={passes} dlen={dlen}"
                    );
                    assert_eq!(parsed[0][0].data, vec![0xAB; dlen]);
                    assert_eq!(parsed[0][0].zero_bitplanes, zbp);
                    // Body starts at `consumed - dlen`; the byte before it
                    // is the end of the (possibly stuffed) header.
                    let header_end = consumed - dlen;
                    if header_end >= 2 && bytes[header_end - 2] == 0xFF {
                        // Writer appended a 0x00 stuffing byte after a
                        // trailing 0xFF — and the body still parsed.
                        assert_eq!(bytes[header_end - 1], 0x00);
                        hit = true;
                    }
                }
            }
        }
        // Stuffed-header endings are rare in this parameter grid; the
        // end-to-end regression lives in `codec::tests::
        // lossy_256_with_64_tiles_roundtrip`. When the sweep does hit
        // one, the assertions above already validated it.
        let _ = hit;
    }

    #[test]
    fn truncated_packet_body_is_detected() {
        let band = BandBlocks {
            cols: 1,
            rows: 1,
            blocks: vec![contribution(vec![5; 50], 4, 2, 16)],
        };
        let bytes = write_packet(std::slice::from_ref(&band));
        let cut = &bytes[..bytes.len() - 10];
        let err = read_packet(cut, &[(1, 1)]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn runaway_length_field_is_rejected() {
        // Craft a header whose Lblock run of 1-bits never terminates: the
        // reader must cap the field at 32 bits and report a structured
        // error instead of widening forever (and wrapping the bit count).
        let mut bw = BitWriter::new();
        bw.put_bit(true); // packet non-empty
        bw.put_bit(true); // 1×1 inclusion tree: leaf known, included
        bw.put_bit(true); // zero-bit-plane tree: value 0
        bw.put_bit(false); // one coding pass
        for _ in 0..40 {
            bw.put_bit(true); // "widen Lblock" forever
        }
        let bytes = bw.finish();
        let err = read_packet(&bytes, &[(1, 1)]).unwrap_err();
        assert!(
            matches!(err, CodecError::Malformed { .. }),
            "expected Malformed, got {err:?}"
        );
    }

    #[test]
    fn arbitrary_bytes_never_overrun_the_packet() {
        // Fuzz-ish sweep biased towards 0xFF (marker/stuffing edge cases):
        // read_packet must never panic, and on success must never claim to
        // have consumed more bytes than it was handed — the caller slices
        // `&data[consumed..]` for the next packet.
        let mut rng = StdRng::seed_from_u64(0x7E55);
        for _ in 0..2000 {
            let len = rng.gen_range(0usize..48);
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.4) {
                        0xFF
                    } else {
                        rng.gen::<u8>()
                    }
                })
                .collect();
            for grids in [&[(1usize, 1usize)][..], &[(2, 2), (1, 3)][..]] {
                if let Ok((_, consumed)) = read_packet(&data, grids) {
                    assert!(consumed <= data.len(), "consumed {consumed} of {len}");
                }
            }
        }
    }
}
