//! Deterministic TCP chaos proxy for the network decode stack.
//!
//! PR 4 fault-injected the *simulated* intra-chip transport
//! (`osss_vta`'s `FaultyChannel`); this module applies the same
//! discipline to the real TCP front-end: [`ChaosProxy`] sits between a
//! [`crate::net::Client`] and a [`crate::server::DecodeServer`] on
//! loopback and injects
//!
//! * **partial writes** — forwarded byte runs split into 1..N-byte
//!   chunks, so neither peer may assume a frame arrives in one read;
//! * **inter-chunk stalls** — bounded sleeps between chunks (a slow or
//!   congested path);
//! * **byte corruption** — single bytes XOR-damaged in flight, which
//!   the frame CRC must catch;
//! * **mid-frame connection drops** — both sides of a proxied
//!   connection torn down at a chunk boundary;
//! * **whole-connection blackholes** — a connection whose bytes are
//!   swallowed without ever reaching the server (the failure mode a
//!   client-side deadline and circuit breaker exist for).
//!
//! Every decision is a pure splitmix64-style hash of
//! `(seed, connection, byte counter)` — exactly the `FaultConfig`
//! recipe — never wall-clock or a global RNG, so a fault schedule is
//! replayable: the same connection seeing the same byte positions takes
//! the same faults on every run. (Chunk-level decisions — split, stall,
//! drop — are evaluated at the byte position where the chunk starts;
//! per-byte corruption is keyed on the absolute position of each
//! forwarded byte.)
//!
//! The proxy keeps per-direction [`ChaosStats`] (client→server
//! *upstream*, server→client *downstream*) so a soak run can report
//! exactly how much damage the stack absorbed. See `tests/chaos.rs` for
//! the invariants the decode stack must uphold under any schedule.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Domain-separation constants for the per-fault-kind hash streams
/// (mirrors `vta::fault`'s `STREAM_*` values in spirit).
const STREAM_UP: u64 = 0x5550_5354_5245_414D; // "UPSTREAM"
const STREAM_DOWN: u64 = 0x444F_574E_5354_524D; // "DOWNSTRM"
const KIND_SPLIT: u64 = 0x53504C49_54535049; // split decision
const KIND_SPLIT_LEN: u64 = 0x53504C49_544C454E; // split length
const KIND_STALL: u64 = 0x5354414C_4C535441; // stall decision
const KIND_STALL_LEN: u64 = 0x5354414C_4C4C454E; // stall duration
const KIND_FLIP: u64 = 0x464C4950_464C4950; // byte corruption
const KIND_FLIP_MASK: u64 = 0x464C4950_4D41534B; // corruption mask
const KIND_DROP: u64 = 0x44524F50_44524F50; // connection drop
const KIND_HOLE: u64 = 0x484F4C45_484F4C45; // connection blackhole

/// splitmix64-style finaliser over `(seed, stream, connection, n)`:
/// the deterministic noise source behind every proxy decision.
fn mix(seed: u64, stream: u64, conn: u64, n: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ conn.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ n.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform value in `[0, 1)` with 53 bits of
/// precision (the `vta::fault` mapping).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// The seeded fault process driving a [`ChaosProxy`]. All rates are
/// probabilities in `[0, 1]` evaluated against the deterministic hash
/// streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the deterministic decision streams.
    pub seed: u64,
    /// Probability (per chunk) that the next forwarded chunk is cut to
    /// a tiny 1..=[`Self::max_split`] bytes instead of the whole run.
    pub split_rate: f64,
    /// Upper bound (inclusive) on a split chunk's length.
    pub max_split: usize,
    /// Probability (per chunk) of an injected stall before forwarding.
    pub stall_rate: f64,
    /// Upper bound on one injected stall.
    pub max_stall: Duration,
    /// Probability (per byte) that a forwarded byte is XOR-damaged.
    pub corrupt_rate: f64,
    /// Probability (per chunk) that the whole proxied connection is
    /// torn down — both sides — before the chunk is forwarded.
    pub drop_rate: f64,
    /// Probability (per connection) that the connection is a blackhole:
    /// accepted, but every byte swallowed and nothing ever answered.
    pub blackhole_rate: f64,
    /// Poll granularity of the pump threads (shutdown responsiveness;
    /// not a fault knob).
    pub poll_interval: Duration,
}

impl ChaosConfig {
    /// A fault-free schedule: the proxy becomes a pure TCP relay
    /// (transparency-tested in this module).
    pub fn clean(seed: u64) -> Self {
        ChaosConfig {
            seed,
            split_rate: 0.0,
            max_split: 16,
            stall_rate: 0.0,
            max_stall: Duration::ZERO,
            corrupt_rate: 0.0,
            drop_rate: 0.0,
            blackhole_rate: 0.0,
            poll_interval: Duration::from_millis(20),
        }
    }

    /// A degraded-but-honest link: heavy fragmentation, occasional
    /// stalls, rare corruption and drops, no blackholes. The corrupt
    /// rate is per *byte*, so even 1e-6 flips a visible fraction of
    /// ~200 KiB image replies.
    pub fn lossy(seed: u64) -> Self {
        ChaosConfig {
            split_rate: 0.35,
            stall_rate: 0.05,
            max_stall: Duration::from_millis(5),
            corrupt_rate: 1e-6,
            drop_rate: 0.002,
            ..ChaosConfig::clean(seed)
        }
    }

    /// An adversarial link: everything at once, including blackholed
    /// connections.
    pub fn adversarial(seed: u64) -> Self {
        ChaosConfig {
            split_rate: 0.5,
            stall_rate: 0.1,
            max_stall: Duration::from_millis(10),
            corrupt_rate: 1e-4,
            drop_rate: 0.01,
            blackhole_rate: 0.15,
            ..ChaosConfig::clean(seed)
        }
    }

    // -- the deterministic decision functions (pure in (seed, conn, pos)) --

    fn blackholes(&self, conn: u64) -> bool {
        unit(mix(self.seed, KIND_HOLE, conn, 0)) < self.blackhole_rate
    }

    fn drops_at(&self, stream: u64, conn: u64, pos: u64) -> bool {
        unit(mix(self.seed, stream ^ KIND_DROP, conn, pos)) < self.drop_rate
    }

    fn stall_at(&self, stream: u64, conn: u64, pos: u64) -> Option<Duration> {
        if unit(mix(self.seed, stream ^ KIND_STALL, conn, pos)) >= self.stall_rate {
            return None;
        }
        let frac = unit(mix(self.seed, stream ^ KIND_STALL_LEN, conn, pos));
        let ns = u64::try_from(self.max_stall.as_nanos()).unwrap_or(u64::MAX);
        Some(Duration::from_nanos((ns as f64 * frac) as u64))
    }

    /// The chunk length the schedule wants at byte position `pos`
    /// (before capping to what has actually arrived).
    fn chunk_len_at(&self, stream: u64, conn: u64, pos: u64) -> usize {
        if unit(mix(self.seed, stream ^ KIND_SPLIT, conn, pos)) < self.split_rate {
            let span = self.max_split.max(1) as u64;
            1 + (mix(self.seed, stream ^ KIND_SPLIT_LEN, conn, pos) % span) as usize
        } else {
            usize::MAX
        }
    }

    fn corrupts_byte(&self, stream: u64, conn: u64, pos: u64) -> Option<u8> {
        if unit(mix(self.seed, stream ^ KIND_FLIP, conn, pos)) >= self.corrupt_rate {
            return None;
        }
        // A non-zero XOR mask, so a "corrupted" byte always changes.
        Some(1 + (mix(self.seed, stream ^ KIND_FLIP_MASK, conn, pos) % 255) as u8)
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// What the fault process did to one direction of traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Bytes read from the source peer.
    pub bytes_in: u64,
    /// Bytes forwarded to the destination peer (excludes blackholed
    /// and dropped-before-forward bytes).
    pub bytes_out: u64,
    /// Chunks forwarded.
    pub chunks: u64,
    /// Chunks cut short by the split schedule.
    pub splits: u64,
    /// Injected stalls.
    pub stalls: u64,
    /// Total injected stall time.
    pub stall_time: Duration,
    /// Bytes XOR-damaged in flight.
    pub corrupted_bytes: u64,
    /// Connections torn down mid-stream by this direction's schedule.
    pub drops: u64,
}

/// A whole-proxy snapshot: both directions plus connection-level
/// tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosProxyStats {
    /// Client → server traffic.
    pub upstream: ChaosStats,
    /// Server → client traffic.
    pub downstream: ChaosStats,
    /// Connections accepted by the proxy.
    pub connections: u64,
    /// Connections blackholed (accepted, never forwarded).
    pub blackholed: u64,
}

// ---------------------------------------------------------------------------
// The proxy
// ---------------------------------------------------------------------------

struct Shared {
    config: ChaosConfig,
    target: SocketAddr,
    shutdown: AtomicBool,
    connections: AtomicU64,
    blackholed: AtomicU64,
    upstream: Mutex<ChaosStats>,
    downstream: Mutex<ChaosStats>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A running chaos proxy. See the [module docs](self).
pub struct ChaosProxy {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a loopback listener and starts relaying every accepted
    /// connection to `target` under `config`'s fault schedule.
    ///
    /// # Errors
    ///
    /// Any bind-time [`io::Error`].
    pub fn start(target: impl ToSocketAddrs, config: ChaosConfig) -> io::Result<Self> {
        let target = target
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "empty target address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            target,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            blackholed: AtomicU64::new(0),
            upstream: Mutex::new(ChaosStats::default()),
            downstream: Mutex::new(ChaosStats::default()),
            pumps: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn chaos acceptor")
        };
        Ok(ChaosProxy {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listen address — point the client here instead of at
    /// the server.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of both directions' fault tallies.
    pub fn stats(&self) -> ChaosProxyStats {
        ChaosProxyStats {
            upstream: *lock_unpoisoned(&self.shared.upstream),
            downstream: *lock_unpoisoned(&self.shared.downstream),
            connections: self.shared.connections.load(Ordering::Relaxed),
            blackholed: self.shared.blackholed.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, tears down every relayed connection, joins all
    /// pump threads and returns the final stats.
    pub fn shutdown(mut self) -> ChaosProxyStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let pumps: Vec<_> = lock_unpoisoned(&self.shared.pumps).drain(..).collect();
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut next_conn = 0u64;
    loop {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn = next_conn;
        next_conn += 1;
        shared.connections.fetch_add(1, Ordering::Relaxed);
        if shared.config.blackholes(conn) {
            shared.blackholed.fetch_add(1, Ordering::Relaxed);
            spawn_pump(shared, "chaos-hole", move |sh| blackhole(sh, &client));
            continue;
        }
        let backend = match TcpStream::connect(shared.target) {
            Ok(b) => b,
            // Backend unreachable: drop the client (it sees EOF).
            Err(_) => continue,
        };
        let client_dn = match client.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let backend_dn = match backend.try_clone() {
            Ok(b) => b,
            Err(_) => continue,
        };
        spawn_pump(shared, "chaos-up", move |sh| {
            pump(sh, STREAM_UP, conn, &client, &backend);
        });
        spawn_pump(shared, "chaos-down", move |sh| {
            pump(sh, STREAM_DOWN, conn, &backend_dn, &client_dn);
        });
    }
}

fn spawn_pump(shared: &Arc<Shared>, name: &str, body: impl FnOnce(&Shared) + Send + 'static) {
    let sh = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(name.into())
        .spawn(move || body(&sh))
        .expect("spawn chaos pump");
    lock_unpoisoned(&shared.pumps).push(handle);
}

/// Swallows a blackholed connection: reads and discards until the peer
/// gives up or the proxy shuts down. Nothing is ever written back.
fn blackhole(shared: &Shared, client: &TcpStream) {
    let _ = client.set_read_timeout(Some(shared.config.poll_interval));
    let mut sink = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        match (&mut (&*client)).read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Relays one direction of one connection under the fault schedule.
/// `stream` is the direction's domain-separation constant; every
/// decision is keyed on the absolute byte position in this direction.
fn pump(shared: &Shared, stream: u64, conn: u64, src: &TcpStream, dst: &TcpStream) {
    let cfg = &shared.config;
    let stats_slot = if stream == STREAM_UP {
        &shared.upstream
    } else {
        &shared.downstream
    };
    let _ = src.set_read_timeout(Some(cfg.poll_interval));
    // A peer that stops reading must not pin the pump forever.
    let _ = dst.set_write_timeout(Some(Duration::from_secs(1)));
    let mut pos = 0u64;
    let mut buf = [0u8; 8192];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let n = match (&mut (&*src)).read(&mut buf) {
            // Clean EOF: propagate the half-close and stop this
            // direction (the opposite pump keeps running).
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        {
            let mut stats = lock_unpoisoned(stats_slot);
            stats.bytes_in += n as u64;
        }
        let mut off = 0usize;
        while off < n {
            // Chunk-level decisions at the chunk's starting byte
            // position.
            if cfg.drops_at(stream, conn, pos) {
                lock_unpoisoned(stats_slot).drops += 1;
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
            if let Some(stall) = cfg.stall_at(stream, conn, pos) {
                let mut stats = lock_unpoisoned(stats_slot);
                stats.stalls += 1;
                stats.stall_time = stats.stall_time.saturating_add(stall);
                drop(stats);
                std::thread::sleep(stall);
            }
            let remaining = n - off;
            let want = cfg.chunk_len_at(stream, conn, pos);
            let len = want.min(remaining);
            let chunk = &mut buf[off..off + len];
            let mut corrupted = 0u64;
            for (i, byte) in chunk.iter_mut().enumerate() {
                if let Some(mask) = cfg.corrupts_byte(stream, conn, pos + i as u64) {
                    *byte ^= mask;
                    corrupted += 1;
                }
            }
            if (&mut (&*dst)).write_all(chunk).is_err() {
                let _ = src.shutdown(Shutdown::Both);
                return;
            }
            {
                let mut stats = lock_unpoisoned(stats_slot);
                stats.bytes_out += len as u64;
                stats.chunks += 1;
                stats.corrupted_bytes += corrupted;
                if len < remaining {
                    stats.splits += 1;
                }
            }
            off += len;
            pos += len as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A one-connection echo server for transparency tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // One connection per test is enough; the thread exits once
            // that connection closes.
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_schedule_is_a_transparent_relay() {
        let (addr, server) = echo_server();
        let proxy = ChaosProxy::start(addr, ChaosConfig::clean(7)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        c.write_all(&payload).unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        let mut back = Vec::new();
        c.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload, "clean proxy must be byte-transparent");
        let stats = proxy.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.blackholed, 0);
        assert_eq!(stats.upstream.bytes_in, payload.len() as u64);
        assert_eq!(stats.upstream.bytes_out, payload.len() as u64);
        assert_eq!(stats.downstream.bytes_out, payload.len() as u64);
        assert_eq!(stats.upstream.corrupted_bytes, 0);
        assert_eq!(stats.upstream.drops + stats.downstream.drops, 0);
        assert_eq!(stats.upstream.stalls + stats.downstream.stalls, 0);
        server.join().unwrap();
    }

    #[test]
    fn decision_streams_are_deterministic_and_seed_separated() {
        let a = ChaosConfig::adversarial(42);
        let b = ChaosConfig::adversarial(42);
        let other = ChaosConfig::adversarial(43);
        let schedule = |cfg: &ChaosConfig| -> Vec<(bool, bool, usize, Option<u8>)> {
            (0..4096u64)
                .map(|pos| {
                    (
                        cfg.drops_at(STREAM_UP, 3, pos),
                        cfg.stall_at(STREAM_UP, 3, pos).is_some(),
                        cfg.chunk_len_at(STREAM_UP, 3, pos),
                        cfg.corrupts_byte(STREAM_UP, 3, pos),
                    )
                })
                .collect()
        };
        assert_eq!(schedule(&a), schedule(&b), "same seed, same schedule");
        assert_ne!(schedule(&a), schedule(&other), "seeds separate");
        // Directions and connections draw from independent streams.
        let up: Vec<usize> = (0..512).map(|p| a.chunk_len_at(STREAM_UP, 0, p)).collect();
        let down: Vec<usize> = (0..512)
            .map(|p| a.chunk_len_at(STREAM_DOWN, 0, p))
            .collect();
        let conn1: Vec<usize> = (0..512).map(|p| a.chunk_len_at(STREAM_UP, 1, p)).collect();
        assert_ne!(up, down);
        assert_ne!(up, conn1);
    }

    #[test]
    fn corruption_damages_bytes_and_is_counted() {
        let (addr, server) = echo_server();
        let cfg = ChaosConfig {
            corrupt_rate: 0.05,
            ..ChaosConfig::clean(11)
        };
        let proxy = ChaosProxy::start(addr, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let payload = vec![0u8; 10_000];
        c.write_all(&payload).unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        let mut back = Vec::new();
        c.read_to_end(&mut back).unwrap();
        assert_eq!(back.len(), payload.len());
        let damaged = back.iter().filter(|&&b| b != 0).count() as u64;
        assert!(damaged > 0, "a 5% rate over 20k bytes must hit");
        let stats = proxy.shutdown();
        // The echo reflects upstream damage; downstream adds its own.
        assert!(
            stats.upstream.corrupted_bytes > 0,
            "upstream corruption must be tallied: {stats:?}"
        );
        assert!(
            stats.upstream.corrupted_bytes + stats.downstream.corrupted_bytes >= damaged,
            "{stats:?} vs {damaged} observed"
        );
        server.join().unwrap();
    }

    #[test]
    fn drops_tear_the_connection_down() {
        let (addr, server) = echo_server();
        let cfg = ChaosConfig {
            drop_rate: 1.0, // first chunk kills the connection
            ..ChaosConfig::clean(5)
        };
        let proxy = ChaosProxy::start(addr, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = c.write_all(b"doomed bytes");
        let mut buf = [0u8; 64];
        // The proxy kills both sides before forwarding: the client sees
        // EOF or a reset, never data.
        match c.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("dropped connection delivered {n} bytes"),
        }
        let stats = proxy.shutdown();
        assert_eq!(stats.upstream.drops, 1, "{stats:?}");
        assert_eq!(stats.upstream.bytes_out, 0, "{stats:?}");
        drop(server); // the echo thread may or may not have accepted
    }

    #[test]
    fn blackholed_connection_swallows_everything() {
        // No backend at all: a blackholed connection must not even try
        // to reach it.
        let cfg = ChaosConfig {
            blackhole_rate: 1.0,
            ..ChaosConfig::clean(9)
        };
        let proxy = ChaosProxy::start("127.0.0.1:1", cfg).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"into the void").unwrap();
        c.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut buf = [0u8; 16];
        let got = c.read(&mut buf);
        assert!(
            matches!(
                got.as_ref().map_err(io::Error::kind),
                Err(ErrorKind::WouldBlock | ErrorKind::TimedOut)
            ),
            "a blackhole answers nothing: {got:?}"
        );
        let stats = proxy.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.blackholed, 1);
        assert_eq!(stats.upstream.bytes_out + stats.downstream.bytes_out, 0);
    }

    #[test]
    fn splits_fragment_but_preserve_content() {
        let (addr, server) = echo_server();
        let cfg = ChaosConfig {
            split_rate: 1.0,
            max_split: 3,
            ..ChaosConfig::clean(21)
        };
        let proxy = ChaosProxy::start(addr, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let payload: Vec<u8> = (0..5_000u32).map(|i| (i % 199) as u8).collect();
        c.write_all(&payload).unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        let mut back = Vec::new();
        c.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload, "fragmentation must not lose or reorder");
        let stats = proxy.shutdown();
        assert!(
            stats.upstream.chunks >= payload.len() as u64 / 3,
            "max_split 3 forces many chunks: {stats:?}"
        );
        assert!(stats.upstream.splits > 0, "{stats:?}");
        server.join().unwrap();
    }

    #[test]
    fn shutdown_tears_down_live_connections_and_joins() {
        let (addr, server) = echo_server();
        let proxy = ChaosProxy::start(addr, ChaosConfig::clean(1)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        // Shutdown with the connection still open: must not hang.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let stats = proxy.shutdown();
            tx.send(stats).unwrap();
        });
        let stats = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown must not hang on a live connection");
        assert_eq!(stats.connections, 1);
        drop(c);
        server.join().unwrap();
    }
}
