//! Minimal PNM (PGM/PPM) image I/O, so the codec can exchange images
//! with standard tools without any external dependency.
//!
//! Binary `P5` (greyscale) and `P6` (RGB) at 8 bits per sample are
//! supported — the formats every image toolchain can read and write.
//!
//! Panic audit: these paths are reachable from untrusted files, so the
//! library code below is panic-free — malformed headers, short rasters,
//! inconsistent plane geometry, and OS-level file failures all surface
//! as structured [`CodecError`]s ([`CodecError::Io`] for the latter).
//! The `unwrap()`s in the `tests` module operate on values the tests
//! themselves construct and are intentionally left as-is.

use crate::error::{CodecError, CodecResult};
use crate::image::{Image, Plane};
use std::path::Path;

/// Serialises an image as binary PGM (1 component) or PPM (3 components).
///
/// # Errors
///
/// [`CodecError::InvalidParams`] if the image is not 8-bit with 1 or 3
/// components, or [`CodecError::Malformed`] if a component plane's
/// geometry disagrees with the image dimensions (indexing such a plane
/// would otherwise panic).
pub fn write_pnm(image: &Image) -> CodecResult<Vec<u8>> {
    if image.depth != 8 {
        return Err(CodecError::invalid("PNM export requires 8-bit samples"));
    }
    let magic = match image.num_components() {
        1 => "P5",
        3 => "P6",
        n => {
            return Err(CodecError::invalid(format!(
                "PNM export requires 1 or 3 components, got {n}"
            )))
        }
    };
    for (ci, c) in image.components.iter().enumerate() {
        if c.width != image.width || c.height != image.height {
            return Err(CodecError::malformed(format!(
                "component {ci} is {}x{} but the image is {}x{}",
                c.width, c.height, image.width, image.height
            )));
        }
    }
    let mut out = format!("{magic}\n{} {}\n255\n", image.width, image.height).into_bytes();
    for y in 0..image.height {
        for x in 0..image.width {
            for c in &image.components {
                out.push(c.at(x, y).clamp(0, 255) as u8);
            }
        }
    }
    Ok(out)
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws_and_comments(&mut self) {
        loop {
            while self
                .data
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            if self.data.get(self.pos) == Some(&b'#') {
                while self.data.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn token(&mut self) -> CodecResult<&[u8]> {
        self.skip_ws_and_comments();
        let start = self.pos;
        while self
            .data
            .get(self.pos)
            .is_some_and(|b| !b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(CodecError::truncated("PNM header").at_offset(self.pos));
        }
        Ok(&self.data[start..self.pos])
    }

    fn number(&mut self) -> CodecResult<usize> {
        let tok = self.token()?;
        std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CodecError::malformed("non-numeric PNM header field"))
    }
}

/// Parses a binary PGM (`P5`) or PPM (`P6`) image.
///
/// # Errors
///
/// [`CodecError::Malformed`] or [`CodecError::Truncated`] on anything
/// that is not a well-formed 8-bit binary PNM.
pub fn read_pnm(data: &[u8]) -> CodecResult<Image> {
    let mut cur = Cursor { data, pos: 0 };
    let ncomp = match cur.token()? {
        b"P5" => 1usize,
        b"P6" => 3,
        other => {
            return Err(CodecError::malformed(format!(
                "unsupported PNM magic {:?}",
                String::from_utf8_lossy(other)
            )))
        }
    };
    let width = cur.number()?;
    let height = cur.number()?;
    let maxval = cur.number()?;
    if width == 0 || height == 0 {
        return Err(CodecError::malformed("zero PNM dimension"));
    }
    if maxval != 255 {
        return Err(CodecError::malformed(format!(
            "only maxval 255 supported, got {maxval}"
        )));
    }
    // Exactly one whitespace byte separates the header from the raster.
    cur.pos += 1;
    // Header dimensions are untrusted: the product can overflow `usize`
    // (a debug-build panic) and must in any case never exceed the raster
    // actually present, so check before allocating anything.
    let need = width
        .checked_mul(height)
        .and_then(|s| s.checked_mul(ncomp))
        .ok_or_else(|| CodecError::malformed("PNM dimensions overflow"))?;
    if data.len().saturating_sub(cur.pos) < need {
        return Err(CodecError::truncated("PNM raster").at_offset(data.len()));
    }
    let raster = &data[cur.pos..cur.pos + need];
    let mut image = Image::new(width, height, 8, ncomp);
    for y in 0..height {
        for x in 0..width {
            for (ci, comp) in image.components.iter_mut().enumerate() {
                *comp.at_mut(x, y) = raster[(y * width + x) * ncomp + ci] as i32;
            }
        }
    }
    Ok(image)
}

/// Writes just one plane as PGM (debug/visualisation helper).
///
/// # Errors
///
/// Propagates [`write_pnm`] failures.
pub fn plane_to_pgm(plane: &Plane) -> CodecResult<Vec<u8>> {
    let image = Image {
        width: plane.width,
        height: plane.height,
        depth: 8,
        components: vec![plane.clone()],
    };
    write_pnm(&image)
}

/// Reads and parses a PNM file from disk.
///
/// # Errors
///
/// [`CodecError::Io`] if the file cannot be read, plus any [`read_pnm`]
/// parse failure.
pub fn read_pnm_file(path: impl AsRef<Path>) -> CodecResult<Image> {
    let path = path.as_ref();
    let data = std::fs::read(path)
        .map_err(|e| CodecError::io(format!("reading {}: {e}", path.display())))?;
    read_pnm(&data)
}

/// Serialises an image with [`write_pnm`] and writes it to disk.
///
/// # Errors
///
/// [`CodecError::Io`] if the file cannot be written, plus any
/// [`write_pnm`] serialisation failure.
pub fn write_pnm_file(path: impl AsRef<Path>, image: &Image) -> CodecResult<()> {
    let path = path.as_ref();
    let bytes = write_pnm(image)?;
    std::fs::write(path, bytes)
        .map_err(|e| CodecError::io(format!("writing {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_roundtrip() {
        let img = Image::synthetic_rgb(33, 17, 3);
        let bytes = write_pnm(&img).unwrap();
        assert!(bytes.starts_with(b"P6\n33 17\n255\n"));
        let back = read_pnm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn grey_roundtrip() {
        let img = Image::synthetic_grey(12, 9, 4);
        let bytes = write_pnm(&img).unwrap();
        assert!(bytes.starts_with(b"P5\n"));
        assert_eq!(read_pnm(&bytes).unwrap(), img);
    }

    #[test]
    fn comments_in_header_are_skipped() {
        let img = Image::synthetic_grey(4, 2, 1);
        let mut bytes = b"P5\n# generated by a paint tool\n4 2\n# maxval next\n255\n".to_vec();
        for y in 0..2 {
            for x in 0..4 {
                bytes.push(img.components[0].at(x, y) as u8);
            }
        }
        assert_eq!(read_pnm(&bytes).unwrap(), img);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(read_pnm(b"").is_err());
        assert!(read_pnm(b"P4\n1 1\n255\n\x00").is_err());
        assert!(read_pnm(b"P5\n0 5\n255\n").is_err());
        assert!(read_pnm(b"P5\n2 2\n65535\n____").is_err());
        assert!(read_pnm(b"P5\n4 4\n255\nxx").is_err(), "truncated raster");
        assert!(read_pnm(b"P5\nw h\n255\n").is_err(), "non-numeric");
    }

    #[test]
    fn unsupported_images_rejected_on_write() {
        let two = Image::new(4, 4, 8, 2);
        assert!(write_pnm(&two).is_err());
        let deep = Image::new(4, 4, 12, 1);
        assert!(write_pnm(&deep).is_err());
    }

    #[test]
    fn inconsistent_plane_geometry_is_an_error_not_a_panic() {
        let mut img = Image::synthetic_grey(4, 4, 1);
        img.components[0] = Plane::new(2, 2);
        let err = write_pnm(&img).unwrap_err();
        assert!(matches!(err, CodecError::Malformed { .. }), "{err}");
        assert!(err.to_string().contains("component 0"));
    }

    #[test]
    fn file_helpers_roundtrip_and_map_os_errors() {
        let img = Image::synthetic_rgb(9, 7, 2);
        let dir = std::env::temp_dir().join(format!("osss_pnm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ppm");
        write_pnm_file(&path, &img).unwrap();
        assert_eq!(read_pnm_file(&path).unwrap(), img);
        std::fs::remove_dir_all(&dir).unwrap();

        let missing = dir.join("no-such-file.pgm");
        let err = read_pnm_file(&missing).unwrap_err();
        assert!(matches!(err, CodecError::Io { .. }), "{err}");
        assert!(err.to_string().contains("no-such-file.pgm"));
        let unwritable = dir.join("sub").join("out.ppm");
        let err = write_pnm_file(&unwritable, &img).unwrap_err();
        assert!(matches!(err, CodecError::Io { .. }), "{err}");
    }

    #[test]
    fn pnm_to_codec_pipeline() {
        use crate::codec::{decode, encode, EncodeParams, Mode};
        let img = Image::synthetic_rgb(24, 24, 8);
        let pnm = write_pnm(&img).unwrap();
        let loaded = read_pnm(&pnm).unwrap();
        let stream = encode(&loaded, &EncodeParams::new(Mode::Lossless)).unwrap();
        let out = decode(&stream).unwrap();
        assert_eq!(write_pnm(&out.image).unwrap(), pnm);
    }
}
