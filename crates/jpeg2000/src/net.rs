//! Wire protocol for the network decode server, plus the blocking
//! [`Client`].
//!
//! The paper refines abstract method calls into a framed, checked
//! transport (the VTA layer's CRC-framed `ReliableRmi`); this module
//! is the same refinement applied to the *real* decoder: a
//! length-prefixed binary protocol with a CRC-32 trailer — the exact
//! [`osss_sim::checksum::crc32`] the simulated transport pins — that
//! carries decode requests to a [`crate::server::DecodeServer`] and
//! images back.
//!
//! ## Frame layout
//!
//! Every message travels in one frame (all integers little-endian):
//!
//! ```text
//! magic   u32   0x4A32_4B44 ("J2KD")
//! len     u32   payload length in bytes (bounded by the receiver)
//! payload len bytes
//! crc     u32   crc32(payload), IEEE 802.3
//! ```
//!
//! A receiver rejects bad magic, oversized lengths, and CRC mismatches
//! *before* interpreting a single payload byte; payload parsing then
//! yields structured [`WireError::Protocol`] errors, never panics —
//! fuzzed in this module's tests with the [`crate::fuzz::Mutator`].
//!
//! ## Messages
//!
//! A request payload is `tag=1, version, kind, param, deadline_ms,
//! stream`; a response payload is `tag=2, status, …` where status `0`
//! carries the served-from level, the full image raster and an
//! optional tolerant-report summary, and non-zero statuses carry the
//! error taxonomy ([`NetError`]): retryable-busy (backpressure),
//! expired (deadline), protocol error, decode failure, refused
//! (shutdown), internal.

use crate::codec::{DecodeReport, DecodeStage};
use crate::image::{Image, Plane};
use crate::service::{Request, RequestKind, ServedFrom, ServiceError};
use osss_sim::checksum::crc32;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Frame magic: `"J2KD"`.
pub const FRAME_MAGIC: u32 = 0x4A32_4B44;

/// Protocol version carried in every request.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default bound on a frame payload (64 MiB) — both sides refuse
/// larger frames before allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const TAG_REQUEST: u8 = 1;
const TAG_RESPONSE: u8 = 2;

const STATUS_OK: u8 = 0;
const STATUS_BUSY: u8 = 1;
const STATUS_EXPIRED: u8 = 2;
const STATUS_DECODE: u8 = 3;
const STATUS_PROTOCOL: u8 = 4;
const STATUS_REFUSED: u8 = 5;
const STATUS_INTERNAL: u8 = 6;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a frame (or its payload) was rejected by this side.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection mid-frame.
    Truncated,
    /// The frame header's magic was not [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The declared payload length exceeds the receiver's bound.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The receiver's bound.
        max: usize,
    },
    /// The CRC-32 trailer did not match the payload.
    Crc {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC recomputed over the payload.
        actual: u32,
    },
    /// The payload violated the message grammar.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::Crc { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: frame says {expected:#010x}, payload is {actual:#010x}"
                )
            }
            WireError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e),
        }
    }
}

/// What a network decode ultimately failed with, client side: the
/// server's error taxonomy plus local wire failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The server's queue was full — retryable backpressure
    /// ([`Client::decode_retry`] handles it).
    Busy,
    /// The request's deadline passed server-side.
    Expired,
    /// The decode failed; the payload is the server-rendered
    /// [`crate::error::CodecError`] with its site.
    Decode(String),
    /// The server rejected our frame or payload.
    Protocol(String),
    /// The server is shutting down.
    Refused,
    /// The server failed internally (e.g. a caught worker panic).
    Internal(String),
    /// Framing or transport failed on this side.
    Wire(WireError),
    /// Busy retries were exhausted ([`Client::decode_retry`]).
    RetriesExhausted {
        /// Busy responses absorbed before giving up.
        attempts: u32,
    },
    /// The client-side operation deadline elapsed before a complete
    /// reply arrived ([`Client::op_deadline`]) — the server (or the
    /// path to it) stalled mid-frame.
    Timeout,
    /// The client's [`CircuitBreaker`] is open: recent transport
    /// failures tripped it and the cooldown has not elapsed, so the
    /// request was failed fast without touching the network.
    CircuitOpen,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Busy => write!(f, "server busy (retryable)"),
            NetError::Expired => write!(f, "request deadline exceeded"),
            NetError::Decode(d) => write!(f, "decode failed: {d}"),
            NetError::Protocol(d) => write!(f, "server rejected the request: {d}"),
            NetError::Refused => write!(f, "server shutting down"),
            NetError::Internal(d) => write!(f, "server internal error: {d}"),
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::RetriesExhausted { attempts } => {
                write!(f, "server still busy after {attempts} attempts")
            }
            NetError::Timeout => write!(f, "client operation deadline elapsed"),
            NetError::CircuitOpen => write!(f, "circuit breaker open: failing fast"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Wire(WireError::from(e))
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one frame: header, payload, CRC trailer.
///
/// # Errors
///
/// Any transport [`io::Error`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    head[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one frame's payload; `Ok(None)` on a clean EOF before the
/// first header byte (the peer hung up between frames).
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::Oversized`] /
/// [`WireError::Crc`] for frame-level violations,
/// [`WireError::Truncated`] when the peer vanished mid-frame,
/// [`WireError::Io`] for transport failures (including read timeouts,
/// surfaced as `Io` with kind `WouldBlock`/`TimedOut`).
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut head = [0u8; 8];
    // First byte distinguishes clean EOF from a truncated frame; like
    // `read_exact` below, a spurious `Interrupted` is retried rather
    // than surfaced.
    loop {
        match r.read(&mut head[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::from(e)),
        }
    }
    r.read_exact(&mut head[1..])?;
    let magic = u32::from_le_bytes(head[..4].try_into().expect("4-byte slice"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(head[4..].try_into().expect("4-byte slice")) as usize;
    if len > max_bytes {
        return Err(WireError::Oversized {
            len,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(&payload);
    if expected != actual {
        return Err(WireError::Crc { expected, actual });
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Protocol(format!(
                "payload truncated reading {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.bytes(2, what)?.try_into().expect("2-byte slice"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    fn i32(&mut self, what: &str) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(
            self.bytes(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Request message
// ---------------------------------------------------------------------------

fn kind_to_wire(kind: RequestKind) -> (u8, u32) {
    match kind {
        RequestKind::Strict => (0, 0),
        RequestKind::Tolerant => (1, 0),
        RequestKind::Quality { max_layers } => (2, max_layers.min(u32::MAX as usize) as u32),
        RequestKind::Thumbnail { max_res } => (3, max_res.min(u32::MAX as usize) as u32),
    }
}

fn kind_from_wire(tag: u8, param: u32) -> Result<RequestKind, WireError> {
    match tag {
        0 => Ok(RequestKind::Strict),
        1 => Ok(RequestKind::Tolerant),
        2 => Ok(RequestKind::Quality {
            max_layers: param as usize,
        }),
        3 => Ok(RequestKind::Thumbnail {
            max_res: param as usize,
        }),
        _ => Err(WireError::Protocol(format!("unknown request kind {tag}"))),
    }
}

/// Encodes a request payload: the decode variant, an optional deadline
/// (millisecond granularity, `0` = none, saturating at `u32::MAX` ms ≈
/// 49 days) and the codestream.
pub fn encode_request(request: &Request, stream: &[u8]) -> Vec<u8> {
    let (kind, param) = kind_to_wire(request.kind);
    let deadline_ms = request
        .timeout
        .map(|t| u32::try_from(t.as_millis()).unwrap_or(u32::MAX).max(1))
        .unwrap_or(0);
    let mut out = Vec::with_capacity(15 + stream.len());
    out.push(TAG_REQUEST);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    put_u32(&mut out, param);
    put_u32(&mut out, deadline_ms);
    put_u32(&mut out, stream.len() as u32);
    out.extend_from_slice(stream);
    out
}

/// A decoded request payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// The service request (kind + deadline) the payload asked for.
    pub request: Request,
    /// The codestream to decode.
    pub stream: Vec<u8>,
}

/// Parses a request payload.
///
/// # Errors
///
/// [`WireError::Protocol`] on any grammar violation (wrong tag,
/// unsupported version, unknown kind, length mismatch).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, WireError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8("message tag")?;
    if tag != TAG_REQUEST {
        return Err(WireError::Protocol(format!(
            "expected request tag {TAG_REQUEST}, got {tag}"
        )));
    }
    let version = c.u8("protocol version")?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::Protocol(format!(
            "unsupported protocol version {version}"
        )));
    }
    let kind = c.u8("request kind")?;
    let param = c.u32("request param")?;
    let deadline_ms = c.u32("deadline")?;
    let stream_len = c.u32("stream length")? as usize;
    if stream_len != c.remaining() {
        return Err(WireError::Protocol(format!(
            "stream length {stream_len} disagrees with the {} payload bytes that follow",
            c.remaining()
        )));
    }
    let stream = c.bytes(stream_len, "stream")?.to_vec();
    c.finish("request")?;
    Ok(WireRequest {
        request: Request {
            kind: kind_from_wire(kind, param)?,
            timeout: (deadline_ms != 0).then(|| Duration::from_millis(u64::from(deadline_ms))),
        },
        stream,
    })
}

// ---------------------------------------------------------------------------
// Response message
// ---------------------------------------------------------------------------

/// One isolated failure from a tolerant decode, as summarised on the
/// wire: the tile, the stage, and the rendered error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFailure {
    /// The affected tile, when attributable to one.
    pub tile: Option<u32>,
    /// Which stage recorded the failure.
    pub stage: DecodeStage,
    /// The rendered error, including its site.
    pub detail: String,
}

/// The tolerant-report summary a response carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Failures in the server's (deterministic) report order.
    pub failures: Vec<WireFailure>,
}

impl WireReport {
    /// Summarises a service-side [`DecodeReport`] for the wire.
    pub fn summarise(report: &DecodeReport) -> Self {
        WireReport {
            failures: report
                .failures
                .iter()
                .map(|f| WireFailure {
                    tile: f.tile.map(|t| u32::try_from(t).unwrap_or(u32::MAX)),
                    stage: f.stage,
                    detail: f.error.to_string(),
                })
                .collect(),
        }
    }
}

/// A successful network decode.
#[derive(Debug, Clone, PartialEq)]
pub struct NetResponse {
    /// The decoded image, bit-exact with the in-process entry point.
    pub image: Image,
    /// The tolerant-report summary (tolerant requests only).
    pub report: Option<WireReport>,
    /// Which service cache level served the request.
    pub served_from: ServedFrom,
}

fn stage_to_wire(stage: DecodeStage) -> u8 {
    match stage {
        DecodeStage::TileParse => 0,
        DecodeStage::Entropy => 1,
    }
}

fn stage_from_wire(v: u8) -> Result<DecodeStage, WireError> {
    match v {
        0 => Ok(DecodeStage::TileParse),
        1 => Ok(DecodeStage::Entropy),
        _ => Err(WireError::Protocol(format!("unknown decode stage {v}"))),
    }
}

fn served_to_wire(s: ServedFrom) -> u8 {
    match s {
        ServedFrom::Cold => 0,
        ServedFrom::HeaderCache => 1,
        ServedFrom::ImageCache => 2,
        ServedFrom::Coalesced => 3,
    }
}

fn served_from_wire(v: u8) -> Result<ServedFrom, WireError> {
    match v {
        0 => Ok(ServedFrom::Cold),
        1 => Ok(ServedFrom::HeaderCache),
        2 => Ok(ServedFrom::ImageCache),
        3 => Ok(ServedFrom::Coalesced),
        _ => Err(WireError::Protocol(format!(
            "unknown served-from level {v}"
        ))),
    }
}

const NO_TILE: u32 = u32::MAX;

fn put_string(out: &mut Vec<u8>, s: &str, max: usize) {
    let mut end = s.len().min(max);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    let s = &s[..end];
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(c: &mut Cursor<'_>, what: &str) -> Result<String, WireError> {
    let len = c.u16(what)? as usize;
    let bytes = c.bytes(len, what)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| WireError::Protocol(format!("{what} is not UTF-8")))
}

/// Encodes a success response: served-from level, the raster, and the
/// optional report summary.
pub fn encode_ok(image: &Image, report: Option<&WireReport>, served_from: ServedFrom) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(TAG_RESPONSE);
    out.push(STATUS_OK);
    out.push(served_to_wire(served_from));
    put_u32(&mut out, image.width as u32);
    put_u32(&mut out, image.height as u32);
    out.push(image.depth);
    out.push(image.num_components() as u8);
    for plane in &image.components {
        put_u32(&mut out, plane.width as u32);
        put_u32(&mut out, plane.height as u32);
        for &v in &plane.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    match report {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_u32(&mut out, r.failures.len() as u32);
            for f in &r.failures {
                put_u32(&mut out, f.tile.unwrap_or(NO_TILE));
                out.push(stage_to_wire(f.stage));
                put_string(&mut out, &f.detail, 1024);
            }
        }
    }
    out
}

/// Encodes an error response from the service-side taxonomy:
/// `QueueFull` → retryable-busy, deadline → expired, decode failure →
/// the rendered `CodecError` (site included), shutdown → refused,
/// anything else (caught panics, lost workers) → internal.
pub fn encode_service_error(err: &ServiceError) -> Vec<u8> {
    let (status, detail) = match err {
        ServiceError::QueueFull => (STATUS_BUSY, String::new()),
        ServiceError::DeadlineExceeded => (STATUS_EXPIRED, String::new()),
        ServiceError::Decode(e) => (STATUS_DECODE, e.to_string()),
        ServiceError::ShuttingDown => (STATUS_REFUSED, String::new()),
        other => (STATUS_INTERNAL, other.to_string()),
    };
    encode_error(status, &detail)
}

/// Encodes a protocol-error response (the peer's frame was readable
/// but invalid).
pub fn encode_protocol_error(detail: &str) -> Vec<u8> {
    encode_error(STATUS_PROTOCOL, detail)
}

/// Encodes a retryable-busy response (used both for a full decode
/// queue and for a saturated connection-handler pool).
pub fn encode_busy() -> Vec<u8> {
    encode_error(STATUS_BUSY, "")
}

fn encode_error(status: u8, detail: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + detail.len());
    out.push(TAG_RESPONSE);
    out.push(status);
    put_string(&mut out, detail, 1024);
    out
}

/// Parses a response payload into the client-side result.
///
/// # Errors
///
/// The server's own error taxonomy as the matching [`NetError`]
/// variant, or [`NetError::Wire`]`(`[`WireError::Protocol`]`)` when
/// the payload itself is malformed.
pub fn decode_response(payload: &[u8]) -> Result<NetResponse, NetError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8("message tag")?;
    if tag != TAG_RESPONSE {
        return Err(WireError::Protocol(format!(
            "expected response tag {TAG_RESPONSE}, got {tag}"
        ))
        .into());
    }
    let status = c.u8("status")?;
    if status != STATUS_OK {
        let detail = get_string(&mut c, "error detail")?;
        c.finish("error response")?;
        return Err(match status {
            STATUS_BUSY => NetError::Busy,
            STATUS_EXPIRED => NetError::Expired,
            STATUS_DECODE => NetError::Decode(detail),
            STATUS_PROTOCOL => NetError::Protocol(detail),
            STATUS_REFUSED => NetError::Refused,
            STATUS_INTERNAL => NetError::Internal(detail),
            other => WireError::Protocol(format!("unknown response status {other}")).into(),
        });
    }
    let served_from = served_from_wire(c.u8("served-from")?)?;
    let width = c.u32("image width")? as usize;
    let height = c.u32("image height")? as usize;
    let depth = c.u8("image depth")?;
    let ncomp = c.u8("component count")? as usize;
    let mut components = Vec::with_capacity(ncomp.min(16));
    for comp in 0..ncomp {
        let pw = c.u32("plane width")? as usize;
        let ph = c.u32("plane height")? as usize;
        let samples = pw.checked_mul(ph).ok_or_else(|| {
            WireError::Protocol(format!("plane {comp} dimensions {pw}x{ph} overflow"))
        })?;
        // The raster must actually be present in this payload, so the
        // remaining length bounds the allocation before it happens.
        if samples.checked_mul(4).is_none_or(|b| b > c.remaining()) {
            return Err(WireError::Protocol(format!(
                "plane {comp} claims {samples} samples but only {} payload bytes remain",
                c.remaining()
            ))
            .into());
        }
        let mut data = Vec::with_capacity(samples);
        for _ in 0..samples {
            data.push(c.i32("plane sample")?);
        }
        components.push(Plane::from_data(pw, ph, data));
    }
    let report = match c.u8("report flag")? {
        0 => None,
        1 => {
            let nfail = c.u32("failure count")? as usize;
            // Each failure is ≥ 7 bytes on the wire; bound before allocating.
            if nfail > c.remaining() / 7 {
                return Err(WireError::Protocol(format!(
                    "failure count {nfail} exceeds what {} remaining bytes can hold",
                    c.remaining()
                ))
                .into());
            }
            let mut failures = Vec::with_capacity(nfail);
            for _ in 0..nfail {
                let tile = c.u32("failure tile")?;
                let stage = stage_from_wire(c.u8("failure stage")?)?;
                let detail = get_string(&mut c, "failure detail")?;
                failures.push(WireFailure {
                    tile: (tile != NO_TILE).then_some(tile),
                    stage,
                    detail,
                });
            }
            Some(WireReport { failures })
        }
        other => {
            return Err(WireError::Protocol(format!("unknown report flag {other}")).into());
        }
    };
    c.finish("response")?;
    let image = Image {
        width,
        height,
        depth,
        components,
    };
    Ok(NetResponse {
        image,
        report,
        served_from,
    })
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Deterministic retry-on-busy backoff, mirroring the VTA layer's
/// `RetryPolicy`: exponential from `backoff_base`, capped at
/// `backoff_cap`, with jitter drawn from a seeded hash of the attempt
/// number — two clients with different seeds de-synchronise instead of
/// stampeding the queue in lockstep.
#[derive(Debug, Clone)]
pub struct NetRetryPolicy {
    /// Busy responses tolerated before giving up (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff (before jitter).
    pub backoff_cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for NetRetryPolicy {
    fn default() -> Self {
        NetRetryPolicy {
            max_retries: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(250),
            jitter_seed: 0x4A32_4B44,
        }
    }
}

/// splitmix64-style finaliser — the same shape the VTA fault layer
/// uses for its deterministic decision streams.
fn mix(seed: u64, attempt: u64) -> u64 {
    let mut z = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NetRetryPolicy {
    /// The backoff before retry `attempt` (0-based): `base << attempt`
    /// capped, plus up to 25 % deterministic jitter.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.backoff_cap);
        let jitter_ns = base.as_nanos() as u64 / 4;
        let jitter = if jitter_ns == 0 {
            0
        } else {
            mix(self.jitter_seed, u64::from(attempt)) % jitter_ns
        };
        base + Duration::from_nanos(jitter)
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Where a [`CircuitBreaker`] currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Traffic flows; consecutive transport failures are being counted.
    Closed,
    /// Tripped: requests fail fast with [`NetError::CircuitOpen`] until
    /// the cooldown elapses.
    Open,
    /// Cooldown elapsed and exactly one probe request is in flight; its
    /// outcome closes or re-opens the circuit.
    HalfOpen,
}

/// A consecutive-failure circuit breaker for the network client.
///
/// A blackholed or dead server makes every request pay its full
/// deadline before failing; once `threshold` consecutive *transport*
/// failures accumulate (timeouts and wire errors — a server-answered
/// error, even `Busy`, proves the path works and resets the count),
/// the breaker opens and [`Client::decode_retry_guarded`] fails fast
/// with [`NetError::CircuitOpen`] without touching the network. After
/// `cooldown`, the next caller is granted exactly one deterministic
/// half-open probe: success closes the circuit, failure re-opens it
/// for another full cooldown. All decisions are pure functions of the
/// observed outcome sequence and elapsed time — no randomness.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probing: bool,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive transport
    /// failures (clamped to ≥ 1) and re-probing after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            opened_at: None,
            probing: false,
        }
    }

    /// The current state (evaluating the cooldown against now).
    pub fn state(&self) -> CircuitState {
        if self.probing {
            CircuitState::HalfOpen
        } else {
            match self.opened_at {
                Some(at) if at.elapsed() < self.cooldown => CircuitState::Open,
                Some(_) => CircuitState::HalfOpen,
                None => CircuitState::Closed,
            }
        }
    }

    /// Asks to send one request. `true` admits it (and, when the
    /// circuit was open past its cooldown, marks it as *the* half-open
    /// probe); `false` means fail fast.
    pub fn allow(&mut self) -> bool {
        match self.opened_at {
            None => true,
            Some(_) if self.probing => false,
            Some(at) => {
                if at.elapsed() >= self.cooldown {
                    self.probing = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a request the server answered (any structured response,
    /// including errors): closes the circuit and resets the count.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probing = false;
    }

    /// Records a transport failure (timeout or wire error): a failed
    /// half-open probe re-opens immediately, otherwise the consecutive
    /// count advances toward the threshold.
    pub fn on_failure(&mut self) {
        if self.probing {
            self.probing = false;
            self.consecutive_failures = self.threshold;
            self.opened_at = Some(Instant::now());
            return;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            self.opened_at = Some(Instant::now());
        }
    }
}

// ---------------------------------------------------------------------------
// Deadline-aware stream
// ---------------------------------------------------------------------------

/// Wraps a [`TcpStream`] so every read/write races one absolute
/// deadline: before each syscall the remaining budget is recomputed
/// and installed as the socket timeout, so a peer trickling one byte
/// per timeout window cannot extend the operation past the deadline
/// (each partial read shrinks the next window instead of resetting
/// it).
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl DeadlineStream<'_> {
    fn remaining(&self) -> io::Result<Duration> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "client operation deadline elapsed",
            ));
        }
        Ok(self.deadline - now)
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            self.stream.set_read_timeout(Some(self.remaining()?))?;
            match (&mut (&*self.stream)).read(buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A timeout below the full remaining window (platforms
                // may wake early) is re-checked against the deadline.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

impl Write for DeadlineStream<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            self.stream.set_write_timeout(Some(self.remaining()?))?;
            match (&mut (&*self.stream)).write(buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                other => return other,
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        (&mut (&*self.stream)).flush()
    }
}

/// Maps a deadline expiry (surfaced as a `TimedOut`/`WouldBlock` IO
/// error) to [`NetError::Timeout`]; everything else stays a wire
/// error.
fn map_deadline(e: WireError) -> NetError {
    match e {
        WireError::Io(ref io_err)
            if matches!(
                io_err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) =>
        {
            NetError::Timeout
        }
        other => NetError::Wire(other),
    }
}

/// A blocking client for a [`crate::server::DecodeServer`]: one
/// connection, requests answered in order.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    max_frame_bytes: usize,
    op_deadline: Option<Duration>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any connect-time [`io::Error`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::configure_socket(&stream)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            max_frame_bytes: MAX_FRAME_BYTES,
            op_deadline: None,
        })
    }

    /// Per-socket configuration, shared by [`Self::connect`] and
    /// [`Self::reconnect`] so a replacement socket can never silently
    /// lose an option the original had. Everything else that shapes an
    /// operation — `op_deadline`, `max_frame_bytes` — lives on the
    /// `Client` itself and is applied per request (the deadline
    /// installs its remaining-budget read/write timeouts on every
    /// syscall, see [`DeadlineStream`]), so it survives any number of
    /// reconnects by construction (regression:
    /// `reconnected_client_keeps_its_op_deadline`).
    fn configure_socket(stream: &TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)
    }

    /// Lowers (or raises) the response-frame size this client accepts.
    #[must_use]
    pub fn max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Bounds every [`Self::request`] (send + full reply) by one
    /// wall-clock deadline, surfacing expiry as [`NetError::Timeout`].
    ///
    /// Without it, a server (or intermediary) that stalls mid-frame
    /// after the header hangs the client forever: per-read socket
    /// timeouts alone reset on every byte, so a trickling peer evades
    /// them. The deadline is absolute per operation — partial progress
    /// shrinks the remaining window instead of resetting it.
    #[must_use]
    pub fn op_deadline(mut self, deadline: Duration) -> Self {
        self.op_deadline = Some(deadline);
        self
    }

    /// Sends one decode request and blocks for the response.
    ///
    /// # Errors
    ///
    /// The full [`NetError`] taxonomy; [`NetError::Busy`] is the
    /// retryable one, and [`NetError::Timeout`] reports an elapsed
    /// [`Self::op_deadline`].
    pub fn request(&mut self, request: &Request, stream: &[u8]) -> Result<NetResponse, NetError> {
        match self.op_deadline {
            None => {
                write_frame(&mut self.stream, &encode_request(request, stream))?;
                let payload = read_frame(&mut self.stream, self.max_frame_bytes)?
                    .ok_or(WireError::Truncated)?;
                decode_response(&payload)
            }
            Some(limit) => {
                let mut io = DeadlineStream {
                    stream: &self.stream,
                    deadline: Instant::now() + limit,
                };
                write_frame(&mut io, &encode_request(request, stream))
                    .map_err(|e| map_deadline(WireError::from(e)))?;
                let payload = read_frame(&mut io, self.max_frame_bytes)
                    .map_err(map_deadline)?
                    .ok_or(WireError::Truncated)?;
                decode_response(&payload)
            }
        }
    }

    /// [`Self::request`], absorbing [`NetError::Busy`] responses under
    /// `policy`'s deterministic backoff.
    ///
    /// A busy answer from the *acceptor* (handler pool saturated)
    /// closes the connection after the frame, so each retry runs on a
    /// fresh connection — transparent to the caller.
    ///
    /// # Errors
    ///
    /// [`NetError::RetriesExhausted`] once the budget is spent; any
    /// non-busy error immediately.
    pub fn decode_retry(
        &mut self,
        request: &Request,
        stream: &[u8],
        policy: &NetRetryPolicy,
    ) -> Result<NetResponse, NetError> {
        let mut attempt = 0u32;
        loop {
            match self.request(request, stream) {
                Err(NetError::Busy) => {
                    if attempt >= policy.max_retries {
                        return Err(NetError::RetriesExhausted {
                            attempts: attempt + 1,
                        });
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                    self.reconnect()?;
                }
                other => return other,
            }
        }
    }

    /// [`Self::decode_retry`] behind a [`CircuitBreaker`]: when the
    /// breaker is open the call fails fast with
    /// [`NetError::CircuitOpen`] without touching the network, so a
    /// blackholed server costs one deadline per cooldown instead of
    /// one per request.
    ///
    /// Breaker accounting: timeouts and wire errors are failures;
    /// *any* server-answered outcome — success, `Busy`, or a
    /// structured server error — proves the path works and resets the
    /// breaker. After a transport failure the connection is re-dialled
    /// best-effort so a late straggler reply cannot desynchronise the
    /// next request.
    ///
    /// # Errors
    ///
    /// As [`Self::decode_retry`], plus [`NetError::Timeout`] and
    /// [`NetError::CircuitOpen`].
    pub fn decode_retry_guarded(
        &mut self,
        request: &Request,
        stream: &[u8],
        policy: &NetRetryPolicy,
        breaker: &mut CircuitBreaker,
    ) -> Result<NetResponse, NetError> {
        if !breaker.allow() {
            return Err(NetError::CircuitOpen);
        }
        let mut attempt = 0u32;
        loop {
            match self.request(request, stream) {
                Ok(resp) => {
                    breaker.on_success();
                    return Ok(resp);
                }
                Err(NetError::Busy) => {
                    // The server answered: the transport works.
                    breaker.on_success();
                    if attempt >= policy.max_retries {
                        return Err(NetError::RetriesExhausted {
                            attempts: attempt + 1,
                        });
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                    self.reconnect()?;
                }
                Err(e @ (NetError::Timeout | NetError::Wire(_))) => {
                    breaker.on_failure();
                    // The stream may hold a straggler reply; drop it.
                    let _ = self.reconnect();
                    return Err(e);
                }
                Err(other) => {
                    // Structured server errors still prove liveness.
                    breaker.on_success();
                    return Err(other);
                }
            }
        }
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let fresh = TcpStream::connect(self.addr)?;
        Self::configure_socket(&fresh)?;
        self.stream = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode, EncodeParams, Mode};
    use crate::fuzz::Mutator;

    fn test_image() -> Image {
        Image::synthetic_rgb(16, 16, 5)
    }

    #[test]
    fn frame_roundtrips() {
        let payload = b"the quick brown fox".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire.len(), 8 + payload.len() + 4);
        let back = read_frame(&mut &wire[..], MAX_FRAME_BYTES).unwrap();
        assert_eq!(back, Some(payload));
        // Clean EOF between frames.
        assert_eq!(read_frame(&mut &[][..], MAX_FRAME_BYTES).unwrap(), None);
    }

    #[test]
    fn frame_rejects_bad_magic_oversize_truncation_and_crc() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();

        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bad_magic[..], MAX_FRAME_BYTES),
            Err(WireError::BadMagic(_))
        ));

        assert!(matches!(
            read_frame(&mut &wire[..], 3),
            Err(WireError::Oversized { len: 7, max: 3 })
        ));

        for cut in 1..wire.len() {
            assert!(
                matches!(
                    read_frame(&mut &wire[..cut], MAX_FRAME_BYTES),
                    Err(WireError::Truncated)
                ),
                "cut at {cut}"
            );
        }

        let mut corrupt = wire.clone();
        let n = corrupt.len();
        corrupt[9] ^= 0x01; // payload byte: CRC must catch it
        assert!(matches!(
            read_frame(&mut &corrupt[..], MAX_FRAME_BYTES),
            Err(WireError::Crc { .. })
        ));
        let mut bad_trailer = wire;
        bad_trailer[n - 1] ^= 0x80; // trailer byte: same
        assert!(matches!(
            read_frame(&mut &bad_trailer[..], MAX_FRAME_BYTES),
            Err(WireError::Crc { .. })
        ));
    }

    #[test]
    fn request_roundtrips_for_every_kind() {
        let stream = vec![1u8, 2, 3, 4, 5];
        for request in [
            Request::strict(),
            Request::tolerant(),
            Request::quality(3),
            Request::thumbnail(2),
            Request::strict().with_timeout(Duration::from_millis(1500)),
        ] {
            let payload = encode_request(&request, &stream);
            let back = decode_request(&payload).unwrap();
            assert_eq!(back.request, request);
            assert_eq!(back.stream, stream);
        }
        // Sub-millisecond deadlines round up to 1 ms, not silently to
        // "no deadline".
        let tight = Request::strict().with_timeout(Duration::from_micros(10));
        let back = decode_request(&encode_request(&tight, &stream)).unwrap();
        assert_eq!(back.request.timeout, Some(Duration::from_millis(1)));
    }

    #[test]
    fn request_rejects_grammar_violations() {
        let good = encode_request(&Request::strict(), b"abc");
        for (mutate, what) in [(0usize, "tag"), (1, "version"), (2, "kind")] {
            let mut bad = good.clone();
            bad[mutate] = 0x7F;
            let err = decode_request(&bad).unwrap_err();
            assert!(matches!(err, WireError::Protocol(_)), "{what}: {err}");
        }
        // Stream length disagreeing with the payload.
        let mut bad = good.clone();
        bad[11] ^= 0x01;
        assert!(matches!(decode_request(&bad), Err(WireError::Protocol(_))));
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(matches!(decode_request(&bad), Err(WireError::Protocol(_))));
    }

    #[test]
    fn ok_response_roundtrips_image_and_report() {
        let img = test_image();
        let report = WireReport {
            failures: vec![
                WireFailure {
                    tile: Some(3),
                    stage: DecodeStage::Entropy,
                    detail: "mq decoder desynchronised".into(),
                },
                WireFailure {
                    tile: None,
                    stage: DecodeStage::TileParse,
                    detail: "truncated tile-part".into(),
                },
            ],
        };
        let payload = encode_ok(&img, Some(&report), ServedFrom::HeaderCache);
        let back = decode_response(&payload).unwrap();
        assert_eq!(back.image, img);
        assert_eq!(back.report.as_ref(), Some(&report));
        assert_eq!(back.served_from, ServedFrom::HeaderCache);

        let bare = decode_response(&encode_ok(&img, None, ServedFrom::Cold)).unwrap();
        assert_eq!(bare.image, img);
        assert_eq!(bare.report, None);
    }

    #[test]
    fn error_responses_map_the_service_taxonomy() {
        use crate::error::CodecError;
        type NetMatcher = fn(&NetError) -> bool;
        let cases: [(ServiceError, NetMatcher); 5] = [
            (ServiceError::QueueFull, |e| matches!(e, NetError::Busy)),
            (ServiceError::DeadlineExceeded, |e| {
                matches!(e, NetError::Expired)
            }),
            (ServiceError::ShuttingDown, |e| {
                matches!(e, NetError::Refused)
            }),
            (
                ServiceError::Panicked("boom".into()),
                |e| matches!(e, NetError::Internal(d) if d.contains("boom")),
            ),
            (
                ServiceError::Decode(CodecError::malformed("bad marker")),
                |e| matches!(e, NetError::Decode(d) if d.contains("bad marker")),
            ),
        ];
        for (service_err, matches_net) in cases {
            let payload = encode_service_error(&service_err);
            let err = decode_response(&payload).unwrap_err();
            assert!(matches_net(&err), "{service_err:?} -> {err:?}");
        }
        let err = decode_response(&encode_protocol_error("bad frame")).unwrap_err();
        assert!(matches!(err, NetError::Protocol(d) if d.contains("bad frame")));
        let err = decode_response(&encode_busy()).unwrap_err();
        assert!(matches!(err, NetError::Busy));
    }

    #[test]
    fn response_rejects_lying_plane_and_failure_counts() {
        // A plane claiming more samples than the payload carries must
        // be rejected before any allocation of that size.
        let img = test_image();
        let mut payload = encode_ok(&img, None, ServedFrom::Cold);
        // plane 0 width lives right after tag+status+served+w+h+depth+ncomp.
        let plane_w_at = 1 + 1 + 1 + 4 + 4 + 1 + 1;
        payload[plane_w_at..plane_w_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&payload),
            Err(NetError::Wire(WireError::Protocol(_)))
        ));

        let report = WireReport { failures: vec![] };
        let mut payload = encode_ok(&img, Some(&report), ServedFrom::Cold);
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes()); // failure count
        assert!(matches!(
            decode_response(&payload),
            Err(NetError::Wire(WireError::Protocol(_)))
        ));
    }

    /// The deterministic structure-aware mutation engine from the fuzz
    /// harness, pointed at wire frames instead of codestreams: no
    /// mutation may panic the frame reader or the payload parsers —
    /// every outcome is a structured accept or reject. (A mutation
    /// *can* rewrite a frame into a different valid one — e.g. zeroing
    /// length, payload and trailer together, since `crc32([]) == 0` —
    /// so accepted-implies-identical would be too strong; integrity
    /// against single corruptions is covered by
    /// [`frame_rejects_bad_magic_oversize_truncation_and_crc`].)
    #[test]
    fn mutated_frames_never_panic_and_never_parse_wrong() {
        let img = Image::synthetic_rgb(8, 8, 1);
        let stream = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        let seeds: [Vec<u8>; 3] = [
            {
                let mut w = Vec::new();
                write_frame(&mut w, &encode_request(&Request::quality(2), &stream)).unwrap();
                w
            },
            {
                let mut w = Vec::new();
                write_frame(&mut w, &encode_ok(&img, None, ServedFrom::Cold)).unwrap();
                w
            },
            {
                let mut w = Vec::new();
                write_frame(&mut w, &encode_service_error(&ServiceError::QueueFull)).unwrap();
                w
            },
        ];
        let iters: usize = std::env::var("FUZZ_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        let mut mutator = Mutator::new(0x6E65_7431);
        let mut accepted = 0u32;
        for seed_frame in &seeds {
            for _ in 0..iters {
                let (mutated, _mutation) = mutator.mutate(seed_frame);
                if mutated.is_empty() {
                    continue;
                }
                match read_frame(&mut &mutated[..], MAX_FRAME_BYTES) {
                    Err(_) | Ok(None) => {} // structured rejection: the point
                    Ok(Some(payload)) => {
                        accepted += 1;
                        // CRC + length accepted the frame: the payload
                        // parsers must parse or reject cleanly, never
                        // panic.
                        let _ = decode_request(&payload);
                        let _ = decode_response(&payload);
                    }
                }
            }
        }
        // Some mutations (e.g. header-only overwrites past the trailer
        // region) leave the frame valid; the loop must exercise both
        // branches for the no-panic claim to mean anything.
        assert!(accepted > 0, "no mutation left any frame acceptable");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = NetRetryPolicy::default();
        let a: Vec<Duration> = (0..10).map(|i| policy.backoff(i)).collect();
        let b: Vec<Duration> = (0..10).map(|i| policy.backoff(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let cap = policy.backoff_cap + policy.backoff_cap / 4;
            assert!(*d <= cap, "attempt {i}: {d:?} above cap+jitter {cap:?}");
        }
        assert!(a[3] > a[0], "backoff must grow");
        let other = NetRetryPolicy {
            jitter_seed: 99,
            ..NetRetryPolicy::default()
        };
        assert_ne!(
            (0..10).map(|i| other.backoff(i)).collect::<Vec<_>>(),
            a,
            "different seeds de-synchronise"
        );
    }

    /// A reader/writer delivering one byte per call and injecting a
    /// spurious `Interrupted` every `interrupt_every` operations — the
    /// worst honest transport the frame layer can meet.
    struct Trickle<T> {
        inner: T,
        interrupt_every: usize,
        ops: usize,
    }

    impl<T> Trickle<T> {
        fn new(inner: T, interrupt_every: usize) -> Self {
            Trickle {
                inner,
                interrupt_every,
                ops: 0,
            }
        }

        fn interrupts(&mut self) -> bool {
            self.ops += 1;
            self.interrupt_every > 0 && self.ops.is_multiple_of(self.interrupt_every)
        }
    }

    impl<R: Read> Read for Trickle<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupts() {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "spurious"));
            }
            let take = buf.len().min(1);
            self.inner.read(&mut buf[..take])
        }
    }

    impl<W: Write> Write for Trickle<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupts() {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "spurious"));
            }
            let take = buf.len().min(1);
            self.inner.write(&buf[..take])
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn frames_survive_one_byte_reads_writes_and_interrupts() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 253) as u8).collect();
        // interrupt_every = 1 would never progress; 2 interrupts every
        // other call including the very first read (the first-byte
        // path that used to surface Interrupted as an Io error).
        for interrupt_every in [0usize, 2, 3, 7] {
            let mut writer = Trickle::new(Vec::new(), interrupt_every);
            write_frame(&mut writer, &payload).unwrap();
            let wire = writer.inner;
            // Interruption starts fresh on the read side so the first
            // header byte also sees an Interrupted when every == 2...
            // ops counter starts at 0, first call ops=1, interrupts at
            // ops % every == 0, i.e. the second call. Shift by one op
            // to hit the first-byte read too.
            let mut reader = Trickle::new(&wire[..], interrupt_every);
            if interrupt_every > 0 {
                reader.ops = interrupt_every - 1; // next call interrupts
            }
            let back = read_frame(&mut reader, MAX_FRAME_BYTES).unwrap();
            assert_eq!(
                back.as_deref(),
                Some(&payload[..]),
                "interrupt_every={interrupt_every}"
            );
        }
    }

    #[test]
    fn circuit_breaker_trips_probes_and_recovers() {
        let mut b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(b.state(), CircuitState::Closed);
        // Failures below the threshold keep the circuit closed; an
        // intervening success resets the count entirely.
        assert!(b.allow());
        b.on_failure();
        assert!(b.allow());
        b.on_failure();
        b.on_success();
        assert!(b.allow());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Closed);
        b.on_failure(); // third consecutive: trip
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.allow(), "open circuit fails fast");
        assert!(!b.allow());
        // Cooldown elapses: exactly one half-open probe is granted.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert!(b.allow(), "one probe after cooldown");
        assert!(!b.allow(), "second concurrent probe denied");
        // Failed probe re-opens for a full cooldown.
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.allow(), "closed again after a successful probe");
    }

    /// Regression (PR 9): a server stalling mid-frame after the header
    /// used to hang `Client::request` forever — per-read timeouts reset
    /// on every byte. With an operation deadline the client returns
    /// [`NetError::Timeout`] within the budget.
    #[test]
    fn stalled_server_times_out_instead_of_hanging() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let stall = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Read the request, then answer with a frame header that
            // promises a payload and trickle exactly one byte of it.
            let mut sink = [0u8; 4096];
            while let Ok(n) = s.read(&mut sink) {
                if n == 0 || n < sink.len() {
                    break;
                }
            }
            let mut head = [0u8; 8];
            head[..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
            head[4..].copy_from_slice(&1024u32.to_le_bytes());
            s.write_all(&head).unwrap();
            s.write_all(&[0u8]).unwrap();
            // ...then stall until the test ends.
            let _ = stop_rx.recv_timeout(Duration::from_secs(30));
        });
        let mut client = Client::connect(addr)
            .unwrap()
            .op_deadline(Duration::from_millis(200));
        let started = Instant::now();
        let err = client
            .request(&Request::strict(), b"unused")
            .expect_err("stalled server must not produce a response");
        let elapsed = started.elapsed();
        assert!(matches!(err, NetError::Timeout), "{err:?}");
        assert!(
            elapsed >= Duration::from_millis(150) && elapsed < Duration::from_secs(5),
            "deadline respected: {elapsed:?}"
        );
        stop_tx.send(()).unwrap();
        stall.join().unwrap();
    }

    /// The coalesced outcome is part of the wire taxonomy: it
    /// roundtrips alongside the cache levels, and codes beyond the
    /// taxonomy stay protocol errors rather than panics.
    #[test]
    fn coalesced_served_from_roundtrips_on_the_wire() {
        let img = test_image();
        let back = decode_response(&encode_ok(&img, None, ServedFrom::Coalesced)).unwrap();
        assert_eq!(back.served_from, ServedFrom::Coalesced);
        assert_eq!(back.image, img);
        for s in [
            ServedFrom::Cold,
            ServedFrom::HeaderCache,
            ServedFrom::ImageCache,
            ServedFrom::Coalesced,
        ] {
            assert_eq!(served_from_wire(served_to_wire(s)).unwrap(), s);
        }
        for v in 4..=u8::MAX {
            assert!(
                matches!(served_from_wire(v), Err(WireError::Protocol(_))),
                "wire code {v} must be rejected"
            );
        }
    }

    /// Regression: the audit of `reconnect()` — the fresh socket must
    /// behave exactly like the original, in particular a mid-frame
    /// stall *after* a reconnect must still surface as
    /// [`NetError::Timeout`] under the client's `op_deadline` rather
    /// than hanging (the deadline lives on the `Client`, not the
    /// socket, and installs its timeouts per syscall).
    #[test]
    fn reconnected_client_keeps_its_op_deadline() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let stall = std::thread::spawn(move || {
            // First connection: the client's original socket; it goes
            // quiet once the client reconnects.
            let (_original, _) = listener.accept().unwrap();
            // Second connection (post-reconnect): read the request,
            // promise a 1024-byte frame, deliver one byte, stall.
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 4096];
            while let Ok(n) = s.read(&mut sink) {
                if n == 0 || n < sink.len() {
                    break;
                }
            }
            let mut head = [0u8; 8];
            head[..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
            head[4..].copy_from_slice(&1024u32.to_le_bytes());
            s.write_all(&head).unwrap();
            s.write_all(&[0u8]).unwrap();
            let _ = stop_rx.recv_timeout(Duration::from_secs(30));
        });
        let mut client = Client::connect(addr)
            .unwrap()
            .op_deadline(Duration::from_millis(200));
        client.reconnect().unwrap();
        let started = Instant::now();
        let err = client
            .request(&Request::strict(), b"unused")
            .expect_err("a mid-frame stall after reconnect must not hang");
        let elapsed = started.elapsed();
        assert!(matches!(err, NetError::Timeout), "{err:?}");
        assert!(
            elapsed >= Duration::from_millis(150) && elapsed < Duration::from_secs(5),
            "deadline survived the reconnect: {elapsed:?}"
        );
        stop_tx.send(()).unwrap();
        stall.join().unwrap();
    }

    /// A breaker-guarded client against a blackhole: the first
    /// `threshold` calls each pay one deadline, every later call fails
    /// fast with `CircuitOpen` until the cooldown.
    #[test]
    fn guarded_retry_fails_fast_once_the_breaker_trips() {
        use std::net::TcpListener;
        // A listener that accepts and never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let hole = std::thread::spawn(move || {
            let mut held = Vec::new();
            listener.set_nonblocking(true).unwrap();
            loop {
                if let Ok((s, _)) = listener.accept() {
                    held.push(s);
                }
                if stop_rx.try_recv().is_ok() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let mut client = Client::connect(addr)
            .unwrap()
            .op_deadline(Duration::from_millis(100));
        let mut breaker = CircuitBreaker::new(2, Duration::from_secs(60));
        let policy = NetRetryPolicy::default();
        for i in 0..2 {
            let err = client
                .decode_retry_guarded(&Request::strict(), b"x", &policy, &mut breaker)
                .expect_err("blackhole cannot answer");
            assert!(matches!(err, NetError::Timeout), "call {i}: {err:?}");
        }
        assert_eq!(breaker.state(), CircuitState::Open);
        let started = Instant::now();
        let err = client
            .decode_retry_guarded(&Request::strict(), b"x", &policy, &mut breaker)
            .expect_err("open breaker fails fast");
        assert!(matches!(err, NetError::CircuitOpen), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "fail-fast must not touch the network: {:?}",
            started.elapsed()
        );
        stop_tx.send(()).unwrap();
        hole.join().unwrap();
    }
}
