//! Codec error type.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding a codestream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The codestream ended before a complete structure could be read.
    Truncated {
        /// What was being parsed when the data ran out.
        context: &'static str,
    },
    /// A marker or field value is not what the parser expected.
    Malformed {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Encode-side parameter validation failure.
    InvalidParams {
        /// Which parameter and why.
        detail: String,
    },
}

impl CodecError {
    pub(crate) fn malformed(detail: impl Into<String>) -> Self {
        CodecError::Malformed {
            detail: detail.into(),
        }
    }

    pub(crate) fn invalid(detail: impl Into<String>) -> Self {
        CodecError::InvalidParams {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "codestream truncated while reading {context}")
            }
            CodecError::Malformed { detail } => write!(f, "malformed codestream: {detail}"),
            CodecError::InvalidParams { detail } => write!(f, "invalid parameters: {detail}"),
        }
    }
}

impl Error for CodecError {}

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CodecError::Truncated { context: "SIZ" };
        assert_eq!(e.to_string(), "codestream truncated while reading SIZ");
        assert!(CodecError::malformed("bad marker")
            .to_string()
            .contains("bad marker"));
        assert!(CodecError::invalid("tile size 0")
            .to_string()
            .contains("tile size 0"));
    }
}
