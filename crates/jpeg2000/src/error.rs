//! Codec error type.
//!
//! Every decode-path error carries an [`ErrorSite`] — the byte offset,
//! enclosing marker segment and tile where parsing failed — so a fuzz
//! failure or a user bug report names the exact spot in the stream
//! instead of just the kind of damage.

use std::error::Error;
use std::fmt;

/// Where in a codestream an error was detected. All fields are
/// best-effort: parsers fill in what they know and leave the rest
/// `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorSite {
    /// Byte offset of the failure. For errors raised inside a tile's
    /// packet data this is relative to the start of that tile's
    /// bitstream (the byte after `SOD`); for main-header and tile-part
    /// errors it is absolute within the codestream.
    pub offset: Option<usize>,
    /// The enclosing marker segment (`"SIZ"`, `"COD"`, `"SOT"`, …).
    pub marker: Option<&'static str>,
    /// The enclosing tile index, for errors inside tile data.
    pub tile: Option<usize>,
}

impl ErrorSite {
    fn is_empty(&self) -> bool {
        self.offset.is_none() && self.marker.is_none() && self.tile.is_none()
    }
}

impl fmt::Display for ErrorSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(o) = self.offset {
            write!(f, "byte {o}")?;
            sep = ", ";
        }
        if let Some(m) = self.marker {
            write!(f, "{sep}in {m}")?;
            sep = ", ";
        }
        if let Some(t) = self.tile {
            write!(f, "{sep}tile {t}")?;
        }
        Ok(())
    }
}

/// Errors produced while encoding or decoding a codestream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The codestream ended before a complete structure could be read.
    Truncated {
        /// What was being parsed when the data ran out.
        context: &'static str,
        /// Where the data ran out.
        site: ErrorSite,
    },
    /// A marker or field value is not what the parser expected.
    Malformed {
        /// Human-readable description of the inconsistency.
        detail: String,
        /// Where the inconsistency was found.
        site: ErrorSite,
    },
    /// Encode-side parameter validation failure.
    InvalidParams {
        /// Which parameter and why.
        detail: String,
    },
    /// An operating-system I/O failure while reading or writing image
    /// files — the file could not be accessed at all, as opposed to a
    /// codestream- or PNM-content error.
    Io {
        /// The failed operation and the OS error text.
        detail: String,
    },
}

impl CodecError {
    pub(crate) fn truncated(context: &'static str) -> Self {
        CodecError::Truncated {
            context,
            site: ErrorSite::default(),
        }
    }

    pub(crate) fn malformed(detail: impl Into<String>) -> Self {
        CodecError::Malformed {
            detail: detail.into(),
            site: ErrorSite::default(),
        }
    }

    pub(crate) fn invalid(detail: impl Into<String>) -> Self {
        CodecError::InvalidParams {
            detail: detail.into(),
        }
    }

    pub(crate) fn io(detail: impl Into<String>) -> Self {
        CodecError::Io {
            detail: detail.into(),
        }
    }

    /// The error's location info ([`ErrorSite::default`] for
    /// [`CodecError::InvalidParams`], which has no stream position).
    pub fn site(&self) -> ErrorSite {
        match self {
            CodecError::Truncated { site, .. } | CodecError::Malformed { site, .. } => *site,
            CodecError::InvalidParams { .. } | CodecError::Io { .. } => ErrorSite::default(),
        }
    }

    fn site_mut(&mut self) -> Option<&mut ErrorSite> {
        match self {
            CodecError::Truncated { site, .. } | CodecError::Malformed { site, .. } => Some(site),
            CodecError::InvalidParams { .. } | CodecError::Io { .. } => None,
        }
    }

    /// Records the byte offset where the error occurred, if not already
    /// set by a more deeply nested parser.
    pub(crate) fn at_offset(mut self, offset: usize) -> Self {
        if let Some(site) = self.site_mut() {
            site.offset.get_or_insert(offset);
        }
        self
    }

    /// Records the enclosing marker segment, if not already set.
    pub(crate) fn in_marker(mut self, marker: &'static str) -> Self {
        if let Some(site) = self.site_mut() {
            site.marker.get_or_insert(marker);
        }
        self
    }

    /// Records the enclosing tile, if not already set.
    pub(crate) fn in_tile(mut self, tile: usize) -> Self {
        if let Some(site) = self.site_mut() {
            site.tile.get_or_insert(tile);
        }
        self
    }

    /// Shifts a nested parser's relative offset into the caller's frame:
    /// the inner offset (0 when the inner parser recorded none) plus
    /// `base`.
    pub(crate) fn rebase_offset(mut self, base: usize) -> Self {
        if let Some(site) = self.site_mut() {
            site.offset = Some(base + site.offset.unwrap_or(0));
        }
        self
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context, site } => {
                write!(f, "codestream truncated while reading {context}")?;
                if !site.is_empty() {
                    write!(f, " ({site})")?;
                }
                Ok(())
            }
            CodecError::Malformed { detail, site } => {
                write!(f, "malformed codestream: {detail}")?;
                if !site.is_empty() {
                    write!(f, " ({site})")?;
                }
                Ok(())
            }
            CodecError::InvalidParams { detail } => write!(f, "invalid parameters: {detail}"),
            CodecError::Io { detail } => write!(f, "i/o failure: {detail}"),
        }
    }
}

impl Error for CodecError {}

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CodecError::truncated("SIZ");
        assert_eq!(e.to_string(), "codestream truncated while reading SIZ");
        assert!(CodecError::malformed("bad marker")
            .to_string()
            .contains("bad marker"));
        assert!(CodecError::invalid("tile size 0")
            .to_string()
            .contains("tile size 0"));
    }

    #[test]
    fn display_includes_site() {
        let e = CodecError::truncated("SIZ width")
            .at_offset(12)
            .in_marker("SIZ");
        assert_eq!(
            e.to_string(),
            "codestream truncated while reading SIZ width (byte 12, in SIZ)"
        );
        let e = CodecError::malformed("bad pass count")
            .in_tile(7)
            .at_offset(3);
        assert_eq!(
            e.to_string(),
            "malformed codestream: bad pass count (byte 3, tile 7)"
        );
    }

    #[test]
    fn site_setters_do_not_clobber_nested_info() {
        // The innermost parser knows best: outer wrappers must not
        // overwrite an already-recorded marker/tile, and rebasing adds
        // the caller's base to the relative offset.
        let inner = CodecError::truncated("packet header bits").at_offset(5);
        let outer = inner.rebase_offset(100).in_tile(3).in_tile(9);
        assert_eq!(
            outer.site(),
            ErrorSite {
                offset: Some(105),
                marker: None,
                tile: Some(3),
            }
        );
    }

    #[test]
    fn invalid_params_has_no_site() {
        let e = CodecError::invalid("x").at_offset(1).in_tile(2);
        assert_eq!(e.site(), ErrorSite::default());
    }
}
