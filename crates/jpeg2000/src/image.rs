//! Planar integer image model and synthetic workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One image component (colour plane) with samples stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    /// Width in samples.
    pub width: usize,
    /// Height in samples.
    pub height: usize,
    /// Row-major samples. Unsigned image data lives in `0..2^depth`.
    pub data: Vec<i32>,
}

impl Plane {
    /// Creates a zero-filled plane.
    pub fn new(width: usize, height: usize) -> Self {
        Plane {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Creates a plane from existing samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<i32>) -> Self {
        assert_eq!(data.len(), width * height, "plane sample count mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Sample accessor.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> i32 {
        self.data[y * self.width + x]
    }

    /// Mutable sample accessor.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize) -> &mut i32 {
        &mut self.data[y * self.width + x]
    }

    /// Copies the rectangle `(x0, y0)..(x0+w, y0+h)` into a new plane.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the plane bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Plane {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        let mut out = Plane::new(w, h);
        for y in 0..h {
            let src = (y0 + y) * self.width + x0;
            out.data[y * w..(y + 1) * w].copy_from_slice(&self.data[src..src + w]);
        }
        out
    }

    /// Writes `src` into this plane at `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit.
    pub fn blit(&mut self, x0: usize, y0: usize, src: &Plane) {
        assert!(
            x0 + src.width <= self.width && y0 + src.height <= self.height,
            "blit out of bounds"
        );
        for y in 0..src.height {
            let dst = (y0 + y) * self.width + x0;
            self.data[dst..dst + src.width]
                .copy_from_slice(&src.data[y * src.width..(y + 1) * src.width]);
        }
    }
}

/// A multi-component image (all components full resolution, same depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in samples.
    pub width: usize,
    /// Height in samples.
    pub height: usize,
    /// Bits per sample (unsigned), e.g. 8.
    pub depth: u8,
    /// The colour planes (1 for grey, 3 for RGB).
    pub components: Vec<Plane>,
}

impl Image {
    /// Creates a zero-filled image with `n` components.
    pub fn new(width: usize, height: usize, depth: u8, n: usize) -> Self {
        Image {
            width,
            height,
            depth,
            components: (0..n).map(|_| Plane::new(width, height)).collect(),
        }
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// A deterministic synthetic RGB test image mixing smooth gradients,
    /// texture and hard edges — the feature mix wavelet codecs are judged
    /// on. `seed` varies the content.
    pub fn synthetic_rgb(width: usize, height: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = Image::new(width, height, 8, 3);
        let max = 255i32;
        for y in 0..height {
            for x in 0..width {
                // Smooth base gradient.
                let g0 = ((x * max as usize) / width.max(1)) as i32;
                let g1 = ((y * max as usize) / height.max(1)) as i32;
                // A hard-edged checker block pattern.
                let checker = if ((x / 13) + (y / 11)) % 2 == 0 {
                    48
                } else {
                    0
                };
                // Mild noise texture.
                let noise: i32 = rng.gen_range(-12..=12);
                let r = (g0 + checker + noise).clamp(0, max);
                let g = (g1 + checker / 2 + noise).clamp(0, max);
                let b = ((g0 + g1) / 2 + noise).clamp(0, max);
                *img.components[0].at_mut(x, y) = r;
                *img.components[1].at_mut(x, y) = g;
                *img.components[2].at_mut(x, y) = b;
            }
        }
        img
    }

    /// A deterministic synthetic grey image (single component).
    pub fn synthetic_grey(width: usize, height: usize, seed: u64) -> Image {
        let rgb = Self::synthetic_rgb(width, height, seed);
        Image {
            width,
            height,
            depth: 8,
            components: vec![rgb.components[0].clone()],
        }
    }

    /// Peak signal-to-noise ratio against `other` in dB (averaged over
    /// components); `f64::INFINITY` for identical images.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn psnr(&self, other: &Image) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        assert_eq!(self.components.len(), other.components.len());
        let mut sse = 0f64;
        let mut n = 0usize;
        for (a, b) in self.components.iter().zip(&other.components) {
            for (&x, &y) in a.data.iter().zip(&b.data) {
                let d = (x - y) as f64;
                sse += d * d;
                n += 1;
            }
        }
        if sse == 0.0 {
            return f64::INFINITY;
        }
        let mse = sse / n as f64;
        let peak = ((1u32 << self.depth) - 1) as f64;
        10.0 * (peak * peak / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_accessors() {
        let mut p = Plane::new(4, 3);
        *p.at_mut(2, 1) = 42;
        assert_eq!(p.at(2, 1), 42);
        assert_eq!(p.at(0, 0), 0);
        assert_eq!(p.data.len(), 12);
    }

    #[test]
    fn crop_and_blit_roundtrip() {
        let mut p = Plane::new(8, 8);
        for (i, v) in p.data.iter_mut().enumerate() {
            *v = i as i32;
        }
        let tile = p.crop(2, 3, 4, 2);
        assert_eq!(tile.at(0, 0), p.at(2, 3));
        assert_eq!(tile.at(3, 1), p.at(5, 4));
        let mut q = Plane::new(8, 8);
        q.blit(2, 3, &tile);
        assert_eq!(q.at(5, 4), p.at(5, 4));
        assert_eq!(q.at(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_out_of_bounds_panics() {
        let p = Plane::new(4, 4);
        let _ = p.crop(2, 2, 4, 4);
    }

    #[test]
    fn synthetic_is_deterministic_and_in_range() {
        let a = Image::synthetic_rgb(32, 24, 1);
        let b = Image::synthetic_rgb(32, 24, 1);
        let c = Image::synthetic_rgb(32, 24, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for comp in &a.components {
            assert!(comp.data.iter().all(|&v| (0..=255).contains(&v)));
        }
    }

    #[test]
    fn psnr_identity_is_infinite() {
        let a = Image::synthetic_rgb(16, 16, 3);
        assert_eq!(a.psnr(&a), f64::INFINITY);
        let mut b = a.clone();
        *b.components[0].at_mut(0, 0) += 10;
        let p = a.psnr(&b);
        assert!(p > 30.0 && p.is_finite());
    }
}
