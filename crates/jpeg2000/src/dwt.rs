//! Discrete wavelet transforms: LeGall 5/3 (reversible) and CDF 9/7
//! (irreversible), as 1-D lifting with whole-sample symmetric extension
//! plus separable 2-D multi-level versions in Mallat layout.
//!
//! The lossless JPEG 2000 path uses the integer 5/3 filter bank
//! (`IDWT53` in the paper), the lossy path the Daubechies 9/7
//! (`IDWT97`). Both appear as hardware blocks in the case study, and the
//! decode direction mirrors the paper's datapath refinement in software:
//! the 9/7 *inverse* runs entirely in Q16 fixed point on `i32`
//! ([`idwt97_1d_fixed`], [`idwt97_2d_fixed`]), with the lifting
//! constants pre-scaled to integers the way the refined IDWT97 RTL block
//! replaces the floating-point unit. The original `f64` inverse survives
//! as [`reference`] (test/feature gated) and property tests pin the
//! fixed-point path to within one LSB of it.
//!
//! Both 2-D inverses share one cache-blocked driver: mirror-extension
//! boundary samples are peeled out of the 1-D lifting loops so the
//! interior is branchless, and the column stage lifts strips of
//! `STRIP_COLS` (32) columns in place on the Mallat layout instead of
//! gathering each column into a scratch signal.

/// 9/7 lifting constants (ITU-T T.800 Annex F), in `f64` and pre-scaled
/// Q16 fixed point.
pub mod consts {
    /// First predict step coefficient α.
    pub const ALPHA: f64 = -1.586_134_342_059_924;
    /// First update step coefficient β.
    pub const BETA: f64 = -0.052_980_118_572_961;
    /// Second predict step coefficient γ.
    pub const GAMMA: f64 = 0.882_911_075_530_934;
    /// Second update step coefficient δ.
    pub const DELTA: f64 = 0.443_506_852_043_971;
    /// Normalisation constant K (low band is scaled by 1/K so its DC gain
    /// is exactly one).
    pub const K: f64 = 1.230_174_104_914_001;

    /// Fixed-point precision of the integer lossy datapath's *data* grid
    /// (Q16: sixteen fractional bits in an `i32`).
    pub const FIX_SHIFT: u32 = 16;
    /// `1.0` in Q16.
    pub const FIX_ONE: i64 = 1 << FIX_SHIFT;
    /// `0.5` in Q16 — the round-to-nearest bias added before `>> FIX_SHIFT`.
    pub const FIX_HALF: i64 = 1 << (FIX_SHIFT - 1);

    /// Fixed-point precision of the pre-scaled lifting *constants* (Q24).
    /// The constants carry more fractional bits than the data because
    /// their quantisation error is systematic — it compounds coherently
    /// across lifting steps and decomposition levels, while the per-step
    /// data rounding is unbiased. Eight extra bits keep a five-level
    /// reconstruction above 90 dB PSNR vs the `f64` reference.
    pub const CONST_SHIFT: u32 = 24;
    /// `0.5` in Q24 — rounding bias for constant·data products.
    pub const CONST_HALF: i64 = 1 << (CONST_SHIFT - 1);

    /// Rounds a lifting constant to Q24 at compile time.
    const fn q24(c: f64) -> i64 {
        let scaled = c * (1i64 << CONST_SHIFT) as f64;
        // `as` truncates toward zero, so bias by ±0.5 to round to nearest.
        if scaled >= 0.0 {
            (scaled + 0.5) as i64
        } else {
            (scaled - 0.5) as i64
        }
    }

    /// α in Q24.
    pub const ALPHA_FIX: i64 = q24(ALPHA);
    /// β in Q24.
    pub const BETA_FIX: i64 = q24(BETA);
    /// γ in Q24.
    pub const GAMMA_FIX: i64 = q24(GAMMA);
    /// δ in Q24.
    pub const DELTA_FIX: i64 = q24(DELTA);
    /// K in Q24.
    pub const K_FIX: i64 = q24(K);
    /// 1/K in Q24.
    pub const K_INV_FIX: i64 = q24(1.0 / K);
}

/// Column-strip width of the blocked 2-D inverse: the vertical lifting
/// stage processes this many columns at a time so each touched row
/// segment stays within a couple of cache lines.
const STRIP_COLS: usize = 32;

/// Saturates an `i64` intermediate to `i32`. Sane codestreams never get
/// near the rails; hostile ones (huge T1 magnitudes × coarse steps)
/// clamp instead of wrapping, keeping debug builds panic-free.
#[inline]
fn sat32(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Rounding constant·data multiply: `round(c · v / 2^24)` for a Q24
/// constant `c` and a Q16 (or plain integer) operand `v`. The product of
/// a Q24 constant and a 33-bit neighbour sum tops out near 2^54, well
/// inside `i64`.
#[inline]
fn fix_mul(c: i64, v: i64) -> i64 {
    (c * v + consts::CONST_HALF) >> consts::CONST_SHIFT
}

/// Converts a real-valued coefficient to Q16, rounding to nearest and
/// saturating at the `i32` rails.
#[inline]
pub fn fixed_from_real(v: f64) -> i32 {
    let scaled = (v * consts::FIX_ONE as f64).round();
    if scaled >= i32::MAX as f64 {
        i32::MAX
    } else if scaled <= i32::MIN as f64 {
        i32::MIN
    } else {
        scaled as i32
    }
}

/// Converts a Q16 value back to its real magnitude.
#[inline]
pub fn fixed_to_real(v: i32) -> f64 {
    v as f64 / consts::FIX_ONE as f64
}

/// Rounds a Q16 value to the nearest integer sample (ties toward +∞).
#[inline]
pub fn fixed_round(v: i32) -> i32 {
    ((v as i64 + consts::FIX_HALF) >> consts::FIX_SHIFT) as i32
}

/// Reflects index `i` into `[0, n)` with whole-sample symmetry
/// (`... 2 1 0 1 2 ... n-2 n-1 n-2 ...`).
///
/// Contract: a **single** reflection must suffice, i.e. `i` must lie in
/// `[-(n-1), 2(n-1)]`. That covers the ±1/±2 reach of the 5/3 and 9/7
/// lifting steps for every `n ≥ 2`; for `n == 1` every index collapses
/// to the only sample. The lifting kernels peel their boundary samples
/// instead of calling this per sample, so it only serves the [`reference`]
/// implementation and the tests that document the extension scheme.
#[cfg(any(test, feature = "reference-dwt"))]
#[inline]
fn mirror(i: isize, n: usize) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let n = n as isize;
    let r = if i < 0 {
        -i
    } else if i >= n {
        2 * (n - 1) - i
    } else {
        i
    };
    debug_assert!(
        (0..n).contains(&r),
        "mirror reach exceeds a single reflection: i={i}, n={n}"
    );
    r as usize
}

// ---------------------------------------------------------------------------
// 1-D lifting kernels. Each step touches one parity only and reads the
// opposite parity, so the boundary cases (where whole-sample mirroring
// folds a neighbour back inside) are peeled out and the interior loop is
// branchless.
// ---------------------------------------------------------------------------

/// 5/3 predict step on odd positions: `x[i] -∓= (x[i-1] + x[i+1]) >> 1`.
/// `INV` flips the sign to undo the step.
#[inline]
fn lift53_odd<const INV: bool>(x: &mut [i32]) {
    let n = x.len();
    let mut i = 1;
    while i + 1 < n {
        let d = (x[i - 1] + x[i + 1]) >> 1;
        if INV {
            x[i] += d;
        } else {
            x[i] -= d;
        }
        i += 2;
    }
    if n.is_multiple_of(2) {
        // Last odd sample of an even-length signal: the right neighbour
        // mirrors back onto x[n-2].
        let d = (x[n - 2] + x[n - 2]) >> 1;
        if INV {
            x[n - 1] += d;
        } else {
            x[n - 1] -= d;
        }
    }
}

/// 5/3 update step on even positions: `x[i] +∓= (x[i-1] + x[i+1] + 2) >> 2`.
/// `INV` flips the sign to undo the step.
#[inline]
fn lift53_even<const INV: bool>(x: &mut [i32]) {
    let n = x.len();
    // x[0]'s left neighbour mirrors onto x[1].
    let d0 = (x[1] + x[1] + 2) >> 2;
    if INV {
        x[0] -= d0;
    } else {
        x[0] += d0;
    }
    let mut i = 2;
    while i + 1 < n {
        let d = (x[i - 1] + x[i + 1] + 2) >> 2;
        if INV {
            x[i] -= d;
        } else {
            x[i] += d;
        }
        i += 2;
    }
    if n % 2 == 1 && n > 1 {
        let d = (x[n - 2] + x[n - 2] + 2) >> 2;
        if INV {
            x[n - 1] -= d;
        } else {
            x[n - 1] += d;
        }
    }
}

/// 9/7 lifting step on odd positions (`f64`): `x[i] += c·(x[i-1] + x[i+1])`.
#[inline]
fn lift97_odd(x: &mut [f64], c: f64) {
    let n = x.len();
    let mut i = 1;
    while i + 1 < n {
        x[i] += c * (x[i - 1] + x[i + 1]);
        i += 2;
    }
    if n.is_multiple_of(2) {
        x[n - 1] += c * (x[n - 2] + x[n - 2]);
    }
}

/// 9/7 lifting step on even positions (`f64`).
#[inline]
fn lift97_even(x: &mut [f64], c: f64) {
    let n = x.len();
    x[0] += c * (x[1] + x[1]);
    let mut i = 2;
    while i + 1 < n {
        x[i] += c * (x[i - 1] + x[i + 1]);
        i += 2;
    }
    if n % 2 == 1 && n > 1 {
        x[n - 1] += c * (x[n - 2] + x[n - 2]);
    }
}

/// Q16 9/7 lifting step on odd positions: `x[i] += round(c·(x[i-1]+x[i+1]))`
/// with the product widened to `i64` and the result saturated.
#[inline]
fn lift97f_odd(x: &mut [i32], c: i64) {
    let n = x.len();
    let mut i = 1;
    while i + 1 < n {
        x[i] = sat32(x[i] as i64 + fix_mul(c, x[i - 1] as i64 + x[i + 1] as i64));
        i += 2;
    }
    if n.is_multiple_of(2) {
        let a = x[n - 2] as i64;
        x[n - 1] = sat32(x[n - 1] as i64 + fix_mul(c, a + a));
    }
}

/// Q16 9/7 lifting step on even positions.
#[inline]
fn lift97f_even(x: &mut [i32], c: i64) {
    let n = x.len();
    let a0 = x[1] as i64;
    x[0] = sat32(x[0] as i64 + fix_mul(c, a0 + a0));
    let mut i = 2;
    while i + 1 < n {
        x[i] = sat32(x[i] as i64 + fix_mul(c, x[i - 1] as i64 + x[i + 1] as i64));
        i += 2;
    }
    if n % 2 == 1 && n > 1 {
        let a = x[n - 2] as i64;
        x[n - 1] = sat32(x[n - 1] as i64 + fix_mul(c, a + a));
    }
}

/// Scales every second sample starting at `start` by the Q16 constant `c`.
#[inline]
fn scale97f(x: &mut [i32], c: i64, start: usize) {
    let mut i = start;
    while i < x.len() {
        x[i] = sat32(fix_mul(c, x[i] as i64));
        i += 2;
    }
}

/// Forward 5/3 lifting on an interleaved signal; after the call, even
/// indices hold the low band and odd indices the high band.
pub fn fdwt53_1d(x: &mut [i32]) {
    if x.len() < 2 {
        return;
    }
    lift53_odd::<false>(x);
    lift53_even::<false>(x);
}

/// Inverse 5/3 lifting on an interleaved signal (bit-exact inverse of
/// [`fdwt53_1d`]).
pub fn idwt53_1d(x: &mut [i32]) {
    if x.len() < 2 {
        return;
    }
    lift53_even::<true>(x);
    lift53_odd::<true>(x);
}

/// Forward 9/7 lifting on an interleaved signal; even indices become the
/// (unit-DC-gain) low band, odd indices the high band.
///
/// The forward direction stays in `f64`: only the decoder is on the hot
/// path, and keeping the encoder analytic means every codestream byte is
/// unchanged by the fixed-point decode rewrite.
pub fn fdwt97_1d(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    lift97_odd(x, consts::ALPHA);
    lift97_even(x, consts::BETA);
    lift97_odd(x, consts::GAMMA);
    lift97_even(x, consts::DELTA);
    let mut i = 0;
    while i < n {
        x[i] /= consts::K;
        i += 2;
    }
    let mut i = 1;
    while i < n {
        x[i] *= consts::K;
        i += 2;
    }
}

/// Inverse 9/7 lifting on an interleaved Q16 signal — the fixed-point
/// counterpart of `reference::idwt97_1d`, with all four lifting steps
/// and the K/1/K normalisation as integer multiply–round–shift.
pub fn idwt97_1d_fixed(x: &mut [i32]) {
    if x.len() < 2 {
        return;
    }
    scale97f(x, consts::K_FIX, 0);
    scale97f(x, consts::K_INV_FIX, 1);
    lift97f_even(x, -consts::DELTA_FIX);
    lift97f_odd(x, -consts::GAMMA_FIX);
    lift97f_even(x, -consts::BETA_FIX);
    lift97f_odd(x, -consts::ALPHA_FIX);
}

/// Splits an interleaved lifted signal into `(low, high)` halves in place:
/// evens first (`ceil(n/2)` low coefficients), then odds.
fn deinterleave<T: Copy + Default>(row: &mut [T], scratch: &mut Vec<T>) {
    let n = row.len();
    scratch.clear();
    scratch.extend_from_slice(row);
    let half = n.div_ceil(2);
    for (k, i) in (0..n).step_by(2).enumerate() {
        row[k] = scratch[i];
    }
    for (k, i) in (1..n).step_by(2).enumerate() {
        row[half + k] = scratch[i];
    }
}

/// Reusable buffers for the 2-D inverse transforms: one interleaved row
/// and the saved high half-plane of the vertical stage. One instance
/// serves any sequence of tiles and resolutions (buffers grow to the
/// largest signal seen) — part of the decode scratch arena (see
/// [`crate::scratch::DecodeScratch`]). Both the 5/3 and the fixed-point
/// 9/7 inverse work on `i32`, so the arena carries no `f64` buffers.
#[derive(Debug, Clone, Default)]
pub struct DwtScratch {
    row: Vec<i32>,
    high: Vec<i32>,
}

impl DwtScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generic 2-D multi-level forward transform in Mallat layout.
fn fdwt_2d<T: Copy + Default>(
    data: &mut [T],
    width: usize,
    height: usize,
    stride: usize,
    levels: usize,
    lift: &dyn Fn(&mut [T]),
) {
    let (mut w, mut h) = (width, height);
    let mut rowbuf: Vec<T> = Vec::new();
    let mut colbuf: Vec<T> = Vec::new();
    let mut scratch: Vec<T> = Vec::new();
    for _ in 0..levels {
        if w < 2 && h < 2 {
            break;
        }
        // Rows.
        for y in 0..h {
            rowbuf.clear();
            rowbuf.extend_from_slice(&data[y * stride..y * stride + w]);
            lift(&mut rowbuf);
            deinterleave(&mut rowbuf, &mut scratch);
            data[y * stride..y * stride + w].copy_from_slice(&rowbuf);
        }
        // Columns.
        for x in 0..w {
            colbuf.clear();
            colbuf.extend((0..h).map(|y| data[y * stride + x]));
            lift(&mut colbuf);
            deinterleave(&mut colbuf, &mut scratch);
            for (y, v) in colbuf.iter().enumerate() {
                data[y * stride + x] = *v;
            }
        }
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }
}

// ---------------------------------------------------------------------------
// Blocked 2-D inverse. The column stage lifts strips of STRIP_COLS
// columns in place on the Mallat layout: because whole-sample mirroring
// preserves index parity, a vertical lifting step on virtual row 2k (or
// 2k+1) only ever reads rows of the other half, so `split_at_mut` at the
// half boundary gives disjoint destination/source planes. The horizontal
// stage then interleaves and unlifts row by row, folding the vertical
// low/high interleave permutation into its gather.
// ---------------------------------------------------------------------------

/// Mirrored source rows (indices into the high half) feeding virtual even
/// row `2k` of an `h`-row signal.
#[inline]
fn even_sources(k: usize, h: usize) -> (usize, usize) {
    if k == 0 {
        (0, 0) // virtual -1 mirrors onto virtual 1
    } else if 2 * k + 1 < h {
        (k - 1, k)
    } else {
        (k - 1, k - 1) // h odd: virtual h mirrors onto virtual h-2
    }
}

/// Mirrored source rows (indices into the low half) feeding virtual odd
/// row `2k+1` of an `h`-row signal.
#[inline]
fn odd_sources(k: usize, h: usize) -> (usize, usize) {
    if 2 * k + 2 < h {
        (k, k + 1)
    } else {
        (k, k) // h even: virtual h mirrors onto virtual h-2
    }
}

/// One vertical lifting step over a column strip: for each of the `nd`
/// destination rows in `dhalf`, combines the two mirrored neighbour rows
/// from `shalf` element-wise with `f` across columns `[x0, x0+sw)`.
// Eight arguments because this is the one shared inner loop of four
// lifting steps × two filters; a parameter struct would be built and
// torn apart at every call site for no reuse.
#[allow(clippy::too_many_arguments)]
#[inline]
fn vstep(
    dhalf: &mut [i32],
    shalf: &[i32],
    nd: usize,
    sources: impl Fn(usize) -> (usize, usize),
    stride: usize,
    x0: usize,
    sw: usize,
    f: impl Fn(i32, i32, i32) -> i32,
) {
    for k in 0..nd {
        let (a, b) = sources(k);
        let dst = &mut dhalf[k * stride + x0..k * stride + x0 + sw];
        let ra = &shalf[a * stride + x0..a * stride + x0 + sw];
        let rb = &shalf[b * stride + x0..b * stride + x0 + sw];
        for ((d, &va), &vb) in dst.iter_mut().zip(ra).zip(rb) {
            *d = f(*d, va, vb);
        }
    }
}

/// Scales columns `[x0, x0+sw)` of the first `n` rows of a half-plane by
/// the Q16 constant `c`.
#[inline]
fn vscale(half: &mut [i32], n: usize, c: i64, stride: usize, x0: usize, sw: usize) {
    for k in 0..n {
        for v in &mut half[k * stride + x0..k * stride + x0 + sw] {
            *v = sat32(fix_mul(c, *v as i64));
        }
    }
}

/// The per-filter pieces of the blocked 2-D inverse.
trait InverseKernel {
    /// In-place unlift of one interleaved row.
    fn unlift_row(x: &mut [i32]);
    /// Vertical unlift of columns `[x0, x0+sw)` of an `h`-row signal laid
    /// out as Mallat halves (`low` = rows `0..ceil(h/2)`, `high` = the
    /// rest). Requires `h ≥ 2`.
    fn unlift_cols(
        low: &mut [i32],
        high: &mut [i32],
        h: usize,
        stride: usize,
        x0: usize,
        sw: usize,
    );
}

/// Reversible 5/3 kernel (bit-exact integer lifting).
struct Lifting53;

impl InverseKernel for Lifting53 {
    #[inline]
    fn unlift_row(x: &mut [i32]) {
        idwt53_1d(x);
    }

    fn unlift_cols(
        low: &mut [i32],
        high: &mut [i32],
        h: usize,
        stride: usize,
        x0: usize,
        sw: usize,
    ) {
        let n_low = h.div_ceil(2);
        let n_high = h / 2;
        // Undo update on the low rows, then undo predict on the high rows
        // — the same order and arithmetic as idwt53_1d, so the blocked
        // column stage is bit-exact against the per-column transform.
        vstep(
            low,
            high,
            n_low,
            |k| even_sources(k, h),
            stride,
            x0,
            sw,
            |d, a, b| d - ((a + b + 2) >> 2),
        );
        vstep(
            high,
            low,
            n_high,
            |k| odd_sources(k, h),
            stride,
            x0,
            sw,
            |d, a, b| d + ((a + b) >> 1),
        );
    }
}

/// Irreversible 9/7 kernel on Q16 fixed point.
struct Lifting97Fixed;

impl InverseKernel for Lifting97Fixed {
    #[inline]
    fn unlift_row(x: &mut [i32]) {
        idwt97_1d_fixed(x);
    }

    fn unlift_cols(
        low: &mut [i32],
        high: &mut [i32],
        h: usize,
        stride: usize,
        x0: usize,
        sw: usize,
    ) {
        use consts::{ALPHA_FIX, BETA_FIX, DELTA_FIX, GAMMA_FIX, K_FIX, K_INV_FIX};
        let n_low = h.div_ceil(2);
        let n_high = h / 2;
        #[inline]
        fn lift(d: i32, a: i32, b: i32, c: i64) -> i32 {
            sat32(d as i64 + fix_mul(c, a as i64 + b as i64))
        }
        vscale(low, n_low, K_FIX, stride, x0, sw);
        vscale(high, n_high, K_INV_FIX, stride, x0, sw);
        vstep(
            low,
            high,
            n_low,
            |k| even_sources(k, h),
            stride,
            x0,
            sw,
            |d, a, b| lift(d, a, b, -DELTA_FIX),
        );
        vstep(
            high,
            low,
            n_high,
            |k| odd_sources(k, h),
            stride,
            x0,
            sw,
            |d, a, b| lift(d, a, b, -GAMMA_FIX),
        );
        vstep(
            low,
            high,
            n_low,
            |k| even_sources(k, h),
            stride,
            x0,
            sw,
            |d, a, b| lift(d, a, b, -BETA_FIX),
        );
        vstep(
            high,
            low,
            n_high,
            |k| odd_sources(k, h),
            stride,
            x0,
            sw,
            |d, a, b| lift(d, a, b, -ALPHA_FIX),
        );
    }
}

/// Blocked 2-D multi-level inverse transform in Mallat layout.
fn idwt_2d_blocked<K: InverseKernel>(
    data: &mut [i32],
    width: usize,
    height: usize,
    stride: usize,
    levels: usize,
    scratch: &mut DwtScratch,
) {
    // Reconstruct the per-level region sizes, then undo from the deepest.
    let mut dims = Vec::new();
    let (mut w, mut h) = (width, height);
    for _ in 0..levels {
        if w < 2 && h < 2 {
            break;
        }
        dims.push((w, h));
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }
    for &(w, h) in dims.iter().rev() {
        let half_h = h.div_ceil(2);
        let n_high = h - half_h;
        // Columns first (inverse order of the forward pass), strip by
        // strip, in place on the Mallat halves.
        if h >= 2 {
            let (low, high) = data.split_at_mut(half_h * stride);
            let mut x0 = 0;
            while x0 < w {
                let sw = STRIP_COLS.min(w - x0);
                K::unlift_cols(low, high, h, stride, x0, sw);
                x0 += sw;
            }
        }
        // Save the vertical high half: the interleave below overwrites it.
        scratch.high.clear();
        for k in 0..n_high {
            let base = (half_h + k) * stride;
            scratch.high.extend_from_slice(&data[base..base + w]);
        }
        // Horizontal pass fused with the vertical interleave: output row
        // y gathers from low row y/2 (even y, still in place) or saved
        // high row y/2 (odd y). Walking y downward never clobbers an
        // unread source, because even sources sit at row y/2 < y and odd
        // sources live in the scratch copy.
        let half_w = w.div_ceil(2);
        scratch.row.clear();
        scratch.row.resize(w, 0);
        for y in (0..h).rev() {
            {
                let src: &[i32] = if y % 2 == 0 {
                    &data[(y / 2) * stride..(y / 2) * stride + w]
                } else {
                    &scratch.high[(y / 2) * w..(y / 2) * w + w]
                };
                let (lo, hi) = src.split_at(half_w);
                for (k, &v) in lo.iter().enumerate() {
                    scratch.row[2 * k] = v;
                }
                for (k, &v) in hi.iter().enumerate() {
                    scratch.row[2 * k + 1] = v;
                }
            }
            K::unlift_row(&mut scratch.row);
            data[y * stride..y * stride + w].copy_from_slice(&scratch.row);
        }
    }
}

/// Multi-level forward 5/3 on a `width × height` plane (row-major,
/// `stride == width`), result in Mallat subband layout.
pub fn fdwt53_2d(data: &mut [i32], width: usize, height: usize, levels: usize) {
    fdwt_2d(data, width, height, width, levels, &|r| fdwt53_1d(r));
}

/// Multi-level inverse 5/3 (bit-exact inverse of [`fdwt53_2d`]).
pub fn idwt53_2d(data: &mut [i32], width: usize, height: usize, levels: usize) {
    idwt53_2d_with(data, width, height, levels, &mut DwtScratch::new());
}

/// [`idwt53_2d`] with caller-provided scratch buffers.
pub fn idwt53_2d_with(
    data: &mut [i32],
    width: usize,
    height: usize,
    levels: usize,
    scratch: &mut DwtScratch,
) {
    idwt_2d_blocked::<Lifting53>(data, width, height, width, levels, scratch);
}

/// Multi-level forward 9/7 on a `width × height` plane (`f64`; see
/// [`fdwt97_1d`] for why the analysis side stays floating point).
pub fn fdwt97_2d(data: &mut [f64], width: usize, height: usize, levels: usize) {
    fdwt_2d(data, width, height, width, levels, &|r| fdwt97_1d(r));
}

/// Multi-level inverse 9/7 on Q16 fixed-point coefficients.
pub fn idwt97_2d_fixed(data: &mut [i32], width: usize, height: usize, levels: usize) {
    idwt97_2d_fixed_with(data, width, height, levels, &mut DwtScratch::new());
}

/// [`idwt97_2d_fixed`] with caller-provided scratch buffers.
pub fn idwt97_2d_fixed_with(
    data: &mut [i32],
    width: usize,
    height: usize,
    levels: usize,
    scratch: &mut DwtScratch,
) {
    idwt_2d_blocked::<Lifting97Fixed>(data, width, height, width, levels, scratch);
}

/// Number of decomposition levels actually applied to a `width × height`
/// region when `levels` are requested (tiny regions stop early, mirroring
/// the transform loops above).
pub fn effective_levels(width: usize, height: usize, levels: usize) -> usize {
    let (mut w, mut h) = (width, height);
    let mut applied = 0;
    for _ in 0..levels {
        if w < 2 && h < 2 {
            break;
        }
        applied += 1;
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }
    applied
}

/// The pre-refinement `f64` inverse 9/7 (and a per-column 5/3 inverse),
/// kept as the accuracy reference for the fixed-point datapath — the
/// software analogue of keeping the floating-point model around while
/// the refined RTL block replaces it. Compiled for tests and behind the
/// `reference-dwt` feature only.
#[cfg(any(test, feature = "reference-dwt"))]
pub mod reference {
    use super::{consts, mirror};

    /// Mirror-based 9/7 lifting step on odd positions.
    fn lift_odd(x: &mut [f64], c: f64) {
        let n = x.len();
        let mut i = 1isize;
        while (i as usize) < n {
            let a = x[mirror(i - 1, n)];
            let b = x[mirror(i + 1, n)];
            x[i as usize] += c * (a + b);
            i += 2;
        }
    }

    /// Mirror-based 9/7 lifting step on even positions.
    fn lift_even(x: &mut [f64], c: f64) {
        let n = x.len();
        let mut i = 0isize;
        while (i as usize) < n {
            let a = x[mirror(i - 1, n)];
            let b = x[mirror(i + 1, n)];
            x[i as usize] += c * (a + b);
            i += 2;
        }
    }

    /// Inverse 9/7 lifting on an interleaved `f64` signal.
    pub fn idwt97_1d(x: &mut [f64]) {
        let n = x.len();
        if n < 2 {
            return;
        }
        let mut i = 0;
        while i < n {
            x[i] *= consts::K;
            i += 2;
        }
        let mut i = 1;
        while i < n {
            x[i] /= consts::K;
            i += 2;
        }
        lift_even(x, -consts::DELTA);
        lift_odd(x, -consts::GAMMA);
        lift_even(x, -consts::BETA);
        lift_odd(x, -consts::ALPHA);
    }

    /// Mirror-based inverse 5/3 lifting on an interleaved signal.
    pub fn idwt53_1d(x: &mut [i32]) {
        let n = x.len();
        if n < 2 {
            return;
        }
        let mut i = 0isize;
        while (i as usize) < n {
            let a = x[mirror(i - 1, n)];
            let b = x[mirror(i + 1, n)];
            x[i as usize] -= (a + b + 2) >> 2;
            i += 2;
        }
        let mut i = 1isize;
        while (i as usize) < n {
            let a = x[mirror(i - 1, n)];
            let b = x[mirror(i + 1, n)];
            x[i as usize] += (a + b) >> 1;
            i += 2;
        }
    }

    /// Per-column (gather → unlift → scatter) 2-D multi-level inverse —
    /// the pre-blocking structure, generic over the sample type.
    fn idwt_2d_per_column<T: Copy + Default>(
        data: &mut [T],
        width: usize,
        height: usize,
        stride: usize,
        levels: usize,
        unlift: &dyn Fn(&mut [T]),
    ) {
        let mut dims = Vec::new();
        let (mut w, mut h) = (width, height);
        for _ in 0..levels {
            if w < 2 && h < 2 {
                break;
            }
            dims.push((w, h));
            w = w.div_ceil(2);
            h = h.div_ceil(2);
        }
        let mut rowbuf: Vec<T> = Vec::new();
        let mut colbuf: Vec<T> = Vec::new();
        for &(w, h) in dims.iter().rev() {
            let half_h = h.div_ceil(2);
            colbuf.clear();
            colbuf.resize(h, T::default());
            for x in 0..w {
                for (y, slot) in colbuf.iter_mut().enumerate() {
                    let src = if y % 2 == 0 { y / 2 } else { half_h + y / 2 };
                    *slot = data[src * stride + x];
                }
                unlift(colbuf.as_mut_slice());
                for (y, v) in colbuf.iter().enumerate() {
                    data[y * stride + x] = *v;
                }
            }
            let half_w = w.div_ceil(2);
            rowbuf.clear();
            rowbuf.resize(w, T::default());
            for y in 0..h {
                let row = &data[y * stride..y * stride + w];
                for (i, slot) in rowbuf.iter_mut().enumerate() {
                    let src = if i % 2 == 0 { i / 2 } else { half_w + i / 2 };
                    *slot = row[src];
                }
                unlift(rowbuf.as_mut_slice());
                data[y * stride..y * stride + w].copy_from_slice(&rowbuf);
            }
        }
    }

    /// Multi-level inverse 9/7 on `f64` coefficients.
    pub fn idwt97_2d(data: &mut [f64], width: usize, height: usize, levels: usize) {
        idwt_2d_per_column(data, width, height, width, levels, &|s| idwt97_1d(s));
    }

    /// Multi-level per-column inverse 5/3 (bit-exactness oracle for the
    /// blocked driver).
    pub fn idwt53_2d(data: &mut [i32], width: usize, height: usize, levels: usize) {
        idwt_2d_per_column(data, width, height, width, levels, &|s| idwt53_1d(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<i32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-128..=127)).collect()
    }

    #[test]
    fn fixed_constants_are_rounded_q24() {
        let q = |c: f64| (c * (1i64 << consts::CONST_SHIFT) as f64).round() as i64;
        assert_eq!(consts::ALPHA_FIX, q(consts::ALPHA));
        assert_eq!(consts::BETA_FIX, q(consts::BETA));
        assert_eq!(consts::GAMMA_FIX, q(consts::GAMMA));
        assert_eq!(consts::DELTA_FIX, q(consts::DELTA));
        assert_eq!(consts::K_FIX, q(consts::K));
        assert_eq!(consts::K_INV_FIX, q(1.0 / consts::K));
        // Pin the literal values so an accidental constant edit is loud.
        assert_eq!(consts::ALPHA_FIX, -26_610_918);
        assert_eq!(consts::BETA_FIX, -888_859);
        assert_eq!(consts::GAMMA_FIX, 14_812_790);
        assert_eq!(consts::DELTA_FIX, 7_440_810);
        assert_eq!(consts::K_FIX, 20_638_897);
        assert_eq!(consts::K_INV_FIX, 13_638_083);
    }

    #[test]
    fn dwt53_1d_perfect_reconstruction_many_lengths() {
        for n in 1..=33 {
            let orig = random_signal(n, n as u64);
            let mut x = orig.clone();
            fdwt53_1d(&mut x);
            idwt53_1d(&mut x);
            assert_eq!(x, orig, "length {n}");
        }
    }

    #[test]
    fn peeled_53_kernels_match_mirror_based_reference() {
        for n in 2..=33 {
            let orig = random_signal(n, 7 * n as u64);
            let mut fwd = orig.clone();
            fdwt53_1d(&mut fwd);
            let mut peeled = fwd.clone();
            idwt53_1d(&mut peeled);
            let mut mirrored = fwd.clone();
            reference::idwt53_1d(&mut mirrored);
            assert_eq!(peeled, mirrored, "length {n}");
        }
    }

    #[test]
    fn dwt53_constant_signal_has_zero_high_band() {
        let mut x = vec![77i32; 16];
        fdwt53_1d(&mut x);
        for i in (1..16).step_by(2) {
            assert_eq!(x[i], 0, "high coefficient {i}");
        }
        for i in (0..16).step_by(2) {
            assert_eq!(x[i], 77, "low coefficient keeps DC (gain 1)");
        }
    }

    #[test]
    fn dwt97_1d_perfect_reconstruction_via_reference() {
        for n in 1..=33 {
            let orig: Vec<f64> = random_signal(n, 100 + n as u64)
                .into_iter()
                .map(|v| v as f64)
                .collect();
            let mut x = orig.clone();
            fdwt97_1d(&mut x);
            reference::idwt97_1d(&mut x);
            for (a, b) in x.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-9, "length {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dwt97_1d_fixed_reconstruction_close() {
        for n in 1..=33 {
            let orig: Vec<f64> = random_signal(n, 200 + n as u64)
                .into_iter()
                .map(|v| v as f64)
                .collect();
            let mut fwd = orig.clone();
            fdwt97_1d(&mut fwd);
            let mut fixed: Vec<i32> = fwd.iter().map(|&v| fixed_from_real(v)).collect();
            idwt97_1d_fixed(&mut fixed);
            for (a, b) in fixed.iter().zip(&orig) {
                let a = fixed_to_real(*a);
                assert!((a - b).abs() < 0.05, "length {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dwt97_constant_signal_dc_gain_one() {
        let mut x = vec![50.0f64; 32];
        fdwt97_1d(&mut x);
        for i in (1..32).step_by(2) {
            assert!(x[i].abs() < 1e-9, "high band should vanish");
        }
        for i in (0..32).step_by(2) {
            assert!((x[i] - 50.0).abs() < 1e-9, "low band DC gain 1");
        }
    }

    #[test]
    fn dwt53_2d_multilevel_roundtrip_odd_sizes() {
        for &(w, h, levels) in &[
            (8usize, 8usize, 3usize),
            (17, 13, 4),
            (5, 9, 2),
            (1, 7, 2),
            (16, 1, 3),
        ] {
            let orig = random_signal(w * h, (w * h) as u64);
            let mut x = orig.clone();
            fdwt53_2d(&mut x, w, h, levels);
            idwt53_2d(&mut x, w, h, levels);
            assert_eq!(x, orig, "{w}x{h} levels {levels}");
        }
    }

    #[test]
    fn dwt97_2d_multilevel_roundtrip_fixed() {
        for &(w, h, levels) in &[(8usize, 8usize, 3usize), (17, 13, 4), (31, 15, 5)] {
            let orig: Vec<f64> = random_signal(w * h, (w + h) as u64)
                .into_iter()
                .map(|v| v as f64)
                .collect();
            let mut fwd = orig.clone();
            fdwt97_2d(&mut fwd, w, h, levels);
            let mut x: Vec<i32> = fwd.iter().map(|&v| fixed_from_real(v)).collect();
            idwt97_2d_fixed(&mut x, w, h, levels);
            for (a, b) in x.iter().zip(&orig) {
                let a = fixed_to_real(*a);
                assert!((a - b).abs() < 0.5, "{w}x{h}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn reused_scratch_multilevel_roundtrip_odd_sizes() {
        // One scratch across many odd geometries and both filters: the
        // buffers must resize correctly between signals of different
        // lengths and leave every round-trip exact (5/3) or within the
        // fixed-point tolerance (9/7).
        let mut scratch = DwtScratch::new();
        for &(w, h, levels) in &[
            (17usize, 13usize, 4usize),
            (5, 9, 2),
            (33, 1, 3),
            (1, 21, 4),
            (31, 15, 5),
            (7, 7, 3),
        ] {
            let orig = random_signal(w * h, (w * 31 + h) as u64);
            let mut x = orig.clone();
            fdwt53_2d(&mut x, w, h, levels);
            idwt53_2d_with(&mut x, w, h, levels, &mut scratch);
            assert_eq!(x, orig, "5/3 {w}x{h} levels {levels}");

            let origf: Vec<f64> = orig.iter().map(|&v| v as f64).collect();
            let mut xf = origf.clone();
            fdwt97_2d(&mut xf, w, h, levels);
            let mut xq: Vec<i32> = xf.iter().map(|&v| fixed_from_real(v)).collect();
            idwt97_2d_fixed_with(&mut xq, w, h, levels, &mut scratch);
            for (a, b) in xq.iter().zip(&origf) {
                let a = fixed_to_real(*a);
                assert!((a - b).abs() < 0.5, "9/7 {w}x{h}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn energy_compaction_on_smooth_image() {
        // A smooth ramp must concentrate magnitude into the LL corner.
        let (w, h) = (16usize, 16usize);
        let mut x: Vec<i32> = (0..w * h).map(|i| ((i % w) + (i / w)) as i32 * 4).collect();
        fdwt53_2d(&mut x, w, h, 2);
        let ll: i64 = (0..4)
            .flat_map(|y| (0..4).map(move |x_| (x_, y)))
            .map(|(cx, cy)| (x[cy * w + cx] as i64).abs())
            .sum();
        let total: i64 = x.iter().map(|&v| (v as i64).abs()).sum();
        assert!(
            ll * 2 > total,
            "LL (16 of 256 samples) should hold most magnitude: {ll} of {total}"
        );
    }

    #[test]
    fn effective_levels_stops_on_tiny_regions() {
        assert_eq!(effective_levels(64, 64, 3), 3);
        assert_eq!(effective_levels(1, 1, 5), 0);
        assert_eq!(effective_levels(2, 2, 5), 1);
        assert_eq!(effective_levels(1, 8, 5), 3);
    }

    #[test]
    fn mirror_single_reflection_contract() {
        // n == 1: everything collapses onto the only sample.
        assert_eq!(mirror(-1, 1), 0);
        assert_eq!(mirror(0, 1), 0);
        assert_eq!(mirror(1, 1), 0);
        // n == 2: period-2 extension ... 1 0 1 0 1 ...
        assert_eq!(mirror(-1, 2), 1);
        assert_eq!(mirror(0, 2), 0);
        assert_eq!(mirror(2, 2), 0);
        // n == 3: ... 2 1 0 1 2 1 0 ...
        assert_eq!(mirror(-2, 3), 2);
        assert_eq!(mirror(-1, 3), 1);
        assert_eq!(mirror(3, 3), 1);
        assert_eq!(mirror(4, 3), 0);
        // Larger signals, interior untouched.
        assert_eq!(mirror(-1, 8), 1);
        assert_eq!(mirror(-2, 8), 2);
        assert_eq!(mirror(8, 8), 6);
        assert_eq!(mirror(9, 8), 5);
        assert_eq!(mirror(3, 8), 3);
    }

    /// Maps a raw `(w, h, shape)` draw onto a geometry biased toward
    /// awkward planes: one draw in three degenerates to 1×N or N×1.
    fn geometry(w: usize, h: usize, shape: usize) -> (usize, usize) {
        match shape {
            4 => (w, 1),
            5 => (1, h),
            _ => (w, h),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn fixed_point_97_matches_f64_reference(
            w in 1usize..40,
            h in 1usize..40,
            shape in 0usize..6,
            levels in 0usize..6,
            mag_sel in 0usize..3,
            seed in 0u64..1_000,
        ) {
            let (w, h) = geometry(w, h, shape);
            let mag = [1.0f64, 30.0, 200.0][mag_sel];
            // Random subband coefficients at several magnitudes, pushed
            // through both inverses. The fixed-point reconstruction must
            // stay within one LSB per sample of the f64 reference and at
            // reference-grade PSNR.
            let mut rng = StdRng::seed_from_u64(seed);
            let coeffs: Vec<f64> =
                (0..w * h).map(|_| rng.gen_range(-mag..mag)).collect();
            let mut reff: Vec<f64> = coeffs.clone();
            reference::idwt97_2d(&mut reff, w, h, levels);
            let mut fixed: Vec<i32> = coeffs.iter().map(|&v| fixed_from_real(v)).collect();
            idwt97_2d_fixed(&mut fixed, w, h, levels);

            let mut sq_err = 0.0f64;
            let mut peak = 0.0f64;
            for (r, f) in reff.iter().zip(&fixed) {
                let fr = fixed_to_real(*f);
                let rounded_ref = r.round() as i64;
                let rounded_fix = fixed_round(*f) as i64;
                prop_assert!(
                    (rounded_ref - rounded_fix).abs() <= 1,
                    "sample diff > 1 LSB: ref {r} vs fixed {fr} ({w}x{h}, {levels} levels)"
                );
                sq_err += (r - fr) * (r - fr);
                peak = peak.max(r.abs());
            }
            let mse = sq_err / (w * h) as f64;
            if peak > 0.5 && mse > 0.0 {
                let psnr = 10.0 * (peak * peak / mse).log10();
                // At image-like magnitudes the fixed path sits well above
                // 90 dB. At unit magnitude the Q16 *data* grid itself
                // (≈1.5e-5 rms per sample) bounds peak-relative PSNR near
                // the high-80s, so only a grid-level floor is meaningful.
                let floor = if mag >= 30.0 { 90.0 } else { 82.0 };
                prop_assert!(
                    psnr >= floor,
                    "PSNR vs f64 reference {psnr:.1} dB < {floor} dB ({w}x{h}, {levels} levels, mag {mag})"
                );
            }
        }

        #[test]
        fn strip_blocked_idwt53_is_bit_exact(
            w in 1usize..40,
            h in 1usize..40,
            shape in 0usize..6,
            levels in 0usize..6,
            seed in 0u64..1_000,
        ) {
            let (w, h) = geometry(w, h, shape);
            // The blocked, in-place column stage must reproduce the
            // per-column gather/scatter reference bit for bit, and the
            // whole transform must still invert the forward pass.
            let mut rng = StdRng::seed_from_u64(seed);
            let orig: Vec<i32> = (0..w * h).map(|_| rng.gen_range(-512..=512)).collect();
            let mut fwd = orig.clone();
            fdwt53_2d(&mut fwd, w, h, levels);
            let mut blocked = fwd.clone();
            idwt53_2d(&mut blocked, w, h, levels);
            let mut per_column = fwd;
            reference::idwt53_2d(&mut per_column, w, h, levels);
            prop_assert_eq!(&blocked, &per_column);
            prop_assert_eq!(&blocked, &orig);
        }
    }
}
