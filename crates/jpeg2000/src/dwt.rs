//! Discrete wavelet transforms: LeGall 5/3 (reversible) and CDF 9/7
//! (irreversible), as 1-D lifting with whole-sample symmetric extension
//! plus separable 2-D multi-level versions in Mallat layout.
//!
//! The lossless JPEG 2000 path uses the integer 5/3 filter bank
//! (`IDWT53` in the paper), the lossy path the Daubechies 9/7
//! (`IDWT97`). Both appear as hardware blocks in the case study.

/// 9/7 lifting constants (ITU-T T.800 Annex F).
pub mod consts {
    /// First predict step coefficient α.
    pub const ALPHA: f64 = -1.586_134_342_059_924;
    /// First update step coefficient β.
    pub const BETA: f64 = -0.052_980_118_572_961;
    /// Second predict step coefficient γ.
    pub const GAMMA: f64 = 0.882_911_075_530_934;
    /// Second update step coefficient δ.
    pub const DELTA: f64 = 0.443_506_852_043_971;
    /// Normalisation constant K (low band is scaled by 1/K so its DC gain
    /// is exactly one).
    pub const K: f64 = 1.230_174_104_914_001;
}

/// Reflects index `i` into `[0, n)` with whole-sample symmetry
/// (`... 2 1 0 1 2 ... n-2 n-1 n-2 ...`).
#[inline]
fn mirror(i: isize, n: usize) -> usize {
    let n = n as isize;
    debug_assert!(n > 0);
    let mut i = i;
    // One reflection suffices for the ±2 reach of these filters,
    // but loop for safety with tiny signals.
    loop {
        if i < 0 {
            i = -i;
        } else if i >= n {
            i = 2 * (n - 1) - i;
        } else {
            return i as usize;
        }
        if n == 1 {
            return 0;
        }
    }
}

/// Forward 5/3 lifting on an interleaved signal; after the call, even
/// indices hold the low band and odd indices the high band.
pub fn fdwt53_1d(x: &mut [i32]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let get = |x: &[i32], i: isize| x[mirror(i, n)];
    // Predict: high coefficients at odd positions.
    let mut i = 1isize;
    while (i as usize) < n {
        let a = get(x, i - 1);
        let b = get(x, i + 1);
        x[i as usize] -= (a + b) >> 1;
        i += 2;
    }
    // Update: low coefficients at even positions; their neighbours at odd
    // indices are the freshly computed high coefficients.
    let mut i = 0isize;
    while (i as usize) < n {
        let a = x[mirror(i - 1, n)];
        let b = x[mirror(i + 1, n)];
        x[i as usize] += (a + b + 2) >> 2;
        i += 2;
    }
}

/// Inverse 5/3 lifting on an interleaved signal (bit-exact inverse of
/// [`fdwt53_1d`]).
pub fn idwt53_1d(x: &mut [i32]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    // Undo update.
    let mut i = 0isize;
    while (i as usize) < n {
        let a = x[mirror(i - 1, n)];
        let b = x[mirror(i + 1, n)];
        x[i as usize] -= (a + b + 2) >> 2;
        i += 2;
    }
    // Undo predict.
    let mut i = 1isize;
    while (i as usize) < n {
        let a = x[mirror(i - 1, n)];
        let b = x[mirror(i + 1, n)];
        x[i as usize] += (a + b) >> 1;
        i += 2;
    }
}

/// Forward 9/7 lifting on an interleaved signal; even indices become the
/// (unit-DC-gain) low band, odd indices the high band.
pub fn fdwt97_1d(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    lift_odd(x, consts::ALPHA);
    lift_even(x, consts::BETA);
    lift_odd(x, consts::GAMMA);
    lift_even(x, consts::DELTA);
    let mut i = 0;
    while i < n {
        x[i] /= consts::K;
        i += 2;
    }
    let mut i = 1;
    while i < n {
        x[i] *= consts::K;
        i += 2;
    }
}

/// Inverse 9/7 lifting on an interleaved signal.
pub fn idwt97_1d(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let mut i = 0;
    while i < n {
        x[i] *= consts::K;
        i += 2;
    }
    let mut i = 1;
    while i < n {
        x[i] /= consts::K;
        i += 2;
    }
    lift_even(x, -consts::DELTA);
    lift_odd(x, -consts::GAMMA);
    lift_even(x, -consts::BETA);
    lift_odd(x, -consts::ALPHA);
}

fn lift_odd(x: &mut [f64], c: f64) {
    let n = x.len();
    let mut i = 1isize;
    while (i as usize) < n {
        let a = x[mirror(i - 1, n)];
        let b = x[mirror(i + 1, n)];
        x[i as usize] += c * (a + b);
        i += 2;
    }
}

fn lift_even(x: &mut [f64], c: f64) {
    let n = x.len();
    let mut i = 0isize;
    while (i as usize) < n {
        let a = x[mirror(i - 1, n)];
        let b = x[mirror(i + 1, n)];
        x[i as usize] += c * (a + b);
        i += 2;
    }
}

/// Splits an interleaved lifted signal into `(low, high)` halves in place:
/// evens first (`ceil(n/2)` low coefficients), then odds.
fn deinterleave<T: Copy + Default>(row: &mut [T], scratch: &mut Vec<T>) {
    let n = row.len();
    scratch.clear();
    scratch.extend_from_slice(row);
    let half = n.div_ceil(2);
    for (k, i) in (0..n).step_by(2).enumerate() {
        row[k] = scratch[i];
    }
    for (k, i) in (1..n).step_by(2).enumerate() {
        row[half + k] = scratch[i];
    }
}

/// Reusable row/column buffers for the 2-D inverse transforms. One
/// instance serves any sequence of tiles and resolutions (buffers grow
/// to the largest signal seen), replacing the four per-call `Vec`
/// allocations the inverse pass used to make — part of the decode
/// scratch arena (see [`crate::scratch::DecodeScratch`]).
#[derive(Debug, Clone, Default)]
pub struct DwtScratch {
    row_i: Vec<i32>,
    col_i: Vec<i32>,
    row_f: Vec<f64>,
    col_f: Vec<f64>,
}

impl DwtScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generic 2-D multi-level forward transform in Mallat layout.
fn fdwt_2d<T: Copy + Default>(
    data: &mut [T],
    width: usize,
    height: usize,
    stride: usize,
    levels: usize,
    lift: &dyn Fn(&mut [T]),
) {
    let (mut w, mut h) = (width, height);
    let mut rowbuf: Vec<T> = Vec::new();
    let mut colbuf: Vec<T> = Vec::new();
    let mut scratch: Vec<T> = Vec::new();
    for _ in 0..levels {
        if w < 2 && h < 2 {
            break;
        }
        // Rows.
        for y in 0..h {
            rowbuf.clear();
            rowbuf.extend_from_slice(&data[y * stride..y * stride + w]);
            lift(&mut rowbuf);
            deinterleave(&mut rowbuf, &mut scratch);
            data[y * stride..y * stride + w].copy_from_slice(&rowbuf);
        }
        // Columns.
        for x in 0..w {
            colbuf.clear();
            colbuf.extend((0..h).map(|y| data[y * stride + x]));
            lift(&mut colbuf);
            deinterleave(&mut colbuf, &mut scratch);
            for (y, v) in colbuf.iter().enumerate() {
                data[y * stride + x] = *v;
            }
        }
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }
}

/// Generic 2-D multi-level inverse transform in Mallat layout.
///
/// `rowbuf`/`colbuf` are caller-provided scratch, reused across levels
/// and calls. Instead of copying each signal out and re-interleaving it
/// through a third buffer (two copies per signal), the gather itself
/// reads the Mallat halves in interleaved order — one strided copy in,
/// unlift, one copy out.
#[allow(clippy::too_many_arguments)]
fn idwt_2d<T: Copy + Default>(
    data: &mut [T],
    width: usize,
    height: usize,
    stride: usize,
    levels: usize,
    unlift: &dyn Fn(&mut [T]),
    rowbuf: &mut Vec<T>,
    colbuf: &mut Vec<T>,
) {
    // Reconstruct the per-level region sizes, then undo from the deepest.
    let mut dims = Vec::new();
    let (mut w, mut h) = (width, height);
    for _ in 0..levels {
        if w < 2 && h < 2 {
            break;
        }
        dims.push((w, h));
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }
    for &(w, h) in dims.iter().rev() {
        // Columns first (inverse order of the forward pass).
        let half_h = h.div_ceil(2);
        colbuf.clear();
        colbuf.resize(h, T::default());
        for x in 0..w {
            for (y, slot) in colbuf.iter_mut().enumerate() {
                // Even outputs come from the low half, odd from the high.
                let src = if y % 2 == 0 { y / 2 } else { half_h + y / 2 };
                *slot = data[src * stride + x];
            }
            unlift(colbuf);
            for (y, v) in colbuf.iter().enumerate() {
                data[y * stride + x] = *v;
            }
        }
        // Rows.
        let half_w = w.div_ceil(2);
        rowbuf.clear();
        rowbuf.resize(w, T::default());
        for y in 0..h {
            let row = &data[y * stride..y * stride + w];
            for (i, slot) in rowbuf.iter_mut().enumerate() {
                let src = if i % 2 == 0 { i / 2 } else { half_w + i / 2 };
                *slot = row[src];
            }
            unlift(rowbuf);
            data[y * stride..y * stride + w].copy_from_slice(rowbuf);
        }
    }
}

/// Multi-level forward 5/3 on a `width × height` plane (row-major,
/// `stride == width`), result in Mallat subband layout.
pub fn fdwt53_2d(data: &mut [i32], width: usize, height: usize, levels: usize) {
    fdwt_2d(data, width, height, width, levels, &|r| fdwt53_1d(r));
}

/// Multi-level inverse 5/3 (bit-exact inverse of [`fdwt53_2d`]).
pub fn idwt53_2d(data: &mut [i32], width: usize, height: usize, levels: usize) {
    idwt53_2d_with(data, width, height, levels, &mut DwtScratch::new());
}

/// [`idwt53_2d`] with caller-provided scratch buffers.
pub fn idwt53_2d_with(
    data: &mut [i32],
    width: usize,
    height: usize,
    levels: usize,
    scratch: &mut DwtScratch,
) {
    idwt_2d(
        data,
        width,
        height,
        width,
        levels,
        &|r| idwt53_1d(r),
        &mut scratch.row_i,
        &mut scratch.col_i,
    );
}

/// Multi-level forward 9/7 on a `width × height` plane.
pub fn fdwt97_2d(data: &mut [f64], width: usize, height: usize, levels: usize) {
    fdwt_2d(data, width, height, width, levels, &|r| fdwt97_1d(r));
}

/// Multi-level inverse 9/7.
pub fn idwt97_2d(data: &mut [f64], width: usize, height: usize, levels: usize) {
    idwt97_2d_with(data, width, height, levels, &mut DwtScratch::new());
}

/// [`idwt97_2d`] with caller-provided scratch buffers.
pub fn idwt97_2d_with(
    data: &mut [f64],
    width: usize,
    height: usize,
    levels: usize,
    scratch: &mut DwtScratch,
) {
    idwt_2d(
        data,
        width,
        height,
        width,
        levels,
        &|r| idwt97_1d(r),
        &mut scratch.row_f,
        &mut scratch.col_f,
    );
}

/// Number of decomposition levels actually applied to a `width × height`
/// region when `levels` are requested (tiny regions stop early, mirroring
/// the transform loops above).
pub fn effective_levels(width: usize, height: usize, levels: usize) -> usize {
    let (mut w, mut h) = (width, height);
    let mut applied = 0;
    for _ in 0..levels {
        if w < 2 && h < 2 {
            break;
        }
        applied += 1;
        w = w.div_ceil(2);
        h = h.div_ceil(2);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<i32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-128..=127)).collect()
    }

    #[test]
    fn dwt53_1d_perfect_reconstruction_many_lengths() {
        for n in 1..=33 {
            let orig = random_signal(n, n as u64);
            let mut x = orig.clone();
            fdwt53_1d(&mut x);
            idwt53_1d(&mut x);
            assert_eq!(x, orig, "length {n}");
        }
    }

    #[test]
    fn dwt53_constant_signal_has_zero_high_band() {
        let mut x = vec![77i32; 16];
        fdwt53_1d(&mut x);
        for i in (1..16).step_by(2) {
            assert_eq!(x[i], 0, "high coefficient {i}");
        }
        for i in (0..16).step_by(2) {
            assert_eq!(x[i], 77, "low coefficient keeps DC (gain 1)");
        }
    }

    #[test]
    fn dwt97_1d_perfect_reconstruction() {
        for n in 1..=33 {
            let orig: Vec<f64> = random_signal(n, 100 + n as u64)
                .into_iter()
                .map(|v| v as f64)
                .collect();
            let mut x = orig.clone();
            fdwt97_1d(&mut x);
            idwt97_1d(&mut x);
            for (a, b) in x.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-9, "length {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dwt97_constant_signal_dc_gain_one() {
        let mut x = vec![50.0f64; 32];
        fdwt97_1d(&mut x);
        for i in (1..32).step_by(2) {
            assert!(x[i].abs() < 1e-9, "high band should vanish");
        }
        for i in (0..32).step_by(2) {
            assert!((x[i] - 50.0).abs() < 1e-9, "low band DC gain 1");
        }
    }

    #[test]
    fn dwt53_2d_multilevel_roundtrip_odd_sizes() {
        for &(w, h, levels) in &[
            (8usize, 8usize, 3usize),
            (17, 13, 4),
            (5, 9, 2),
            (1, 7, 2),
            (16, 1, 3),
        ] {
            let orig = random_signal(w * h, (w * h) as u64);
            let mut x = orig.clone();
            fdwt53_2d(&mut x, w, h, levels);
            idwt53_2d(&mut x, w, h, levels);
            assert_eq!(x, orig, "{w}x{h} levels {levels}");
        }
    }

    #[test]
    fn dwt97_2d_multilevel_roundtrip() {
        for &(w, h, levels) in &[(8usize, 8usize, 3usize), (17, 13, 4), (31, 15, 5)] {
            let orig: Vec<f64> = random_signal(w * h, (w + h) as u64)
                .into_iter()
                .map(|v| v as f64)
                .collect();
            let mut x = orig.clone();
            fdwt97_2d(&mut x, w, h, levels);
            idwt97_2d(&mut x, w, h, levels);
            for (a, b) in x.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-6, "{w}x{h}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn reused_scratch_multilevel_roundtrip_odd_sizes() {
        // One scratch across many odd geometries and both filters: the
        // buffers must resize correctly between signals of different
        // lengths and leave every round-trip exact.
        let mut scratch = DwtScratch::new();
        for &(w, h, levels) in &[
            (17usize, 13usize, 4usize),
            (5, 9, 2),
            (33, 1, 3),
            (1, 21, 4),
            (31, 15, 5),
            (7, 7, 3),
        ] {
            let orig = random_signal(w * h, (w * 31 + h) as u64);
            let mut x = orig.clone();
            fdwt53_2d(&mut x, w, h, levels);
            idwt53_2d_with(&mut x, w, h, levels, &mut scratch);
            assert_eq!(x, orig, "5/3 {w}x{h} levels {levels}");

            let origf: Vec<f64> = orig.iter().map(|&v| v as f64).collect();
            let mut xf = origf.clone();
            fdwt97_2d(&mut xf, w, h, levels);
            idwt97_2d_with(&mut xf, w, h, levels, &mut scratch);
            for (a, b) in xf.iter().zip(&origf) {
                assert!((a - b).abs() < 1e-6, "9/7 {w}x{h}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn energy_compaction_on_smooth_image() {
        // A smooth ramp must concentrate magnitude into the LL corner.
        let (w, h) = (16usize, 16usize);
        let mut x: Vec<i32> = (0..w * h).map(|i| ((i % w) + (i / w)) as i32 * 4).collect();
        fdwt53_2d(&mut x, w, h, 2);
        let ll: i64 = (0..4)
            .flat_map(|y| (0..4).map(move |x_| (x_, y)))
            .map(|(cx, cy)| (x[cy * w + cx] as i64).abs())
            .sum();
        let total: i64 = x.iter().map(|&v| (v as i64).abs()).sum();
        assert!(
            ll * 2 > total,
            "LL (16 of 256 samples) should hold most magnitude: {ll} of {total}"
        );
    }

    #[test]
    fn effective_levels_stops_on_tiny_regions() {
        assert_eq!(effective_levels(64, 64, 3), 3);
        assert_eq!(effective_levels(1, 1, 5), 0);
        assert_eq!(effective_levels(2, 2, 5), 1);
        assert_eq!(effective_levels(1, 8, 5), 3);
    }

    #[test]
    fn mirror_reflection() {
        assert_eq!(mirror(-1, 8), 1);
        assert_eq!(mirror(-2, 8), 2);
        assert_eq!(mirror(8, 8), 6);
        assert_eq!(mirror(9, 8), 5);
        assert_eq!(mirror(3, 8), 3);
        assert_eq!(mirror(2, 2), 0);
        assert_eq!(mirror(-1, 1), 0);
    }
}
