//! The pre-optimisation Tier-1 implementation, retained verbatim as the
//! bit-exactness oracle for the flags-lattice fast path in [`super`].
//!
//! Every context here is recomputed from scratch with bounds-checked
//! neighbour scans — slow, but a direct transcription of the T.800
//! context rules. Property tests in the parent module assert that the
//! optimised encoder emits byte-identical segments and the optimised
//! decoder reconstructs identical planes, over random geometries, all
//! band orientations and truncated pass sets.

use super::{
    initial_contexts, pass_sequence, zc_table_diag, zc_table_hv, PassKind, T1EncodedBlock,
    T1Segment, CTX_MR, CTX_RL, CTX_SC, CTX_UNI, CTX_ZC, NUM_CONTEXTS,
};
use crate::mq::{MqContext, MqDecoder, MqEncoder};
use crate::tile::BandKind;

// Per-sample state flags.
pub(crate) const F_SIG: u8 = 1;
const F_VISITED: u8 = 2;
const F_REFINED: u8 = 4;

/// Bounds-checked neighbourhood view over the per-sample state planes.
pub(crate) struct Grid<'a> {
    pub(crate) w: usize,
    pub(crate) h: usize,
    pub(crate) flags: &'a [u8],
    pub(crate) negative: &'a [bool],
}

impl Grid<'_> {
    #[inline]
    fn sig(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x as usize >= self.w || y as usize >= self.h {
            return false;
        }
        self.flags[y as usize * self.w + x as usize] & F_SIG != 0
    }

    /// Sign contribution of a neighbour: +1 significant positive,
    /// −1 significant negative, 0 insignificant/outside.
    #[inline]
    fn contrib(&self, x: isize, y: isize) -> i32 {
        if x < 0 || y < 0 || x as usize >= self.w || y as usize >= self.h {
            return 0;
        }
        let i = y as usize * self.w + x as usize;
        if self.flags[i] & F_SIG == 0 {
            0
        } else if self.negative[i] {
            -1
        } else {
            1
        }
    }

    /// `(horizontal, vertical, diagonal)` significant-neighbour counts.
    fn counts(&self, x: usize, y: usize) -> (u32, u32, u32) {
        let (x, y) = (x as isize, y as isize);
        let h = self.sig(x - 1, y) as u32 + self.sig(x + 1, y) as u32;
        let v = self.sig(x, y - 1) as u32 + self.sig(x, y + 1) as u32;
        let d = self.sig(x - 1, y - 1) as u32
            + self.sig(x + 1, y - 1) as u32
            + self.sig(x - 1, y + 1) as u32
            + self.sig(x + 1, y + 1) as u32;
        (h, v, d)
    }

    /// Zero-coding context (0..=8) for the sample, per band orientation.
    fn zc_context(&self, x: usize, y: usize, kind: BandKind) -> usize {
        let (h, v, d) = self.counts(x, y);
        let raw = match kind {
            BandKind::Ll | BandKind::Lh => zc_table_hv(h, v, d),
            BandKind::Hl => zc_table_hv(v, h, d),
            BandKind::Hh => zc_table_diag(d, h + v),
        };
        CTX_ZC + raw
    }

    /// Sign-coding context (9..=13) and XOR bit.
    pub(crate) fn sc_context(&self, x: usize, y: usize) -> (usize, bool) {
        let (x, y) = (x as isize, y as isize);
        let hc = (self.contrib(x - 1, y) + self.contrib(x + 1, y)).clamp(-1, 1);
        let vc = (self.contrib(x, y - 1) + self.contrib(x, y + 1)).clamp(-1, 1);
        let (off, xor) = match (hc, vc) {
            (1, 1) => (4, false),
            (1, 0) => (3, false),
            (1, -1) => (2, false),
            (0, 1) => (1, false),
            (0, 0) => (0, false),
            (0, -1) => (1, true),
            (-1, 1) => (2, true),
            (-1, 0) => (3, true),
            (-1, -1) => (4, true),
            _ => unreachable!("contributions clamped to [-1, 1]"),
        };
        (CTX_SC + off, xor)
    }

    /// Magnitude-refinement context (14..=16).
    fn mr_context(&self, x: usize, y: usize, refined: bool) -> usize {
        if refined {
            return CTX_MR + 2;
        }
        let (h, v, d) = self.counts(x, y);
        if h + v + d > 0 {
            CTX_MR + 1
        } else {
            CTX_MR
        }
    }
}

/// Reference [`super::encode_block`].
pub fn encode_block(
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
) -> T1EncodedBlock {
    let (mut segments, mb) = encode_block_layers(mags, negative, w, h, kind, 1);
    match segments.pop() {
        Some(seg) => T1EncodedBlock {
            data: seg.data,
            num_passes: seg.num_passes,
            num_bitplanes: mb,
        },
        None => T1EncodedBlock {
            data: Vec::new(),
            num_passes: 0,
            num_bitplanes: 0,
        },
    }
}

/// Reference [`super::encode_block_layers`].
///
/// # Panics
///
/// Panics if the slice lengths do not match `w * h` or `num_layers == 0`.
pub fn encode_block_layers(
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    num_layers: usize,
) -> (Vec<T1Segment>, u8) {
    assert_eq!(mags.len(), w * h);
    assert_eq!(negative.len(), w * h);
    assert!(num_layers > 0, "at least one layer");
    let mb = mags
        .iter()
        .map(|&m| 32 - m.leading_zeros())
        .max()
        .unwrap_or(0) as u8;
    if mb == 0 {
        return (Vec::new(), 0);
    }
    let seq = pass_sequence(mb as u32);
    let total = seq.len();
    // Contiguous pass ranges per layer, remainder to the earliest layers.
    let mut boundaries = Vec::with_capacity(num_layers);
    let (base, rem) = (total / num_layers, total % num_layers);
    let mut acc = 0usize;
    for l in 0..num_layers {
        acc += base + usize::from(l < rem);
        boundaries.push(acc);
    }

    let mut flags = vec![0u8; w * h];
    let mut ctxs = initial_contexts();
    let mut mq = MqEncoder::new();
    let mut segments = Vec::with_capacity(num_layers);
    let mut passes_in_segment = 0u32;
    let mut next_boundary = 0usize;
    for (i, &(pass, p, clear)) in seq.iter().enumerate() {
        match pass {
            PassKind::Significance => enc_sig_pass(
                &mut mq, &mut ctxs, &mut flags, mags, negative, w, h, kind, p,
            ),
            PassKind::Refinement => {
                enc_ref_pass(&mut mq, &mut ctxs, &mut flags, mags, negative, w, h, p)
            }
            PassKind::Cleanup => enc_cleanup_pass(
                &mut mq, &mut ctxs, &mut flags, mags, negative, w, h, kind, p,
            ),
        }
        if clear {
            for f in &mut flags {
                *f &= !F_VISITED;
            }
        }
        passes_in_segment += 1;
        if i + 1 == boundaries[next_boundary] {
            let done = std::mem::take(&mut mq);
            segments.push(T1Segment {
                data: done.finish(),
                num_passes: passes_in_segment,
            });
            passes_in_segment = 0;
            next_boundary += 1;
        }
    }
    debug_assert_eq!(passes_in_segment, 0, "all passes flushed");
    (segments, mb)
}

/// Iterates the stripe-oriented scan, invoking `f(x, y, stripe_height,
/// index_in_stripe_column)` for every sample.
fn stripe_scan(w: usize, h: usize, mut f: impl FnMut(usize, usize, usize, usize)) {
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        for x in 0..w {
            for dy in 0..sh {
                f(x, sy + dy, sh, dy);
            }
        }
        sy += 4;
    }
}

#[allow(clippy::too_many_arguments)]
fn enc_sig_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG != 0 {
            return;
        }
        let grid = Grid {
            w,
            h,
            flags,
            negative,
        };
        let zc = grid.zc_context(x, y, kind);
        if zc == CTX_ZC {
            return; // no significant neighbour: not in this pass
        }
        let bit = (mags[i] >> p) & 1 != 0;
        mq.encode(&mut ctxs[zc], bit);
        if bit {
            let (sc, xor) = grid.sc_context(x, y);
            mq.encode(&mut ctxs[sc], negative[i] ^ xor);
            flags[i] |= F_SIG;
        }
        flags[i] |= F_VISITED;
    });
}

#[allow(clippy::too_many_arguments)]
fn enc_ref_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG == 0 || flags[i] & F_VISITED != 0 {
            return;
        }
        let grid = Grid {
            w,
            h,
            flags,
            negative,
        };
        let mr = grid.mr_context(x, y, flags[i] & F_REFINED != 0);
        mq.encode(&mut ctxs[mr], (mags[i] >> p) & 1 != 0);
        flags[i] |= F_REFINED;
    });
}

#[allow(clippy::too_many_arguments)]
fn enc_cleanup_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        for x in 0..w {
            let mut dy = 0;
            // Run-length mode: a full stripe column, all four samples
            // uncoded, insignificant and with empty neighbourhoods.
            if sh == 4 {
                let rl_eligible = (0..4).all(|k| {
                    let i = (sy + k) * w + x;
                    let grid = Grid {
                        w,
                        h,
                        flags,
                        negative,
                    };
                    flags[i] & (F_SIG | F_VISITED) == 0
                        && grid.zc_context(x, sy + k, kind) == CTX_ZC
                });
                if rl_eligible {
                    let first_one = (0..4).find(|&k| (mags[(sy + k) * w + x] >> p) & 1 != 0);
                    match first_one {
                        None => {
                            mq.encode(&mut ctxs[CTX_RL], false);
                            continue; // whole column stays zero
                        }
                        Some(k) => {
                            mq.encode(&mut ctxs[CTX_RL], true);
                            mq.encode(&mut ctxs[CTX_UNI], k & 2 != 0);
                            mq.encode(&mut ctxs[CTX_UNI], k & 1 != 0);
                            let y = sy + k;
                            let i = y * w + x;
                            let grid = Grid {
                                w,
                                h,
                                flags,
                                negative,
                            };
                            let (sc, xor) = grid.sc_context(x, y);
                            mq.encode(&mut ctxs[sc], negative[i] ^ xor);
                            flags[i] |= F_SIG;
                            dy = k + 1;
                        }
                    }
                }
            }
            // Remaining samples of the column: normal cleanup coding.
            while dy < sh {
                let y = sy + dy;
                let i = y * w + x;
                if flags[i] & (F_SIG | F_VISITED) == 0 {
                    let grid = Grid {
                        w,
                        h,
                        flags,
                        negative,
                    };
                    let zc = grid.zc_context(x, y, kind);
                    let bit = (mags[i] >> p) & 1 != 0;
                    mq.encode(&mut ctxs[zc], bit);
                    if bit {
                        let (sc, xor) = grid.sc_context(x, y);
                        mq.encode(&mut ctxs[sc], negative[i] ^ xor);
                        flags[i] |= F_SIG;
                    }
                }
                dy += 1;
            }
        }
        sy += 4;
    }
}

/// Reference [`super::decode_block`].
pub fn decode_block(
    data: &[u8],
    w: usize,
    h: usize,
    kind: BandKind,
    num_passes: u32,
) -> (Vec<u32>, Vec<bool>) {
    if num_passes == 0 {
        return (vec![0; w * h], vec![false; w * h]);
    }
    let mb = num_passes.div_ceil(3);
    decode_block_segments(&[(data, num_passes)], w, h, kind, mb as u8)
}

/// Reference [`super::decode_block_segments`].
pub fn decode_block_segments(
    segments: &[(&[u8], u32)],
    w: usize,
    h: usize,
    kind: BandKind,
    mb: u8,
) -> (Vec<u32>, Vec<bool>) {
    let mut mags = vec![0u32; w * h];
    let mut negative = vec![false; w * h];
    if mb == 0 || w == 0 || h == 0 || segments.is_empty() {
        return (mags, negative);
    }
    let seq = pass_sequence(mb as u32);
    let total_passes: u32 = segments.iter().map(|&(_, n)| n).sum();
    let mut flags = vec![0u8; w * h];
    let mut ctxs = initial_contexts();
    let mut seg_iter = segments.iter();
    let (mut seg_data, mut seg_left) = match seg_iter.next() {
        Some(&(d, n)) => (d, n),
        None => return (mags, negative),
    };
    let mut mq = MqDecoder::new(seg_data);
    for &(pass, p, clear) in seq.iter().take(total_passes as usize) {
        while seg_left == 0 {
            match seg_iter.next() {
                Some(&(d, n)) => {
                    seg_data = d;
                    seg_left = n;
                    mq = MqDecoder::new(seg_data);
                }
                None => return (mags, negative),
            }
        }
        match pass {
            PassKind::Significance => dec_sig_pass(
                &mut mq,
                &mut ctxs,
                &mut flags,
                &mut mags,
                &mut negative,
                w,
                h,
                kind,
                p,
            ),
            PassKind::Refinement => dec_ref_pass(
                &mut mq, &mut ctxs, &mut flags, &mut mags, &negative, w, h, p,
            ),
            PassKind::Cleanup => dec_cleanup_pass(
                &mut mq,
                &mut ctxs,
                &mut flags,
                &mut mags,
                &mut negative,
                w,
                h,
                kind,
                p,
            ),
        }
        if clear {
            for f in &mut flags {
                *f &= !F_VISITED;
            }
        }
        seg_left -= 1;
    }
    (mags, negative)
}

#[allow(clippy::too_many_arguments)]
fn dec_sig_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &mut [u32],
    negative: &mut [bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG != 0 {
            return;
        }
        let zc = {
            let grid = Grid {
                w,
                h,
                flags,
                negative,
            };
            grid.zc_context(x, y, kind)
        };
        if zc == CTX_ZC {
            return;
        }
        let bit = mq.decode(&mut ctxs[zc]);
        if bit {
            let (sc, xor) = {
                let grid = Grid {
                    w,
                    h,
                    flags,
                    negative,
                };
                grid.sc_context(x, y)
            };
            let sbit = mq.decode(&mut ctxs[sc]);
            negative[i] = sbit ^ xor;
            mags[i] |= 1 << p;
            flags[i] |= F_SIG;
        }
        flags[i] |= F_VISITED;
    });
}

#[allow(clippy::too_many_arguments)]
fn dec_ref_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &mut [u32],
    negative: &[bool],
    w: usize,
    h: usize,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG == 0 || flags[i] & F_VISITED != 0 {
            return;
        }
        let mr = {
            let grid = Grid {
                w,
                h,
                flags,
                negative,
            };
            grid.mr_context(x, y, flags[i] & F_REFINED != 0)
        };
        if mq.decode(&mut ctxs[mr]) {
            mags[i] |= 1 << p;
        }
        flags[i] |= F_REFINED;
    });
}

#[allow(clippy::too_many_arguments)]
fn dec_cleanup_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &mut [u32],
    negative: &mut [bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        for x in 0..w {
            let mut dy = 0;
            if sh == 4 {
                let rl_eligible = (0..4).all(|k| {
                    let i = (sy + k) * w + x;
                    let grid = Grid {
                        w,
                        h,
                        flags,
                        negative,
                    };
                    flags[i] & (F_SIG | F_VISITED) == 0
                        && grid.zc_context(x, sy + k, kind) == CTX_ZC
                });
                if rl_eligible {
                    if !mq.decode(&mut ctxs[CTX_RL]) {
                        continue; // whole column zero
                    }
                    let k = ((mq.decode(&mut ctxs[CTX_UNI]) as usize) << 1)
                        | mq.decode(&mut ctxs[CTX_UNI]) as usize;
                    let y = sy + k;
                    let i = y * w + x;
                    let (sc, xor) = {
                        let grid = Grid {
                            w,
                            h,
                            flags,
                            negative,
                        };
                        grid.sc_context(x, y)
                    };
                    let sbit = mq.decode(&mut ctxs[sc]);
                    negative[i] = sbit ^ xor;
                    mags[i] |= 1 << p;
                    flags[i] |= F_SIG;
                    dy = k + 1;
                }
            }
            while dy < sh {
                let y = sy + dy;
                let i = y * w + x;
                if flags[i] & (F_SIG | F_VISITED) == 0 {
                    let zc = {
                        let grid = Grid {
                            w,
                            h,
                            flags,
                            negative,
                        };
                        grid.zc_context(x, y, kind)
                    };
                    if mq.decode(&mut ctxs[zc]) {
                        let (sc, xor) = {
                            let grid = Grid {
                                w,
                                h,
                                flags,
                                negative,
                            };
                            grid.sc_context(x, y)
                        };
                        let sbit = mq.decode(&mut ctxs[sc]);
                        negative[i] = sbit ^ xor;
                        mags[i] |= 1 << p;
                        flags[i] |= F_SIG;
                    }
                }
                dy += 1;
            }
        }
        sy += 4;
    }
}
