//! EBCOT Tier-1: context-adaptive bit-plane coding of code-blocks
//! (ITU-T T.800 Annex D).
//!
//! Each code-block's quantised magnitudes are coded bit-plane by bit-plane
//! in three passes — significance propagation, magnitude refinement and
//! cleanup — through the [`crate::mq`] arithmetic coder with 19 adaptive
//! contexts. Together with the MQ coder this is the stage the paper calls
//! the *arithmetic decoder*, the one that consumes ~88 % of the decode
//! time and gets parallelised four ways in model versions 4/5.

use crate::mq::{MqContext, MqDecoder, MqEncoder};
use crate::tile::BandKind;

/// Number of adaptive contexts used by Tier-1.
pub const NUM_CONTEXTS: usize = 19;

// Context index blocks.
const CTX_ZC: usize = 0; // 0..=8  zero coding / significance
const CTX_SC: usize = 9; // 9..=13 sign coding
const CTX_MR: usize = 14; // 14..=16 magnitude refinement
const CTX_RL: usize = 17; // run-length
const CTX_UNI: usize = 18; // uniform

// Per-sample state flags.
const F_SIG: u8 = 1;
const F_VISITED: u8 = 2;
const F_REFINED: u8 = 4;

/// Result of encoding one code-block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1EncodedBlock {
    /// The MQ codeword segment (all passes, single segment).
    pub data: Vec<u8>,
    /// Number of coding passes contained (`3·Mb − 2`, or 0 for an
    /// all-zero block).
    pub num_passes: u32,
    /// Number of magnitude bit-planes `Mb`.
    pub num_bitplanes: u8,
}

/// The initial context states mandated by the standard: UNIFORM starts at
/// state 46, run-length at 3, the all-zero-neighbourhood ZC context at 4,
/// everything else at 0.
pub fn initial_contexts() -> [MqContext; NUM_CONTEXTS] {
    let mut ctxs = [MqContext::with_state(0); NUM_CONTEXTS];
    ctxs[CTX_ZC] = MqContext::with_state(4);
    ctxs[CTX_RL] = MqContext::with_state(3);
    ctxs[CTX_UNI] = MqContext::with_state(46);
    ctxs
}

struct Grid<'a> {
    w: usize,
    h: usize,
    flags: &'a [u8],
    negative: &'a [bool],
}

impl Grid<'_> {
    #[inline]
    fn sig(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x as usize >= self.w || y as usize >= self.h {
            return false;
        }
        self.flags[y as usize * self.w + x as usize] & F_SIG != 0
    }

    /// Sign contribution of a neighbour: +1 significant positive,
    /// −1 significant negative, 0 insignificant/outside.
    #[inline]
    fn contrib(&self, x: isize, y: isize) -> i32 {
        if x < 0 || y < 0 || x as usize >= self.w || y as usize >= self.h {
            return 0;
        }
        let i = y as usize * self.w + x as usize;
        if self.flags[i] & F_SIG == 0 {
            0
        } else if self.negative[i] {
            -1
        } else {
            1
        }
    }

    /// `(horizontal, vertical, diagonal)` significant-neighbour counts.
    fn counts(&self, x: usize, y: usize) -> (u32, u32, u32) {
        let (x, y) = (x as isize, y as isize);
        let h = self.sig(x - 1, y) as u32 + self.sig(x + 1, y) as u32;
        let v = self.sig(x, y - 1) as u32 + self.sig(x, y + 1) as u32;
        let d = self.sig(x - 1, y - 1) as u32
            + self.sig(x + 1, y - 1) as u32
            + self.sig(x - 1, y + 1) as u32
            + self.sig(x + 1, y + 1) as u32;
        (h, v, d)
    }

    /// Zero-coding context (0..=8) for the sample, per band orientation.
    fn zc_context(&self, x: usize, y: usize, kind: BandKind) -> usize {
        let (h, v, d) = self.counts(x, y);
        let raw = match kind {
            BandKind::Ll | BandKind::Lh => zc_table_hv(h, v, d),
            BandKind::Hl => zc_table_hv(v, h, d),
            BandKind::Hh => zc_table_diag(d, h + v),
        };
        CTX_ZC + raw
    }

    /// Sign-coding context (9..=13) and XOR bit.
    fn sc_context(&self, x: usize, y: usize) -> (usize, bool) {
        let (x, y) = (x as isize, y as isize);
        let hc = (self.contrib(x - 1, y) + self.contrib(x + 1, y)).clamp(-1, 1);
        let vc = (self.contrib(x, y - 1) + self.contrib(x, y + 1)).clamp(-1, 1);
        let (off, xor) = match (hc, vc) {
            (1, 1) => (4, false),
            (1, 0) => (3, false),
            (1, -1) => (2, false),
            (0, 1) => (1, false),
            (0, 0) => (0, false),
            (0, -1) => (1, true),
            (-1, 1) => (2, true),
            (-1, 0) => (3, true),
            (-1, -1) => (4, true),
            _ => unreachable!("contributions clamped to [-1, 1]"),
        };
        (CTX_SC + off, xor)
    }

    /// Magnitude-refinement context (14..=16).
    fn mr_context(&self, x: usize, y: usize, refined: bool) -> usize {
        if refined {
            return CTX_MR + 2;
        }
        let (h, v, d) = self.counts(x, y);
        if h + v + d > 0 {
            CTX_MR + 1
        } else {
            CTX_MR
        }
    }
}

/// The LL/LH significance table (HL uses it with h and v swapped).
fn zc_table_hv(h: u32, v: u32, d: u32) -> usize {
    match h {
        2 => 8,
        1 => {
            if v >= 1 {
                7
            } else if d >= 1 {
                6
            } else {
                5
            }
        }
        _ => match v {
            2 => 4,
            1 => 3,
            _ => {
                if d >= 2 {
                    2
                } else if d == 1 {
                    1
                } else {
                    0
                }
            }
        },
    }
}

/// The HH significance table, keyed on the diagonal count first.
fn zc_table_diag(d: u32, hv: u32) -> usize {
    match d {
        0 => {
            if hv >= 2 {
                2
            } else if hv == 1 {
                1
            } else {
                0
            }
        }
        1 => {
            if hv >= 2 {
                5
            } else if hv == 1 {
                4
            } else {
                3
            }
        }
        2 => {
            if hv >= 1 {
                7
            } else {
                6
            }
        }
        _ => 8,
    }
}

/// Encodes one code-block of quantised coefficients.
///
/// `mags` holds the magnitudes, `negative` the sign of each sample
/// (`true` = negative), both row-major `w × h`.
///
/// # Panics
///
/// Panics if the slice lengths do not match `w * h`.
pub fn encode_block(
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
) -> T1EncodedBlock {
    let (mut segments, mb) = encode_block_layers(mags, negative, w, h, kind, 1);
    match segments.pop() {
        Some(seg) => T1EncodedBlock {
            data: seg.data,
            num_passes: seg.num_passes,
            num_bitplanes: mb,
        },
        None => T1EncodedBlock {
            data: Vec::new(),
            num_passes: 0,
            num_bitplanes: 0,
        },
    }
}

/// One coding pass of the EBCOT schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    Significance,
    Refinement,
    Cleanup,
}

/// The EBCOT pass schedule for `mb` bit-planes: cleanup only on the most
/// significant plane, all three passes below it. The boolean marks passes
/// after which the per-plane VISITED flags reset.
fn pass_sequence(mb: u32) -> Vec<(PassKind, u32, bool)> {
    let mut seq = Vec::new();
    for p in (0..mb).rev() {
        if p != mb - 1 {
            seq.push((PassKind::Significance, p, false));
            seq.push((PassKind::Refinement, p, false));
        }
        seq.push((PassKind::Cleanup, p, true));
    }
    seq
}

/// One MQ codeword segment of a layered code-block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1Segment {
    /// The terminated MQ codeword covering this segment's passes.
    pub data: Vec<u8>,
    /// Number of coding passes in the segment.
    pub num_passes: u32,
}

/// Encodes one code-block into `num_layers` independently terminated MQ
/// codeword segments (the standard's codeword-termination mode): contexts
/// persist across segments, but each segment's arithmetic codeword is
/// flushed, so a decoder holding only the first *k* segments can decode
/// exactly their passes — the mechanism behind quality layers.
///
/// Passes distribute evenly over layers with earlier layers taking the
/// remainder (most-significant data first). Returns the segments (empty
/// for an all-zero block) and the bit-plane count `Mb`.
///
/// # Panics
///
/// Panics if the slice lengths do not match `w * h` or `num_layers == 0`.
pub fn encode_block_layers(
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    num_layers: usize,
) -> (Vec<T1Segment>, u8) {
    assert_eq!(mags.len(), w * h);
    assert_eq!(negative.len(), w * h);
    assert!(num_layers > 0, "at least one layer");
    let mb = mags
        .iter()
        .map(|&m| 32 - m.leading_zeros())
        .max()
        .unwrap_or(0) as u8;
    if mb == 0 {
        return (Vec::new(), 0);
    }
    let seq = pass_sequence(mb as u32);
    let total = seq.len();
    // Contiguous pass ranges per layer, remainder to the earliest layers.
    let mut boundaries = Vec::with_capacity(num_layers);
    let (base, rem) = (total / num_layers, total % num_layers);
    let mut acc = 0usize;
    for l in 0..num_layers {
        acc += base + usize::from(l < rem);
        boundaries.push(acc);
    }

    let mut flags = vec![0u8; w * h];
    let mut ctxs = initial_contexts();
    let mut mq = MqEncoder::new();
    let mut segments = Vec::with_capacity(num_layers);
    let mut passes_in_segment = 0u32;
    let mut next_boundary = 0usize;
    for (i, &(pass, p, clear)) in seq.iter().enumerate() {
        match pass {
            PassKind::Significance => enc_sig_pass(
                &mut mq, &mut ctxs, &mut flags, mags, negative, w, h, kind, p,
            ),
            PassKind::Refinement => {
                enc_ref_pass(&mut mq, &mut ctxs, &mut flags, mags, negative, w, h, p)
            }
            PassKind::Cleanup => enc_cleanup_pass(
                &mut mq, &mut ctxs, &mut flags, mags, negative, w, h, kind, p,
            ),
        }
        if clear {
            for f in &mut flags {
                *f &= !F_VISITED;
            }
        }
        passes_in_segment += 1;
        if i + 1 == boundaries[next_boundary] {
            let done = std::mem::take(&mut mq);
            segments.push(T1Segment {
                data: done.finish(),
                num_passes: passes_in_segment,
            });
            passes_in_segment = 0;
            next_boundary += 1;
        }
    }
    debug_assert_eq!(passes_in_segment, 0, "all passes flushed");
    (segments, mb)
}

/// Iterates the stripe-oriented scan, invoking `f(x, y, stripe_height,
/// index_in_stripe_column)` for every sample.
fn stripe_scan(w: usize, h: usize, mut f: impl FnMut(usize, usize, usize, usize)) {
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        for x in 0..w {
            for dy in 0..sh {
                f(x, sy + dy, sh, dy);
            }
        }
        sy += 4;
    }
}

#[allow(clippy::too_many_arguments)]
fn enc_sig_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG != 0 {
            return;
        }
        let grid = Grid {
            w,
            h,
            flags,
            negative,
        };
        let zc = grid.zc_context(x, y, kind);
        if zc == CTX_ZC {
            return; // no significant neighbour: not in this pass
        }
        let bit = (mags[i] >> p) & 1 != 0;
        mq.encode(&mut ctxs[zc], bit);
        if bit {
            let (sc, xor) = grid.sc_context(x, y);
            mq.encode(&mut ctxs[sc], negative[i] ^ xor);
            flags[i] |= F_SIG;
        }
        flags[i] |= F_VISITED;
    });
}

#[allow(clippy::too_many_arguments)]
fn enc_ref_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG == 0 || flags[i] & F_VISITED != 0 {
            return;
        }
        let grid = Grid {
            w,
            h,
            flags,
            negative,
        };
        let mr = grid.mr_context(x, y, flags[i] & F_REFINED != 0);
        mq.encode(&mut ctxs[mr], (mags[i] >> p) & 1 != 0);
        flags[i] |= F_REFINED;
    });
}

#[allow(clippy::too_many_arguments)]
fn enc_cleanup_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        for x in 0..w {
            let mut dy = 0;
            // Run-length mode: a full stripe column, all four samples
            // uncoded, insignificant and with empty neighbourhoods.
            if sh == 4 {
                let rl_eligible = (0..4).all(|k| {
                    let i = (sy + k) * w + x;
                    let grid = Grid {
                        w,
                        h,
                        flags,
                        negative,
                    };
                    flags[i] & (F_SIG | F_VISITED) == 0
                        && grid.zc_context(x, sy + k, kind) == CTX_ZC
                });
                if rl_eligible {
                    let first_one = (0..4).find(|&k| (mags[(sy + k) * w + x] >> p) & 1 != 0);
                    match first_one {
                        None => {
                            mq.encode(&mut ctxs[CTX_RL], false);
                            continue; // whole column stays zero
                        }
                        Some(k) => {
                            mq.encode(&mut ctxs[CTX_RL], true);
                            mq.encode(&mut ctxs[CTX_UNI], k & 2 != 0);
                            mq.encode(&mut ctxs[CTX_UNI], k & 1 != 0);
                            let y = sy + k;
                            let i = y * w + x;
                            let grid = Grid {
                                w,
                                h,
                                flags,
                                negative,
                            };
                            let (sc, xor) = grid.sc_context(x, y);
                            mq.encode(&mut ctxs[sc], negative[i] ^ xor);
                            flags[i] |= F_SIG;
                            dy = k + 1;
                        }
                    }
                }
            }
            // Remaining samples of the column: normal cleanup coding.
            while dy < sh {
                let y = sy + dy;
                let i = y * w + x;
                if flags[i] & (F_SIG | F_VISITED) == 0 {
                    let grid = Grid {
                        w,
                        h,
                        flags,
                        negative,
                    };
                    let zc = grid.zc_context(x, y, kind);
                    let bit = (mags[i] >> p) & 1 != 0;
                    mq.encode(&mut ctxs[zc], bit);
                    if bit {
                        let (sc, xor) = grid.sc_context(x, y);
                        mq.encode(&mut ctxs[sc], negative[i] ^ xor);
                        flags[i] |= F_SIG;
                    }
                }
                dy += 1;
            }
        }
        sy += 4;
    }
}

/// Decodes one code-block back into `(magnitudes, negative)` arrays.
///
/// `num_passes` is the pass count from the packet header; the number of
/// bit-planes is `(num_passes + 2) / 3`.
pub fn decode_block(
    data: &[u8],
    w: usize,
    h: usize,
    kind: BandKind,
    num_passes: u32,
) -> (Vec<u32>, Vec<bool>) {
    if num_passes == 0 {
        return (vec![0; w * h], vec![false; w * h]);
    }
    let mb = num_passes.div_ceil(3);
    decode_block_segments(&[(data, num_passes)], w, h, kind, mb as u8)
}

/// Decodes a code-block from one or more terminated codeword segments
/// (the layered form of [`encode_block_layers`]). `mb` is the bit-plane
/// count signalled by the packet header's zero-bit-plane field; fewer
/// passes than the full schedule yield the standard's partial (quality-
/// truncated) reconstruction.
pub fn decode_block_segments(
    segments: &[(&[u8], u32)],
    w: usize,
    h: usize,
    kind: BandKind,
    mb: u8,
) -> (Vec<u32>, Vec<bool>) {
    let mut mags = vec![0u32; w * h];
    let mut negative = vec![false; w * h];
    if mb == 0 || w == 0 || h == 0 || segments.is_empty() {
        return (mags, negative);
    }
    let seq = pass_sequence(mb as u32);
    let total_passes: u32 = segments.iter().map(|&(_, n)| n).sum();
    let mut flags = vec![0u8; w * h];
    let mut ctxs = initial_contexts();
    let mut seg_iter = segments.iter();
    let (mut seg_data, mut seg_left) = match seg_iter.next() {
        Some(&(d, n)) => (d, n),
        None => return (mags, negative),
    };
    let mut mq = MqDecoder::new(seg_data);
    for &(pass, p, clear) in seq.iter().take(total_passes as usize) {
        while seg_left == 0 {
            match seg_iter.next() {
                Some(&(d, n)) => {
                    seg_data = d;
                    seg_left = n;
                    mq = MqDecoder::new(seg_data);
                }
                None => return (mags, negative),
            }
        }
        match pass {
            PassKind::Significance => dec_sig_pass(
                &mut mq,
                &mut ctxs,
                &mut flags,
                &mut mags,
                &mut negative,
                w,
                h,
                kind,
                p,
            ),
            PassKind::Refinement => dec_ref_pass(
                &mut mq, &mut ctxs, &mut flags, &mut mags, &negative, w, h, p,
            ),
            PassKind::Cleanup => dec_cleanup_pass(
                &mut mq,
                &mut ctxs,
                &mut flags,
                &mut mags,
                &mut negative,
                w,
                h,
                kind,
                p,
            ),
        }
        if clear {
            for f in &mut flags {
                *f &= !F_VISITED;
            }
        }
        seg_left -= 1;
    }
    (mags, negative)
}

#[allow(clippy::too_many_arguments)]
fn dec_sig_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &mut [u32],
    negative: &mut [bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG != 0 {
            return;
        }
        let zc = {
            let grid = Grid {
                w,
                h,
                flags,
                negative,
            };
            grid.zc_context(x, y, kind)
        };
        if zc == CTX_ZC {
            return;
        }
        let bit = mq.decode(&mut ctxs[zc]);
        if bit {
            let (sc, xor) = {
                let grid = Grid {
                    w,
                    h,
                    flags,
                    negative,
                };
                grid.sc_context(x, y)
            };
            let sbit = mq.decode(&mut ctxs[sc]);
            negative[i] = sbit ^ xor;
            mags[i] |= 1 << p;
            flags[i] |= F_SIG;
        }
        flags[i] |= F_VISITED;
    });
}

#[allow(clippy::too_many_arguments)]
fn dec_ref_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &mut [u32],
    negative: &[bool],
    w: usize,
    h: usize,
    p: u32,
) {
    stripe_scan(w, h, |x, y, _, _| {
        let i = y * w + x;
        if flags[i] & F_SIG == 0 || flags[i] & F_VISITED != 0 {
            return;
        }
        let mr = {
            let grid = Grid {
                w,
                h,
                flags,
                negative,
            };
            grid.mr_context(x, y, flags[i] & F_REFINED != 0)
        };
        if mq.decode(&mut ctxs[mr]) {
            mags[i] |= 1 << p;
        }
        flags[i] |= F_REFINED;
    });
}

#[allow(clippy::too_many_arguments)]
fn dec_cleanup_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u8],
    mags: &mut [u32],
    negative: &mut [bool],
    w: usize,
    h: usize,
    kind: BandKind,
    p: u32,
) {
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        for x in 0..w {
            let mut dy = 0;
            if sh == 4 {
                let rl_eligible = (0..4).all(|k| {
                    let i = (sy + k) * w + x;
                    let grid = Grid {
                        w,
                        h,
                        flags,
                        negative,
                    };
                    flags[i] & (F_SIG | F_VISITED) == 0
                        && grid.zc_context(x, sy + k, kind) == CTX_ZC
                });
                if rl_eligible {
                    if !mq.decode(&mut ctxs[CTX_RL]) {
                        continue; // whole column zero
                    }
                    let k = ((mq.decode(&mut ctxs[CTX_UNI]) as usize) << 1)
                        | mq.decode(&mut ctxs[CTX_UNI]) as usize;
                    let y = sy + k;
                    let i = y * w + x;
                    let (sc, xor) = {
                        let grid = Grid {
                            w,
                            h,
                            flags,
                            negative,
                        };
                        grid.sc_context(x, y)
                    };
                    let sbit = mq.decode(&mut ctxs[sc]);
                    negative[i] = sbit ^ xor;
                    mags[i] |= 1 << p;
                    flags[i] |= F_SIG;
                    dy = k + 1;
                }
            }
            while dy < sh {
                let y = sy + dy;
                let i = y * w + x;
                if flags[i] & (F_SIG | F_VISITED) == 0 {
                    let zc = {
                        let grid = Grid {
                            w,
                            h,
                            flags,
                            negative,
                        };
                        grid.zc_context(x, y, kind)
                    };
                    if mq.decode(&mut ctxs[zc]) {
                        let (sc, xor) = {
                            let grid = Grid {
                                w,
                                h,
                                flags,
                                negative,
                            };
                            grid.sc_context(x, y)
                        };
                        let sbit = mq.decode(&mut ctxs[sc]);
                        negative[i] = sbit ^ xor;
                        mags[i] |= 1 << p;
                        flags[i] |= F_SIG;
                    }
                }
                dy += 1;
            }
        }
        sy += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(mags: Vec<u32>, negative: Vec<bool>, w: usize, h: usize, kind: BandKind) {
        let enc = encode_block(&mags, &negative, w, h, kind);
        let (dm, dn) = decode_block(&enc.data, w, h, kind, enc.num_passes);
        assert_eq!(dm, mags, "magnitudes {w}x{h} {kind:?}");
        // Signs only matter where magnitude is non-zero.
        for i in 0..mags.len() {
            if mags[i] != 0 {
                assert_eq!(dn[i], negative[i], "sign at {i}");
            }
        }
    }

    fn random_block(
        w: usize,
        h: usize,
        seed: u64,
        zero_prob: f64,
        max_mag: u32,
    ) -> (Vec<u32>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mags: Vec<u32> = (0..w * h)
            .map(|_| {
                if rng.gen_bool(zero_prob) {
                    0
                } else {
                    rng.gen_range(1..=max_mag)
                }
            })
            .collect();
        let negative: Vec<bool> = (0..w * h).map(|_| rng.gen_bool(0.5)).collect();
        (mags, negative)
    }

    #[test]
    fn all_zero_block_has_no_passes() {
        let enc = encode_block(&[0; 16], &[false; 16], 4, 4, BandKind::Ll);
        assert_eq!(enc.num_passes, 0);
        assert_eq!(enc.num_bitplanes, 0);
        assert!(enc.data.is_empty());
        let (m, _) = decode_block(&enc.data, 4, 4, BandKind::Ll, 0);
        assert!(m.iter().all(|&v| v == 0));
    }

    #[test]
    fn single_coefficient_roundtrip() {
        let mut mags = vec![0u32; 64];
        let mut neg = vec![false; 64];
        mags[27] = 13;
        neg[27] = true;
        roundtrip(mags, neg, 8, 8, BandKind::Hl);
    }

    #[test]
    fn passes_formula() {
        let mut mags = vec![0u32; 16];
        mags[0] = 0b101; // 3 bit-planes
        let enc = encode_block(&mags, &[false; 16], 4, 4, BandKind::Ll);
        assert_eq!(enc.num_bitplanes, 3);
        assert_eq!(enc.num_passes, 7);
    }

    #[test]
    fn dense_random_blocks_roundtrip_all_orientations() {
        for kind in [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh] {
            let (mags, neg) = random_block(16, 16, 42, 0.3, 255);
            roundtrip(mags, neg, 16, 16, kind);
        }
    }

    #[test]
    fn sparse_random_blocks_roundtrip() {
        for seed in 0..5 {
            let (mags, neg) = random_block(32, 32, seed, 0.95, 1000);
            roundtrip(mags, neg, 32, 32, BandKind::Hh);
        }
    }

    #[test]
    fn non_multiple_of_four_heights() {
        for h in [1usize, 2, 3, 5, 6, 7, 9] {
            let (mags, neg) = random_block(7, h, h as u64, 0.5, 63);
            roundtrip(mags, neg, 7, h, BandKind::Lh);
        }
    }

    #[test]
    fn single_row_and_column_blocks() {
        let (mags, neg) = random_block(16, 1, 3, 0.4, 15);
        roundtrip(mags, neg, 16, 1, BandKind::Ll);
        let (mags, neg) = random_block(1, 16, 4, 0.4, 15);
        roundtrip(mags, neg, 1, 16, BandKind::Hh);
    }

    #[test]
    fn large_magnitudes() {
        let mut mags = vec![0u32; 64];
        mags[0] = 65_535;
        mags[63] = 32_768;
        let mut neg = vec![false; 64];
        neg[63] = true;
        roundtrip(mags, neg, 8, 8, BandKind::Ll);
    }

    #[test]
    fn compression_is_effective_on_sparse_data() {
        let (mags, neg) = random_block(64, 64, 5, 0.98, 127);
        let enc = encode_block(&mags, &neg, 64, 64, BandKind::Hh);
        // 4096 samples, ~2% significant: far below raw size.
        assert!(
            enc.data.len() < 1200,
            "sparse block should compress, got {} bytes",
            enc.data.len()
        );
    }

    #[test]
    fn layered_encoding_roundtrips_for_any_layer_count() {
        let (mags, neg) = random_block(16, 16, 21, 0.5, 511);
        let reference = encode_block(&mags, &neg, 16, 16, BandKind::Lh);
        for layers in 1..=7 {
            let (segments, mb) = encode_block_layers(&mags, &neg, 16, 16, BandKind::Lh, layers);
            assert_eq!(mb, reference.num_bitplanes);
            let total: u32 = segments.iter().map(|s| s.num_passes).sum();
            assert_eq!(total, reference.num_passes, "{layers} layers");
            let refs: Vec<(&[u8], u32)> = segments
                .iter()
                .map(|s| (s.data.as_slice(), s.num_passes))
                .collect();
            let (dm, dn) = decode_block_segments(&refs, 16, 16, BandKind::Lh, mb);
            assert_eq!(dm, mags, "{layers} layers");
            for i in 0..mags.len() {
                if mags[i] != 0 {
                    assert_eq!(dn[i], neg[i]);
                }
            }
        }
    }

    #[test]
    fn truncated_layers_give_progressively_better_magnitudes() {
        let (mags, neg) = random_block(16, 16, 22, 0.4, 1023);
        let (segments, mb) = encode_block_layers(&mags, &neg, 16, 16, BandKind::Hl, 4);
        let mut last_err = u64::MAX;
        for keep in 1..=4 {
            let refs: Vec<(&[u8], u32)> = segments[..keep]
                .iter()
                .map(|s| (s.data.as_slice(), s.num_passes))
                .collect();
            let (dm, _) = decode_block_segments(&refs, 16, 16, BandKind::Hl, mb);
            let err: u64 = dm
                .iter()
                .zip(&mags)
                .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
                .sum();
            assert!(
                err <= last_err,
                "keeping {keep} layers must not increase error: {err} > {last_err}"
            );
            last_err = err;
        }
        assert_eq!(last_err, 0, "all layers reconstruct exactly");
    }

    #[test]
    fn pass_sequence_shape() {
        assert!(pass_sequence(0).is_empty());
        let s1 = pass_sequence(1);
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].0, PassKind::Cleanup);
        let s3 = pass_sequence(3);
        assert_eq!(s3.len(), 7); // 3*3 - 2
        assert_eq!(s3[0], (PassKind::Cleanup, 2, true));
        assert_eq!(s3[1], (PassKind::Significance, 1, false));
        assert_eq!(s3[6], (PassKind::Cleanup, 0, true));
    }

    #[test]
    fn context_tables_cover_expected_ranges() {
        for h in 0..=2u32 {
            for v in 0..=2u32 {
                for d in 0..=4u32 {
                    assert!(zc_table_hv(h, v, d) <= 8);
                    assert!(zc_table_diag(d, h + v) <= 8);
                }
            }
        }
    }

    #[test]
    fn initial_context_states() {
        let c = initial_contexts();
        assert_eq!(c[CTX_UNI].state, 46);
        assert_eq!(c[CTX_RL].state, 3);
        assert_eq!(c[CTX_ZC].state, 4);
        assert_eq!(c[CTX_ZC + 1].state, 0);
        assert_eq!(c[CTX_SC].state, 0);
    }
}
