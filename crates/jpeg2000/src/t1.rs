//! EBCOT Tier-1: context-adaptive bit-plane coding of code-blocks
//! (ITU-T T.800 Annex D).
//!
//! Each code-block's quantised magnitudes are coded bit-plane by bit-plane
//! in three passes — significance propagation, magnitude refinement and
//! cleanup — through the [`crate::mq`] arithmetic coder with 19 adaptive
//! contexts. Together with the MQ coder this is the stage the paper calls
//! the *arithmetic decoder*, the one that consumes ~88 % of the decode
//! time and gets parallelised four ways in model versions 4/5.
//!
//! # The flags lattice
//!
//! The coder keeps one `u32` *flags word* per sample in a lattice padded
//! by one cell on every side. The word caches the sample's own state
//! (significant / visited / refined) **and** the significance of all 8
//! neighbours plus the signs of the 4 horizontal/vertical ones. When a
//! coefficient first becomes significant, `set_significant` pushes that
//! fact into the 8 surrounding words once; every later context lookup is
//! then a single table index into a precomputed LUT instead of 8
//! bounds-checked neighbour loads. The LUTs are built at compile time
//! from the T.800 context tables (`zc_table_hv` / `zc_table_diag` and
//! the sign-coding contribution rules), which remain the oracle: the
//! original per-sample implementation is retained in `t1::reference` (under
//! `cfg(test)` or the `reference-t1` feature) and property-tested to be
//! bit-exact against this fast path.

use crate::mq::{MqContext, MqDecoder, MqEncoder};
use crate::tile::BandKind;

/// The retained pre-optimisation implementation, kept as the bit-exactness
/// oracle for property tests and the `t1_throughput` bench.
#[cfg(any(test, feature = "reference-t1"))]
#[path = "t1_reference.rs"]
pub mod reference;

/// Number of adaptive contexts used by Tier-1.
pub const NUM_CONTEXTS: usize = 19;

// Context index blocks.
const CTX_ZC: usize = 0; // 0..=8  zero coding / significance
const CTX_SC: usize = 9; // 9..=13 sign coding
const CTX_MR: usize = 14; // 14..=16 magnitude refinement
const CTX_RL: usize = 17; // run-length
const CTX_UNI: usize = 18; // uniform

// ---------------------------------------------------------------------------
// Flags lattice
// ---------------------------------------------------------------------------

// Neighbour-significance bits (bit k set = that neighbour is significant).
const F_SIG_W: u32 = 1 << 0;
const F_SIG_E: u32 = 1 << 1;
const F_SIG_N: u32 = 1 << 2;
const F_SIG_S: u32 = 1 << 3;
const F_SIG_NW: u32 = 1 << 4;
const F_SIG_NE: u32 = 1 << 5;
const F_SIG_SW: u32 = 1 << 6;
const F_SIG_SE: u32 = 1 << 7;
/// All 8 neighbour-significance bits; zero ⇔ the T.800 zero-coding
/// context 0 (empty neighbourhood) for every band orientation.
const F_NEIGH_SIG: u32 = 0xFF;

// Neighbour-sign bits (only meaningful when the matching F_SIG_* is set).
const F_NEG_W: u32 = 1 << 8;
const F_NEG_E: u32 = 1 << 9;
const F_NEG_N: u32 = 1 << 10;
const F_NEG_S: u32 = 1 << 11;

// Own-state bits.
const F_SELF_SIG: u32 = 1 << 12;
const F_VISITED: u32 = 1 << 13;
const F_REFINED: u32 = 1 << 14;

/// Marks the sample at padded index `i` significant with sign `neg`,
/// pushing its significance into all 8 neighbours' flags words and its
/// sign into the 4 horizontal/vertical ones. The lattice is padded by one
/// cell on every side, so border samples write into padding harmlessly.
#[inline]
fn set_significant(flags: &mut [u32], stride: usize, i: usize, neg: bool) {
    let neg = neg as u32;
    flags[i] |= F_SELF_SIG;
    // The west neighbour sees us as its east neighbour, and so on.
    flags[i - 1] |= F_SIG_E | (neg * F_NEG_E);
    flags[i + 1] |= F_SIG_W | (neg * F_NEG_W);
    flags[i - stride] |= F_SIG_S | (neg * F_NEG_S);
    flags[i + stride] |= F_SIG_N | (neg * F_NEG_N);
    flags[i - stride - 1] |= F_SIG_SE;
    flags[i - stride + 1] |= F_SIG_SW;
    flags[i + stride - 1] |= F_SIG_NE;
    flags[i + stride + 1] |= F_SIG_NW;
}

/// The LL/LH significance table (HL uses it with h and v swapped).
pub(crate) const fn zc_table_hv(h: u32, v: u32, d: u32) -> usize {
    match h {
        2 => 8,
        1 => {
            if v >= 1 {
                7
            } else if d >= 1 {
                6
            } else {
                5
            }
        }
        _ => match v {
            2 => 4,
            1 => 3,
            _ => {
                if d >= 2 {
                    2
                } else if d == 1 {
                    1
                } else {
                    0
                }
            }
        },
    }
}

/// The HH significance table, keyed on the diagonal count first.
pub(crate) const fn zc_table_diag(d: u32, hv: u32) -> usize {
    match d {
        0 => {
            if hv >= 2 {
                2
            } else if hv == 1 {
                1
            } else {
                0
            }
        }
        1 => {
            if hv >= 2 {
                5
            } else if hv == 1 {
                4
            } else {
                3
            }
        }
        2 => {
            if hv >= 1 {
                7
            } else {
                6
            }
        }
        _ => 8,
    }
}

/// Builds a zero-coding LUT over the 8 neighbour-significance bits. With
/// `swap`, horizontal and vertical counts swap roles (the HL orientation).
const fn build_zc_lut_hv(swap: bool) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut f = 0usize;
    while f < 256 {
        let h = ((f & 1) + ((f >> 1) & 1)) as u32;
        let v = (((f >> 2) & 1) + ((f >> 3) & 1)) as u32;
        let d = (((f >> 4) & 1) + ((f >> 5) & 1) + ((f >> 6) & 1) + ((f >> 7) & 1)) as u32;
        t[f] = if swap {
            zc_table_hv(v, h, d) as u8
        } else {
            zc_table_hv(h, v, d) as u8
        };
        f += 1;
    }
    t
}

/// The HH-orientation zero-coding LUT (diagonal count keys first).
const fn build_zc_lut_diag() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut f = 0usize;
    while f < 256 {
        let h = ((f & 1) + ((f >> 1) & 1)) as u32;
        let v = (((f >> 2) & 1) + ((f >> 3) & 1)) as u32;
        let d = (((f >> 4) & 1) + ((f >> 5) & 1) + ((f >> 6) & 1) + ((f >> 7) & 1)) as u32;
        t[f] = zc_table_diag(d, h + v) as u8;
        f += 1;
    }
    t
}

/// Sign contribution of one neighbour: +1 significant positive,
/// −1 significant negative, 0 insignificant.
const fn sign_contrib(sig: bool, neg: bool) -> i32 {
    if !sig {
        0
    } else if neg {
        -1
    } else {
        1
    }
}

const fn clamp1(v: i32) -> i32 {
    if v > 1 {
        1
    } else if v < -1 {
        -1
    } else {
        v
    }
}

/// Builds the sign-coding LUT. Index bits: 0..=3 significance of W/E/N/S,
/// 4..=7 negativity of W/E/N/S. Entry: low 3 bits the context offset
/// (0..=4), bit 3 the XOR flag.
const fn build_sc_lut() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let cw = sign_contrib(i & 1 != 0, i & 0x10 != 0);
        let ce = sign_contrib(i & 2 != 0, i & 0x20 != 0);
        let cn = sign_contrib(i & 4 != 0, i & 0x40 != 0);
        let cs = sign_contrib(i & 8 != 0, i & 0x80 != 0);
        let hc = clamp1(cw + ce);
        let vc = clamp1(cn + cs);
        // The T.800 sign-coding table (offset, xor), mirrored for hc < 0.
        let (off, xor) = if hc == 1 {
            (
                if vc == 1 {
                    4
                } else if vc == 0 {
                    3
                } else {
                    2
                },
                0u8,
            )
        } else if hc == 0 {
            (if vc == 0 { 0 } else { 1 }, (vc < 0) as u8)
        } else {
            (
                if vc == 1 {
                    2
                } else if vc == 0 {
                    3
                } else {
                    4
                },
                1u8,
            )
        };
        t[i] = off | (xor << 3);
        i += 1;
    }
    t
}

/// Zero-coding LUTs indexed by the low 8 flags bits, per orientation.
const LUT_ZC_HV: [u8; 256] = build_zc_lut_hv(false);
const LUT_ZC_VH: [u8; 256] = build_zc_lut_hv(true);
const LUT_ZC_DIAG: [u8; 256] = build_zc_lut_diag();
/// Sign-coding LUT (offset + XOR), see [`build_sc_lut`].
const LUT_SC: [u8; 256] = build_sc_lut();

/// The zero-coding LUT for a band orientation.
#[inline]
fn zc_lut(kind: BandKind) -> &'static [u8; 256] {
    match kind {
        BandKind::Ll | BandKind::Lh => &LUT_ZC_HV,
        BandKind::Hl => &LUT_ZC_VH,
        BandKind::Hh => &LUT_ZC_DIAG,
    }
}

/// Sign-coding context and XOR bit from a flags word.
#[inline]
fn sc_lookup(f: u32) -> (usize, bool) {
    let lu = LUT_SC[((f & 0xF) | ((f >> 4) & 0xF0)) as usize];
    (CTX_SC + (lu & 7) as usize, lu & 8 != 0)
}

/// Magnitude-refinement context from a flags word.
#[inline]
fn mr_lookup(f: u32) -> usize {
    if f & F_REFINED != 0 {
        CTX_MR + 2
    } else if f & F_NEIGH_SIG != 0 {
        CTX_MR + 1
    } else {
        CTX_MR
    }
}

/// Result of encoding one code-block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1EncodedBlock {
    /// The MQ codeword segment (all passes, single segment).
    pub data: Vec<u8>,
    /// Number of coding passes contained (`3·Mb − 2`, or 0 for an
    /// all-zero block).
    pub num_passes: u32,
    /// Number of magnitude bit-planes `Mb`.
    pub num_bitplanes: u8,
}

/// The initial context states mandated by the standard: UNIFORM starts at
/// state 46, run-length at 3, the all-zero-neighbourhood ZC context at 4,
/// everything else at 0.
pub fn initial_contexts() -> [MqContext; NUM_CONTEXTS] {
    let mut ctxs = [MqContext::with_state(0); NUM_CONTEXTS];
    ctxs[CTX_ZC] = MqContext::with_state(4);
    ctxs[CTX_RL] = MqContext::with_state(3);
    ctxs[CTX_UNI] = MqContext::with_state(46);
    ctxs
}

/// Encodes one code-block of quantised coefficients.
///
/// `mags` holds the magnitudes, `negative` the sign of each sample
/// (`true` = negative), both row-major `w × h`.
///
/// # Panics
///
/// Panics if the slice lengths do not match `w * h`.
pub fn encode_block(
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
) -> T1EncodedBlock {
    let (mut segments, mb) = encode_block_layers(mags, negative, w, h, kind, 1);
    match segments.pop() {
        Some(seg) => T1EncodedBlock {
            data: seg.data,
            num_passes: seg.num_passes,
            num_bitplanes: mb,
        },
        None => T1EncodedBlock {
            data: Vec::new(),
            num_passes: 0,
            num_bitplanes: 0,
        },
    }
}

/// One coding pass of the EBCOT schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    Significance,
    Refinement,
    Cleanup,
}

/// The EBCOT pass schedule for `mb` bit-planes: cleanup only on the most
/// significant plane, all three passes below it. The boolean marks passes
/// after which the per-plane VISITED flags reset.
fn pass_sequence(mb: u32) -> Vec<(PassKind, u32, bool)> {
    let mut seq = Vec::new();
    for p in (0..mb).rev() {
        if p != mb - 1 {
            seq.push((PassKind::Significance, p, false));
            seq.push((PassKind::Refinement, p, false));
        }
        seq.push((PassKind::Cleanup, p, true));
    }
    seq
}

/// One MQ codeword segment of a layered code-block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1Segment {
    /// The terminated MQ codeword covering this segment's passes.
    pub data: Vec<u8>,
    /// Number of coding passes in the segment.
    pub num_passes: u32,
}

/// Encodes one code-block into `num_layers` independently terminated MQ
/// codeword segments (the standard's codeword-termination mode): contexts
/// persist across segments, but each segment's arithmetic codeword is
/// flushed, so a decoder holding only the first *k* segments can decode
/// exactly their passes — the mechanism behind quality layers.
///
/// Passes distribute evenly over layers with earlier layers taking the
/// remainder (most-significant data first). Returns the segments (empty
/// for an all-zero block) and the bit-plane count `Mb`.
///
/// # Panics
///
/// Panics if the slice lengths do not match `w * h` or `num_layers == 0`.
pub fn encode_block_layers(
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    kind: BandKind,
    num_layers: usize,
) -> (Vec<T1Segment>, u8) {
    assert_eq!(mags.len(), w * h);
    assert_eq!(negative.len(), w * h);
    assert!(num_layers > 0, "at least one layer");
    let mb = mags
        .iter()
        .map(|&m| 32 - m.leading_zeros())
        .max()
        .unwrap_or(0) as u8;
    if mb == 0 {
        return (Vec::new(), 0);
    }
    let seq = pass_sequence(mb as u32);
    let total = seq.len();
    // Contiguous pass ranges per layer, remainder to the earliest layers.
    let mut boundaries = Vec::with_capacity(num_layers);
    let (base, rem) = (total / num_layers, total % num_layers);
    let mut acc = 0usize;
    for l in 0..num_layers {
        acc += base + usize::from(l < rem);
        boundaries.push(acc);
    }

    let zc = zc_lut(kind);
    let mut flags = vec![0u32; (w + 2) * (h + 2)];
    let mut ctxs = initial_contexts();
    let mut mq = MqEncoder::new();
    let mut segments = Vec::with_capacity(num_layers);
    let mut passes_in_segment = 0u32;
    let mut next_boundary = 0usize;
    for (i, &(pass, p, clear)) in seq.iter().enumerate() {
        match pass {
            PassKind::Significance => {
                enc_sig_pass(&mut mq, &mut ctxs, &mut flags, mags, negative, w, h, zc, p)
            }
            PassKind::Refinement => enc_ref_pass(&mut mq, &mut ctxs, &mut flags, mags, w, h, p),
            PassKind::Cleanup => {
                enc_cleanup_pass(&mut mq, &mut ctxs, &mut flags, mags, negative, w, h, zc, p)
            }
        }
        if clear {
            for f in &mut flags {
                *f &= !F_VISITED;
            }
        }
        passes_in_segment += 1;
        if i + 1 == boundaries[next_boundary] {
            let done = std::mem::take(&mut mq);
            segments.push(T1Segment {
                data: done.finish(),
                num_passes: passes_in_segment,
            });
            passes_in_segment = 0;
            next_boundary += 1;
        }
    }
    debug_assert_eq!(passes_in_segment, 0, "all passes flushed");
    (segments, mb)
}

#[allow(clippy::too_many_arguments)]
fn enc_sig_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u32],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    zc: &[u8; 256],
    p: u32,
) {
    let stride = w + 2;
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        let mut col_i = (sy + 1) * stride + 1;
        let mut col_j = sy * w;
        let col_end = col_i + w;
        while col_i < col_end {
            let (mut i, mut j) = (col_i, col_j);
            for _dy in 0..sh {
                let f = flags[i];
                // Only insignificant samples with a significant
                // neighbourhood belong to this pass.
                if f & F_SELF_SIG == 0 && f & F_NEIGH_SIG != 0 {
                    let bit = (mags[j] >> p) & 1 != 0;
                    mq.encode(&mut ctxs[CTX_ZC + zc[(f & 0xFF) as usize] as usize], bit);
                    if bit {
                        let (sc, xor) = sc_lookup(f);
                        mq.encode(&mut ctxs[sc], negative[j] ^ xor);
                        set_significant(flags, stride, i, negative[j]);
                    }
                    flags[i] |= F_VISITED;
                }
                i += stride;
                j += w;
            }
            col_i += 1;
            col_j += 1;
        }
        sy += 4;
    }
}

fn enc_ref_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u32],
    mags: &[u32],
    w: usize,
    h: usize,
    p: u32,
) {
    let stride = w + 2;
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        let mut col_i = (sy + 1) * stride + 1;
        let mut col_j = sy * w;
        let col_end = col_i + w;
        while col_i < col_end {
            let (mut i, mut j) = (col_i, col_j);
            for _dy in 0..sh {
                let f = flags[i];
                if f & F_SELF_SIG != 0 && f & F_VISITED == 0 {
                    mq.encode(&mut ctxs[mr_lookup(f)], (mags[j] >> p) & 1 != 0);
                    flags[i] |= F_REFINED;
                }
                i += stride;
                j += w;
            }
            col_i += 1;
            col_j += 1;
        }
        sy += 4;
    }
}

#[allow(clippy::too_many_arguments)]
fn enc_cleanup_pass(
    mq: &mut MqEncoder,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u32],
    mags: &[u32],
    negative: &[bool],
    w: usize,
    h: usize,
    zc: &[u8; 256],
    p: u32,
) {
    let stride = w + 2;
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        let mut col_i = (sy + 1) * stride + 1;
        let mut col_j = sy * w;
        let col_end = col_i + w;
        while col_i < col_end {
            let mut dy = 0;
            // Run-length mode: a full stripe column, all four samples
            // uncoded, insignificant and with empty neighbourhoods —
            // a single OR over the four flags words decides.
            if sh == 4 {
                let combined = flags[col_i]
                    | flags[col_i + stride]
                    | flags[col_i + 2 * stride]
                    | flags[col_i + 3 * stride];
                if combined & (F_SELF_SIG | F_VISITED | F_NEIGH_SIG) == 0 {
                    let first_one = (0..4).find(|&k| (mags[col_j + k * w] >> p) & 1 != 0);
                    match first_one {
                        None => {
                            mq.encode(&mut ctxs[CTX_RL], false);
                            col_i += 1;
                            col_j += 1;
                            continue; // whole column stays zero
                        }
                        Some(k) => {
                            mq.encode(&mut ctxs[CTX_RL], true);
                            mq.encode(&mut ctxs[CTX_UNI], k & 2 != 0);
                            mq.encode(&mut ctxs[CTX_UNI], k & 1 != 0);
                            let i = col_i + k * stride;
                            let j = col_j + k * w;
                            let (sc, xor) = sc_lookup(flags[i]);
                            mq.encode(&mut ctxs[sc], negative[j] ^ xor);
                            set_significant(flags, stride, i, negative[j]);
                            dy = k + 1;
                        }
                    }
                }
            }
            // Remaining samples of the column: normal cleanup coding.
            let (mut i, mut j) = (col_i + dy * stride, col_j + dy * w);
            while dy < sh {
                let f = flags[i];
                if f & (F_SELF_SIG | F_VISITED) == 0 {
                    let bit = (mags[j] >> p) & 1 != 0;
                    mq.encode(&mut ctxs[CTX_ZC + zc[(f & 0xFF) as usize] as usize], bit);
                    if bit {
                        let (sc, xor) = sc_lookup(f);
                        mq.encode(&mut ctxs[sc], negative[j] ^ xor);
                        set_significant(flags, stride, i, negative[j]);
                    }
                }
                i += stride;
                j += w;
                dy += 1;
            }
            col_i += 1;
            col_j += 1;
        }
        sy += 4;
    }
}

/// Reusable Tier-1 decode buffers: the flags lattice plus the magnitude
/// and sign planes. One instance serves any sequence of code-blocks (the
/// buffers grow to the largest block seen and are reused), eliminating
/// the three per-block allocations of the plain
/// [`decode_block_segments`].
#[derive(Debug, Clone, Default)]
pub struct T1Scratch {
    flags: Vec<u32>,
    mags: Vec<u32>,
    negative: Vec<bool>,
    counters: T1Counters,
}

/// Running Tier-1 work counters, accumulated across every block a
/// [`T1Scratch`] decodes. Plain integer adds on the per-block (not
/// per-decision) path — free to keep enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct T1Counters {
    /// Code-blocks decoded.
    pub blocks: u64,
    /// Coding passes executed.
    pub coding_passes: u64,
    /// Compressed bytes consumed.
    pub bytes_in: u64,
    /// MQ renormalisations (exits from the MPS fast path).
    pub mq_renorms: u64,
}

impl T1Counters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &T1Counters) {
        self.blocks = self.blocks.saturating_add(other.blocks);
        self.coding_passes = self.coding_passes.saturating_add(other.coding_passes);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.mq_renorms = self.mq_renorms.saturating_add(other.mq_renorms);
    }
}

impl T1Scratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The work counters accumulated so far.
    pub fn counters(&self) -> T1Counters {
        self.counters
    }

    /// Decodes a code-block like [`decode_block_segments`], but into this
    /// scratch's reused buffers. The returned slices are valid until the
    /// next call.
    pub fn decode_block_segments(
        &mut self,
        segments: &[(&[u8], u32)],
        w: usize,
        h: usize,
        kind: BandKind,
        mb: u8,
    ) -> (&[u32], &[bool]) {
        let renorms = decode_segments_core(
            &mut self.flags,
            &mut self.mags,
            &mut self.negative,
            segments,
            w,
            h,
            kind,
            mb,
        );
        self.counters.blocks += 1;
        self.counters.coding_passes += segments.iter().map(|&(_, n)| n as u64).sum::<u64>();
        self.counters.bytes_in += segments.iter().map(|&(d, _)| d.len() as u64).sum::<u64>();
        self.counters.mq_renorms += renorms;
        (&self.mags, &self.negative)
    }
}

/// Decodes one code-block back into `(magnitudes, negative)` arrays.
///
/// `num_passes` is the pass count from the packet header; the number of
/// bit-planes is `(num_passes + 2) / 3`.
pub fn decode_block(
    data: &[u8],
    w: usize,
    h: usize,
    kind: BandKind,
    num_passes: u32,
) -> (Vec<u32>, Vec<bool>) {
    if num_passes == 0 {
        return (vec![0; w * h], vec![false; w * h]);
    }
    let mb = num_passes.div_ceil(3);
    decode_block_segments(&[(data, num_passes)], w, h, kind, mb as u8)
}

/// Decodes a code-block from one or more terminated codeword segments
/// (the layered form of [`encode_block_layers`]). `mb` is the bit-plane
/// count signalled by the packet header's zero-bit-plane field; fewer
/// passes than the full schedule yield the standard's partial (quality-
/// truncated) reconstruction.
pub fn decode_block_segments(
    segments: &[(&[u8], u32)],
    w: usize,
    h: usize,
    kind: BandKind,
    mb: u8,
) -> (Vec<u32>, Vec<bool>) {
    let mut flags = Vec::new();
    let mut mags = Vec::new();
    let mut negative = Vec::new();
    decode_segments_core(
        &mut flags,
        &mut mags,
        &mut negative,
        segments,
        w,
        h,
        kind,
        mb,
    );
    (mags, negative)
}

/// Returns the number of MQ renormalisations performed, summed across
/// every codeword segment of the block.
#[allow(clippy::too_many_arguments)]
fn decode_segments_core(
    flags: &mut Vec<u32>,
    mags: &mut Vec<u32>,
    negative: &mut Vec<bool>,
    segments: &[(&[u8], u32)],
    w: usize,
    h: usize,
    kind: BandKind,
    mb: u8,
) -> u64 {
    mags.clear();
    mags.resize(w * h, 0);
    negative.clear();
    negative.resize(w * h, false);
    if mb == 0 || w == 0 || h == 0 || segments.is_empty() {
        return 0;
    }
    flags.clear();
    flags.resize((w + 2) * (h + 2), 0);
    let zc = zc_lut(kind);
    let seq = pass_sequence(mb as u32);
    let total_passes: u32 = segments.iter().map(|&(_, n)| n).sum();
    let mut ctxs = initial_contexts();
    let mut seg_iter = segments.iter();
    let (mut seg_data, mut seg_left) = match seg_iter.next() {
        Some(&(d, n)) => (d, n),
        None => return 0,
    };
    let mut renorms = 0u64;
    let mut mq = MqDecoder::new(seg_data);
    for &(pass, p, clear) in seq.iter().take(total_passes as usize) {
        while seg_left == 0 {
            match seg_iter.next() {
                Some(&(d, n)) => {
                    seg_data = d;
                    seg_left = n;
                    renorms += mq.renorms();
                    mq = MqDecoder::new(seg_data);
                }
                None => return renorms + mq.renorms(),
            }
        }
        match pass {
            PassKind::Significance => {
                dec_sig_pass(&mut mq, &mut ctxs, flags, mags, negative, w, h, zc, p)
            }
            PassKind::Refinement => dec_ref_pass(&mut mq, &mut ctxs, flags, mags, w, h, p),
            PassKind::Cleanup => {
                dec_cleanup_pass(&mut mq, &mut ctxs, flags, mags, negative, w, h, zc, p)
            }
        }
        if clear {
            for f in flags.iter_mut() {
                *f &= !F_VISITED;
            }
        }
        seg_left -= 1;
    }
    renorms + mq.renorms()
}

#[allow(clippy::too_many_arguments)]
fn dec_sig_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u32],
    mags: &mut [u32],
    negative: &mut [bool],
    w: usize,
    h: usize,
    zc: &[u8; 256],
    p: u32,
) {
    let stride = w + 2;
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        let mut col_i = (sy + 1) * stride + 1;
        let mut col_j = sy * w;
        let col_end = col_i + w;
        while col_i < col_end {
            let (mut i, mut j) = (col_i, col_j);
            for _dy in 0..sh {
                let f = flags[i];
                if f & F_SELF_SIG == 0 && f & F_NEIGH_SIG != 0 {
                    let bit = mq.decode(&mut ctxs[CTX_ZC + zc[(f & 0xFF) as usize] as usize]);
                    if bit {
                        let (sc, xor) = sc_lookup(f);
                        let neg = mq.decode(&mut ctxs[sc]) ^ xor;
                        negative[j] = neg;
                        mags[j] |= 1 << p;
                        set_significant(flags, stride, i, neg);
                    }
                    flags[i] |= F_VISITED;
                }
                i += stride;
                j += w;
            }
            col_i += 1;
            col_j += 1;
        }
        sy += 4;
    }
}

fn dec_ref_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u32],
    mags: &mut [u32],
    w: usize,
    h: usize,
    p: u32,
) {
    let stride = w + 2;
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        let mut col_i = (sy + 1) * stride + 1;
        let mut col_j = sy * w;
        let col_end = col_i + w;
        while col_i < col_end {
            let (mut i, mut j) = (col_i, col_j);
            for _dy in 0..sh {
                let f = flags[i];
                if f & F_SELF_SIG != 0 && f & F_VISITED == 0 {
                    if mq.decode(&mut ctxs[mr_lookup(f)]) {
                        mags[j] |= 1 << p;
                    }
                    flags[i] |= F_REFINED;
                }
                i += stride;
                j += w;
            }
            col_i += 1;
            col_j += 1;
        }
        sy += 4;
    }
}

#[allow(clippy::too_many_arguments)]
fn dec_cleanup_pass(
    mq: &mut MqDecoder<'_>,
    ctxs: &mut [MqContext; NUM_CONTEXTS],
    flags: &mut [u32],
    mags: &mut [u32],
    negative: &mut [bool],
    w: usize,
    h: usize,
    zc: &[u8; 256],
    p: u32,
) {
    let stride = w + 2;
    let mut sy = 0;
    while sy < h {
        let sh = (h - sy).min(4);
        let mut col_i = (sy + 1) * stride + 1;
        let mut col_j = sy * w;
        let col_end = col_i + w;
        while col_i < col_end {
            let mut dy = 0;
            if sh == 4 {
                let combined = flags[col_i]
                    | flags[col_i + stride]
                    | flags[col_i + 2 * stride]
                    | flags[col_i + 3 * stride];
                if combined & (F_SELF_SIG | F_VISITED | F_NEIGH_SIG) == 0 {
                    if !mq.decode(&mut ctxs[CTX_RL]) {
                        col_i += 1;
                        col_j += 1;
                        continue; // whole column zero
                    }
                    let k = ((mq.decode(&mut ctxs[CTX_UNI]) as usize) << 1)
                        | mq.decode(&mut ctxs[CTX_UNI]) as usize;
                    let i = col_i + k * stride;
                    let j = col_j + k * w;
                    let (sc, xor) = sc_lookup(flags[i]);
                    let neg = mq.decode(&mut ctxs[sc]) ^ xor;
                    negative[j] = neg;
                    mags[j] |= 1 << p;
                    set_significant(flags, stride, i, neg);
                    dy = k + 1;
                }
            }
            let (mut i, mut j) = (col_i + dy * stride, col_j + dy * w);
            while dy < sh {
                let f = flags[i];
                if f & (F_SELF_SIG | F_VISITED) == 0
                    && mq.decode(&mut ctxs[CTX_ZC + zc[(f & 0xFF) as usize] as usize])
                {
                    let (sc, xor) = sc_lookup(f);
                    let neg = mq.decode(&mut ctxs[sc]) ^ xor;
                    negative[j] = neg;
                    mags[j] |= 1 << p;
                    set_significant(flags, stride, i, neg);
                }
                i += stride;
                j += w;
                dy += 1;
            }
            col_i += 1;
            col_j += 1;
        }
        sy += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(mags: Vec<u32>, negative: Vec<bool>, w: usize, h: usize, kind: BandKind) {
        let enc = encode_block(&mags, &negative, w, h, kind);
        let (dm, dn) = decode_block(&enc.data, w, h, kind, enc.num_passes);
        assert_eq!(dm, mags, "magnitudes {w}x{h} {kind:?}");
        // Signs only matter where magnitude is non-zero.
        for i in 0..mags.len() {
            if mags[i] != 0 {
                assert_eq!(dn[i], negative[i], "sign at {i}");
            }
        }
    }

    fn random_block(
        w: usize,
        h: usize,
        seed: u64,
        zero_prob: f64,
        max_mag: u32,
    ) -> (Vec<u32>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mags: Vec<u32> = (0..w * h)
            .map(|_| {
                if rng.gen_bool(zero_prob) {
                    0
                } else {
                    rng.gen_range(1..=max_mag)
                }
            })
            .collect();
        let negative: Vec<bool> = (0..w * h).map(|_| rng.gen_bool(0.5)).collect();
        (mags, negative)
    }

    #[test]
    fn all_zero_block_has_no_passes() {
        let enc = encode_block(&[0; 16], &[false; 16], 4, 4, BandKind::Ll);
        assert_eq!(enc.num_passes, 0);
        assert_eq!(enc.num_bitplanes, 0);
        assert!(enc.data.is_empty());
        let (m, _) = decode_block(&enc.data, 4, 4, BandKind::Ll, 0);
        assert!(m.iter().all(|&v| v == 0));
    }

    #[test]
    fn single_coefficient_roundtrip() {
        let mut mags = vec![0u32; 64];
        let mut neg = vec![false; 64];
        mags[27] = 13;
        neg[27] = true;
        roundtrip(mags, neg, 8, 8, BandKind::Hl);
    }

    #[test]
    fn passes_formula() {
        let mut mags = vec![0u32; 16];
        mags[0] = 0b101; // 3 bit-planes
        let enc = encode_block(&mags, &[false; 16], 4, 4, BandKind::Ll);
        assert_eq!(enc.num_bitplanes, 3);
        assert_eq!(enc.num_passes, 7);
    }

    #[test]
    fn dense_random_blocks_roundtrip_all_orientations() {
        for kind in [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh] {
            let (mags, neg) = random_block(16, 16, 42, 0.3, 255);
            roundtrip(mags, neg, 16, 16, kind);
        }
    }

    #[test]
    fn sparse_random_blocks_roundtrip() {
        for seed in 0..5 {
            let (mags, neg) = random_block(32, 32, seed, 0.95, 1000);
            roundtrip(mags, neg, 32, 32, BandKind::Hh);
        }
    }

    #[test]
    fn non_multiple_of_four_heights() {
        for h in [1usize, 2, 3, 5, 6, 7, 9] {
            let (mags, neg) = random_block(7, h, h as u64, 0.5, 63);
            roundtrip(mags, neg, 7, h, BandKind::Lh);
        }
    }

    #[test]
    fn single_row_and_column_blocks() {
        let (mags, neg) = random_block(16, 1, 3, 0.4, 15);
        roundtrip(mags, neg, 16, 1, BandKind::Ll);
        let (mags, neg) = random_block(1, 16, 4, 0.4, 15);
        roundtrip(mags, neg, 1, 16, BandKind::Hh);
    }

    #[test]
    fn large_magnitudes() {
        let mut mags = vec![0u32; 64];
        mags[0] = 65_535;
        mags[63] = 32_768;
        let mut neg = vec![false; 64];
        neg[63] = true;
        roundtrip(mags, neg, 8, 8, BandKind::Ll);
    }

    #[test]
    fn compression_is_effective_on_sparse_data() {
        let (mags, neg) = random_block(64, 64, 5, 0.98, 127);
        let enc = encode_block(&mags, &neg, 64, 64, BandKind::Hh);
        // 4096 samples, ~2% significant: far below raw size.
        assert!(
            enc.data.len() < 1200,
            "sparse block should compress, got {} bytes",
            enc.data.len()
        );
    }

    #[test]
    fn layered_encoding_roundtrips_for_any_layer_count() {
        let (mags, neg) = random_block(16, 16, 21, 0.5, 511);
        let reference = encode_block(&mags, &neg, 16, 16, BandKind::Lh);
        for layers in 1..=7 {
            let (segments, mb) = encode_block_layers(&mags, &neg, 16, 16, BandKind::Lh, layers);
            assert_eq!(mb, reference.num_bitplanes);
            let total: u32 = segments.iter().map(|s| s.num_passes).sum();
            assert_eq!(total, reference.num_passes, "{layers} layers");
            let refs: Vec<(&[u8], u32)> = segments
                .iter()
                .map(|s| (s.data.as_slice(), s.num_passes))
                .collect();
            let (dm, dn) = decode_block_segments(&refs, 16, 16, BandKind::Lh, mb);
            assert_eq!(dm, mags, "{layers} layers");
            for i in 0..mags.len() {
                if mags[i] != 0 {
                    assert_eq!(dn[i], neg[i]);
                }
            }
        }
    }

    #[test]
    fn truncated_layers_give_progressively_better_magnitudes() {
        let (mags, neg) = random_block(16, 16, 22, 0.4, 1023);
        let (segments, mb) = encode_block_layers(&mags, &neg, 16, 16, BandKind::Hl, 4);
        let mut last_err = u64::MAX;
        for keep in 1..=4 {
            let refs: Vec<(&[u8], u32)> = segments[..keep]
                .iter()
                .map(|s| (s.data.as_slice(), s.num_passes))
                .collect();
            let (dm, _) = decode_block_segments(&refs, 16, 16, BandKind::Hl, mb);
            let err: u64 = dm
                .iter()
                .zip(&mags)
                .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
                .sum();
            assert!(
                err <= last_err,
                "keeping {keep} layers must not increase error: {err} > {last_err}"
            );
            last_err = err;
        }
        assert_eq!(last_err, 0, "all layers reconstruct exactly");
    }

    #[test]
    fn pass_sequence_shape() {
        assert!(pass_sequence(0).is_empty());
        let s1 = pass_sequence(1);
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].0, PassKind::Cleanup);
        let s3 = pass_sequence(3);
        assert_eq!(s3.len(), 7); // 3*3 - 2
        assert_eq!(s3[0], (PassKind::Cleanup, 2, true));
        assert_eq!(s3[1], (PassKind::Significance, 1, false));
        assert_eq!(s3[6], (PassKind::Cleanup, 0, true));
    }

    #[test]
    fn context_tables_cover_expected_ranges() {
        for h in 0..=2u32 {
            for v in 0..=2u32 {
                for d in 0..=4u32 {
                    assert!(zc_table_hv(h, v, d) <= 8);
                    assert!(zc_table_diag(d, h + v) <= 8);
                }
            }
        }
    }

    #[test]
    fn initial_context_states() {
        let c = initial_contexts();
        assert_eq!(c[CTX_UNI].state, 46);
        assert_eq!(c[CTX_RL].state, 3);
        assert_eq!(c[CTX_ZC].state, 4);
        assert_eq!(c[CTX_ZC + 1].state, 0);
        assert_eq!(c[CTX_SC].state, 0);
    }

    #[test]
    fn scratch_decode_matches_plain_and_is_reusable() {
        let mut scratch = T1Scratch::new();
        // Decreasing then increasing sizes: buffers shrink and regrow.
        for (w, h, seed) in [(32usize, 32usize, 1u64), (8, 8, 2), (16, 5, 3), (64, 64, 4)] {
            let (mags, neg) = random_block(w, h, seed, 0.6, 511);
            let enc = encode_block(&mags, &neg, w, h, BandKind::Hl);
            let plain = decode_block(&enc.data, w, h, BandKind::Hl, enc.num_passes);
            let mb = enc.num_passes.div_ceil(3) as u8;
            let (sm, sn) = scratch.decode_block_segments(
                &[(&enc.data, enc.num_passes)],
                w,
                h,
                BandKind::Hl,
                mb,
            );
            assert_eq!(sm, plain.0.as_slice(), "{w}x{h}");
            assert_eq!(sn, plain.1.as_slice(), "{w}x{h}");
        }
    }

    // -----------------------------------------------------------------
    // LUT-vs-oracle checks: the compile-time tables must agree with the
    // T.800 context logic (exhaustively) and the lattice coder with the
    // retained reference implementation (property-tested).
    // -----------------------------------------------------------------

    #[test]
    fn zc_luts_match_oracle_tables_exhaustively() {
        for f in 0usize..256 {
            let h = ((f & 1) + ((f >> 1) & 1)) as u32;
            let v = (((f >> 2) & 1) + ((f >> 3) & 1)) as u32;
            let d = (f as u32 >> 4).count_ones();
            assert_eq!(LUT_ZC_HV[f] as usize, zc_table_hv(h, v, d), "flags {f:#x}");
            assert_eq!(LUT_ZC_VH[f] as usize, zc_table_hv(v, h, d), "flags {f:#x}");
            assert_eq!(
                LUT_ZC_DIAG[f] as usize,
                zc_table_diag(d, h + v),
                "flags {f:#x}"
            );
        }
    }

    #[test]
    fn sc_lut_matches_reference_grid_exhaustively() {
        // Enumerate all sign/significance assignments of the 4 h/v
        // neighbours on a 3x3 reference grid centred on (1, 1).
        for m in 0usize..256 {
            let (sw, se, sn, ss) = (m & 1 != 0, m & 2 != 0, m & 4 != 0, m & 8 != 0);
            let (nw_, ne_, nn, ns) = (m & 16 != 0, m & 32 != 0, m & 64 != 0, m & 128 != 0);
            let mut rflags = [0u8; 9];
            let mut rneg = [false; 9];
            for (sig, neg, idx) in [
                (sw, nw_, 3usize), // west of centre
                (se, ne_, 5),      // east
                (sn, nn, 1),       // north
                (ss, ns, 7),       // south
            ] {
                if sig {
                    rflags[idx] = 1; // reference::F_SIG
                    rneg[idx] = neg;
                }
            }
            let grid = reference::Grid {
                w: 3,
                h: 3,
                flags: &rflags,
                negative: &rneg,
            };
            let expect = grid.sc_context(1, 1);
            // Build the equivalent flags word (sign bits only matter when
            // the significance bit is set, mirroring set_significant).
            let mut f = 0u32;
            if sw {
                f |= F_SIG_W | if nw_ { F_NEG_W } else { 0 };
            }
            if se {
                f |= F_SIG_E | if ne_ { F_NEG_E } else { 0 };
            }
            if sn {
                f |= F_SIG_N | if nn { F_NEG_N } else { 0 };
            }
            if ss {
                f |= F_SIG_S | if ns { F_NEG_S } else { 0 };
            }
            assert_eq!(sc_lookup(f), expect, "mask {m:#x}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The flags-lattice encoder emits byte-identical segments to the
        /// reference encoder over random geometries (1×1 up to 64×64),
        /// all four band orientations, lossless-scale and lossy-scale
        /// magnitudes, and any layer count.
        #[test]
        fn lattice_encode_is_bit_exact_vs_reference(
            w in 1usize..=64,
            h in 1usize..=64,
            kind_sel in 0usize..4,
            layers in 1usize..=4,
            dense in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let kind = [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh][kind_sel];
            let (zero_prob, max_mag) = if dense { (0.3, 40_000) } else { (0.9, 255) };
            let (mags, neg) = random_block(w, h, seed, zero_prob, max_mag);
            let (fast, fast_mb) = encode_block_layers(&mags, &neg, w, h, kind, layers);
            let (refr, ref_mb) = reference::encode_block_layers(&mags, &neg, w, h, kind, layers);
            prop_assert_eq!(fast_mb, ref_mb);
            prop_assert_eq!(fast, refr);
        }

        /// The flags-lattice decoder reconstructs exactly what the
        /// reference decoder does, including partial (pass-truncated)
        /// segment sets.
        #[test]
        fn lattice_decode_is_bit_exact_vs_reference(
            w in 1usize..=64,
            h in 1usize..=64,
            kind_sel in 0usize..4,
            keep_num in 1u32..=100,
            seed in any::<u64>(),
        ) {
            let kind = [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh][kind_sel];
            let (mags, neg) = random_block(w, h, seed, 0.6, 4095);
            let enc = encode_block(&mags, &neg, w, h, kind);
            if enc.num_passes > 0 {
                // Truncate to a random prefix of the coding passes.
                let keep = 1 + keep_num % enc.num_passes;
                let mb = enc.num_passes.div_ceil(3) as u8;
                let segs: &[(&[u8], u32)] = &[(&enc.data, keep)];
                let fast = decode_block_segments(segs, w, h, kind, mb);
                let refr = reference::decode_block_segments(segs, w, h, kind, mb);
                prop_assert_eq!(fast, refr);
            }
        }
    }
}
