//! Top-level tiled encoder and (staged) decoder.
//!
//! The decoder is deliberately exposed **stage by stage** —
//! entropy decode (MQ/T1 + T2), inverse quantisation, inverse DWT,
//! inverse component transform, DC shift — because the OSSS case-study
//! models map exactly these stages onto software tasks and hardware
//! shared objects. [`decode`] simply runs all stages per tile and
//! measures each one's wall-clock share (the Figure 1 profile).

use std::time::{Duration, Instant};

use crate::codestream::{
    parse_codestream, parse_codestream_tolerant, write_codestream, MainHeader, QuantSpec,
    TileSegment, Wavelet,
};
use crate::ct::{
    dc_shift_forward, dc_shift_inverse, ict_forward, ict_inverse, rct_forward, rct_inverse,
};
use crate::dwt::{fdwt53_2d, fdwt97_2d, fixed_round, idwt53_2d_with, idwt97_2d_fixed_with};
use crate::error::{CodecError, CodecResult};
use crate::image::{Image, Plane};
use crate::quant::{band_step, dequantize_fixed, quantize, step_fixed, QuantMode};
use crate::scratch::DecodeScratch;
use crate::t2::{read_packet, write_packet, BandBlocks, BlockContribution};
use crate::tile::{codeblocks, resolution_bands, Band, Rect, TileGrid};

/// Maximum magnitude bit-planes a band may carry; the packet header codes
/// `KMAX − Mb` as the zero-bit-plane count.
pub const KMAX: u32 = 18;

/// Upper bound on `width × height × components` the decoder will accept
/// (2²⁸ samples ≈ 1 GiB of working planes). SIZ fields are 32-bit, so a
/// crafted header could otherwise demand exabyte allocations and abort
/// the process inside `Vec` before any tile data is even looked at; past
/// this bound [`StagedDecoder::new`] returns a structured error instead.
pub const MAX_DECODE_SAMPLES: u64 = 1 << 28;

/// Cap on errors a tolerant decode records per sink, so a pathological
/// stream (every code-block failing a check) cannot balloon the report.
pub const MAX_REPORTED_ERRORS: usize = 64;

/// Lossless (5/3 + RCT) or lossy (9/7 + ICT) operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Reversible path: LeGall 5/3, RCT, no quantisation. Bit-exact.
    Lossless,
    /// Irreversible path: CDF 9/7, ICT, dead-zone quantiser.
    Lossy {
        /// LL-band quantisation step (see [`crate::quant::band_step`]).
        base_step: f64,
    },
}

impl Mode {
    /// The lossy mode with the default step size (0.25, visually
    /// transparent for 8-bit content).
    pub fn lossy_default() -> Mode {
        Mode::Lossy { base_step: 0.25 }
    }
}

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeParams {
    /// Lossless or lossy.
    pub mode: Mode,
    /// DWT decomposition levels (capped per tile by its size).
    pub levels: u8,
    /// Quality layers: each code-block's passes split into this many
    /// independently terminated codeword segments.
    pub layers: u8,
    /// Code-blocks are `2^cb_exp` square.
    pub cb_exp: u8,
    /// Tile size; `None` encodes the image as a single tile.
    pub tile_size: Option<(usize, usize)>,
}

impl EncodeParams {
    /// Defaults: 3 decomposition levels, 32×32 code-blocks, single tile.
    pub fn new(mode: Mode) -> Self {
        EncodeParams {
            mode,
            levels: 3,
            layers: 1,
            cb_exp: 5,
            tile_size: None,
        }
    }

    /// Sets the number of quality layers.
    pub fn layers(mut self, layers: u8) -> Self {
        self.layers = layers;
        self
    }

    /// Sets the tile size.
    pub fn tile_size(mut self, w: usize, h: usize) -> Self {
        self.tile_size = Some((w, h));
        self
    }

    /// Sets the number of DWT levels.
    pub fn levels(mut self, levels: u8) -> Self {
        self.levels = levels;
        self
    }
}

/// Encodes `image` into a codestream.
///
/// # Errors
///
/// [`CodecError::InvalidParams`] for unsupported geometry or parameters.
pub fn encode(image: &Image, params: &EncodeParams) -> CodecResult<Vec<u8>> {
    if image.width == 0 || image.height == 0 {
        return Err(CodecError::invalid("empty image"));
    }
    if image.num_components() != 1 && image.num_components() != 3 {
        return Err(CodecError::invalid(
            "only 1- or 3-component images are supported",
        ));
    }
    if image.depth == 0 || image.depth > 12 {
        return Err(CodecError::invalid("bit depth must be 1..=12"));
    }
    if params.levels == 0 || params.levels > 8 {
        return Err(CodecError::invalid("levels must be 1..=8"));
    }
    if params.layers == 0 || params.layers > 16 {
        return Err(CodecError::invalid("layers must be 1..=16"));
    }
    if !(2..=10).contains(&params.cb_exp) {
        return Err(CodecError::invalid("cb_exp must be 2..=10"));
    }
    let (tile_w, tile_h) = params.tile_size.unwrap_or((image.width, image.height));
    if tile_w == 0 || tile_h == 0 {
        return Err(CodecError::invalid("zero tile size"));
    }
    let use_mct = image.num_components() == 3;
    let (wavelet, quant) = match params.mode {
        Mode::Lossless => (Wavelet::W53, QuantSpec::Reversible),
        Mode::Lossy { base_step } => {
            if base_step <= 0.0 {
                return Err(CodecError::invalid("base_step must be positive"));
            }
            (Wavelet::W97, QuantSpec::Irreversible { base_step })
        }
    };
    let header = MainHeader {
        width: image.width as u32,
        height: image.height as u32,
        tile_w: tile_w as u32,
        tile_h: tile_h as u32,
        num_components: image.num_components() as u16,
        depth: image.depth,
        levels: params.levels,
        layers: params.layers,
        cb_exp: params.cb_exp,
        use_mct,
        wavelet,
        quant,
    };
    let grid = TileGrid::new(image.width, image.height, tile_w, tile_h);
    let mut tiles = Vec::with_capacity(grid.count());
    for t in 0..grid.count() {
        tiles.push(TileSegment {
            index: t as u16,
            data: encode_tile(image, &header, grid.tile_rect(t))?,
        });
    }
    Ok(write_codestream(&header, &tiles))
}

fn quant_mode(header: &MainHeader) -> QuantMode {
    match header.quant {
        QuantSpec::Reversible => QuantMode::Reversible,
        QuantSpec::Irreversible { base_step } => QuantMode::Irreversible { base_step },
    }
}

fn encode_tile(image: &Image, header: &MainHeader, rect: Rect) -> CodecResult<Vec<u8>> {
    let (w, h) = (rect.w, rect.h);
    // Extract and level-shift the tile planes.
    let mut planes: Vec<Plane> = image
        .components
        .iter()
        .map(|c| c.crop(rect.x0, rect.y0, w, h))
        .collect();
    for p in &mut planes {
        dc_shift_forward(p, header.depth);
    }
    if header.use_mct {
        let (a, rest) = planes.split_at_mut(1);
        let (b, c) = rest.split_at_mut(1);
        match header.wavelet {
            Wavelet::W53 => rct_forward(&mut a[0], &mut b[0], &mut c[0]),
            Wavelet::W97 => ict_forward(&mut a[0], &mut b[0], &mut c[0]),
        }
    }

    // Wavelet + quantisation: a quantised Mallat plane per component.
    let mode = quant_mode(header);
    let levels = header.levels as usize;
    let mut qplanes: Vec<Vec<i32>> = Vec::with_capacity(planes.len());
    for p in &planes {
        match header.wavelet {
            Wavelet::W53 => {
                let mut buf = p.data.clone();
                fdwt53_2d(&mut buf, w, h, levels);
                qplanes.push(buf);
            }
            Wavelet::W97 => {
                let mut buf: Vec<f64> = p.data.iter().map(|&v| v as f64).collect();
                fdwt97_2d(&mut buf, w, h, levels);
                let mut q = vec![0i32; w * h];
                for band in crate::tile::subbands(w, h, levels) {
                    let step = band_step(mode, band.kind);
                    for y in band.rect.y0..band.rect.y0 + band.rect.h {
                        for x in band.rect.x0..band.rect.x0 + band.rect.w {
                            q[y * w + x] = quantize(buf[y * w + x], step);
                        }
                    }
                }
                qplanes.push(q);
            }
        }
    }

    // Tier-1 + Tier-2, RLCP packet order (resolution outermost keeps
    // resolution truncation a stream prefix; layers nest inside).
    let cb = 1usize << header.cb_exp;
    let layers = header.layers as usize;
    let groups = resolution_bands(w, h, levels);
    let mut body = Vec::new();
    for group in &groups {
        // Per component: per band: per block: layered segments.
        let per_comp: Vec<Vec<LayeredBand>> = qplanes
            .iter()
            .map(|q| band_blocks_layered(q, w, group, cb, layers))
            .collect::<CodecResult<_>>()?;
        for l in 0..layers {
            for bands in &per_comp {
                let layer_bands: Vec<BandBlocks> = bands.iter().map(|lb| lb.layer(l)).collect();
                body.extend_from_slice(&write_packet(&layer_bands));
            }
        }
    }
    Ok(body)
}

/// One band's code-blocks with per-layer codeword segments.
struct LayeredBand {
    cols: usize,
    rows: usize,
    /// Per block: `(mb, segments)`.
    blocks: Vec<(u8, Vec<crate::t1::T1Segment>)>,
}

impl LayeredBand {
    /// The [`BandBlocks`] view of layer `l`.
    fn layer(&self, l: usize) -> BandBlocks {
        BandBlocks {
            cols: self.cols,
            rows: self.rows,
            blocks: self
                .blocks
                .iter()
                .map(|(mb, segs)| {
                    // A block whose coding passes ran out before layer
                    // `l` has no segment here; `(Vec::new(), 0)` is the
                    // correct encoding, not a fallback: `write_packet`
                    // signals `num_passes == 0` as "not included in
                    // this layer", so the decoder never sees the empty
                    // segment — it simply accumulates nothing for this
                    // block in this layer (the truncated-layer
                    // round-trip test pins this).
                    let (data, passes) = segs
                        .get(l)
                        .map(|s| (s.data.clone(), s.num_passes))
                        .unwrap_or((Vec::new(), 0));
                    BlockContribution {
                        encoded: crate::t1::T1EncodedBlock {
                            data,
                            num_passes: passes,
                            num_bitplanes: *mb,
                        },
                        zero_bitplanes: KMAX - *mb as u32,
                    }
                })
                .collect(),
        }
    }
}

fn band_blocks_layered(
    q: &[i32],
    stride: usize,
    bands: &[Band],
    cb: usize,
    layers: usize,
) -> CodecResult<Vec<LayeredBand>> {
    let mut out = Vec::with_capacity(bands.len());
    for band in bands {
        let rects = codeblocks(band.rect.w, band.rect.h, cb, cb);
        let cols = band.rect.w.div_ceil(cb).max(1);
        let rows = band.rect.h.div_ceil(cb).max(1);
        let mut blocks = Vec::with_capacity(rects.len());
        for r in &rects {
            let mut mags = Vec::with_capacity(r.w * r.h);
            let mut negative = Vec::with_capacity(r.w * r.h);
            for y in 0..r.h {
                for x in 0..r.w {
                    let gy = band.rect.y0 + r.y0 + y;
                    let gx = band.rect.x0 + r.x0 + x;
                    let v = q[gy * stride + gx];
                    mags.push(v.unsigned_abs());
                    negative.push(v < 0);
                }
            }
            let (segments, mb) =
                crate::t1::encode_block_layers(&mags, &negative, r.w, r.h, band.kind, layers);
            if mb as u32 > KMAX {
                return Err(CodecError::invalid(format!(
                    "coefficient magnitude needs {mb} bit-planes (max {KMAX})"
                )));
            }
            blocks.push((mb, segments));
        }
        out.push(LayeredBand { cols, rows, blocks });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Staged decoder
// ---------------------------------------------------------------------------

/// Quantised coefficients of one tile (Mallat layout per component) — the
/// output of the entropy-decode stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileCoeffs {
    /// Tile index.
    pub tile: usize,
    /// Tile bounds in the image.
    pub rect: Rect,
    /// One quantised Mallat plane per component.
    pub planes: Vec<Vec<i32>>,
}

/// A dequantised coefficient plane: plain integers for the reversible
/// path, Q16 fixed point for the irreversible path — the whole lossy
/// decode datapath is integer (see [`crate::dwt::idwt97_2d_fixed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoeffPlane {
    /// Reversible (5/3) coefficients.
    Int(Vec<i32>),
    /// Irreversible (9/7) coefficients in Q16 fixed point.
    Fixed(Vec<i32>),
}

/// Dequantised wavelet coefficients of one tile — the output of the IQ
/// stage.
#[derive(Debug, Clone, PartialEq)]
pub struct TileWavelet {
    /// Tile index.
    pub tile: usize,
    /// Tile bounds in the image.
    pub rect: Rect,
    /// One plane per component.
    pub planes: Vec<CoeffPlane>,
}

/// Spatial-domain samples of one tile (still level-shifted and in
/// transform colour space until the later stages run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSamples {
    /// Tile index.
    pub tile: usize,
    /// Tile bounds in the image.
    pub rect: Rect,
    /// One plane per component.
    pub planes: Vec<Vec<i32>>,
}

/// A decoder exposing each pipeline stage separately, so the OSSS models
/// can map stages onto software tasks and hardware shared objects while
/// operating on real data.
///
/// # Example
///
/// ```
/// use jpeg2000::image::Image;
/// use jpeg2000::codec::{encode, EncodeParams, Mode, StagedDecoder};
///
/// # fn main() -> Result<(), jpeg2000::error::CodecError> {
/// let img = Image::synthetic_rgb(32, 32, 1);
/// let bytes = encode(&img, &EncodeParams::new(Mode::Lossless))?;
/// let dec = StagedDecoder::new(&bytes)?;
/// let mut out = Image::new(32, 32, 8, 3);
/// for t in 0..dec.num_tiles() {
///     let coeffs = dec.entropy_decode_tile(t)?;      // MQ/T1 (+T2)
///     let wavelet = dec.dequantize_tile(&coeffs);    // IQ
///     let samples = dec.idwt_tile(wavelet);          // IDWT
///     let samples = dec.inverse_mct_tile(samples);   // ICT/RCT
///     let samples = dec.dc_unshift_tile(samples);    // DC shift
///     dec.place_tile(&mut out, &samples);
/// }
/// assert_eq!(out, img);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StagedDecoder {
    header: MainHeader,
    grid: TileGrid,
    tiles: Vec<Vec<u8>>,
}

impl StagedDecoder {
    /// Parses the codestream headers and tile segments.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] from parsing or validation.
    pub fn new(bytes: &[u8]) -> CodecResult<Self> {
        let (header, segments) = parse_codestream(bytes)?;
        let grid = Self::validated_grid(&header)?;
        if segments.len() != grid.count() {
            return Err(CodecError::malformed(format!(
                "expected {} tiles, found {}",
                grid.count(),
                segments.len()
            )));
        }
        let mut tiles = vec![Vec::new(); segments.len()];
        for (i, s) in segments.into_iter().enumerate() {
            if s.index as usize != i {
                return Err(CodecError::malformed("tile segments out of order"));
            }
            tiles[i] = s.data;
        }
        Ok(StagedDecoder {
            header,
            grid,
            tiles,
        })
    }

    /// Geometry validation shared by the strict and tolerant
    /// constructors: the allocation cap and the tile grid.
    fn validated_grid(header: &MainHeader) -> CodecResult<TileGrid> {
        let samples =
            u64::from(header.width) * u64::from(header.height) * u64::from(header.num_components);
        if samples > MAX_DECODE_SAMPLES {
            return Err(CodecError::malformed(format!(
                "image of {samples} samples exceeds the decoder limit of {MAX_DECODE_SAMPLES}"
            ))
            .in_marker("SIZ"));
        }
        Ok(TileGrid::new(
            header.width as usize,
            header.height as usize,
            header.tile_w as usize,
            header.tile_h as usize,
        ))
    }

    /// Tolerant constructor: salvages whatever tile-parts a damaged
    /// stream still contains. The main header and its geometry are
    /// validated strictly (without them no pixel can be placed); every
    /// tile-section problem — unparseable tile-parts, out-of-range or
    /// duplicate tile indices, missing tiles — becomes a
    /// [`TileFailure`] in the returned [`DecodeReport`] and the
    /// corresponding tile decodes from empty data (rendering mid-gray).
    ///
    /// # Errors
    ///
    /// Main-header parse or geometry-validation failures only.
    pub fn new_tolerant(bytes: &[u8]) -> CodecResult<(Self, DecodeReport)> {
        let parsed = parse_codestream_tolerant(bytes)?;
        let header = parsed.header;
        let grid = Self::validated_grid(&header)?;
        let count = grid.count();
        let mut report = DecodeReport::default();
        for error in parsed.errors {
            report.record_parse(error);
        }
        let mut tiles = vec![Vec::new(); count];
        let mut present = vec![false; count];
        for s in parsed.tiles {
            let i = s.index as usize;
            if i >= count {
                report.record_parse(
                    CodecError::malformed(format!(
                        "tile index {i} out of range (grid has {count} tiles)"
                    ))
                    .in_tile(i),
                );
                continue;
            }
            if present[i] {
                report.record_parse(CodecError::malformed("duplicate tile-part").in_tile(i));
                continue;
            }
            tiles[i] = s.data;
            present[i] = true;
        }
        for (i, p) in present.iter().enumerate() {
            if !p {
                report.record_parse(CodecError::malformed("tile-part missing").in_tile(i));
            }
        }
        Ok((
            StagedDecoder {
                header,
                grid,
                tiles,
            },
            report,
        ))
    }

    /// The parsed main header.
    pub fn header(&self) -> &MainHeader {
        &self.header
    }

    /// The tile grid.
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.grid.count()
    }

    /// Stage 1 — entropy decode: Tier-2 packet parsing plus MQ/Tier-1
    /// bit-plane decoding. This is the paper's "arithmetic decoder".
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn entropy_decode_tile(&self, t: usize) -> CodecResult<TileCoeffs> {
        self.entropy_decode_tile_res(t, usize::MAX)
    }

    /// [`Self::entropy_decode_tile`] with a caller-provided scratch
    /// arena, so the Tier-1 buffers are reused across code-blocks and
    /// tiles instead of reallocated per block.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn entropy_decode_tile_with(
        &self,
        t: usize,
        scratch: &mut DecodeScratch,
    ) -> CodecResult<TileCoeffs> {
        self.entropy_decode_tile_opts_with(t, usize::MAX, usize::MAX, scratch)
    }

    /// Like [`Self::entropy_decode_tile`], but stops after resolution
    /// `max_res` (0 = only the deepest LL). Because the codestream is in
    /// LRCP order, the remaining packets are simply never read — the
    /// mechanism behind resolution-progressive ("thumbnail") decoding.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn entropy_decode_tile_res(&self, t: usize, max_res: usize) -> CodecResult<TileCoeffs> {
        self.entropy_decode_tile_opts(t, max_res, usize::MAX)
    }

    /// Entropy decode keeping only the first `max_layers` quality layers
    /// and the first `max_res + 1` resolutions. Skipped layers' packets
    /// are still parsed (to advance through the stream) but their
    /// codeword segments are not decoded.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn entropy_decode_tile_opts(
        &self,
        t: usize,
        max_res: usize,
        max_layers: usize,
    ) -> CodecResult<TileCoeffs> {
        self.entropy_decode_tile_opts_with(t, max_res, max_layers, &mut DecodeScratch::new())
    }

    /// [`Self::entropy_decode_tile_opts`] with a caller-provided scratch
    /// arena.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn entropy_decode_tile_opts_with(
        &self,
        t: usize,
        max_res: usize,
        max_layers: usize,
        scratch: &mut DecodeScratch,
    ) -> CodecResult<TileCoeffs> {
        self.entropy_decode_tile_core(t, max_res, max_layers, scratch, None)
    }

    /// Tolerant entropy decode: never fails. Structural damage is
    /// appended to `errors` (capped at [`MAX_REPORTED_ERRORS`] entries)
    /// and recovery is per code-block — an invalid block is skipped
    /// (its coefficients stay zero), while an unparseable packet header
    /// ends the tile's bitstream (later packets cannot be located
    /// without it) but keeps every block accumulated so far.
    pub fn entropy_decode_tile_tolerant_with(
        &self,
        t: usize,
        scratch: &mut DecodeScratch,
        errors: &mut Vec<CodecError>,
    ) -> TileCoeffs {
        self.entropy_decode_tile_core(t, usize::MAX, usize::MAX, scratch, Some(errors))
            .expect("tolerant entropy decode records errors instead of returning them")
    }

    /// Shared strict/tolerant entropy decode. With `sink: None` the
    /// first error aborts the tile (strict contract); with `Some(sink)`
    /// errors are recorded and decoding continues, so the result is
    /// always `Ok`.
    fn entropy_decode_tile_core(
        &self,
        t: usize,
        max_res: usize,
        max_layers: usize,
        scratch: &mut DecodeScratch,
        mut sink: Option<&mut Vec<CodecError>>,
    ) -> CodecResult<TileCoeffs> {
        // Bounds reporting without unbounded growth on pathological
        // streams (every block of a large tile can fail its checks).
        fn record(sink: &mut Vec<CodecError>, e: CodecError) {
            if sink.len() < MAX_REPORTED_ERRORS {
                sink.push(e);
            }
        }
        let rect = self.grid.tile_rect(t);
        let (w, h) = (rect.w, rect.h);
        let levels = self.header.levels as usize;
        let layers = self.header.layers as usize;
        let mut groups = resolution_bands(w, h, levels);
        groups.truncate(max_res.saturating_add(1));
        let cb = 1usize << self.header.cb_exp;
        let ncomp = self.header.num_components as usize;
        scratch.tiles += 1;
        scratch.samples_out += (w * h * ncomp) as u64;
        let mut planes = vec![vec![0i32; w * h]; ncomp];
        let data = &self.tiles[t];
        let mut pos = 0usize;
        // Set when a packet header could not be parsed: the rest of the
        // tile's bitstream can no longer be located, so stop reading
        // packets (but still Tier-1 decode what was accumulated).
        let mut stream_dead = false;
        for group in &groups {
            let grids: Vec<(usize, usize)> = group
                .iter()
                .map(|b| (b.rect.w.div_ceil(cb).max(1), b.rect.h.div_ceil(cb).max(1)))
                .collect();
            // Per component, per band, per block: accumulated segments
            // plus the zero-bit-plane value from the first inclusion.
            type BlockAcc = (Option<u32>, Vec<(Vec<u8>, u32)>);
            let mut acc: Vec<Vec<Vec<BlockAcc>>> = (0..ncomp)
                .map(|_| {
                    grids
                        .iter()
                        .map(|&(c, r)| vec![(None, Vec::new()); c * r])
                        .collect()
                })
                .collect();
            'layers: for l in 0..layers {
                for (comp, comp_acc) in acc.iter_mut().enumerate() {
                    let (parsed, consumed) = match read_packet(&data[pos..], &grids)
                        .map_err(|e| e.rebase_offset(pos).in_tile(t))
                    {
                        Ok(v) => v,
                        Err(e) => match sink.as_deref_mut() {
                            Some(s) => {
                                record(s, e);
                                stream_dead = true;
                                break 'layers;
                            }
                            None => return Err(e),
                        },
                    };
                    pos += consumed;
                    let keep = l < max_layers;
                    for (bi, blocks) in parsed.into_iter().enumerate() {
                        for (blk, pb) in blocks.into_iter().enumerate() {
                            if !pb.included {
                                continue;
                            }
                            if pb.zero_bitplanes > KMAX {
                                let e = CodecError::malformed(format!(
                                    "zero-bit-plane count {} exceeds {KMAX} (component {comp})",
                                    pb.zero_bitplanes
                                ))
                                .in_tile(t);
                                match sink.as_deref_mut() {
                                    Some(s) => {
                                        record(s, e);
                                        continue;
                                    }
                                    None => return Err(e),
                                }
                            }
                            let slot = &mut comp_acc[bi][blk];
                            match slot.0 {
                                None => slot.0 = Some(pb.zero_bitplanes),
                                Some(z) if z != pb.zero_bitplanes => {
                                    let e = CodecError::malformed(
                                        "inconsistent zero-bit-planes across layers",
                                    )
                                    .in_tile(t);
                                    match sink.as_deref_mut() {
                                        Some(s) => {
                                            record(s, e);
                                            continue;
                                        }
                                        None => return Err(e),
                                    }
                                }
                                _ => {}
                            }
                            if keep {
                                slot.1.push((pb.data, pb.num_passes));
                            }
                        }
                    }
                }
            }
            // Tier-1 decode the accumulated segments.
            for (comp_acc, plane) in acc.iter().zip(planes.iter_mut()) {
                for (band, band_acc) in group.iter().zip(comp_acc) {
                    let rects = codeblocks(band.rect.w, band.rect.h, cb, cb);
                    for (r, (zbp, segments)) in rects.iter().zip(band_acc) {
                        let Some(zbp) = zbp else { continue };
                        let mb = (KMAX - zbp) as u8;
                        let total: u32 = segments.iter().map(|&(_, n)| n).sum();
                        if mb == 0 || total > 3 * mb as u32 - 2 {
                            let e = CodecError::malformed(
                                "pass count exceeds the signalled bit-planes",
                            )
                            .in_tile(t);
                            match sink.as_deref_mut() {
                                Some(s) => {
                                    record(s, e);
                                    continue;
                                }
                                None => return Err(e),
                            }
                        }
                        let refs: Vec<(&[u8], u32)> =
                            segments.iter().map(|(d, n)| (d.as_slice(), *n)).collect();
                        let (mags, negative) = scratch
                            .t1
                            .decode_block_segments(&refs, r.w, r.h, band.kind, mb);
                        for y in 0..r.h {
                            for x in 0..r.w {
                                let m = mags[y * r.w + x];
                                if m == 0 {
                                    continue;
                                }
                                let v = if negative[y * r.w + x] {
                                    -(m as i32)
                                } else {
                                    m as i32
                                };
                                let gy = band.rect.y0 + r.y0 + y;
                                let gx = band.rect.x0 + r.x0 + x;
                                plane[gy * w + gx] = v;
                            }
                        }
                    }
                }
            }
            if stream_dead {
                break;
            }
        }
        Ok(TileCoeffs {
            tile: t,
            rect,
            planes,
        })
    }

    /// Stage 2 — inverse quantisation (IQ).
    pub fn dequantize_tile(&self, coeffs: &TileCoeffs) -> TileWavelet {
        let rect = coeffs.rect;
        let mode = quant_mode(&self.header);
        let planes = coeffs
            .planes
            .iter()
            .map(|q| match self.header.wavelet {
                Wavelet::W53 => CoeffPlane::Int(q.clone()),
                Wavelet::W97 => {
                    let mut fixed = vec![0i32; q.len()];
                    for band in crate::tile::subbands(rect.w, rect.h, self.header.levels as usize) {
                        let step_fix = step_fixed(band_step(mode, band.kind));
                        for y in band.rect.y0..band.rect.y0 + band.rect.h {
                            for x in band.rect.x0..band.rect.x0 + band.rect.w {
                                fixed[y * rect.w + x] =
                                    dequantize_fixed(q[y * rect.w + x], step_fix);
                            }
                        }
                    }
                    CoeffPlane::Fixed(fixed)
                }
            })
            .collect();
        TileWavelet {
            tile: coeffs.tile,
            rect,
            planes,
        }
    }

    /// Stage 3 — inverse DWT (5/3 integer or 9/7 Q16 fixed-point lifting).
    pub fn idwt_tile(&self, wavelet: TileWavelet) -> TileSamples {
        self.idwt_tile_with(wavelet, &mut DecodeScratch::new())
    }

    /// [`Self::idwt_tile`] with a caller-provided scratch arena for the
    /// row/column lifting buffers.
    pub fn idwt_tile_with(&self, wavelet: TileWavelet, scratch: &mut DecodeScratch) -> TileSamples {
        let rect = wavelet.rect;
        let levels = self.header.levels as usize;
        let planes = wavelet
            .planes
            .into_iter()
            .map(|p| match p {
                CoeffPlane::Int(mut buf) => {
                    idwt53_2d_with(&mut buf, rect.w, rect.h, levels, &mut scratch.dwt);
                    buf
                }
                CoeffPlane::Fixed(mut buf) => {
                    idwt97_2d_fixed_with(&mut buf, rect.w, rect.h, levels, &mut scratch.dwt);
                    for v in &mut buf {
                        *v = fixed_round(*v);
                    }
                    buf
                }
            })
            .collect();
        TileSamples {
            tile: wavelet.tile,
            rect,
            planes,
        }
    }

    /// Stage 4 — inverse component transform (RCT or ICT); identity for
    /// single-component images.
    pub fn inverse_mct_tile(&self, samples: TileSamples) -> TileSamples {
        if !self.header.use_mct || samples.planes.len() != 3 {
            return samples;
        }
        let rect = samples.rect;
        let mut iter = samples.planes.into_iter();
        let mut p0 = Plane::from_data(rect.w, rect.h, iter.next().expect("3 planes"));
        let mut p1 = Plane::from_data(rect.w, rect.h, iter.next().expect("3 planes"));
        let mut p2 = Plane::from_data(rect.w, rect.h, iter.next().expect("3 planes"));
        match self.header.wavelet {
            Wavelet::W53 => rct_inverse(&mut p0, &mut p1, &mut p2),
            Wavelet::W97 => ict_inverse(&mut p0, &mut p1, &mut p2),
        }
        TileSamples {
            tile: samples.tile,
            rect,
            planes: vec![p0.data, p1.data, p2.data],
        }
    }

    /// Stage 5 — inverse DC level shift (with clamping to the sample
    /// range).
    pub fn dc_unshift_tile(&self, samples: TileSamples) -> TileSamples {
        let rect = samples.rect;
        let planes = samples
            .planes
            .into_iter()
            .map(|data| {
                let mut p = Plane::from_data(rect.w, rect.h, data);
                dc_shift_inverse(&mut p, self.header.depth);
                p.data
            })
            .collect();
        TileSamples {
            tile: samples.tile,
            rect,
            planes,
        }
    }

    /// Runs the full five-stage pipeline on one tile — exactly the
    /// stages [`decode`] runs per tile, in the same order, so the
    /// result is bit-exact with the sequential decoder's tile output.
    /// This is the per-tile unit of work behind
    /// [`crate::service::DecodeService`], which needs tile granularity
    /// for cooperative cancellation.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn decode_tile_with(
        &self,
        t: usize,
        scratch: &mut DecodeScratch,
    ) -> CodecResult<TileSamples> {
        let coeffs = self.entropy_decode_tile_with(t, scratch)?;
        let samples = self.idwt_tile_with(self.dequantize_tile(&coeffs), scratch);
        Ok(self.dc_unshift_tile(self.inverse_mct_tile(samples)))
    }

    /// [`Self::decode_tile_with`] keeping only the first `max_layers`
    /// quality layers (clamped to at least 1) — the per-tile unit of
    /// [`decode_quality`].
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn decode_tile_quality_with(
        &self,
        t: usize,
        max_layers: usize,
        scratch: &mut DecodeScratch,
    ) -> CodecResult<TileSamples> {
        let coeffs =
            self.entropy_decode_tile_opts_with(t, usize::MAX, max_layers.max(1), scratch)?;
        let samples = self.idwt_tile_with(self.dequantize_tile(&coeffs), scratch);
        Ok(self.dc_unshift_tile(self.inverse_mct_tile(samples)))
    }

    /// Output geometry of a `max_res`-limited ("thumbnail") decode:
    /// the scaled image dimensions [`decode_thumbnail`] reconstructs.
    pub fn thumbnail_size(&self, max_res: usize) -> (usize, usize) {
        let full = self.grid.tile_rect(0);
        let applied = crate::dwt::effective_levels(full.w, full.h, self.header.levels as usize);
        let shrink = 1usize << applied.saturating_sub(max_res);
        (
            self.grid.image_w.div_ceil(shrink),
            self.grid.image_h.div_ceil(shrink),
        )
    }

    /// Decodes one tile at reduced resolution — the per-tile unit of
    /// [`decode_thumbnail`]. The returned [`TileSamples`] carry the
    /// tile's rectangle *in the scaled output image* (already cropped
    /// to its slot), so [`Self::place_tile`] against an image of
    /// [`Self::thumbnail_size`] assembles the thumbnail.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed packets.
    pub fn decode_tile_thumbnail_with(
        &self,
        t: usize,
        max_res: usize,
        scratch: &mut DecodeScratch,
    ) -> CodecResult<TileSamples> {
        let levels = self.header.levels as usize;
        let full = self.grid.tile_rect(0);
        let applied = crate::dwt::effective_levels(full.w, full.h, levels);
        let shrink = 1usize << applied.saturating_sub(max_res);
        let rect = self.grid.tile_rect(t);
        let coeffs = self.entropy_decode_tile_opts_with(t, max_res, usize::MAX, scratch)?;
        // Reconstruct only the retained resolutions: the tile now behaves
        // like a smaller tile with `max_res` levels of detail.
        let applied_t = crate::dwt::effective_levels(rect.w, rect.h, levels);
        let keep = applied_t.min(max_res);
        let drop_levels = applied_t - keep;
        let (tw, th) = {
            let (mut w, mut h) = (rect.w, rect.h);
            for _ in 0..drop_levels {
                w = w.div_ceil(2);
                h = h.div_ceil(2);
            }
            (w, h)
        };
        // Extract the top-left (retained) region of each Mallat plane.
        let dest = Rect {
            x0: rect.x0 / shrink,
            y0: rect.y0 / shrink,
            w: tw,
            h: th,
        };
        let sub_planes: Vec<Vec<i32>> = coeffs
            .planes
            .iter()
            .map(|p| {
                let mut out = vec![0i32; tw * th];
                for y in 0..th {
                    for x in 0..tw {
                        out[y * tw + x] = p[y * rect.w + x];
                    }
                }
                out
            })
            .collect();
        // Run the back half of the pipeline on the reduced tile. The
        // header's level count no longer matches, so invert manually.
        let mode = quant_mode(&self.header);
        let planes: Vec<Vec<i32>> = sub_planes
            .iter()
            .map(|q| match self.header.wavelet {
                Wavelet::W53 => {
                    let mut buf = q.clone();
                    idwt53_2d_with(&mut buf, tw, th, keep, &mut scratch.dwt);
                    buf
                }
                Wavelet::W97 => {
                    let mut fixed = vec![0i32; q.len()];
                    for band in crate::tile::subbands(tw, th, keep) {
                        let step_fix = step_fixed(band_step(mode, band.kind));
                        for y in band.rect.y0..band.rect.y0 + band.rect.h {
                            for x in band.rect.x0..band.rect.x0 + band.rect.w {
                                fixed[y * tw + x] = dequantize_fixed(q[y * tw + x], step_fix);
                            }
                        }
                    }
                    idwt97_2d_fixed_with(&mut fixed, tw, th, keep, &mut scratch.dwt);
                    fixed.into_iter().map(fixed_round).collect()
                }
            })
            .collect();
        let samples = TileSamples {
            tile: t,
            rect: dest,
            planes,
        };
        let samples = self.inverse_mct_tile(samples);
        let samples = self.dc_unshift_tile(samples);
        // The slot this tile owns in the scaled output. When the tile's
        // own effective level count is below the global one (tiny edge
        // tiles), `tw × th` is larger than the slot — crop, or a blit
        // would write past the image (decoder-reachable from a
        // perfectly valid encode, e.g. 66×66 with 64×64 tiles).
        let slot_w = (rect.x0 + rect.w).div_ceil(shrink) - dest.x0;
        let slot_h = (rect.y0 + rect.h).div_ceil(shrink) - dest.y0;
        let (cw, ch) = (tw.min(slot_w), th.min(slot_h));
        let planes = samples
            .planes
            .into_iter()
            .map(|data| {
                let mut cropped = Vec::with_capacity(cw * ch);
                for y in 0..ch {
                    cropped.extend_from_slice(&data[y * tw..y * tw + cw]);
                }
                cropped
            })
            .collect();
        Ok(TileSamples {
            tile: t,
            rect: Rect {
                x0: dest.x0,
                y0: dest.y0,
                w: cw,
                h: ch,
            },
            planes,
        })
    }

    /// Blits a fully decoded tile into `image`.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the codestream geometry.
    pub fn place_tile(&self, image: &mut Image, samples: &TileSamples) {
        let rect = samples.rect;
        for (c, data) in samples.planes.iter().enumerate() {
            let tile_plane = Plane::from_data(rect.w, rect.h, data.clone());
            image.components[c].blit(rect.x0, rect.y0, &tile_plane);
        }
    }

    /// A zero-filled image with the codestream's geometry.
    pub fn blank_image(&self) -> Image {
        Image::new(
            self.header.width as usize,
            self.header.height as usize,
            self.header.depth,
            self.header.num_components as usize,
        )
    }
}

// ---------------------------------------------------------------------------
// Tolerant decoding
// ---------------------------------------------------------------------------

/// Which stage of a tolerant decode recorded a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeStage {
    /// Codestream structure: tile-part headers, tile indexing.
    TileParse,
    /// Tier-2 packet parsing or MQ/Tier-1 entropy decoding.
    Entropy,
}

/// One isolated failure from a tolerant decode.
#[derive(Debug, Clone, PartialEq)]
pub struct TileFailure {
    /// The affected tile, when attributable to one.
    pub tile: Option<usize>,
    /// Where in the pipeline the damage surfaced.
    pub stage: DecodeStage,
    /// The underlying error, with its [`crate::error::ErrorSite`].
    pub error: CodecError,
}

/// Everything [`decode_tolerant`] salvaged around: the failures it
/// isolated instead of aborting the decode.
///
/// The report is deterministic regardless of how the decode was run:
/// the parallel backend collects each tile's failures separately and
/// merges them *in tile order* under the same single global
/// [`MAX_REPORTED_ERRORS`] cap the sequential decoder applies, so
/// `decode_tolerant_parallel` produces a report equal to
/// [`decode_tolerant`]'s for any worker count and scheduling (pinned
/// by the >64-corrupt-tiles regression test in [`crate::parallel`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodeReport {
    /// Isolated failures, in discovery order (tile-parse first, then
    /// entropy failures in tile order). Capped at
    /// [`MAX_REPORTED_ERRORS`] entries.
    pub failures: Vec<TileFailure>,
}

impl DecodeReport {
    /// `true` when the stream decoded without any isolated failure —
    /// the image is identical to what strict [`decode`] would produce.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Sorted, deduplicated indices of tiles with at least one failure.
    pub fn failed_tiles(&self) -> Vec<usize> {
        let mut tiles: Vec<usize> = self.failures.iter().filter_map(|f| f.tile).collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles
    }

    fn record(&mut self, stage: DecodeStage, error: CodecError) {
        if self.failures.len() < MAX_REPORTED_ERRORS {
            self.failures.push(TileFailure {
                tile: error.site().tile,
                stage,
                error,
            });
        }
    }

    pub(crate) fn record_parse(&mut self, error: CodecError) {
        self.record(DecodeStage::TileParse, error);
    }

    pub(crate) fn record_entropy(&mut self, error: CodecError) {
        self.record(DecodeStage::Entropy, error);
    }

    /// Appends `other`'s failures under the single global cap. Callers
    /// merging per-tile reports MUST do so in ascending tile order —
    /// that is what makes the capped failure *set* independent of
    /// worker scheduling and equal to the sequential report.
    pub(crate) fn merge(&mut self, other: DecodeReport) {
        for f in other.failures {
            if self.failures.len() < MAX_REPORTED_ERRORS {
                self.failures.push(f);
            }
        }
    }
}

impl StagedDecoder {
    /// Tolerantly runs the full per-tile pipeline (entropy → IQ → IDWT
    /// → MCT → DC shift). Never fails: entropy damage is recorded in
    /// `report` and the affected coefficients stay zero, which the
    /// back half of the pipeline turns into mid-gray samples (zero
    /// coefficients → zero samples → DC unshift to half-range).
    pub fn decode_tile_tolerant_with(
        &self,
        t: usize,
        scratch: &mut DecodeScratch,
        report: &mut DecodeReport,
    ) -> TileSamples {
        let mut errors = Vec::new();
        let coeffs = self.entropy_decode_tile_tolerant_with(t, scratch, &mut errors);
        for e in errors {
            report.record_entropy(e.in_tile(t));
        }
        let samples = self.idwt_tile_with(self.dequantize_tile(&coeffs), scratch);
        self.dc_unshift_tile(self.inverse_mct_tile(samples))
    }
}

/// Decodes as much of a possibly corrupt codestream as possible.
///
/// Failures are isolated at tile and code-block granularity: a corrupt
/// tile yields a mid-gray (or partially decoded) region plus
/// [`DecodeReport`] entries, while undamaged tiles reconstruct exactly
/// as strict [`decode`] would. The output image always has the geometry
/// the SIZ header declares.
///
/// # Errors
///
/// Only unusable main headers (damaged `SOC`/`SIZ`/`COD`/`QCD`, or
/// geometry past [`MAX_DECODE_SAMPLES`]) — without a trusted header
/// there is no geometry to place pixels in.
pub fn decode_tolerant(bytes: &[u8]) -> CodecResult<(Image, DecodeReport)> {
    let (dec, mut report) = StagedDecoder::new_tolerant(bytes)?;
    let mut image = dec.blank_image();
    let mut scratch = DecodeScratch::new();
    for t in 0..dec.num_tiles() {
        let samples = dec.decode_tile_tolerant_with(t, &mut scratch, &mut report);
        dec.place_tile(&mut image, &samples);
    }
    Ok((image, report))
}

// ---------------------------------------------------------------------------
// One-shot decode with stage timing
// ---------------------------------------------------------------------------

/// Wall-clock time spent in each decoder stage (summed over tiles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeTimings {
    /// Tier-2 + MQ/Tier-1 entropy decoding.
    pub entropy: Duration,
    /// Inverse quantisation.
    pub iq: Duration,
    /// Inverse DWT.
    pub idwt: Duration,
    /// Inverse component transform.
    pub mct: Duration,
    /// Inverse DC level shift.
    pub dc_shift: Duration,
}

impl DecodeTimings {
    /// Total decode time.
    pub fn total(&self) -> Duration {
        self.entropy + self.iq + self.idwt + self.mct + self.dc_shift
    }

    /// Per-stage shares in percent, ordered
    /// `[entropy, iq, idwt, mct, dc_shift]` — the Figure 1 profile.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 5];
        }
        [
            self.entropy.as_secs_f64() / total * 100.0,
            self.iq.as_secs_f64() / total * 100.0,
            self.idwt.as_secs_f64() / total * 100.0,
            self.mct.as_secs_f64() / total * 100.0,
            self.dc_shift.as_secs_f64() / total * 100.0,
        ]
    }
}

/// A decoded image plus the per-stage timing profile.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// The reconstructed image.
    pub image: Image,
    /// Per-stage wall-clock profile.
    pub timings: DecodeTimings,
}

/// Decodes a codestream, timing each stage.
///
/// # Errors
///
/// Any [`CodecError`] from parsing or entropy decoding.
pub fn decode(bytes: &[u8]) -> CodecResult<DecodedImage> {
    let dec = StagedDecoder::new(bytes)?;
    let mut image = dec.blank_image();
    let mut timings = DecodeTimings::default();
    let mut scratch = DecodeScratch::new();
    for t in 0..dec.num_tiles() {
        let t0 = Instant::now();
        let coeffs = dec.entropy_decode_tile_with(t, &mut scratch)?;
        let t1 = Instant::now();
        let wavelet = dec.dequantize_tile(&coeffs);
        let t2 = Instant::now();
        let samples = dec.idwt_tile_with(wavelet, &mut scratch);
        let t3 = Instant::now();
        let samples = dec.inverse_mct_tile(samples);
        let t4 = Instant::now();
        let samples = dec.dc_unshift_tile(samples);
        let t5 = Instant::now();
        dec.place_tile(&mut image, &samples);
        timings.entropy += t1 - t0;
        timings.iq += t2 - t1;
        timings.idwt += t3 - t2;
        timings.mct += t4 - t3;
        timings.dc_shift += t5 - t4;
    }
    Ok(DecodedImage { image, timings })
}

/// Decodes keeping only the first `max_layers` quality layers of every
/// code-block — JPEG 2000's quality-progressive access: a prefix of each
/// block's coding passes reconstructs a coarser approximation of the
/// same full-resolution image.
///
/// Edge cases (all defined, none error): `max_layers == 0` is clamped
/// to 1 — a zero-layer image has no meaning, so the coarsest
/// approximation is returned (pinned by test); `max_layers` beyond the
/// coded layer count decodes everything, identical to [`decode`].
///
/// # Errors
///
/// Any [`CodecError`] from parsing or entropy decoding.
pub fn decode_quality(bytes: &[u8], max_layers: usize) -> CodecResult<Image> {
    let dec = StagedDecoder::new(bytes)?;
    let mut image = dec.blank_image();
    let mut scratch = DecodeScratch::new();
    for t in 0..dec.num_tiles() {
        let samples = dec.decode_tile_quality_with(t, max_layers, &mut scratch)?;
        dec.place_tile(&mut image, &samples);
    }
    Ok(image)
}

/// Decodes only the lowest `max_res + 1` resolutions of every tile and
/// reconstructs the correspondingly down-scaled image — JPEG 2000's
/// resolution-progressive access, for free from the LRCP packet order.
///
/// With `L` effective decomposition levels per tile and `max_res = r`,
/// each tile shrinks by `2^(L−r)` in both directions (clamped to its
/// effective level count).
///
/// Edge cases (all defined, none error):
/// * `max_res >= L` is clamped — every resolution is decoded and the
///   result equals the full-size [`decode`] image (pinned by test).
/// * Tiles whose *own* effective level count is smaller than the first
///   tile's (tiny edge tiles that cannot decompose as deeply) cannot
///   shrink by the global factor; their reconstruction is cropped to
///   the tile's slot in the scaled output grid, so mixed per-tile
///   level counts never write out of bounds.
///
/// # Errors
///
/// Any [`CodecError`] from parsing or entropy decoding.
pub fn decode_thumbnail(bytes: &[u8], max_res: usize) -> CodecResult<Image> {
    let dec = StagedDecoder::new(bytes)?;
    let (out_w, out_h) = dec.thumbnail_size(max_res);
    let mut image = Image::new(
        out_w,
        out_h,
        dec.header.depth,
        dec.header.num_components as usize,
    );
    let mut scratch = DecodeScratch::new();
    for t in 0..dec.num_tiles() {
        let samples = dec.decode_tile_thumbnail_with(t, max_res, &mut scratch)?;
        dec.place_tile(&mut image, &samples);
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FNV-1a over a byte stream, for whole-image identity pinning.
    fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Whole-pipeline byte-identity pin on the Table-1 workload: the
    /// hashes below were recorded with the pre-flags-lattice Tier-1
    /// (reference path), so any coding or reconstruction drift in the
    /// optimised kernels fails here even if round-trips still close.
    ///
    /// The lossy *image* hash was re-pinned once when the irreversible
    /// reconstruction path moved to Q16 fixed point (IQ → IDWT 9/7 →
    /// ICT); the encoder stayed f64 so both stream hashes and the whole
    /// lossless row are unchanged from the original recording. The
    /// fixed-point output is within 2 LSB of the deferred-rounding f64
    /// reference — see `fixed_point_pipeline_matches_f64_reference`.
    #[test]
    fn table1_workload_bytes_are_pinned() {
        for (mode, stream_fnv, image_fnv) in [
            (Mode::Lossless, 0x697485fb868d05c1u64, 0xa4b7ae565527c640u64),
            (
                Mode::lossy_default(),
                0xc4f59ed9ded55b45,
                0xa55e666bbf9d405d,
            ),
        ] {
            let img = Image::synthetic_rgb(128, 128, 2008);
            let params = EncodeParams::new(mode).tile_size(32, 32);
            let bytes = encode(&img, &params).unwrap();
            assert_eq!(fnv1a(bytes.iter().copied()), stream_fnv, "{mode:?} stream");
            let out = decode(&bytes).unwrap();
            let ih = fnv1a(
                out.image
                    .components
                    .iter()
                    .flat_map(|c| c.data.iter().flat_map(|v| v.to_le_bytes())),
            );
            assert_eq!(ih, image_fnv, "{mode:?} image");
        }
    }

    /// End-to-end accuracy of the integer irreversible datapath: decode
    /// the Table-1 lossy workload through the production fixed-point
    /// pipeline and through a pure-f64 re-derivation of the same stages
    /// (f64 dequantisation, `dwt::reference::idwt97_2d`, f64 ICT, one
    /// final round). Each integer stage is individually within 1 LSB of
    /// its f64 counterpart (see the `dwt` proptests and the `ct` unit
    /// test); end to end the pipeline rounds twice — after the IDWT and
    /// inside the ICT — where the deferred-rounding reference rounds
    /// once, so the tight whole-pipeline bound is 2 LSB. The PSNR
    /// between the two is recorded in EXPERIMENTS.md.
    #[test]
    fn fixed_point_pipeline_matches_f64_reference() {
        let img = Image::synthetic_rgb(128, 128, 2008);
        let params = EncodeParams::new(Mode::lossy_default()).tile_size(32, 32);
        let bytes = encode(&img, &params).unwrap();

        // Production path: integer IQ → Q16 IDWT → integer ICT.
        let out = decode(&bytes).unwrap().image;

        // f64 reference path, staying real-valued until one final round.
        let dec = StagedDecoder::new(&bytes).unwrap();
        let mode = quant_mode(dec.header());
        let levels = dec.header().levels as usize;
        let depth = dec.header().depth;
        let offset = f64::from(1i32 << (depth - 1));
        let max = f64::from((1i32 << depth) - 1);
        let mut reference = dec.blank_image();
        for t in 0..dec.num_tiles() {
            let coeffs = dec.entropy_decode_tile(t).unwrap();
            let rect = coeffs.rect;
            let mut planes: Vec<Vec<f64>> = coeffs
                .planes
                .iter()
                .map(|q| {
                    let mut f = vec![0.0f64; q.len()];
                    for band in crate::tile::subbands(rect.w, rect.h, levels) {
                        let step = band_step(mode, band.kind);
                        for y in band.rect.y0..band.rect.y0 + band.rect.h {
                            for x in band.rect.x0..band.rect.x0 + band.rect.w {
                                f[y * rect.w + x] =
                                    crate::quant::dequantize(q[y * rect.w + x], step);
                            }
                        }
                    }
                    crate::dwt::reference::idwt97_2d(&mut f, rect.w, rect.h, levels);
                    f
                })
                .collect();
            let (cb, cr) = (planes[1].clone(), planes[2].clone());
            for i in 0..rect.w * rect.h {
                let (y, cb, cr) = (planes[0][i], cb[i], cr[i]);
                planes[0][i] = y + 1.402 * cr;
                planes[1][i] = y - 0.344136 * cb - 0.714136 * cr;
                planes[2][i] = y + 1.772 * cb;
            }
            let samples = TileSamples {
                tile: t,
                rect,
                planes: planes
                    .into_iter()
                    .map(|p| {
                        p.into_iter()
                            .map(|v| (v + offset).clamp(0.0, max).round() as i32)
                            .collect()
                    })
                    .collect(),
            };
            dec.place_tile(&mut reference, &samples);
        }

        let mut max_diff = 0i64;
        let mut sq_err = 0.0f64;
        let mut n = 0usize;
        for (a, b) in out.components.iter().zip(&reference.components) {
            for (&x, &y) in a.data.iter().zip(&b.data) {
                let d = i64::from(x) - i64::from(y);
                max_diff = max_diff.max(d.abs());
                sq_err += (d * d) as f64;
                n += 1;
            }
        }
        let psnr = 10.0 * (max * max * n as f64 / sq_err.max(1e-12)).log10();
        assert!(
            max_diff <= 2,
            "fixed-point pipeline drifted {max_diff} LSB from the f64 reference (PSNR {psnr:.1} dB)"
        );
        // Measured 52.8 dB on this workload; keep a generous floor so
        // the assert documents the scale without being seed-brittle.
        assert!(psnr >= 50.0, "pipeline PSNR vs f64 reference: {psnr:.1} dB");
    }

    #[test]
    fn lossless_roundtrip_single_tile() {
        let img = Image::synthetic_rgb(64, 48, 1);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(out.image, img);
    }

    #[test]
    fn lossless_roundtrip_multi_tile() {
        let img = Image::synthetic_rgb(70, 50, 2);
        let params = EncodeParams::new(Mode::Lossless).tile_size(32, 32);
        let bytes = encode(&img, &params).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(out.image, img);
    }

    #[test]
    fn lossless_grey_roundtrip() {
        let img = Image::synthetic_grey(33, 29, 3);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(16, 16)).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(out.image, img);
    }

    #[test]
    fn lossy_roundtrip_has_high_psnr() {
        let img = Image::synthetic_rgb(64, 64, 4);
        let bytes = encode(&img, &EncodeParams::new(Mode::lossy_default())).unwrap();
        let out = decode(&bytes).unwrap();
        let psnr = img.psnr(&out.image);
        assert!(psnr > 35.0, "lossy PSNR too low: {psnr:.1} dB");
    }

    #[test]
    fn lossy_compresses_better_with_larger_steps() {
        let img = Image::synthetic_rgb(64, 64, 5);
        let small = encode(&img, &EncodeParams::new(Mode::Lossy { base_step: 0.25 })).unwrap();
        let large = encode(&img, &EncodeParams::new(Mode::Lossy { base_step: 2.0 })).unwrap();
        assert!(
            large.len() < small.len(),
            "coarser quantisation must shrink the stream: {} vs {}",
            large.len(),
            small.len()
        );
        // And quality must degrade accordingly.
        let psnr_small = img.psnr(&decode(&small).unwrap().image);
        let psnr_large = img.psnr(&decode(&large).unwrap().image);
        assert!(psnr_small > psnr_large);
    }

    #[test]
    fn lossless_beats_raw_size() {
        let img = Image::synthetic_rgb(64, 64, 6);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        let raw = 64 * 64 * 3;
        assert!(
            bytes.len() < raw,
            "lossless stream ({}) should undercut raw ({raw})",
            bytes.len()
        );
    }

    #[test]
    fn staged_decode_equals_one_shot() {
        let img = Image::synthetic_rgb(48, 40, 7);
        let params = EncodeParams::new(Mode::Lossless).tile_size(24, 24);
        let bytes = encode(&img, &params).unwrap();
        let dec = StagedDecoder::new(&bytes).unwrap();
        let mut out = dec.blank_image();
        for t in 0..dec.num_tiles() {
            let coeffs = dec.entropy_decode_tile(t).unwrap();
            let wavelet = dec.dequantize_tile(&coeffs);
            let samples = dec.idwt_tile(wavelet);
            let samples = dec.inverse_mct_tile(samples);
            let samples = dec.dc_unshift_tile(samples);
            dec.place_tile(&mut out, &samples);
        }
        assert_eq!(out, decode(&bytes).unwrap().image);
        assert_eq!(out, img);
    }

    #[test]
    fn odd_sizes_and_deep_levels() {
        let img = Image::synthetic_grey(37, 23, 8);
        let params = EncodeParams::new(Mode::Lossless).levels(5);
        let bytes = encode(&img, &params).unwrap();
        assert_eq!(decode(&bytes).unwrap().image, img);
    }

    #[test]
    fn timings_are_populated() {
        let img = Image::synthetic_rgb(64, 64, 9);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        let out = decode(&bytes).unwrap();
        assert!(out.timings.total() > Duration::ZERO);
        let shares = out.timings.shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "shares sum to 100%: {sum}");
        // Entropy decoding dominates, as in the paper's Figure 1.
        assert!(shares[0] > 50.0, "entropy share {:.1}%", shares[0]);
    }

    #[test]
    fn invalid_params_rejected() {
        let img = Image::synthetic_grey(16, 16, 0);
        assert!(encode(&img, &EncodeParams::new(Mode::Lossy { base_step: 0.0 })).is_err());
        let mut p = EncodeParams::new(Mode::Lossless);
        p.levels = 0;
        assert!(encode(&img, &p).is_err());
        let mut p = EncodeParams::new(Mode::Lossless);
        p.cb_exp = 1;
        assert!(encode(&img, &p).is_err());
        let two = Image::new(8, 8, 8, 2);
        assert!(encode(&two, &EncodeParams::new(Mode::Lossless)).is_err());
    }

    #[test]
    fn truncated_codestream_errors_cleanly() {
        let img = Image::synthetic_rgb(32, 32, 10);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        for frac in [4usize, 2] {
            let cut = &bytes[..bytes.len() / frac];
            assert!(decode(cut).is_err());
        }
    }

    #[test]
    fn multi_layer_lossless_roundtrip_is_exact() {
        let img = Image::synthetic_rgb(64, 48, 15);
        for layers in [1u8, 2, 3, 5] {
            let params = EncodeParams::new(Mode::Lossless)
                .tile_size(32, 32)
                .layers(layers);
            let bytes = encode(&img, &params).unwrap();
            let out = decode(&bytes).unwrap();
            assert_eq!(out.image, img, "{layers} layers");
        }
    }

    #[test]
    fn quality_progression_improves_with_layers() {
        let img = Image::synthetic_rgb(64, 64, 16);
        let params = EncodeParams::new(Mode::Lossless).layers(4);
        let bytes = encode(&img, &params).unwrap();
        let mut last_psnr = 0.0;
        for keep in 1..=4 {
            let approx = decode_quality(&bytes, keep).unwrap();
            let psnr = img.psnr(&approx);
            assert!(
                psnr >= last_psnr,
                "layer {keep}: PSNR {psnr:.1} dropped below {last_psnr:.1}"
            );
            last_psnr = psnr;
        }
        assert_eq!(
            decode_quality(&bytes, 4).unwrap(),
            img,
            "all layers reconstruct exactly (lossless)"
        );
        // A single layer is a usable approximation already.
        let one = decode_quality(&bytes, 1).unwrap();
        assert!(img.psnr(&one) > 10.0);
    }

    #[test]
    fn decode_quality_zero_layers_clamps_to_one() {
        let img = Image::synthetic_rgb(32, 32, 18);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).layers(3)).unwrap();
        // Asking for zero layers is clamped to one, not an error.
        let approx = decode_quality(&bytes, 0).unwrap();
        assert_eq!(approx.width, 32);
        assert!(img.psnr(&approx) > 5.0);
    }

    #[test]
    fn layer_count_is_validated() {
        let img = Image::synthetic_grey(16, 16, 19);
        let mut p = EncodeParams::new(Mode::Lossless);
        p.layers = 0;
        assert!(encode(&img, &p).is_err());
        p.layers = 17;
        assert!(encode(&img, &p).is_err());
    }

    #[test]
    fn layers_and_resolution_progression_compose() {
        let img = Image::synthetic_rgb(64, 64, 17);
        let params = EncodeParams::new(Mode::Lossless)
            .layers(3)
            .tile_size(32, 32);
        let bytes = encode(&img, &params).unwrap();
        // Thumbnails still work with multiple layers in the stream.
        let thumb = decode_thumbnail(&bytes, 1).unwrap();
        assert_eq!(thumb.width, 16);
        // Lossy multi-layer also decodes.
        let lossy = EncodeParams::new(Mode::lossy_default()).layers(3);
        let lb = encode(&img, &lossy).unwrap();
        let full = decode(&lb).unwrap();
        assert!(img.psnr(&full.image) > 35.0);
        let partial = decode_quality(&lb, 1).unwrap();
        assert!(img.psnr(&partial) <= img.psnr(&full.image));
    }

    #[test]
    fn thumbnail_of_constant_image_is_constant() {
        // DC gain 1 through both filter banks: the LL band of a constant
        // image is that constant, so any-resolution thumbnails reproduce
        // the colour exactly.
        let mut img = Image::new(64, 64, 8, 3);
        for (ci, v) in [200, 100, 50].iter().enumerate() {
            img.components[ci].data.fill(*v);
        }
        for mode in [Mode::Lossless, Mode::lossy_default()] {
            let bytes = encode(&img, &EncodeParams::new(mode).tile_size(32, 32)).unwrap();
            for max_res in 0..=3 {
                let thumb = decode_thumbnail(&bytes, max_res).unwrap();
                let shrink = 1usize << (3 - max_res.min(3));
                assert_eq!(thumb.width, 64usize.div_ceil(shrink), "res {max_res}");
                for (ci, v) in [200, 100, 50].iter().enumerate() {
                    assert!(
                        thumb.components[ci]
                            .data
                            .iter()
                            .all(|&x| (x - v).abs() <= 1),
                        "mode {mode:?} res {max_res} comp {ci}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_resolution_thumbnail_equals_decode() {
        let img = Image::synthetic_rgb(64, 64, 13);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let thumb = decode_thumbnail(&bytes, usize::MAX).unwrap();
        assert_eq!(thumb, decode(&bytes).unwrap().image);
        assert_eq!(thumb, img);
    }

    #[test]
    fn thumbnail_reads_fewer_packets_than_full_decode() {
        // A truncated stream that breaks the full decode can still serve
        // low resolutions — the progressive-access property.
        let img = Image::synthetic_rgb(64, 64, 14);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        let cut = &bytes[..bytes.len() * 9 / 10];
        // Re-terminate: keep SOT/Psot consistent by decoding the intact
        // stream at low resolution instead (the parser validates whole
        // tile-parts). Low-res decoding must not touch high-res packets.
        assert!(decode(cut).is_err());
        let thumb = decode_thumbnail(&bytes, 1).unwrap();
        assert_eq!(thumb.width, 16);
        assert_eq!(thumb.height, 16);
    }

    #[test]
    fn lossy_256_with_64_tiles_roundtrip() {
        // Regression: this configuration produces a packet header whose
        // final byte is 0xFF; the writer appends a stuffing byte that the
        // reader must skip to keep the packet bodies aligned.
        let img = Image::synthetic_rgb(256, 256, 42);
        let params = EncodeParams::new(Mode::lossy_default()).tile_size(64, 64);
        let bytes = encode(&img, &params).unwrap();
        let out = decode(&bytes).expect("decode must stay aligned");
        assert!(img.psnr(&out.image) > 40.0);
    }

    #[test]
    fn sixteen_tile_three_component_case_study_shape() {
        // The paper's evaluation decodes 16 tiles with 3 components.
        let img = Image::synthetic_rgb(128, 128, 11);
        let params = EncodeParams::new(Mode::Lossless).tile_size(32, 32);
        let bytes = encode(&img, &params).unwrap();
        let dec = StagedDecoder::new(&bytes).unwrap();
        assert_eq!(dec.num_tiles(), 16);
        assert_eq!(dec.header().num_components, 3);
        let out = decode(&bytes).unwrap();
        assert_eq!(out.image, img);
    }

    #[test]
    fn thumbnail_with_mixed_effective_levels_stays_in_bounds() {
        // Regression (found by the fuzz-harness design audit): a 66×66
        // image with 64×64 tiles has a 2×2 corner tile whose effective
        // level count (1) is below the first tile's (3). The corner
        // tile then cannot shrink by the global factor and its
        // reconstruction used to blit past the scaled output image —
        // a panic reachable from a perfectly valid encode.
        let img = Image::synthetic_rgb(66, 66, 21);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(64, 64)).unwrap();
        for max_res in 0..=4 {
            let thumb = decode_thumbnail(&bytes, max_res).expect("thumbnail");
            let shrink = 1usize << 3usize.saturating_sub(max_res);
            assert_eq!(thumb.width, 66usize.div_ceil(shrink), "max_res {max_res}");
            assert_eq!(thumb.height, 66usize.div_ceil(shrink), "max_res {max_res}");
        }
    }

    #[test]
    fn thumbnail_at_or_beyond_coded_levels_is_the_full_image() {
        // `max_res >= levels` is clamped: everything decodes, identical
        // to the full-size decode.
        let img = Image::synthetic_rgb(70, 50, 22);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let full = decode(&bytes).unwrap().image;
        for max_res in [3, 4, 100, usize::MAX] {
            assert_eq!(decode_thumbnail(&bytes, max_res).unwrap(), full);
        }
    }

    #[test]
    fn quality_zero_layers_is_clamped_to_one() {
        // `max_layers == 0` means "no image" — defined as clamping to
        // the coarsest approximation instead of an arithmetic accident.
        let img = Image::synthetic_rgb(48, 48, 23);
        let bytes = encode(
            &img,
            &EncodeParams::new(Mode::lossy_default())
                .layers(4)
                .tile_size(32, 32),
        )
        .unwrap();
        assert_eq!(
            decode_quality(&bytes, 0).unwrap(),
            decode_quality(&bytes, 1).unwrap()
        );
        // And beyond the coded layer count decodes everything.
        assert_eq!(
            decode_quality(&bytes, usize::MAX).unwrap(),
            decode(&bytes).unwrap().image
        );
    }

    #[test]
    fn truncated_layer_blocks_roundtrip_exactly() {
        // The `LayeredBand::layer` invariant: blocks whose coding
        // passes run out before the last layer contribute empty
        // segments, written as "not included" in those layers' packets.
        // A mostly-flat image maximises early-exhausted blocks; the
        // full round-trip must still be bit-exact and every layer
        // prefix must decode cleanly.
        let mut img = Image::new(64, 64, 8, 1);
        img.components[0].data[0] = 200; // one busy corner block
        for i in 0..64 {
            img.components[0].data[i * 64 + i] = (i as i32) * 3;
        }
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).layers(8)).unwrap();
        assert_eq!(decode(&bytes).unwrap().image, img);
        for l in 1..=8 {
            decode_quality(&bytes, l).expect("every layer prefix decodes");
        }
    }

    #[test]
    fn tolerant_decode_of_a_clean_stream_matches_strict() {
        let img = Image::synthetic_rgb(70, 50, 24);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let (tolerant, report) = decode_tolerant(&bytes).unwrap();
        assert!(report.is_clean(), "unexpected failures: {report:?}");
        assert_eq!(tolerant, decode(&bytes).unwrap().image);
    }

    #[test]
    fn tolerant_isolates_a_single_corrupt_tile() {
        // The acceptance scenario: exactly one tile body corrupted.
        // Every other tile must reconstruct bit-exact against the clean
        // decode, and the report must name the damaged tile.
        let img = Image::synthetic_rgb(96, 96, 25);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let clean = decode(&bytes).unwrap().image;
        let corrupt_tile = 4usize;
        let segs = crate::fuzz::scan_markers(&bytes);
        let sot = segs
            .iter()
            .filter(|s| s.marker == crate::codestream::MARKER_SOT)
            .nth(corrupt_tile)
            .copied()
            .expect("tile-part present");
        let mut bad = bytes.clone();
        // Overwrite the tile body (after the 14-byte SOT..SOD header)
        // with 0xFF — structurally poisonous bytes.
        for b in &mut bad[sot.offset + 14..sot.offset + sot.len] {
            *b = 0xFF;
        }
        let (image, report) = decode_tolerant(&bad).unwrap();
        assert_eq!(report.failed_tiles(), vec![corrupt_tile]);
        let grid = TileGrid::new(96, 96, 32, 32);
        let rect = grid.tile_rect(corrupt_tile);
        for (c, comp) in image.components.iter().enumerate() {
            for y in 0..96 {
                for x in 0..96 {
                    let inside = (rect.x0..rect.x0 + rect.w).contains(&x)
                        && (rect.y0..rect.y0 + rect.h).contains(&y);
                    if !inside {
                        assert_eq!(
                            comp.data[y * 96 + x],
                            clean.components[c].data[y * 96 + x],
                            "component {c} pixel ({x},{y}) must be untouched"
                        );
                    }
                }
            }
        }
        // The parallel tolerant backend produces the same image and
        // names the same tile.
        let (par_image, par_report) = crate::parallel::decode_tolerant_parallel(&bad, 4).unwrap();
        assert_eq!(par_image, image);
        assert_eq!(par_report.failed_tiles(), vec![corrupt_tile]);
    }

    #[test]
    fn tolerant_survives_truncation_and_keeps_leading_tiles() {
        // Cut the stream in the middle of tile 2 of 4: tiles 0 and 1
        // must stay bit-exact, the rest render mid-gray, and the output
        // geometry always matches SIZ.
        let img = Image::synthetic_rgb(64, 64, 26);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let clean = decode(&bytes).unwrap().image;
        let segs = crate::fuzz::scan_markers(&bytes);
        let sot2 = segs
            .iter()
            .filter(|s| s.marker == crate::codestream::MARKER_SOT)
            .nth(2)
            .copied()
            .unwrap();
        let cut = &bytes[..sot2.offset + sot2.len / 2];
        let (image, report) = decode_tolerant(cut).unwrap();
        assert_eq!(image.width, 64);
        assert_eq!(image.height, 64);
        assert!(!report.is_clean());
        assert!(report.failed_tiles().contains(&3), "missing tile reported");
        let grid = TileGrid::new(64, 64, 32, 32);
        for t in [0usize, 1] {
            let rect = grid.tile_rect(t);
            for (c, comp) in image.components.iter().enumerate() {
                for y in rect.y0..rect.y0 + rect.h {
                    for x in rect.x0..rect.x0 + rect.w {
                        assert_eq!(
                            comp.data[y * 64 + x],
                            clean.components[c].data[y * 64 + x],
                            "tile {t} component {c} pixel ({x},{y})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tolerant_renders_missing_tiles_mid_gray() {
        // A stream truncated right before its last tile-part: the
        // missing tile's region is exactly mid-gray (zero coefficients
        // through IDWT and DC unshift), not uninitialised data.
        let img = Image::synthetic_grey(64, 64, 27);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let segs = crate::fuzz::scan_markers(&bytes);
        let last_sot = segs
            .iter()
            .filter(|s| s.marker == crate::codestream::MARKER_SOT)
            .nth(3)
            .copied()
            .unwrap();
        let cut = &bytes[..last_sot.offset];
        let (image, report) = decode_tolerant(cut).unwrap();
        assert!(report.failed_tiles().contains(&3));
        let grid = TileGrid::new(64, 64, 32, 32);
        let rect = grid.tile_rect(3);
        for y in rect.y0..rect.y0 + rect.h {
            for x in rect.x0..rect.x0 + rect.w {
                assert_eq!(image.components[0].data[y * 64 + x], 128, "({x},{y})");
            }
        }
    }

    #[test]
    fn degenerate_geometry_never_reaches_the_tagtree_assert() {
        // `TagTree::new` asserts non-empty grids. The audit (see t2.rs)
        // shows every decode-path call clamps with `.max(1)`; this pins
        // the headers that come closest — 1-pixel-wide/tall tiles and
        // deep decompositions whose upper bands are zero-size, with the
        // smallest legal code-blocks.
        for (w, h) in [(1usize, 1usize), (1, 64), (64, 1), (2, 3), (3, 65)] {
            let img = Image::synthetic_grey(w, h, 30);
            let mut params = EncodeParams::new(Mode::Lossless).levels(8);
            params.cb_exp = 2;
            let bytes = encode(&img, &params).unwrap();
            let out = decode(&bytes).expect("decode");
            assert_eq!(out.image, img, "{w}x{h}");
            for max_res in 0..=3 {
                decode_thumbnail(&bytes, max_res).expect("thumbnail");
            }
            let (_, report) = decode_tolerant(&bytes).unwrap();
            assert!(report.is_clean());
        }
    }

    #[test]
    fn oversized_cod_levels_is_rejected_with_site() {
        // COD levels byte beyond MAX_LEVELS (32) is corruption; the
        // error must carry the marker and offset.
        let img = Image::synthetic_grey(32, 32, 28);
        let mut bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        // COD: SOC(2) + SIZ(2+2+16+2+1) + marker(2) + len(2) → levels byte.
        let segs = crate::fuzz::scan_markers(&bytes);
        let cod = segs
            .iter()
            .find(|s| s.marker == crate::codestream::MARKER_COD)
            .copied()
            .unwrap();
        bytes[cod.offset + 4] = 200;
        let err = decode(&bytes).unwrap_err();
        match &err {
            CodecError::Malformed { detail, site } => {
                assert!(detail.contains("exceeds"), "{detail}");
                assert_eq!(site.marker, Some("COD"));
                assert!(site.offset.is_some());
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn packet_errors_carry_tile_and_offset_context() {
        // Tier-2 failures deep inside a tile must surface with the tile
        // index and a tile-relative byte offset attached.
        let img = Image::synthetic_rgb(64, 64, 29);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(32, 32)).unwrap();
        let segs = crate::fuzz::scan_markers(&bytes);
        let sot1 = segs
            .iter()
            .filter(|s| s.marker == crate::codestream::MARKER_SOT)
            .nth(1)
            .copied()
            .unwrap();
        let mut bad = bytes.clone();
        for b in &mut bad[sot1.offset + 14..sot1.offset + sot1.len] {
            *b = 0xFF;
        }
        let err = decode(&bad).unwrap_err();
        let site = err.site();
        assert_eq!(site.tile, Some(1), "error: {err}");
        assert!(site.offset.is_some(), "error: {err}");
    }
}
