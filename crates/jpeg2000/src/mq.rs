//! The MQ binary arithmetic coder of JPEG 2000 (ITU-T T.800 Annex C).
//!
//! A context-adaptive binary arithmetic coder with a 47-entry probability
//! state machine and 0xFF byte stuffing. It is the paper's "arithmetic
//! decoder" — the stage that dominates the JPEG 2000 decode time
//! (88.8 % lossless / 78.6 % lossy in Figure 1).

/// One row of the probability state table:
/// `(Qe, next-state on MPS, next-state on LPS, switch MPS flag)`.
type StateRow = (u16, u8, u8, bool);

/// The 47-entry MQ probability state table (T.800 Table C.2).
pub const STATE_TABLE: [StateRow; 47] = [
    (0x5601, 1, 1, true),
    (0x3401, 2, 6, false),
    (0x1801, 3, 9, false),
    (0x0AC1, 4, 12, false),
    (0x0521, 5, 29, false),
    (0x0221, 38, 33, false),
    (0x5601, 7, 6, true),
    (0x5401, 8, 14, false),
    (0x4801, 9, 14, false),
    (0x3801, 10, 14, false),
    (0x3001, 11, 17, false),
    (0x2401, 12, 18, false),
    (0x1C01, 13, 20, false),
    (0x1601, 29, 21, false),
    (0x5601, 15, 14, true),
    (0x5401, 16, 14, false),
    (0x5101, 17, 15, false),
    (0x4801, 18, 16, false),
    (0x3801, 19, 17, false),
    (0x3401, 20, 18, false),
    (0x3001, 21, 19, false),
    (0x2801, 22, 19, false),
    (0x2401, 23, 20, false),
    (0x2201, 24, 21, false),
    (0x1C01, 25, 22, false),
    (0x1801, 26, 23, false),
    (0x1601, 27, 24, false),
    (0x1401, 28, 25, false),
    (0x1201, 29, 26, false),
    (0x1101, 30, 27, false),
    (0x0AC1, 31, 28, false),
    (0x09C1, 32, 29, false),
    (0x08A1, 33, 30, false),
    (0x0521, 34, 31, false),
    (0x0441, 35, 32, false),
    (0x02A1, 36, 33, false),
    (0x0221, 37, 34, false),
    (0x0141, 38, 35, false),
    (0x0111, 39, 36, false),
    (0x0085, 40, 37, false),
    (0x0049, 41, 38, false),
    (0x0025, 42, 39, false),
    (0x0015, 43, 40, false),
    (0x0009, 44, 41, false),
    (0x0005, 45, 42, false),
    (0x0001, 45, 43, false),
    (0x5601, 46, 46, false),
];

/// One adaptive context: probability state index plus current MPS sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MqContext {
    /// Index into [`STATE_TABLE`].
    pub state: u8,
    /// Current most-probable-symbol value.
    pub mps: bool,
}

impl MqContext {
    /// A context starting at table entry `state` with MPS = 0.
    pub const fn with_state(state: u8) -> Self {
        MqContext { state, mps: false }
    }
}

impl Default for MqContext {
    fn default() -> Self {
        MqContext::with_state(0)
    }
}

/// The MQ encoder: feeds decisions per context, produces the byte stream.
///
/// # Example
///
/// ```
/// use jpeg2000::mq::{MqEncoder, MqDecoder, MqContext};
///
/// let mut contexts = vec![MqContext::default(); 2];
/// let mut enc = MqEncoder::new();
/// let bits = [true, false, true, true, false];
/// for (i, &b) in bits.iter().enumerate() {
///     enc.encode(&mut contexts[i % 2], b);
/// }
/// let bytes = enc.finish();
///
/// let mut contexts = vec![MqContext::default(); 2];
/// let mut dec = MqDecoder::new(&bytes);
/// for (i, &b) in bits.iter().enumerate() {
///     assert_eq!(dec.decode(&mut contexts[i % 2]), b);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MqEncoder {
    c: u32,
    a: u32,
    ct: i32,
    /// `bytes[0]` is the scratch byte playing the role of `B` at `BP = -1`
    /// in the flowcharts; output starts at index 1.
    bytes: Vec<u8>,
}

impl Default for MqEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MqEncoder {
    /// INITENC.
    pub fn new() -> Self {
        MqEncoder {
            c: 0,
            a: 0x8000,
            ct: 12,
            bytes: vec![0],
        }
    }

    /// Encodes decision `d` in context `cx` (ENCODE).
    pub fn encode(&mut self, cx: &mut MqContext, d: bool) {
        if d == cx.mps {
            self.code_mps(cx);
        } else {
            self.code_lps(cx);
        }
    }

    fn code_mps(&mut self, cx: &mut MqContext) {
        let (qe, nmps, _, _) = STATE_TABLE[cx.state as usize];
        let qe = qe as u32;
        self.a -= qe;
        if self.a & 0x8000 == 0 {
            if self.a < qe {
                self.a = qe;
            } else {
                self.c += qe;
            }
            cx.state = nmps;
            self.renorm();
        } else {
            self.c += qe;
        }
    }

    fn code_lps(&mut self, cx: &mut MqContext) {
        let (qe, _, nlps, switch) = STATE_TABLE[cx.state as usize];
        let qe = qe as u32;
        self.a -= qe;
        if self.a < qe {
            self.c += qe;
        } else {
            self.a = qe;
        }
        if switch {
            cx.mps = !cx.mps;
        }
        cx.state = nlps;
        self.renorm();
    }

    fn renorm(&mut self) {
        loop {
            self.a <<= 1;
            self.c <<= 1;
            self.ct -= 1;
            if self.ct == 0 {
                self.byte_out();
            }
            if self.a & 0x8000 != 0 {
                break;
            }
        }
    }

    fn byte_out(&mut self) {
        let last = *self.bytes.last().expect("scratch byte present");
        if last == 0xFF {
            // Stuffing: only 7 bits after an 0xFF byte.
            self.bytes.push((self.c >> 20) as u8);
            self.c &= 0xF_FFFF;
            self.ct = 7;
        } else if self.c < 0x800_0000 {
            self.bytes.push((self.c >> 19) as u8);
            self.c &= 0x7_FFFF;
            self.ct = 8;
        } else {
            // Propagate the carry into the previous byte.
            *self.bytes.last_mut().expect("scratch byte present") += 1;
            if *self.bytes.last().expect("scratch byte present") == 0xFF {
                self.c &= 0x7FF_FFFF;
                self.bytes.push((self.c >> 20) as u8);
                self.c &= 0xF_FFFF;
                self.ct = 7;
            } else {
                self.bytes.push((self.c >> 19) as u8);
                self.c &= 0x7_FFFF;
                self.ct = 8;
            }
        }
    }

    /// FLUSH: terminates the codeword and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        // SETBITS.
        let temp = self.c + self.a;
        self.c |= 0xFFFF;
        if self.c >= temp {
            self.c -= 0x8000;
        }
        self.c <<= self.ct;
        self.byte_out();
        self.c <<= self.ct;
        self.byte_out();
        // Discard a trailing 0xFF (the decoder synthesises 1-bits at the
        // end of data anyway).
        if self.bytes.last() == Some(&0xFF) {
            self.bytes.pop();
        }
        self.bytes.remove(0); // drop the scratch byte
        self.bytes
    }
}

/// The MQ decoder over a byte slice.
///
/// Reading past the end of the data synthesises 1-bits, exactly like
/// encountering a marker (T.800 C.3.4), so truncated segments decode
/// without panicking.
#[derive(Debug, Clone)]
pub struct MqDecoder<'a> {
    c: u32,
    a: u32,
    ct: i32,
    data: &'a [u8],
    bp: usize,
    renorms: u64,
}

impl<'a> MqDecoder<'a> {
    /// INITDEC over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        let b0 = data.first().copied().unwrap_or(0xFF);
        let mut dec = MqDecoder {
            c: (b0 as u32) << 16,
            a: 0,
            ct: 0,
            data,
            bp: 0,
            renorms: 0,
        };
        dec.byte_in();
        dec.c <<= 7;
        dec.ct -= 7;
        dec.a = 0x8000;
        dec
    }

    /// Renormalisations performed so far — the decoder's measure of how
    /// often a decision left the MPS-no-renorm fast path. Counted on the
    /// out-of-line exchange paths, so the hot loop is unaffected.
    pub fn renorms(&self) -> u64 {
        self.renorms
    }

    #[inline]
    fn byte_at(&self, i: usize) -> u8 {
        self.data.get(i).copied().unwrap_or(0xFF)
    }

    fn byte_in(&mut self) {
        if self.byte_at(self.bp) == 0xFF {
            if self.byte_at(self.bp + 1) > 0x8F {
                // Marker (or end of data): feed 1-bits.
                self.c += 0xFF00;
                self.ct = 8;
            } else {
                self.bp += 1;
                self.c += (self.byte_at(self.bp) as u32) << 9;
                self.ct = 7;
            }
        } else {
            self.bp += 1;
            self.c += (self.byte_at(self.bp) as u32) << 8;
            self.ct = 8;
        }
    }

    /// Decodes one decision in context `cx` (DECODE).
    ///
    /// The overwhelmingly common case — an MPS with no renormalisation —
    /// returns from the inlined body without touching the exchange
    /// logic, keeping the Tier-1 hot loop's per-decision cost to a table
    /// load, a subtraction and two compares. The exchange/renorm tails
    /// are kept out of line so they don't bloat every call site.
    #[inline]
    pub fn decode(&mut self, cx: &mut MqContext) -> bool {
        let qe = STATE_TABLE[cx.state as usize].0 as u32;
        self.a -= qe;
        if (self.c >> 16) >= qe {
            self.c -= qe << 16;
            if self.a & 0x8000 != 0 {
                return cx.mps; // MPS, no renormalisation
            }
            self.decode_mps_exchange(cx, qe)
        } else {
            self.decode_lps_exchange(cx, qe)
        }
    }

    /// MPS exchange path (`a` dropped below 0x8000): resolve the
    /// conditional exchange, adapt the context, renormalise.
    #[inline(never)]
    fn decode_mps_exchange(&mut self, cx: &mut MqContext, qe: u32) -> bool {
        let (_, nmps, nlps, switch) = STATE_TABLE[cx.state as usize];
        let d;
        if self.a < qe {
            d = !cx.mps;
            if switch {
                cx.mps = !cx.mps;
            }
            cx.state = nlps;
        } else {
            d = cx.mps;
            cx.state = nmps;
        }
        self.renorm();
        d
    }

    /// LPS exchange path (`chigh < qe`): resolve the conditional
    /// exchange, adapt the context, renormalise.
    #[inline(never)]
    fn decode_lps_exchange(&mut self, cx: &mut MqContext, qe: u32) -> bool {
        let (_, nmps, nlps, switch) = STATE_TABLE[cx.state as usize];
        let d;
        if self.a < qe {
            d = cx.mps;
            cx.state = nmps;
        } else {
            d = !cx.mps;
            if switch {
                cx.mps = !cx.mps;
            }
            cx.state = nlps;
        }
        self.a = qe;
        self.renorm();
        d
    }

    fn renorm(&mut self) {
        self.renorms += 1;
        loop {
            if self.ct == 0 {
                self.byte_in();
            }
            self.a <<= 1;
            self.c <<= 1;
            self.ct -= 1;
            if self.a & 0x8000 != 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(bits: &[bool], n_ctx: usize, ctx_of: impl Fn(usize) -> usize) {
        let mut enc_ctx = vec![MqContext::default(); n_ctx];
        let mut enc = MqEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            enc.encode(&mut enc_ctx[ctx_of(i)], b);
        }
        let bytes = enc.finish();

        let mut dec_ctx = vec![MqContext::default(); n_ctx];
        let mut dec = MqDecoder::new(&bytes);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode(&mut dec_ctx[ctx_of(i)]), b, "bit {i}");
        }
    }

    #[test]
    fn empty_stream() {
        let enc = MqEncoder::new();
        let bytes = enc.finish();
        // Flushing an empty codeword still terminates cleanly.
        let mut dec = MqDecoder::new(&bytes);
        let mut cx = MqContext::default();
        // Decoding from a flushed-empty stream yields *some* decisions
        // without panicking (they are garbage by construction).
        let _ = dec.decode(&mut cx);
    }

    #[test]
    fn all_zero_bits_compress_tightly() {
        let bits = vec![false; 4096];
        let mut cx = [MqContext::default()];
        let mut enc = MqEncoder::new();
        for &b in &bits {
            enc.encode(&mut cx[0], b);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() < 32,
            "4096 MPS symbols must compress to a few bytes, got {}",
            bytes.len()
        );
        roundtrip(&bits, 1, |_| 0);
    }

    #[test]
    fn alternating_bits_roundtrip() {
        let bits: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        roundtrip(&bits, 1, |_| 0);
    }

    #[test]
    fn random_bits_single_context() {
        let mut rng = StdRng::seed_from_u64(42);
        let bits: Vec<bool> = (0..5000).map(|_| rng.gen_bool(0.5)).collect();
        roundtrip(&bits, 1, |_| 0);
    }

    #[test]
    fn random_bits_many_contexts() {
        let mut rng = StdRng::seed_from_u64(7);
        let bits: Vec<bool> = (0..5000).map(|_| rng.gen_bool(0.3)).collect();
        roundtrip(&bits, 19, |i| i % 19);
    }

    #[test]
    fn skewed_distributions_roundtrip() {
        for (seed, p) in [(1u64, 0.01), (2, 0.1), (3, 0.9), (4, 0.99)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let bits: Vec<bool> = (0..3000).map(|_| rng.gen_bool(p)).collect();
            roundtrip(&bits, 4, |i| i % 4);
        }
    }

    #[test]
    fn compression_beats_raw_on_skewed_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let bits: Vec<bool> = (0..8000).map(|_| rng.gen_bool(0.05)).collect();
        let mut cx = MqContext::default();
        let mut enc = MqEncoder::new();
        for &b in &bits {
            enc.encode(&mut cx, b);
        }
        let bytes = enc.finish();
        // ~0.29 bits/symbol entropy => well under 1000 bytes raw.
        assert!(bytes.len() < 500, "got {} bytes", bytes.len());
    }

    #[test]
    fn stuffing_after_ff_is_decodable() {
        // Force varied byte patterns, then ensure no 0xFF is followed by a
        // byte > 0x8F (the stuffing invariant the packet layer relies on).
        let mut rng = StdRng::seed_from_u64(11);
        let bits: Vec<bool> = (0..20_000).map(|_| rng.gen_bool(0.5)).collect();
        let mut cx = MqContext::default();
        let mut enc = MqEncoder::new();
        for &b in &bits {
            enc.encode(&mut cx, b);
        }
        let bytes = enc.finish();
        for w in bytes.windows(2) {
            if w[0] == 0xFF {
                assert!(w[1] <= 0x8F, "stuffing violated: FF {:02X}", w[1]);
            }
        }
        roundtrip(&bits, 1, |_| 0);
    }

    #[test]
    fn truncated_stream_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(13);
        let bits: Vec<bool> = (0..1000).map(|_| rng.gen_bool(0.5)).collect();
        let mut cx = MqContext::default();
        let mut enc = MqEncoder::new();
        for &b in &bits {
            enc.encode(&mut cx, b);
        }
        let bytes = enc.finish();
        let cut = &bytes[..bytes.len() / 2];
        let mut dec = MqDecoder::new(cut);
        let mut cx = MqContext::default();
        for _ in 0..1000 {
            let _ = dec.decode(&mut cx); // must not panic past the end
        }
    }

    #[test]
    fn state_table_invariants() {
        for (i, &(qe, nmps, nlps, _)) in STATE_TABLE.iter().enumerate() {
            assert!(qe <= 0x5601, "state {i}");
            assert!((nmps as usize) < 47, "state {i}");
            assert!((nlps as usize) < 47, "state {i}");
        }
        // Only the four documented states switch the MPS sense.
        let switches: Vec<usize> = STATE_TABLE
            .iter()
            .enumerate()
            .filter(|(_, r)| r.3)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(switches, vec![0, 6, 14]);
    }
}
