//! Dead-zone scalar quantisation (the case study's IQ stage inverts this).
//!
//! The decode direction has a fixed-point variant ([`step_fixed`],
//! [`dequantize_fixed`]) that reconstructs Q16 coefficients straight
//! from T1 magnitudes, feeding the integer 9/7 inverse
//! ([`crate::dwt::idwt97_2d_fixed`]) without ever touching `f64`.

use crate::dwt::consts::FIX_ONE;
use crate::tile::BandKind;

/// How coefficients are quantised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantMode {
    /// Reversible path (5/3): integer coefficients pass through unscaled.
    Reversible,
    /// Irreversible path (9/7): dead-zone quantiser with the given base
    /// step size; per-band steps derive from it via [`band_step`].
    Irreversible {
        /// Step size applied to the LL band; higher bands use multiples.
        base_step: f64,
    },
}

/// The quantisation step for `kind` under `mode` (1.0 for reversible).
///
/// High-frequency bands get coarser steps, mirroring the usual visual
/// weighting: LL × 1, HL/LH × 2, HH × 4.
pub fn band_step(mode: QuantMode, kind: BandKind) -> f64 {
    match mode {
        QuantMode::Reversible => 1.0,
        QuantMode::Irreversible { base_step } => {
            let w = match kind {
                BandKind::Ll => 1.0,
                BandKind::Hl | BandKind::Lh => 2.0,
                BandKind::Hh => 4.0,
            };
            base_step * w
        }
    }
}

/// Dead-zone quantisation of one real coefficient:
/// `q = sign(c) · ⌊|c| / Δ⌋`.
#[inline]
pub fn quantize(c: f64, step: f64) -> i32 {
    let q = (c.abs() / step).floor() as i32;
    if c < 0.0 {
        -q
    } else {
        q
    }
}

/// Mid-point reconstruction (the *inverse quantisation* / IQ stage):
/// `c ≈ sign(q) · (|q| + 1/2) · Δ`, zero stays zero.
#[inline]
pub fn dequantize(q: i32, step: f64) -> f64 {
    if q == 0 {
        0.0
    } else if q > 0 {
        (q as f64 + 0.5) * step
    } else {
        (q as f64 - 0.5) * step
    }
}

/// Upper bound on a Q16 step: `band_step` tops out below `2^18` (a
/// `u32/65536` base step times the ×4 HH weight), so `2^34` covers every
/// parsable codestream with headroom.
const MAX_STEP_FIX: i64 = 1 << 34;

/// A quantisation step in Q16 fixed point, for the integer IQ stage.
/// Hostile steps (NaN, negative, enormous) clamp into `[0, 2^34]`.
#[inline]
pub fn step_fixed(step: f64) -> i64 {
    let scaled = (step * FIX_ONE as f64).round();
    if scaled.is_nan() {
        0
    } else {
        scaled.clamp(0.0, MAX_STEP_FIX as f64) as i64
    }
}

/// Mid-point reconstruction straight to Q16:
/// `sign(q) · ((2|q| + 1) · Δ_fix) >> 1`, zero stays zero — the integer
/// counterpart of [`dequantize`], saturating instead of wrapping on
/// hostile magnitude × step products.
#[inline]
pub fn dequantize_fixed(q: i32, step_fix: i64) -> i32 {
    if q == 0 {
        return 0;
    }
    let m = q.unsigned_abs() as i64 * 2 + 1;
    let v = (m.saturating_mul(step_fix) >> 1).min(i32::MAX as i64) as i32;
    if q < 0 {
        -v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversible_steps_are_unity() {
        for kind in [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh] {
            assert_eq!(band_step(QuantMode::Reversible, kind), 1.0);
        }
    }

    #[test]
    fn irreversible_steps_weight_high_bands() {
        let mode = QuantMode::Irreversible { base_step: 0.5 };
        assert_eq!(band_step(mode, BandKind::Ll), 0.5);
        assert_eq!(band_step(mode, BandKind::Hl), 1.0);
        assert_eq!(band_step(mode, BandKind::Lh), 1.0);
        assert_eq!(band_step(mode, BandKind::Hh), 2.0);
    }

    #[test]
    fn quantize_is_odd_symmetric() {
        for &c in &[0.0, 0.4, 0.6, 1.4, 17.9, 123.456] {
            assert_eq!(quantize(-c, 0.5), -quantize(c, 0.5));
        }
    }

    #[test]
    fn dead_zone_is_twice_the_step() {
        // |c| < step quantises to zero on both sides of the origin.
        assert_eq!(quantize(0.49, 0.5), 0);
        assert_eq!(quantize(-0.49, 0.5), 0);
        assert_eq!(quantize(0.51, 0.5), 1);
        assert_eq!(quantize(-0.51, 0.5), -1);
    }

    #[test]
    fn reconstruction_error_is_bounded_by_half_step() {
        let step = 0.75;
        for i in -2000..2000 {
            let c = i as f64 * 0.1;
            let q = quantize(c, step);
            let r = dequantize(q, step);
            if q != 0 {
                assert!(
                    (c - r).abs() <= step / 2.0 + 1e-9,
                    "c={c} r={r} step={step}"
                );
            } else {
                assert!(c.abs() < step, "dead zone: c={c}");
            }
        }
    }

    #[test]
    fn zero_roundtrips_exactly() {
        assert_eq!(quantize(0.0, 0.5), 0);
        assert_eq!(dequantize(0, 0.5), 0.0);
        assert_eq!(dequantize_fixed(0, step_fixed(0.5)), 0);
    }

    #[test]
    fn fixed_dequantize_tracks_f64_within_one_lsb() {
        use crate::dwt::fixed_to_real;
        for &step in &[0.03125, 0.5, 1.0, 2.5, 7.75] {
            let sf = step_fixed(step);
            for q in (-3000..3000).step_by(7) {
                let want = dequantize(q, step);
                let got = fixed_to_real(dequantize_fixed(q, sf));
                // Q16 step representation + the >>1 floor: well under one
                // reconstructed-sample LSB even at |q| in the thousands.
                assert!(
                    (want - got).abs() <= 0.5,
                    "q={q} step={step}: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn fixed_dequantize_is_odd_symmetric() {
        let sf = step_fixed(0.8125);
        for q in 0..500 {
            assert_eq!(dequantize_fixed(-q, sf), -dequantize_fixed(q, sf));
        }
    }

    #[test]
    fn hostile_steps_and_magnitudes_saturate_instead_of_wrapping() {
        assert_eq!(step_fixed(f64::NAN), 0);
        assert_eq!(step_fixed(-3.0), 0);
        assert_eq!(step_fixed(f64::INFINITY), MAX_STEP_FIX);
        // Worst parsable step × worst T1 magnitude must not overflow.
        let sf = step_fixed((u32::MAX as f64 / 65536.0) * 4.0);
        let v = dequantize_fixed(1 << 18, sf);
        assert_eq!(v, i32::MAX);
        assert_eq!(dequantize_fixed(-(1 << 18), sf), -i32::MAX);
    }
}
