//! Dead-zone scalar quantisation (the case study's IQ stage inverts this).

use crate::tile::BandKind;

/// How coefficients are quantised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantMode {
    /// Reversible path (5/3): integer coefficients pass through unscaled.
    Reversible,
    /// Irreversible path (9/7): dead-zone quantiser with the given base
    /// step size; per-band steps derive from it via [`band_step`].
    Irreversible {
        /// Step size applied to the LL band; higher bands use multiples.
        base_step: f64,
    },
}

/// The quantisation step for `kind` under `mode` (1.0 for reversible).
///
/// High-frequency bands get coarser steps, mirroring the usual visual
/// weighting: LL × 1, HL/LH × 2, HH × 4.
pub fn band_step(mode: QuantMode, kind: BandKind) -> f64 {
    match mode {
        QuantMode::Reversible => 1.0,
        QuantMode::Irreversible { base_step } => {
            let w = match kind {
                BandKind::Ll => 1.0,
                BandKind::Hl | BandKind::Lh => 2.0,
                BandKind::Hh => 4.0,
            };
            base_step * w
        }
    }
}

/// Dead-zone quantisation of one real coefficient:
/// `q = sign(c) · ⌊|c| / Δ⌋`.
#[inline]
pub fn quantize(c: f64, step: f64) -> i32 {
    let q = (c.abs() / step).floor() as i32;
    if c < 0.0 {
        -q
    } else {
        q
    }
}

/// Mid-point reconstruction (the *inverse quantisation* / IQ stage):
/// `c ≈ sign(q) · (|q| + 1/2) · Δ`, zero stays zero.
#[inline]
pub fn dequantize(q: i32, step: f64) -> f64 {
    if q == 0 {
        0.0
    } else if q > 0 {
        (q as f64 + 0.5) * step
    } else {
        (q as f64 - 0.5) * step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversible_steps_are_unity() {
        for kind in [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh] {
            assert_eq!(band_step(QuantMode::Reversible, kind), 1.0);
        }
    }

    #[test]
    fn irreversible_steps_weight_high_bands() {
        let mode = QuantMode::Irreversible { base_step: 0.5 };
        assert_eq!(band_step(mode, BandKind::Ll), 0.5);
        assert_eq!(band_step(mode, BandKind::Hl), 1.0);
        assert_eq!(band_step(mode, BandKind::Lh), 1.0);
        assert_eq!(band_step(mode, BandKind::Hh), 2.0);
    }

    #[test]
    fn quantize_is_odd_symmetric() {
        for &c in &[0.0, 0.4, 0.6, 1.4, 17.9, 123.456] {
            assert_eq!(quantize(-c, 0.5), -quantize(c, 0.5));
        }
    }

    #[test]
    fn dead_zone_is_twice_the_step() {
        // |c| < step quantises to zero on both sides of the origin.
        assert_eq!(quantize(0.49, 0.5), 0);
        assert_eq!(quantize(-0.49, 0.5), 0);
        assert_eq!(quantize(0.51, 0.5), 1);
        assert_eq!(quantize(-0.51, 0.5), -1);
    }

    #[test]
    fn reconstruction_error_is_bounded_by_half_step() {
        let step = 0.75;
        for i in -2000..2000 {
            let c = i as f64 * 0.1;
            let q = quantize(c, step);
            let r = dequantize(q, step);
            if q != 0 {
                assert!(
                    (c - r).abs() <= step / 2.0 + 1e-9,
                    "c={c} r={r} step={step}"
                );
            } else {
                assert!(c.abs() < step, "dead zone: c={c}");
            }
        }
    }

    #[test]
    fn zero_roundtrips_exactly() {
        assert_eq!(quantize(0.0, 0.5), 0);
        assert_eq!(dequantize(0, 0.5), 0.0);
    }
}
