//! Tile-parallel decoding.
//!
//! JPEG 2000 tiles are self-contained codestream segments: every stage
//! of the [`StagedDecoder`] takes `&self` and touches only the tile it
//! was given, and the tiles' image regions are disjoint. The paper's
//! Application-Layer exploration (model versions 2–5) exploits exactly
//! this — 1, 2 or 4 decoder pipelines over independent tiles. This
//! module is the native-execution mirror of that design space: a pool
//! of worker threads draining a shared atomic tile queue, bit-exact
//! against the sequential [`decode`](crate::codec::decode).
//!
//! ```
//! use jpeg2000::image::Image;
//! use jpeg2000::codec::{encode, decode, EncodeParams, Mode};
//! use jpeg2000::parallel::ParallelDecoder;
//!
//! # fn main() -> Result<(), jpeg2000::error::CodecError> {
//! let img = Image::synthetic_rgb(64, 64, 7);
//! let bytes = encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(16, 16))?;
//! let par = ParallelDecoder::new().workers(4).decode(&bytes)?;
//! assert_eq!(par.image, decode(&bytes)?.image); // bit-exact
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::codec::{DecodeReport, DecodeTimings, DecodedImage, StagedDecoder, TileSamples};
use crate::error::CodecResult;
use crate::image::Image;
use crate::scratch::{DecodeCounters, DecodeScratch};

/// Observer invoked as `(worker, tile)` the moment a worker claims a
/// tile off the shared queue — before any decode work on it happens.
pub type TileProbe<'p> = &'p (dyn Fn(usize, usize) + Sync);

/// Resolves a requested worker count: `0` means "one pipeline per
/// available hardware thread". The `available_parallelism` probe is a
/// syscall, and it used to be paid on every decode request — on the
/// service hot path that is pure overhead for a value that cannot
/// change mid-process, so it is probed once and cached for the life of
/// the process. Shared by [`decode_parallel`],
/// [`decode_tolerant_parallel`] and
/// [`crate::service::DecodeService`].
pub fn resolve_workers(requested: usize) -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    match requested {
        0 => *AUTO.get_or_init(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }),
        n => n,
    }
}

/// What a parallel decode did: worker-level tile distribution plus the
/// decoder work counters merged across all workers' scratch arenas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Worker threads actually used (after capping by the tile count).
    pub workers: usize,
    /// Tiles decoded by each worker, indexed by worker id.
    pub per_worker_tiles: Vec<u64>,
    /// Merged [`DecodeCounters`] of every worker.
    pub counters: DecodeCounters,
}

/// Builder-style handle for tile-parallel decoding: the `workers(n)`
/// knob mirrors the paper's 1/2/4-pipeline model versions.
#[derive(Debug, Clone, Default)]
pub struct ParallelDecoder {
    workers: usize,
}

impl ParallelDecoder {
    /// A decoder that picks the worker count automatically
    /// (`std::thread::available_parallelism`, capped by the tile count).
    pub fn new() -> Self {
        ParallelDecoder { workers: 0 }
    }

    /// Sets the number of decode pipelines. `0` means automatic; any
    /// value larger than the tile count is safe — surplus workers find
    /// the queue empty and exit immediately.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Decodes `bytes` with this configuration.
    ///
    /// # Errors
    ///
    /// Exactly the errors of the sequential [`decode`](crate::codec::decode):
    /// parsing and entropy-decode failures. When several tiles are
    /// corrupt, the error of the lowest-indexed failing tile is
    /// returned, matching the sequential tile order.
    pub fn decode(&self, bytes: &[u8]) -> CodecResult<DecodedImage> {
        decode_parallel(bytes, self.workers)
    }

    /// Tolerant variant of [`Self::decode`] — see
    /// [`decode_tolerant_parallel`].
    ///
    /// # Errors
    ///
    /// Main-header failures only, as in
    /// [`decode_tolerant`](crate::codec::decode_tolerant).
    pub fn decode_tolerant(&self, bytes: &[u8]) -> CodecResult<(Image, DecodeReport)> {
        decode_tolerant_parallel(bytes, self.workers)
    }
}

/// What one worker hands back: its decoded tiles (with per-stage
/// timings) and the work counters its scratch arena tallied.
type WorkerOutput = (
    Vec<(usize, CodecResult<TileSamples>, DecodeTimings)>,
    DecodeCounters,
);

/// One worker's claim-decode loop: drains the shared tile queue, fully
/// decoding each claimed tile to spatial samples. Each worker owns one
/// [`DecodeScratch`] arena, reused across all tiles it claims — no
/// cross-thread buffer sharing, no per-block allocation.
fn run_worker(
    dec: &StagedDecoder,
    next: &AtomicUsize,
    num_tiles: usize,
    worker: usize,
    probe: Option<TileProbe<'_>>,
) -> WorkerOutput {
    let mut done = Vec::new();
    let mut scratch = DecodeScratch::new();
    loop {
        let t = next.fetch_add(1, Ordering::Relaxed);
        if t >= num_tiles {
            return (done, scratch.counters());
        }
        if let Some(p) = probe {
            p(worker, t);
        }
        let mut timings = DecodeTimings::default();
        let t0 = Instant::now();
        let result = dec.entropy_decode_tile_with(t, &mut scratch).map(|coeffs| {
            let t1 = Instant::now();
            let wavelet = dec.dequantize_tile(&coeffs);
            let t2 = Instant::now();
            let samples = dec.idwt_tile_with(wavelet, &mut scratch);
            let t3 = Instant::now();
            let samples = dec.inverse_mct_tile(samples);
            let t4 = Instant::now();
            let samples = dec.dc_unshift_tile(samples);
            let t5 = Instant::now();
            timings.entropy += t1 - t0;
            timings.iq += t2 - t1;
            timings.idwt += t3 - t2;
            timings.mct += t4 - t3;
            timings.dc_shift += t5 - t4;
            samples
        });
        if result.is_err() {
            timings.entropy += t0.elapsed();
        }
        done.push((t, result, timings));
    }
}

/// Decodes a codestream with `workers` parallel tile pipelines.
///
/// Output is bit-exact with the sequential [`decode`](crate::codec::decode):
/// tiles cover disjoint image regions, so assembling them in any order
/// yields the same image. Per-stage [`DecodeTimings`] are summed over
/// tiles exactly as in the sequential decoder — with `n` workers the
/// wall-clock time is roughly `timings.total() / n`.
///
/// `workers == 0` selects `std::thread::available_parallelism`. A
/// worker count exceeding the number of tiles is safe. `workers == 1`
/// decodes on the calling thread without spawning.
///
/// # Errors
///
/// Any [`CodecError`](crate::error::CodecError) from parsing or entropy
/// decoding; among several
/// failing tiles the lowest-indexed tile's error is returned, matching
/// the sequential decoder.
pub fn decode_parallel(bytes: &[u8], workers: usize) -> CodecResult<DecodedImage> {
    decode_parallel_observed(bytes, workers, None).map(|(img, _)| img)
}

/// [`decode_parallel`] plus observability: returns the per-worker tile
/// distribution and merged decoder work counters, and invokes `probe`
/// (if any) as each tile is claimed. With `probe: None` this adds only
/// the per-tile counter tallies the scratch arenas collect anyway.
///
/// # Errors
///
/// Exactly those of [`decode_parallel`].
pub fn decode_parallel_observed(
    bytes: &[u8],
    workers: usize,
    probe: Option<TileProbe<'_>>,
) -> CodecResult<(DecodedImage, ParallelStats)> {
    let dec = StagedDecoder::new(bytes)?;
    let num_tiles = dec.num_tiles();
    let workers = resolve_workers(workers).min(num_tiles.max(1));

    let next = AtomicUsize::new(0);
    let per_worker: Vec<WorkerOutput> = if workers <= 1 {
        vec![run_worker(&dec, &next, num_tiles, 0, probe)]
    } else {
        std::thread::scope(|scope| {
            let dec = &dec;
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|wi| scope.spawn(move || run_worker(dec, next, num_tiles, wi, probe)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };

    let mut stats = ParallelStats {
        workers,
        per_worker_tiles: Vec::with_capacity(workers),
        counters: DecodeCounters::default(),
    };
    let mut per_tile: Vec<(usize, CodecResult<TileSamples>, DecodeTimings)> = Vec::new();
    for (done, counters) in per_worker {
        stats.per_worker_tiles.push(done.len() as u64);
        stats.counters.merge(&counters);
        per_tile.extend(done);
    }

    // Assemble deterministically in tile order; the first (lowest-tile)
    // error wins, as in the sequential loop.
    per_tile.sort_by_key(|&(t, _, _)| t);
    let mut image = dec.blank_image();
    let mut timings = DecodeTimings::default();
    for (_, result, tile_timings) in per_tile {
        let samples = result?;
        dec.place_tile(&mut image, &samples);
        timings.entropy += tile_timings.entropy;
        timings.iq += tile_timings.iq;
        timings.idwt += tile_timings.idwt;
        timings.mct += tile_timings.mct;
        timings.dc_shift += tile_timings.dc_shift;
    }
    Ok((DecodedImage { image, timings }, stats))
}

/// One worker's claim-decode loop for tolerant decoding: like
/// [`run_worker`], but per-tile failures are collected into a local
/// [`DecodeReport`] instead of aborting — no tile's damage can mask
/// another worker's progress.
fn run_worker_tolerant(
    dec: &StagedDecoder,
    next: &AtomicUsize,
    num_tiles: usize,
) -> Vec<(usize, TileSamples, DecodeReport)> {
    let mut done = Vec::new();
    let mut scratch = DecodeScratch::new();
    loop {
        let t = next.fetch_add(1, Ordering::Relaxed);
        if t >= num_tiles {
            return done;
        }
        let mut report = DecodeReport::default();
        let samples = dec.decode_tile_tolerant_with(t, &mut scratch, &mut report);
        done.push((t, samples, report));
    }
}

/// Tolerant decoding with `workers` parallel tile pipelines — the
/// parallel form of [`decode_tolerant`](crate::codec::decode_tolerant).
/// Each tile's failures are collected separately and merged in tile
/// order (after the tile-parse failures) under the single global
/// [`crate::codec::MAX_REPORTED_ERRORS`] cap, so the merged
/// [`DecodeReport`] equals the sequential tolerant decoder's report —
/// same failures, same order, same capped set — for any worker count
/// and any scheduling.
///
/// # Errors
///
/// Main-header failures only.
pub fn decode_tolerant_parallel(
    bytes: &[u8],
    workers: usize,
) -> CodecResult<(Image, DecodeReport)> {
    let (dec, mut report) = StagedDecoder::new_tolerant(bytes)?;
    let num_tiles = dec.num_tiles();
    let workers = resolve_workers(workers).min(num_tiles.max(1));

    let next = AtomicUsize::new(0);
    let mut per_tile: Vec<(usize, TileSamples, DecodeReport)> = if workers <= 1 {
        run_worker_tolerant(&dec, &next, num_tiles)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| run_worker_tolerant(&dec, &next, num_tiles)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };

    per_tile.sort_by_key(|&(t, _, _)| t);
    let mut image = dec.blank_image();
    for (_, samples, tile_report) in per_tile {
        dec.place_tile(&mut image, &samples);
        report.merge(tile_report);
    }
    Ok((image, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode, EncodeParams, Mode};
    use crate::image::Image;

    fn roundtrip_bytes(w: usize, h: usize, tile: usize, mode: Mode, seed: u64) -> Vec<u8> {
        let img = Image::synthetic_rgb(w, h, seed);
        encode(&img, &EncodeParams::new(mode).tile_size(tile, tile)).expect("encode")
    }

    #[test]
    fn parallel_matches_sequential_lossless() {
        let bytes = roundtrip_bytes(96, 64, 32, Mode::Lossless, 11);
        let seq = decode(&bytes).expect("seq");
        for workers in [0, 1, 2, 3, 4, 8] {
            let par = decode_parallel(&bytes, workers).expect("par");
            assert_eq!(par.image, seq.image, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_matches_sequential_lossy() {
        let bytes = roundtrip_bytes(64, 96, 16, Mode::lossy_default(), 12);
        let seq = decode(&bytes).expect("seq");
        let par = decode_parallel(&bytes, 4).expect("par");
        assert_eq!(par.image, seq.image);
    }

    #[test]
    fn more_workers_than_tiles_is_safe() {
        // Single tile, many workers.
        let bytes = roundtrip_bytes(24, 24, 32, Mode::Lossless, 13);
        let par = decode_parallel(&bytes, 64).expect("par");
        assert_eq!(par.image, decode(&bytes).expect("seq").image);
    }

    #[test]
    fn builder_knob_is_equivalent() {
        let bytes = roundtrip_bytes(64, 64, 32, Mode::Lossless, 14);
        let a = ParallelDecoder::new().workers(2).decode(&bytes).expect("a");
        let b = decode_parallel(&bytes, 2).expect("b");
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn corrupt_stream_errors_match_sequential() {
        let mut bytes = roundtrip_bytes(64, 64, 16, Mode::Lossless, 15);
        // Truncate inside the tile data: both paths must reject, not panic.
        bytes.truncate(bytes.len() / 2);
        let seq = decode(&bytes);
        let par = decode_parallel(&bytes, 4);
        assert!(seq.is_err());
        assert!(par.is_err());
    }

    #[test]
    fn observed_decode_counts_workers_tiles_and_decoder_work() {
        // 96×96 with 32×32 tiles = 9 tiles.
        let bytes = roundtrip_bytes(96, 96, 32, Mode::Lossless, 17);
        let claims = std::sync::Mutex::new(Vec::<(usize, usize)>::new());
        let probe = |w: usize, t: usize| claims.lock().expect("probe lock").push((w, t));
        let (par, stats) = decode_parallel_observed(&bytes, 3, Some(&probe)).expect("par");
        assert_eq!(par.image, decode(&bytes).expect("seq").image);
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.per_worker_tiles.len(), 3);
        assert_eq!(stats.per_worker_tiles.iter().sum::<u64>(), 9);
        assert_eq!(stats.counters.tiles, 9);
        assert_eq!(stats.counters.samples_out, 96 * 96 * 3);
        assert!(stats.counters.code_blocks >= 9, "≥1 block per tile");
        assert!(stats.counters.coding_passes > 0);
        assert!(stats.counters.mq_renorms > 0);
        assert!(stats.counters.bytes_in > 0);
        // Every tile claimed exactly once, by a valid worker.
        let mut claimed = claims.into_inner().expect("claims");
        assert!(claimed.iter().all(|&(w, _)| w < 3));
        claimed.sort_unstable_by_key(|&(_, t)| t);
        let tiles: Vec<usize> = claimed.iter().map(|&(_, t)| t).collect();
        assert_eq!(tiles, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn observed_single_worker_runs_inline() {
        let bytes = roundtrip_bytes(64, 64, 32, Mode::Lossless, 18);
        let (par, stats) = decode_parallel_observed(&bytes, 1, None).expect("par");
        assert_eq!(par.image, decode(&bytes).expect("seq").image);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.per_worker_tiles, vec![4]);
        assert_eq!(stats.counters.arena_reuses, 3, "4 tiles, one arena");
    }

    #[test]
    fn auto_worker_resolver_is_cached_and_nonzero() {
        // `0` resolves through the `OnceLock`'d probe: at least one
        // worker, and the same answer on every call (the probe runs at
        // most once per process).
        let first = resolve_workers(0);
        assert!(first >= 1);
        for _ in 0..3 {
            assert_eq!(resolve_workers(0), first);
        }
        // Explicit counts pass through untouched.
        for n in [1usize, 2, 7, 64] {
            assert_eq!(resolve_workers(n), n);
        }
    }

    #[test]
    fn auto_workers_on_a_single_tile_stream() {
        // workers == 0 with a single tile: the resolved count is capped
        // by the tile count, decodes inline, and stays bit-exact.
        let bytes = roundtrip_bytes(24, 24, 32, Mode::Lossless, 19);
        let seq = decode(&bytes).expect("seq");
        let (par, stats) = decode_parallel_observed(&bytes, 0, None).expect("par");
        assert_eq!(par.image, seq.image);
        assert_eq!(stats.workers, 1, "1 tile caps any resolved worker count");
        let (_, report) = decode_tolerant_parallel(&bytes, 0).expect("tolerant");
        assert!(report.is_clean());
    }

    /// Corrupts the body of every tile-part in `bytes` (past the
    /// 12-byte SOT segment + 2-byte SOD marker) with 0xFF, which no
    /// packet header can start with.
    fn corrupt_every_tile(bytes: &[u8]) -> Vec<u8> {
        let mut bad = bytes.to_vec();
        for seg in crate::fuzz::scan_markers(bytes) {
            if seg.marker == crate::codestream::MARKER_SOT {
                for b in &mut bad[seg.offset + 14..seg.offset + seg.len] {
                    *b = 0xFF;
                }
            }
        }
        bad
    }

    #[test]
    fn tolerant_report_is_deterministic_past_the_error_cap() {
        // Regression for the report-divergence concern: with more
        // corrupt tiles than MAX_REPORTED_ERRORS, the *set* of
        // reported failures must be the first 64 in tile order — never
        // a function of which worker got scheduled first — and exactly
        // equal to the sequential tolerant report.
        use crate::codec::{decode_tolerant, MAX_REPORTED_ERRORS};
        // 160×160 with 16×16 tiles = 100 tiles, all corrupted.
        let img = Image::synthetic_grey(160, 160, 23);
        let bytes =
            encode(&img, &EncodeParams::new(Mode::Lossless).tile_size(16, 16)).expect("encode");
        let bad = corrupt_every_tile(&bytes);
        let (seq_img, seq_report) = decode_tolerant(&bad).expect("seq tolerant");
        assert_eq!(
            seq_report.failures.len(),
            MAX_REPORTED_ERRORS,
            "the workload must overflow the cap for this test to bite"
        );
        // The capped set is a tile-ordered prefix of the failures, so
        // tiles past the cap never appear before earlier ones.
        let tiles: Vec<usize> = seq_report.failures.iter().filter_map(|f| f.tile).collect();
        assert!(tiles.windows(2).all(|w| w[0] <= w[1]), "tile order");
        assert_eq!(tiles.first(), Some(&0));
        for workers in [1usize, 4] {
            // Several repetitions so a scheduling-dependent merge would
            // actually get a chance to differ.
            for _ in 0..4 {
                let (par_img, par_report) =
                    decode_tolerant_parallel(&bad, workers).expect("par tolerant");
                assert_eq!(par_img, seq_img, "workers = {workers}");
                assert_eq!(par_report, seq_report, "workers = {workers}");
            }
        }
    }

    #[test]
    fn timings_are_summed_over_tiles() {
        let bytes = roundtrip_bytes(96, 96, 32, Mode::Lossless, 16);
        let par = decode_parallel(&bytes, 4).expect("par");
        assert!(par.timings.total() > std::time::Duration::ZERO);
    }
}
