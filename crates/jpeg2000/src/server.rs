//! The network decode server: a std-only TCP front-end over the
//! persistent [`DecodeService`].
//!
//! The paper's final refinement step maps the decoder onto a real
//! target platform; this module is that step for the *service* layer —
//! the in-process [`DecodeService`] becomes a network service without
//! changing a line of the decode path. The server owns nothing but
//! sockets and threads: every decode goes through
//! [`DecodeService::submit_wait`], so the service's bounded queue is
//! the single source of backpressure and its caches and deadlines
//! apply to network clients exactly as to in-process callers.
//!
//! ## Architecture
//!
//! ```text
//! clients ──TCP──▶ acceptor ──bounded channel──▶ handler pool (N threads)
//!                     │                               │ frame in, CRC check
//!                     │ pool saturated:               │ submit_wait (backpressure)
//!                     └─▶ busy frame, close           │ frame out
//!                                                     ▼
//!                                               DecodeService
//! ```
//!
//! Backpressure propagates end to end: a full decode queue makes
//! `submit_wait` time out, the handler answers a retryable-busy frame,
//! and [`crate::net::Client::decode_retry`] backs off and retries. A
//! saturated handler pool short-circuits earlier — the acceptor itself
//! answers busy and closes, so a flood degrades into explicit retry
//! traffic instead of hung connections.
//!
//! Every counter the server keeps is mirrored into an optional
//! [`MetricsRegistry`] under `server.*`, alongside the service's own
//! `service.*` metrics, and the two families reconcile exactly: each
//! CRC-valid frame resolves as exactly one of ok / busy / expired /
//! failed / refused / internal / protocol-error, and each admitted
//! request is one service submission.

use crate::net::{
    decode_request, encode_busy, encode_ok, encode_protocol_error, encode_service_error,
    read_frame, write_frame, WireError, WireReport, MAX_FRAME_BYTES,
};
use crate::service::{DecodeService, ServiceError};
use osss_sim::probe::{Counter, Gauge, Histogram, MetricsRegistry};
use osss_sim::SimTime;
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`DecodeServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler threads — concurrent connections served.
    pub handler_threads: usize,
    /// Accepted connections that may wait for a free handler before
    /// the acceptor answers busy instead.
    pub backlog: usize,
    /// How long a handler blocks for decode-queue space before
    /// answering a retryable-busy frame.
    pub submit_timeout: Duration,
    /// Largest request frame a handler accepts.
    pub max_frame_bytes: usize,
    /// Idle-poll granularity: how often a handler blocked on a quiet
    /// connection rechecks the shutdown flag.
    pub poll_interval: Duration,
    /// Whole-frame read deadline. Per-read timeouts alone do not stop
    /// a slow-loris peer — one byte per [`Self::poll_interval`] resets
    /// them forever — so once a frame has begun, the handler bounds
    /// the *entire* frame by this budget and evicts the connection
    /// when it elapses ([`ServerStats::frame_timeouts`]). `None`
    /// restores the per-read-only behaviour.
    pub frame_deadline: Option<Duration>,
    /// Closes a connection that stays idle *between* frames this long
    /// ([`ServerStats::idle_reaped`]); `None` lets idle connections
    /// hold their handler indefinitely.
    pub idle_timeout: Option<Duration>,
    /// Upper bound on connections open server-side (queued for or
    /// inside a handler); the acceptor answers excess connections with
    /// a busy frame ([`ServerStats::conn_capped`]).
    pub max_connections: usize,
    /// Admission budget on the request bytes concurrently admitted to
    /// the decode path; a request that would exceed it is answered
    /// busy ([`ServerStats::admission_rejected`]) without touching the
    /// service queue.
    pub max_inflight_bytes: usize,
    /// Transport write timeout for response frames (handlers, the
    /// acceptor's busy/refused answers).
    pub write_timeout: Duration,
    /// Per-read timeout while draining a rejected connection's bytes
    /// before close (see `reject_busy`).
    pub drain_read_timeout: Duration,
    /// Total budget for that drain.
    pub drain_deadline: Duration,
    /// Observability sink. When set, the server exports `server.*`
    /// counters, the active-connection gauge and the request-latency
    /// histogram.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            handler_threads: 4,
            backlog: 16,
            submit_timeout: Duration::from_millis(250),
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(50),
            frame_deadline: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: 256,
            max_inflight_bytes: 256 << 20,
            write_timeout: Duration::from_secs(1),
            drain_read_timeout: Duration::from_secs(1),
            drain_deadline: Duration::from_secs(2),
            metrics: None,
        }
    }
}

/// Outcome tallies, snapshot via [`DecodeServer::stats`] and returned
/// by [`DecodeServer::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handed to the handler pool.
    pub accepted: u64,
    /// Connections answered busy at the acceptor (pool saturated).
    pub conn_rejected: u64,
    /// CRC-valid frames received.
    pub frames_in: u64,
    /// Response frames fully written.
    pub frames_out: u64,
    /// Frames rejected for a CRC mismatch.
    pub crc_rejects: u64,
    /// Frames rejected before the CRC check (bad magic, oversized
    /// length, connection lost mid-frame).
    pub frame_rejects: u64,
    /// CRC-valid frames whose payload violated the message grammar.
    pub protocol_errors: u64,
    /// Requests answered with the decoded image.
    pub ok: u64,
    /// Requests answered retryable-busy (decode queue full).
    pub busy: u64,
    /// Requests whose deadline passed server-side.
    pub expired: u64,
    /// Requests whose decode failed.
    pub failed: u64,
    /// Requests refused because the service is shutting down.
    pub refused: u64,
    /// Requests that failed inside the service (caught worker panics,
    /// lost tickets).
    pub internal: u64,
    /// Connections answered busy at the acceptor because
    /// [`ServerConfig::max_connections`] was reached.
    pub conn_capped: u64,
    /// Frames evicted by the whole-frame read deadline (slow-loris
    /// peers).
    pub frame_timeouts: u64,
    /// Connections closed by the idle reaper.
    pub idle_reaped: u64,
    /// Requests answered busy by the in-flight byte budget (also
    /// counted in [`Self::busy`], so [`Self::reconciles`] is
    /// unaffected).
    pub admission_rejected: u64,
}

impl ServerStats {
    /// The accounting identity: every CRC-valid frame resolved exactly
    /// one way. (Holds whenever no request is mid-flight — after
    /// [`DecodeServer::shutdown`], always.)
    pub fn reconciles(&self) -> bool {
        self.frames_in
            == self.ok
                + self.busy
                + self.expired
                + self.failed
                + self.refused
                + self.internal
                + self.protocol_errors
    }
}

#[derive(Default)]
struct Tallies {
    accepted: AtomicU64,
    conn_rejected: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    crc_rejects: AtomicU64,
    frame_rejects: AtomicU64,
    protocol_errors: AtomicU64,
    ok: AtomicU64,
    busy: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    refused: AtomicU64,
    internal: AtomicU64,
    conn_capped: AtomicU64,
    frame_timeouts: AtomicU64,
    idle_reaped: AtomicU64,
    admission_rejected: AtomicU64,
}

struct Meters {
    accepted: Counter,
    conn_rejected: Counter,
    frames_in: Counter,
    frames_out: Counter,
    crc_rejects: Counter,
    frame_rejects: Counter,
    protocol_errors: Counter,
    ok: Counter,
    busy: Counter,
    expired: Counter,
    failed: Counter,
    refused: Counter,
    internal: Counter,
    conn_capped: Counter,
    frame_timeouts: Counter,
    idle_reaped: Counter,
    admission_rejected: Counter,
    active: Gauge,
    open_conns: Gauge,
    inflight_bytes: Gauge,
    latency: Histogram,
}

impl Meters {
    fn new(reg: &MetricsRegistry) -> Self {
        Meters {
            accepted: reg.counter("server.accepted"),
            conn_rejected: reg.counter("server.conn_rejected"),
            frames_in: reg.counter("server.frames_in"),
            frames_out: reg.counter("server.frames_out"),
            crc_rejects: reg.counter("server.crc_rejects"),
            frame_rejects: reg.counter("server.frame_rejects"),
            protocol_errors: reg.counter("server.protocol_errors"),
            ok: reg.counter("server.ok"),
            busy: reg.counter("server.busy"),
            expired: reg.counter("server.expired"),
            failed: reg.counter("server.failed"),
            refused: reg.counter("server.refused"),
            internal: reg.counter("server.internal"),
            conn_capped: reg.counter("server.conn_capped"),
            frame_timeouts: reg.counter("server.frame_timeouts"),
            idle_reaped: reg.counter("server.idle_reaped"),
            admission_rejected: reg.counter("server.admission_rejected"),
            active: reg.gauge("server.active"),
            open_conns: reg.gauge("server.open_conns"),
            inflight_bytes: reg.gauge("server.inflight_bytes"),
            latency: reg.histogram("server.latency"),
        }
    }
}

/// `Duration` → [`SimTime`], saturating (same clamping as the service
/// layer's histograms, so `server.latency` and `service.service_time`
/// are directly comparable).
fn sim_time(d: Duration) -> SimTime {
    let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    SimTime::ps(ns.saturating_mul(1_000))
}

struct Shared {
    service: Arc<DecodeService>,
    tallies: Tallies,
    meters: Option<Meters>,
    shutdown: AtomicBool,
    active: AtomicU64,
    open_conns: AtomicU64,
    inflight_bytes: AtomicU64,
    config: ServerConfig,
}

impl Shared {
    fn bump(&self, tally: &AtomicU64, meter: impl FnOnce(&Meters) -> &Counter) {
        tally.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.meters {
            meter(m).add(1);
        }
    }

    fn set_active(&self, delta: i64) {
        let now = if delta >= 0 {
            self.active.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.active.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        if let Some(m) = &self.meters {
            m.active.set(now as i64);
        }
    }

    fn open_add(&self, delta: i64) {
        let now = if delta >= 0 {
            self.open_conns.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.open_conns
                .fetch_sub((-delta) as u64, Ordering::Relaxed)
                - (-delta) as u64
        };
        if let Some(m) = &self.meters {
            m.open_conns.set(now as i64);
        }
    }

    /// Reserves `bytes` against the in-flight admission budget; `false`
    /// means the request must be shed.
    fn try_admit(&self, bytes: u64) -> bool {
        let max = self.config.max_inflight_bytes as u64;
        let prev = self.inflight_bytes.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > max {
            self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        if let Some(m) = &self.meters {
            m.inflight_bytes.set((prev + bytes) as i64);
        }
        true
    }

    fn release(&self, bytes: u64) {
        let now = self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed) - bytes;
        if let Some(m) = &self.meters {
            m.inflight_bytes.set(now as i64);
        }
    }
}

/// A running network decode server. See the [module docs](self).
pub struct DecodeServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl DecodeServer {
    /// Binds `addr` and starts the acceptor and handler threads.
    /// `addr` may use port `0` to let the OS pick — read the bound
    /// address back with [`Self::local_addr`].
    ///
    /// # Errors
    ///
    /// Any bind-time [`io::Error`].
    pub fn start(
        service: Arc<DecodeService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let meters = config.metrics.as_ref().map(Meters::new);
        let shared = Arc::new(Shared {
            service,
            tallies: Tallies::default(),
            meters,
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
            inflight_bytes: AtomicU64::new(0),
            config: config.clone(),
        });

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let handlers = (0..config.handler_threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("decode-net-{i}"))
                    .spawn(move || handler_loop(&shared, &rx))
                    .expect("spawn handler thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("decode-net-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &tx))
                .expect("spawn acceptor thread")
        };

        Ok(DecodeServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound listen address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the outcome tallies.
    pub fn stats(&self) -> ServerStats {
        let t = &self.shared.tallies;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStats {
            accepted: get(&t.accepted),
            conn_rejected: get(&t.conn_rejected),
            frames_in: get(&t.frames_in),
            frames_out: get(&t.frames_out),
            crc_rejects: get(&t.crc_rejects),
            frame_rejects: get(&t.frame_rejects),
            protocol_errors: get(&t.protocol_errors),
            ok: get(&t.ok),
            busy: get(&t.busy),
            expired: get(&t.expired),
            failed: get(&t.failed),
            refused: get(&t.refused),
            internal: get(&t.internal),
            conn_capped: get(&t.conn_capped),
            frame_timeouts: get(&t.frame_timeouts),
            idle_reaped: get(&t.idle_reaped),
            admission_rejected: get(&t.admission_rejected),
        }
    }

    /// Connections currently inside a handler.
    pub fn active_connections(&self) -> u64 {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains the handler pool and returns the final
    /// tallies. In-flight requests finish; idle connections close at
    /// the next poll tick. The shared [`DecodeService`] is left
    /// running — it belongs to the caller.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway local connection
        // wakes it to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor drops the channel sender on exit; handlers
        // drain queued connections, then their recv fails and they
        // stop.
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }
}

impl Drop for DecodeServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            if let Some(h) = self.acceptor.take() {
                let _ = h.join();
            }
            for h in self.handlers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &mpsc::SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a late client):
            // refuse and stop.
            let _ = respond_and_close(
                stream,
                &encode_service_error(&ServiceError::ShuttingDown),
                shared.config.write_timeout,
            );
            return;
        }
        if shared.open_conns.load(Ordering::Relaxed) >= shared.config.max_connections as u64 {
            // Connection cap: shed at the door with an explicit busy
            // frame instead of letting connections pile up unserved.
            shared.bump(&shared.tallies.conn_capped, |m| &m.conn_capped);
            reject_busy(stream, &shared.config);
            continue;
        }
        shared.open_add(1);
        match tx.try_send(stream) {
            Ok(()) => shared.bump(&shared.tallies.accepted, |m| &m.accepted),
            Err(mpsc::TrySendError::Full(stream)) => {
                // Handler pool saturated: answer busy and close so the
                // client retries with backoff instead of queueing
                // invisibly.
                shared.open_add(-1);
                shared.bump(&shared.tallies.conn_rejected, |m| &m.conn_rejected);
                reject_busy(stream, &shared.config);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Writes one frame and closes the write side so the peer sees clean
/// EOF after it.
fn respond_and_close(
    mut stream: TcpStream,
    payload: &[u8],
    write_timeout: Duration,
) -> io::Result<()> {
    stream.set_write_timeout(Some(write_timeout))?;
    write_frame(&mut stream, payload)?;
    stream.shutdown(std::net::Shutdown::Write)
}

/// Rejects a connection with a busy frame, *gracefully*: the client
/// may already have a request in flight, and closing with unread data
/// queued provokes a TCP reset that discards the busy frame on the
/// client side. So the frame goes out, the write side closes (FIN),
/// and a short detached thread drains the client's bytes until it
/// hangs up — never blocking the acceptor, never resetting the peer.
fn reject_busy(mut stream: TcpStream, config: &ServerConfig) {
    let write_timeout = config.write_timeout;
    let drain_read_timeout = config.drain_read_timeout;
    let drain_deadline = config.drain_deadline;
    let _ = std::thread::Builder::new()
        .name("decode-net-reject".into())
        .spawn(move || {
            if stream.set_write_timeout(Some(write_timeout)).is_err()
                || stream.set_read_timeout(Some(drain_read_timeout)).is_err()
                || write_frame(&mut stream, &encode_busy()).is_err()
                || stream.shutdown(std::net::Shutdown::Write).is_err()
            {
                return;
            }
            let mut sink = [0u8; 4096];
            let deadline = Instant::now() + drain_deadline;
            loop {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => return, // EOF, timeout or reset
                    Ok(_) => {}
                }
                if Instant::now() >= deadline {
                    return;
                }
            }
        });
}

fn handler_loop(shared: &Shared, rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only for the claim, never across a
        // connection.
        let stream = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(stream) = stream else { return };
        shared.set_active(1);
        serve_connection(shared, stream);
        shared.set_active(-1);
        shared.open_add(-1);
        if shared.shutdown.load(Ordering::SeqCst) {
            // Keep draining queued connections so no accepted client
            // hangs; recv() errors once the queue is empty and the
            // acceptor is gone.
            continue;
        }
    }
}

/// Reads one frame under an absolute deadline while staying
/// responsive to shutdown: before each read the remaining budget
/// (capped at the poll interval) becomes the socket timeout, so a
/// peer trickling one byte per window cannot extend the frame past
/// the deadline — each partial read shrinks what is left instead of
/// resetting it. Deadline expiry surfaces as `ErrorKind::TimedOut`
/// (socket-level `WouldBlock`/`TimedOut` wake-ups are absorbed), so
/// the caller can attribute it unambiguously.
struct FrameReader<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
    poll: Duration,
    shutdown: &'a AtomicBool,
}

impl Read for FrameReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(io::Error::new(
                    ErrorKind::ConnectionAborted,
                    "server shutting down",
                ));
            }
            let now = Instant::now();
            if now >= self.deadline {
                return Err(io::Error::new(
                    ErrorKind::TimedOut,
                    "whole-frame read deadline exceeded",
                ));
            }
            let window = (self.deadline - now).min(self.poll);
            self.stream.set_read_timeout(Some(window))?;
            match (&mut (&*self.stream)).read(buf) {
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

/// Serves one connection until EOF, an unrecoverable frame error,
/// idle expiry, or shutdown.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut last_activity = Instant::now();
    loop {
        // Idle poll: wait for the first byte of a frame with a short
        // timeout so the shutdown flag is observed on quiet
        // connections. peek() leaves the byte for read_frame.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean EOF between frames
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = respond_and_close(
                        stream,
                        &encode_service_error(&ServiceError::ShuttingDown),
                        shared.config.write_timeout,
                    );
                    return;
                }
                if let Some(idle) = shared.config.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        // Reap: free the handler for live traffic. The
                        // peer sees clean EOF between frames.
                        shared.bump(&shared.tallies.idle_reaped, |m| &m.idle_reaped);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
                continue;
            }
            Err(_) => return,
        }
        // A frame has begun. With a frame deadline the whole frame
        // races one budget (slow-loris eviction); without one, only
        // the per-read poll timeout bounds a mid-frame stall — and a
        // peer trickling a byte per window evades it indefinitely.
        let read_result = match shared.config.frame_deadline {
            None => read_frame(&mut stream, shared.config.max_frame_bytes),
            Some(limit) => {
                let mut reader = FrameReader {
                    stream: &stream,
                    deadline: Instant::now() + limit,
                    poll: shared.config.poll_interval,
                    shutdown: &shared.shutdown,
                };
                let res = read_frame(&mut reader, shared.config.max_frame_bytes);
                // Restore the idle-poll timeout for the next peek.
                if stream
                    .set_read_timeout(Some(shared.config.poll_interval))
                    .is_err()
                {
                    return;
                }
                res
            }
        };
        match read_result {
            Ok(None) => return,
            Ok(Some(payload)) => {
                shared.bump(&shared.tallies.frames_in, |m| &m.frames_in);
                if !handle_frame(shared, &mut stream, &payload) {
                    return;
                }
                last_activity = Instant::now();
            }
            Err(WireError::Io(e))
                if shared.config.frame_deadline.is_some() && e.kind() == ErrorKind::TimedOut =>
            {
                // The whole-frame deadline elapsed: evict the peer.
                // (Framing is lost mid-frame, so the connection closes;
                // the error frame is best-effort.)
                shared.bump(&shared.tallies.frame_timeouts, |m| &m.frame_timeouts);
                let _ = respond_and_close(
                    stream,
                    &encode_protocol_error("whole-frame read deadline exceeded"),
                    shared.config.write_timeout,
                );
                return;
            }
            Err(WireError::Crc { .. }) => {
                // The frame was fully read, so the stream is still in
                // sync — but its content is untrustworthy. Report and
                // close.
                shared.bump(&shared.tallies.crc_rejects, |m| &m.crc_rejects);
                let _ = respond_and_close(
                    stream,
                    &encode_protocol_error("frame crc mismatch"),
                    shared.config.write_timeout,
                );
                return;
            }
            Err(e @ (WireError::BadMagic(_) | WireError::Oversized { .. })) => {
                // Framing is lost; no way to find the next frame
                // boundary. Report and close.
                shared.bump(&shared.tallies.frame_rejects, |m| &m.frame_rejects);
                let _ = respond_and_close(
                    stream,
                    &encode_protocol_error(&e.to_string()),
                    shared.config.write_timeout,
                );
                return;
            }
            Err(_) => {
                // Truncated mid-frame or transport failure: the peer
                // is gone or stalled; nothing to answer.
                shared.bump(&shared.tallies.frame_rejects, |m| &m.frame_rejects);
                return;
            }
        }
    }
}

/// Handles one CRC-valid frame; returns `false` when the connection
/// should close.
fn handle_frame(shared: &Shared, stream: &mut TcpStream, payload: &[u8]) -> bool {
    let started = Instant::now();
    let response = match decode_request(payload) {
        Err(e) => {
            // The payload failed the grammar but the *frame* was
            // intact, so the connection stays usable.
            shared.bump(&shared.tallies.protocol_errors, |m| &m.protocol_errors);
            encode_protocol_error(&e.to_string())
        }
        Ok(wire) => {
            let bytes = wire.stream.len() as u64;
            if !shared.try_admit(bytes) {
                // Admission budget exhausted: shed with the same
                // retryable-busy answer as a full queue (clients
                // already back off on it), and tally the shed
                // separately for observability.
                shared.bump(&shared.tallies.busy, |m| &m.busy);
                shared.bump(&shared.tallies.admission_rejected, |m| {
                    &m.admission_rejected
                });
                encode_busy()
            } else {
                let outcome = shared
                    .service
                    .submit_wait(wire.stream, wire.request, shared.config.submit_timeout)
                    .and_then(crate::service::Ticket::wait);
                shared.release(bytes);
                match outcome {
                    Ok(resp) => {
                        shared.bump(&shared.tallies.ok, |m| &m.ok);
                        let report = resp.report.as_ref().map(WireReport::summarise);
                        encode_ok(&resp.image, report.as_ref(), resp.served_from)
                    }
                    Err(err) => {
                        let (tally, meter): (_, fn(&Meters) -> &Counter) = match &err {
                            ServiceError::QueueFull => (&shared.tallies.busy, |m| &m.busy),
                            ServiceError::DeadlineExceeded => {
                                (&shared.tallies.expired, |m| &m.expired)
                            }
                            ServiceError::Decode(_) => (&shared.tallies.failed, |m| &m.failed),
                            ServiceError::ShuttingDown => (&shared.tallies.refused, |m| &m.refused),
                            _ => (&shared.tallies.internal, |m| &m.internal),
                        };
                        shared.bump(tally, meter);
                        encode_service_error(&err)
                    }
                }
            }
        }
    };
    if let Some(m) = &shared.meters {
        m.latency.observe(sim_time(started.elapsed()));
    }
    match write_frame(stream, &response) {
        Ok(()) => {
            shared.bump(&shared.tallies.frames_out, |m| &m.frames_out);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode, EncodeParams, Mode};
    use crate::image::Image;
    use crate::net::{encode_request, Client, NetError, NetRetryPolicy};
    use crate::service::{Request, ServiceConfig};
    use osss_sim::checksum::crc32;

    fn small_service(workers: usize, queue: usize) -> Arc<DecodeService> {
        Arc::new(DecodeService::new(ServiceConfig {
            workers,
            queue_capacity: queue,
            ..ServiceConfig::default()
        }))
    }

    fn start(service: Arc<DecodeService>, config: ServerConfig) -> DecodeServer {
        DecodeServer::start(service, "127.0.0.1:0", config).expect("bind loopback")
    }

    fn lossless_stream(seed: u64) -> (Image, Vec<u8>) {
        let img = Image::synthetic_rgb(24, 16, seed);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        (img, bytes)
    }

    #[test]
    fn networked_strict_decode_is_bit_exact() {
        let server = start(small_service(1, 8), ServerConfig::default());
        let (img, bytes) = lossless_stream(11);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.request(&Request::strict(), &bytes).unwrap();
        assert_eq!(resp.image, img);
        assert_eq!(resp.image, decode(&bytes).unwrap().image);
        assert!(resp.report.is_none());
        // Same connection, second request: framing stays in sync.
        let resp2 = client.request(&Request::strict(), &bytes).unwrap();
        assert_eq!(resp2.image, img);
        let stats = server.shutdown();
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.frames_in, 2);
        assert_eq!(stats.frames_out, 2);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn tolerant_decode_carries_the_report_summary() {
        let server = start(small_service(1, 8), ServerConfig::default());
        let (_, bytes) = lossless_stream(12);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.request(&Request::tolerant(), &bytes).unwrap();
        assert!(resp.report.is_some(), "tolerant responses carry a report");
        assert!(resp.report.unwrap().failures.is_empty(), "clean stream");
        server.shutdown();
    }

    #[test]
    fn garbage_payload_gets_protocol_error_and_connection_survives() {
        let server = start(small_service(1, 8), ServerConfig::default());
        let (img, bytes) = lossless_stream(13);
        let mut client = Client::connect(server.local_addr()).unwrap();
        // A CRC-valid frame whose payload is junk.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        crate::net::write_frame(&mut raw, b"not a request").unwrap();
        let reply = crate::net::read_frame(&mut raw, MAX_FRAME_BYTES)
            .unwrap()
            .expect("a protocol-error response");
        assert!(matches!(
            crate::net::decode_response(&reply).unwrap_err(),
            NetError::Protocol(_)
        ));
        // Same raw connection still serves a good request afterwards.
        crate::net::write_frame(&mut raw, &encode_request(&Request::strict(), &bytes)).unwrap();
        let reply = crate::net::read_frame(&mut raw, MAX_FRAME_BYTES)
            .unwrap()
            .expect("a decode response");
        assert_eq!(crate::net::decode_response(&reply).unwrap().image, img);
        drop(raw);
        // And the client connection was never disturbed.
        assert_eq!(
            client.request(&Request::strict(), &bytes).unwrap().image,
            img
        );
        let stats = server.shutdown();
        assert_eq!(stats.protocol_errors, 1);
        assert_eq!(stats.ok, 2);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn crc_corrupt_frame_is_rejected_and_counted() {
        let server = start(small_service(1, 8), ServerConfig::default());
        let (_, bytes) = lossless_stream(14);
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let payload = encode_request(&Request::strict(), &bytes);
        let mut frame = Vec::new();
        crate::net::write_frame(&mut frame, &payload).unwrap();
        let n = frame.len();
        frame[n - 1] ^= 0xFF; // corrupt the CRC trailer
        use std::io::Write as _;
        raw.write_all(&frame).unwrap();
        let reply = crate::net::read_frame(&mut raw, MAX_FRAME_BYTES)
            .unwrap()
            .expect("a protocol-error response before close");
        assert!(matches!(
            crate::net::decode_response(&reply).unwrap_err(),
            NetError::Protocol(d) if d.contains("crc")
        ));
        // The server closed the connection after the CRC reject.
        assert_eq!(
            crate::net::read_frame(&mut raw, MAX_FRAME_BYTES).unwrap(),
            None
        );
        let stats = server.shutdown();
        assert_eq!(stats.crc_rejects, 1);
        assert_eq!(stats.frames_in, 0);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn flood_against_tiny_queue_yields_busy_never_hangs() {
        // 1 worker, queue of 1, near-zero submit patience: a burst of
        // concurrent clients must each get either an image or an
        // explicit retryable-busy — never a hang or a reset.
        let service = small_service(1, 1);
        let server = start(
            Arc::clone(&service),
            ServerConfig {
                handler_threads: 6,
                submit_timeout: Duration::from_millis(1),
                ..ServerConfig::default()
            },
        );
        let addr = server.local_addr();
        let (img, bytes) = lossless_stream(15);
        let img = Arc::new(img);
        let bytes = Arc::new(bytes);
        let outcomes: Vec<_> = (0..6)
            .map(|_| {
                let bytes = Arc::clone(&bytes);
                let img = Arc::clone(&img);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    match client.request(&Request::strict(), &bytes) {
                        Ok(resp) => {
                            assert_eq!(resp.image, *img);
                            "ok"
                        }
                        Err(NetError::Busy) => "busy",
                        Err(other) => panic!("unexpected outcome: {other:?}"),
                    }
                })
            })
            .map(|h| h.join().unwrap())
            .collect();
        assert!(outcomes.contains(&"ok"), "{outcomes:?}");
        let stats = server.shutdown();
        assert_eq!(
            stats.ok + stats.busy,
            outcomes.len() as u64,
            "every request resolved ok or busy: {stats:?}"
        );
        assert!(stats.reconciles(), "{stats:?}");
        // Server busy responses and service queue rejections agree.
        let svc = Arc::try_unwrap(service).ok().unwrap().shutdown();
        assert_eq!(svc.rejected, stats.busy, "svc {svc:?} / server {stats:?}");
        assert_eq!(svc.completed, stats.ok);
    }

    #[test]
    fn saturated_handler_pool_answers_busy_at_the_acceptor() {
        // One handler, zero backlog-slack: while it is pinned by a slow
        // client, further connections get an immediate busy frame.
        let service = small_service(1, 4);
        let server = start(
            Arc::clone(&service),
            ServerConfig {
                handler_threads: 1,
                backlog: 1,
                ..ServerConfig::default()
            },
        );
        let addr = server.local_addr();
        // Pin the only handler with an open, idle connection...
        let pin = std::net::TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_connections(), 1, "handler claimed pin");
        // ...and fill the single backlog slot with another.
        let fill = std::net::TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().accepted < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.stats().accepted, 2, "pin+fill accepted");
        // Now a retrying client must see busy frames until it gives up.
        let mut victim = Client::connect(addr).unwrap();
        let (_, bytes) = lossless_stream(16);
        let err = victim
            .decode_retry(
                &Request::strict(),
                &bytes,
                &NetRetryPolicy {
                    max_retries: 2,
                    backoff_base: Duration::from_millis(1),
                    ..NetRetryPolicy::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, NetError::RetriesExhausted { attempts: 3 }),
            "{err:?}"
        );
        drop(pin);
        drop(fill);
        let stats = server.shutdown();
        assert!(stats.conn_rejected >= 3, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn metrics_mirror_the_stats_exactly() {
        let registry = MetricsRegistry::new();
        let service = Arc::new(DecodeService::new(ServiceConfig {
            workers: 1,
            metrics: Some(registry.clone()),
            ..ServiceConfig::default()
        }));
        let server = start(
            Arc::clone(&service),
            ServerConfig {
                metrics: Some(registry.clone()),
                ..ServerConfig::default()
            },
        );
        let (_, bytes) = lossless_stream(17);
        let mut client = Client::connect(server.local_addr()).unwrap();
        for _ in 0..3 {
            client.request(&Request::strict(), &bytes).unwrap();
        }
        drop(client);
        let stats = server.shutdown();
        let snap = registry.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(counter("server.ok"), stats.ok);
        assert_eq!(counter("server.frames_in"), stats.frames_in);
        assert_eq!(counter("server.frames_out"), stats.frames_out);
        assert_eq!(counter("server.accepted"), stats.accepted);
        assert_eq!(counter("server.busy"), stats.busy);
        // Cross-family reconciliation: every admitted request is one
        // service submission — queued or coalesced onto an identical
        // in-flight one.
        assert_eq!(
            counter("service.submitted") + counter("service.coalesced"),
            stats.ok + stats.expired + stats.failed + stats.internal
        );
        assert_eq!(
            snap.histograms.get("server.latency").map(|h| h.count()),
            Some(stats.ok)
        );
        assert_eq!(snap.gauges.get("server.active").copied(), Some(0));
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent_under_drop() {
        let server = start(small_service(1, 4), ServerConfig::default());
        let addr = server.local_addr();
        let (img, bytes) = lossless_stream(18);
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(
            client.request(&Request::strict(), &bytes).unwrap().image,
            img
        );
        let stats = server.shutdown();
        assert_eq!(stats.ok, 1);
        // The listener is gone: new connections fail outright.
        assert!(
            std::net::TcpStream::connect(addr).is_err() || {
                // Rarely the OS lets a connect race the close; a read then
                // sees immediate EOF.
                true
            }
        );
        // An idle open connection is closed at the next poll tick with
        // a refused frame or EOF — verified via a second server that
        // we drop (Drop runs the same shutdown path).
        let server2 = start(small_service(1, 4), ServerConfig::default());
        let _idle = std::net::TcpStream::connect(server2.local_addr()).unwrap();
        drop(server2);
    }

    /// Drives a slow-loris peer: a frame header promising a payload,
    /// then one payload byte per `tick` until `stop` fires. Returns
    /// the writer thread.
    fn slow_loris(
        addr: std::net::SocketAddr,
        tick: Duration,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            use std::io::Write as _;
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            let mut head = [0u8; 8];
            head[..4].copy_from_slice(&crate::net::FRAME_MAGIC.to_le_bytes());
            head[4..].copy_from_slice(&1_000_000u32.to_le_bytes());
            if s.write_all(&head).is_err() {
                return;
            }
            while !stop.load(Ordering::SeqCst) {
                if s.write_all(&[0u8]).is_err() {
                    return; // evicted: the server closed on us
                }
                std::thread::sleep(tick);
            }
        })
    }

    /// Regression (PR 9): without a whole-frame deadline, a client
    /// trickling one byte per poll interval pins a handler forever;
    /// with one, the handler evicts it and frees itself.
    #[test]
    fn slow_loris_pins_without_frame_deadline_and_is_evicted_with_one() {
        // Pre-fix behaviour: frame_deadline = None. The loris out-runs
        // the 20ms per-read timeout, so the handler stays pinned.
        let server = start(
            small_service(1, 4),
            ServerConfig {
                handler_threads: 1,
                poll_interval: Duration::from_millis(20),
                frame_deadline: None,
                idle_timeout: None,
                ..ServerConfig::default()
            },
        );
        let stop = Arc::new(AtomicBool::new(false));
        let loris = slow_loris(
            server.local_addr(),
            Duration::from_millis(5),
            Arc::clone(&stop),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Give the per-read timeout many chances to (wrongly) fire.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            server.active_connections(),
            1,
            "pre-fix: the loris still pins the only handler"
        );
        stop.store(true, Ordering::SeqCst);
        loris.join().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.frame_timeouts, 0, "{stats:?}");

        // Post-fix: a 150ms whole-frame deadline evicts the same peer
        // even though it never misses a per-read window.
        let server = start(
            small_service(1, 4),
            ServerConfig {
                handler_threads: 1,
                poll_interval: Duration::from_millis(20),
                frame_deadline: Some(Duration::from_millis(150)),
                ..ServerConfig::default()
            },
        );
        let stop = Arc::new(AtomicBool::new(false));
        let loris = slow_loris(
            server.local_addr(),
            Duration::from_millis(5),
            Arc::clone(&stop),
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().frame_timeouts < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            server.stats().frame_timeouts,
            1,
            "post-fix: the frame deadline evicted the loris"
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.active_connections(), 0, "handler freed");
        // The freed handler serves a clean client immediately.
        let (img, bytes) = lossless_stream(19);
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            client.request(&Request::strict(), &bytes).unwrap().image,
            img
        );
        stop.store(true, Ordering::SeqCst);
        loris.join().unwrap();
        let stats = server.shutdown();
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn idle_connections_are_reaped_but_active_ones_are_not() {
        let registry = MetricsRegistry::new();
        let server = start(
            small_service(1, 4),
            ServerConfig {
                handler_threads: 2,
                poll_interval: Duration::from_millis(10),
                idle_timeout: Some(Duration::from_millis(120)),
                metrics: Some(registry.clone()),
                ..ServerConfig::default()
            },
        );
        let (img, bytes) = lossless_stream(20);
        // An active client keeps making requests across the idle
        // window and must never be reaped...
        let mut active = Client::connect(server.local_addr()).unwrap();
        // ...while a silent connection gets closed.
        let mut idle = std::net::TcpStream::connect(server.local_addr()).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for _ in 0..4 {
            assert_eq!(
                active.request(&Request::strict(), &bytes).unwrap().image,
                img
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut buf = [0u8; 1];
        assert_eq!(idle.read(&mut buf).unwrap(), 0, "idle peer sees clean EOF");
        let stats = server.shutdown();
        assert_eq!(stats.idle_reaped, 1, "{stats:?}");
        assert_eq!(stats.ok, 4);
        assert!(stats.reconciles(), "{stats:?}");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters.get("server.idle_reaped").copied(),
            Some(stats.idle_reaped)
        );
    }

    #[test]
    fn connection_cap_sheds_with_a_busy_frame() {
        let registry = MetricsRegistry::new();
        let server = start(
            small_service(1, 4),
            ServerConfig {
                handler_threads: 1,
                backlog: 1,
                max_connections: 1,
                metrics: Some(registry.clone()),
                ..ServerConfig::default()
            },
        );
        let addr = server.local_addr();
        // Occupy the single permitted connection...
        let _pin = std::net::TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_connections(), 1);
        // ...so the next client is shed at the door with a busy frame.
        let (_, bytes) = lossless_stream(21);
        let mut victim = Client::connect(addr).unwrap();
        let err = victim.request(&Request::strict(), &bytes).unwrap_err();
        assert!(matches!(err, NetError::Busy), "{err:?}");
        let stats = server.shutdown();
        assert!(stats.conn_capped >= 1, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters.get("server.conn_capped").copied(),
            Some(stats.conn_capped)
        );
        assert_eq!(snap.gauges.get("server.open_conns").copied(), Some(0));
    }

    #[test]
    fn admission_budget_sheds_oversized_inflight_as_busy() {
        let registry = MetricsRegistry::new();
        let (img, bytes) = lossless_stream(22);
        let server = start(
            small_service(1, 4),
            ServerConfig {
                // Budget below one request: everything is shed.
                max_inflight_bytes: bytes.len() - 1,
                metrics: Some(registry.clone()),
                ..ServerConfig::default()
            },
        );
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.request(&Request::strict(), &bytes).unwrap_err();
        assert!(matches!(err, NetError::Busy), "{err:?}");
        let stats = server.shutdown();
        assert_eq!(stats.admission_rejected, 1, "{stats:?}");
        assert_eq!(stats.busy, 1, "shed requests are busy answers");
        assert!(stats.reconciles(), "{stats:?}");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters.get("server.admission_rejected").copied(),
            Some(1)
        );
        // Nothing was admitted, so nothing is in flight.
        assert!(
            matches!(
                snap.gauges.get("server.inflight_bytes").copied(),
                None | Some(0)
            ),
            "{snap:?}"
        );

        // With the budget exactly at the request size, it decodes.
        let server = start(
            small_service(1, 4),
            ServerConfig {
                max_inflight_bytes: bytes.len(),
                ..ServerConfig::default()
            },
        );
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            client.request(&Request::strict(), &bytes).unwrap().image,
            img
        );
        let stats = server.shutdown();
        assert_eq!(stats.admission_rejected, 0, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn frame_magic_is_pinned_and_uses_the_shared_crc() {
        // The wire format is a contract: magic and CRC are pinned so an
        // old client always interoperates.
        let mut frame = Vec::new();
        crate::net::write_frame(&mut frame, b"pin").unwrap();
        assert_eq!(&frame[..4], &0x4A32_4B44u32.to_le_bytes());
        let n = frame.len();
        assert_eq!(&frame[n - 4..], &crc32(b"pin").to_le_bytes());
    }
}
