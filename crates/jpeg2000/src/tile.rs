//! Tiling and subband geometry: the tile grid, the Mallat subband layout
//! after `L` decomposition levels, and the code-block partition of a band.
//!
//! JPEG 2000 processes images as tiles ("more manageable and more adapted
//! to a pipelined computation", as the paper puts it); each tile-component
//! decomposes into resolutions and subbands, each subband into code-blocks.

use crate::dwt::effective_levels;

/// A rectangle `(x0, y0, width, height)` in sample coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x0: usize,
    /// Top edge.
    pub y0: usize,
    /// Width in samples.
    pub w: usize,
    /// Height in samples.
    pub h: usize,
}

impl Rect {
    /// Number of samples covered.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// The regular tile grid covering an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Image width.
    pub image_w: usize,
    /// Image height.
    pub image_h: usize,
    /// Nominal tile width.
    pub tile_w: usize,
    /// Nominal tile height.
    pub tile_h: usize,
}

impl TileGrid {
    /// Creates a grid; tiles at the right/bottom edges may be smaller.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(image_w: usize, image_h: usize, tile_w: usize, tile_h: usize) -> Self {
        assert!(image_w > 0 && image_h > 0, "empty image");
        assert!(tile_w > 0 && tile_h > 0, "empty tile");
        TileGrid {
            image_w,
            image_h,
            tile_w,
            tile_h,
        }
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.image_w.div_ceil(self.tile_w)
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.image_h.div_ceil(self.tile_h)
    }

    /// Total number of tiles.
    pub fn count(&self) -> usize {
        self.cols() * self.rows()
    }

    /// The bounds of tile `index` (raster order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= count()`.
    pub fn tile_rect(&self, index: usize) -> Rect {
        assert!(index < self.count(), "tile index out of range");
        let tx = index % self.cols();
        let ty = index / self.cols();
        let x0 = tx * self.tile_w;
        let y0 = ty * self.tile_h;
        Rect {
            x0,
            y0,
            w: (self.image_w - x0).min(self.tile_w),
            h: (self.image_h - y0).min(self.tile_h),
        }
    }
}

/// Subband orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandKind {
    /// Low-pass both directions (only at the deepest level).
    Ll,
    /// High-pass horizontally, low-pass vertically.
    Hl,
    /// Low-pass horizontally, high-pass vertically.
    Lh,
    /// High-pass both directions.
    Hh,
}

/// One subband of a tile-component: its kind, decomposition level and
/// position inside the Mallat-layout coefficient plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// Orientation.
    pub kind: BandKind,
    /// Decomposition level, `1..=levels` (1 = finest).
    pub level: u8,
    /// Position in the Mallat layout (tile-component coordinates).
    pub rect: Rect,
}

/// The Mallat subband layout of a `w × h` tile-component decomposed
/// `levels` times (capped by [`effective_levels`]).
///
/// Bands are returned **resolution by resolution, coarse to fine**: the
/// deepest LL first, then `HL, LH, HH` of the deepest level, …, then
/// `HL, LH, HH` of level 1 — the packet order of an LRCP codestream.
pub fn subbands(w: usize, h: usize, levels: usize) -> Vec<Band> {
    let levels = effective_levels(w, h, levels);
    // Region sizes per level: dims[l] = size after l decompositions.
    let mut dims = vec![(w, h)];
    for l in 0..levels {
        let (pw, ph) = dims[l];
        dims.push((pw.div_ceil(2), ph.div_ceil(2)));
    }
    let mut bands = Vec::new();
    let (llw, llh) = dims[levels];
    bands.push(Band {
        kind: BandKind::Ll,
        level: levels as u8,
        rect: Rect {
            x0: 0,
            y0: 0,
            w: llw,
            h: llh,
        },
    });
    // Deepest level first.
    for level in (1..=levels).rev() {
        let (pw, ph) = dims[level - 1]; // region being split
        let (lw, lh) = dims[level]; // its low half sizes
        let (hw, hh) = (pw - lw, ph - lh);
        if hw > 0 {
            bands.push(Band {
                kind: BandKind::Hl,
                level: level as u8,
                rect: Rect {
                    x0: lw,
                    y0: 0,
                    w: hw,
                    h: lh,
                },
            });
        }
        if hh > 0 {
            bands.push(Band {
                kind: BandKind::Lh,
                level: level as u8,
                rect: Rect {
                    x0: 0,
                    y0: lh,
                    w: lw,
                    h: hh,
                },
            });
        }
        if hw > 0 && hh > 0 {
            bands.push(Band {
                kind: BandKind::Hh,
                level: level as u8,
                rect: Rect {
                    x0: lw,
                    y0: lh,
                    w: hw,
                    h: hh,
                },
            });
        }
    }
    bands
}

/// Groups the subbands of a tile-component by resolution: index 0 holds
/// only the deepest LL band, index `r ≥ 1` the `HL/LH/HH` bands of level
/// `levels − r + 1` — the packet grouping of an LRCP codestream.
pub fn resolution_bands(w: usize, h: usize, levels: usize) -> Vec<Vec<Band>> {
    let bands = subbands(w, h, levels);
    let applied = bands[0].level as usize;
    let mut groups: Vec<Vec<Band>> = vec![Vec::new(); applied + 1];
    for b in bands {
        let r = match b.kind {
            BandKind::Ll => 0,
            _ => applied - b.level as usize + 1,
        };
        groups[r].push(b);
    }
    groups
}

/// Splits `band_w × band_h` into code-blocks of nominal size
/// `cb_w × cb_h`, anchored at the band origin, raster order.
pub fn codeblocks(band_w: usize, band_h: usize, cb_w: usize, cb_h: usize) -> Vec<Rect> {
    let mut out = Vec::new();
    if band_w == 0 || band_h == 0 {
        return out;
    }
    let mut y0 = 0;
    while y0 < band_h {
        let h = (band_h - y0).min(cb_h);
        let mut x0 = 0;
        while x0 < band_w {
            let w = (band_w - x0).min(cb_w);
            out.push(Rect { x0, y0, w, h });
            x0 += cb_w;
        }
        y0 += cb_h;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts_and_edge_tiles() {
        let g = TileGrid::new(100, 60, 32, 32);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.count(), 8);
        assert_eq!(
            g.tile_rect(0),
            Rect {
                x0: 0,
                y0: 0,
                w: 32,
                h: 32
            }
        );
        // Rightmost column tile is 100 - 96 = 4 wide.
        assert_eq!(g.tile_rect(3).w, 4);
        // Bottom row tile is 60 - 32 = 28 tall.
        assert_eq!(g.tile_rect(4).h, 28);
        assert_eq!(
            g.tile_rect(7),
            Rect {
                x0: 96,
                y0: 32,
                w: 4,
                h: 28
            }
        );
    }

    #[test]
    fn tiles_partition_the_image() {
        let g = TileGrid::new(33, 17, 16, 16);
        let total: usize = (0..g.count()).map(|i| g.tile_rect(i).area()).sum();
        assert_eq!(total, 33 * 17);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_index_out_of_range() {
        let g = TileGrid::new(10, 10, 10, 10);
        let _ = g.tile_rect(1);
    }

    #[test]
    fn subbands_cover_the_plane_exactly() {
        for &(w, h, levels) in &[(64usize, 64usize, 3usize), (17, 13, 2), (33, 9, 4)] {
            let bands = subbands(w, h, levels);
            let total: usize = bands.iter().map(|b| b.rect.area()).sum();
            assert_eq!(total, w * h, "{w}x{h} L{levels}");
            // No overlaps: paint and count.
            let mut painted = vec![false; w * h];
            for b in &bands {
                for y in b.rect.y0..b.rect.y0 + b.rect.h {
                    for x in b.rect.x0..b.rect.x0 + b.rect.w {
                        assert!(!painted[y * w + x], "overlap at {x},{y}");
                        painted[y * w + x] = true;
                    }
                }
            }
            assert!(painted.iter().all(|&p| p));
        }
    }

    #[test]
    fn subband_order_is_coarse_to_fine() {
        let bands = subbands(64, 64, 3);
        assert_eq!(bands.len(), 10); // LL + 3 levels × 3
        assert_eq!(bands[0].kind, BandKind::Ll);
        assert_eq!(bands[0].level, 3);
        assert_eq!(bands[1].level, 3);
        assert_eq!(bands[9].level, 1);
        assert_eq!(bands[0].rect.w, 8);
        assert_eq!(bands[9].kind, BandKind::Hh);
        assert_eq!(bands[9].rect.w, 32);
    }

    #[test]
    fn subbands_of_tiny_region() {
        let bands = subbands(1, 1, 5);
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].kind, BandKind::Ll);
        assert_eq!(bands[0].level, 0);
    }

    #[test]
    fn resolution_grouping() {
        let groups = resolution_bands(64, 64, 3);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].len(), 1);
        assert_eq!(groups[0][0].kind, BandKind::Ll);
        for (r, g) in groups.iter().enumerate().skip(1) {
            assert_eq!(g.len(), 3, "resolution {r}");
            assert_eq!(g[0].level as usize, 3 - r + 1);
        }
        // Tiny component: fewer effective levels, still consistent.
        let tiny = resolution_bands(3, 3, 5);
        let total: usize = tiny.iter().flatten().map(|b| b.rect.area()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn codeblock_partition_covers_band() {
        let blocks = codeblocks(70, 33, 32, 32);
        assert_eq!(blocks.len(), 3 * 2);
        let total: usize = blocks.iter().map(Rect::area).sum();
        assert_eq!(total, 70 * 33);
        assert_eq!(blocks[2].w, 6); // 70 - 64
        assert_eq!(blocks[5].h, 1); // 33 - 32
    }

    #[test]
    fn codeblocks_of_empty_band() {
        assert!(codeblocks(0, 5, 32, 32).is_empty());
    }
}
