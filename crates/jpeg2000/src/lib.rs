//! # jpeg2000 — a self-contained JPEG 2000 Part-1 style codec
//!
//! The DATE 2008 OSSS case study decodes JPEG 2000 imagery: MQ arithmetic
//! decoding (EBCOT Tier-1), inverse quantisation, inverse DWT (5/3
//! lossless, 9/7 lossy), inverse component transform and DC level shift,
//! processed tile by tile. The original study consumed a proprietary
//! Thales C++ implementation and conformance imagery; neither is available
//! offline, so this crate implements **both the encoder and the decoder**
//! from the published Part-1 algorithms — the encoder generates the
//! workload, the decoder is the system under study.
//!
//! Pipeline (decoder direction):
//!
//! ```text
//! codestream ─▶ T2 packets ─▶ MQ/T1 entropy decode ─▶ IQ ─▶ IDWT ─▶ ICT/RCT ─▶ DC shift ─▶ image
//! ```
//!
//! * [`mq`] — the MQ binary arithmetic coder (47-state table, byte stuffing).
//! * [`t1`] — EBCOT Tier-1 bit-plane coding (3 passes, 19 contexts).
//! * [`t2`] — tag trees and packet headers (single layer, LRCP).
//! * [`dwt`] — LeGall 5/3 (reversible) and CDF 9/7 (irreversible) lifting;
//!   the 9/7 inverse runs in Q16 fixed point.
//! * [`quant`] — dead-zone scalar quantiser.
//! * [`ct`] — RCT/ICT component transforms and DC level shift.
//! * [`codestream`] — marker-segment writer/parser.
//! * [`codec`] — tiled top-level [`codec::encode`] / [`codec::decode`],
//!   plus the stage-instrumented decoder behind the Figure-1 profile.
//! * [`parallel`] — tile-parallel [`parallel::decode_parallel`], the
//!   native mirror of the paper's 1/2/4-pipeline model versions.
//! * [`scratch`] — the [`scratch::DecodeScratch`] arena of reusable
//!   Tier-1/DWT buffers (one per decode, or one per parallel worker).
//! * [`service`] — the persistent [`service::DecodeService`]: a
//!   long-lived worker pool with a bounded queue, per-request deadlines
//!   and a two-level (header/image) LRU cache for repeat streams.
//! * [`fuzz`] — deterministic structure-aware mutation engine for
//!   fault-injection testing of the whole decode surface (see
//!   `tests/fuzz_decode.rs`); [`codec::decode_tolerant`] is the
//!   error-resilient entry point it exercises.
//! * [`net`] / [`server`] — a length-prefixed, CRC-framed wire
//!   protocol and a std-only TCP front-end ([`server::DecodeServer`])
//!   over the decode service, with a blocking [`net::Client`] that
//!   retries on backpressure.
//! * [`chaos`] — a deterministic TCP chaos proxy
//!   ([`chaos::ChaosProxy`]) that injects partial writes, stalls, byte
//!   corruption, connection drops and blackholes between client and
//!   server from a seeded, replayable schedule (see `tests/chaos.rs`).
//!
//! ## Example
//!
//! ```
//! use jpeg2000::image::Image;
//! use jpeg2000::codec::{encode, decode, EncodeParams, Mode};
//!
//! # fn main() -> Result<(), jpeg2000::error::CodecError> {
//! let img = Image::synthetic_rgb(64, 64, 7);
//! let bytes = encode(&img, &EncodeParams::new(Mode::Lossless))?;
//! let out = decode(&bytes)?;
//! assert_eq!(img, out.image); // 5/3 + RCT is bit-exact
//! # Ok(())
//! # }
//! ```

pub mod chaos;
pub mod codec;
pub mod codestream;
pub mod ct;
pub mod dwt;
pub mod error;
pub mod fuzz;
pub mod image;
pub mod io;
pub mod mq;
pub mod net;
pub mod parallel;
pub mod quant;
pub mod scratch;
pub mod server;
pub mod service;
pub mod t1;
pub mod t2;
pub mod tile;
