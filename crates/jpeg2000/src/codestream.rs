//! Codestream marker segments: writer and validating parser.
//!
//! The layout follows the JPEG 2000 main-header structure — `SOC`, `SIZ`
//! (geometry), `COD` (coding style), `QCD` (quantisation), then one
//! `SOT…SOD…` segment per tile and a closing `EOC`. Field encodings are
//! simplified where the standard's generality is not exercised (single
//! tile-part per tile, one layer, no subsampling).

use crate::error::{CodecError, CodecResult};

/// Start of codestream.
pub const MARKER_SOC: u16 = 0xFF4F;
/// Image and tile size.
pub const MARKER_SIZ: u16 = 0xFF51;
/// Coding style default.
pub const MARKER_COD: u16 = 0xFF52;
/// Quantisation default.
pub const MARKER_QCD: u16 = 0xFF5C;
/// Start of tile-part.
pub const MARKER_SOT: u16 = 0xFF90;
/// Start of data.
pub const MARKER_SOD: u16 = 0xFF93;
/// End of codestream.
pub const MARKER_EOC: u16 = 0xFFD9;

/// Which wavelet the codestream uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wavelet {
    /// CDF 9/7, irreversible (lossy path).
    W97,
    /// LeGall 5/3, reversible (lossless path).
    W53,
}

/// Quantisation specification carried in `QCD`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantSpec {
    /// Reversible: no quantisation.
    Reversible,
    /// Irreversible with the LL base step (16.16 fixed point on the wire).
    Irreversible {
        /// The LL-band quantisation step.
        base_step: f64,
    },
}

/// Everything the main header carries.
#[derive(Debug, Clone, PartialEq)]
pub struct MainHeader {
    /// Image width in samples.
    pub width: u32,
    /// Image height in samples.
    pub height: u32,
    /// Nominal tile width.
    pub tile_w: u32,
    /// Nominal tile height.
    pub tile_h: u32,
    /// Number of colour components (1 or 3).
    pub num_components: u16,
    /// Bits per sample.
    pub depth: u8,
    /// DWT decomposition levels.
    pub levels: u8,
    /// Quality layers (codeword-terminated pass segments per block).
    pub layers: u8,
    /// Code-blocks are `2^cb_exp × 2^cb_exp`.
    pub cb_exp: u8,
    /// Whether the multi-component transform (RCT/ICT) is applied.
    pub use_mct: bool,
    /// Wavelet kind.
    pub wavelet: Wavelet,
    /// Quantisation.
    pub quant: QuantSpec,
}

/// One tile's bitstream (the packet sequence between `SOD` and the next
/// marker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSegment {
    /// Tile index in raster order.
    pub index: u16,
    /// Packet bytes.
    pub data: Vec<u8>,
}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }
}

/// Serialises a complete codestream.
pub fn write_codestream(header: &MainHeader, tiles: &[TileSegment]) -> Vec<u8> {
    let mut w = Writer { out: Vec::new() };
    w.u16(MARKER_SOC);

    // SIZ: length, geometry, components.
    w.u16(MARKER_SIZ);
    let siz_len = 2 + 4 * 4 + 2 + header.num_components as usize;
    w.u16(siz_len as u16);
    w.u32(header.width);
    w.u32(header.height);
    w.u32(header.tile_w);
    w.u32(header.tile_h);
    w.u16(header.num_components);
    for _ in 0..header.num_components {
        w.u8(header.depth - 1);
    }

    // COD: coding style.
    w.u16(MARKER_COD);
    w.u16(2 + 5);
    w.u8(header.levels);
    w.u8(header.layers);
    w.u8(header.cb_exp);
    w.u8(match header.wavelet {
        Wavelet::W97 => 0,
        Wavelet::W53 => 1,
    });
    w.u8(header.use_mct as u8);

    // QCD: quantisation.
    w.u16(MARKER_QCD);
    match header.quant {
        QuantSpec::Reversible => {
            w.u16(2 + 1);
            w.u8(0);
        }
        QuantSpec::Irreversible { base_step } => {
            w.u16(2 + 1 + 4);
            w.u8(1);
            w.u32((base_step * 65_536.0).round() as u32);
        }
    }

    // Tile-parts.
    for t in tiles {
        w.u16(MARKER_SOT);
        w.u16(10); // Lsot
        w.u16(t.index);
        // Psot: SOT marker (2) + Lsot body (10) + SOD marker (2) + data.
        w.u32(2 + 10 + 2 + t.data.len() as u32);
        w.u8(0); // TPsot
        w.u8(1); // TNsot
        w.u16(MARKER_SOD);
        w.out.extend_from_slice(&t.data);
    }

    w.u16(MARKER_EOC);
    w.out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self, ctx: &'static str) -> CodecResult<u8> {
        let v = *self
            .data
            .get(self.pos)
            .ok_or_else(|| CodecError::truncated(ctx).at_offset(self.pos))?;
        self.pos += 1;
        Ok(v)
    }
    fn u16(&mut self, ctx: &'static str) -> CodecResult<u16> {
        Ok(((self.u8(ctx)? as u16) << 8) | self.u8(ctx)? as u16)
    }
    fn u32(&mut self, ctx: &'static str) -> CodecResult<u32> {
        Ok(((self.u16(ctx)? as u32) << 16) | self.u16(ctx)? as u32)
    }
    fn bytes(&mut self, n: usize, ctx: &'static str) -> CodecResult<&'a [u8]> {
        // `pos + n` cannot overflow in practice (`pos <= len` and `n`
        // comes from a 32-bit field), but stay overflow-proof anyway.
        if n > self.data.len() - self.pos {
            return Err(CodecError::truncated(ctx).at_offset(self.data.len()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// A malformed-field error anchored at the current read position.
    fn bad(&self, detail: impl Into<String>) -> CodecError {
        CodecError::malformed(detail).at_offset(self.pos)
    }
}

/// Most decomposition levels any conforming stream can use (T.800 caps
/// the COD field at 32); a larger value is corruption, not ambition.
pub const MAX_LEVELS: u8 = 32;

/// Parses the main header (`SOC` through `QCD`), leaving the reader at
/// the first tile-part marker.
fn parse_main_header(r: &mut Reader<'_>) -> CodecResult<MainHeader> {
    if r.u16("SOC")? != MARKER_SOC {
        return Err(r.bad("missing SOC marker"));
    }
    if r.u16("SIZ marker")? != MARKER_SIZ {
        return Err(r.bad("expected SIZ after SOC").in_marker("SIZ"));
    }
    let siz = |e: CodecError| e.in_marker("SIZ");
    let siz_len = r.u16("SIZ length").map_err(siz)? as usize;
    let width = r.u32("SIZ width").map_err(siz)?;
    let height = r.u32("SIZ height").map_err(siz)?;
    let tile_w = r.u32("SIZ tile width").map_err(siz)?;
    let tile_h = r.u32("SIZ tile height").map_err(siz)?;
    let num_components = r.u16("SIZ components").map_err(siz)?;
    if width == 0 || height == 0 || tile_w == 0 || tile_h == 0 {
        return Err(siz(r.bad("zero dimension in SIZ")));
    }
    if num_components == 0 || siz_len != 2 + 16 + 2 + num_components as usize {
        return Err(siz(r.bad("inconsistent SIZ length")));
    }
    let mut depth = 0u8;
    for c in 0..num_components {
        let d = r.u8("SIZ depth").map_err(siz)?.wrapping_add(1);
        if c == 0 {
            depth = d;
        } else if d != depth {
            return Err(siz(r.bad("heterogeneous component depths")));
        }
    }
    if !(1..=16).contains(&depth) {
        return Err(siz(r.bad("unsupported bit depth")));
    }

    if r.u16("COD marker")? != MARKER_COD {
        return Err(r.bad("expected COD after SIZ").in_marker("COD"));
    }
    let cod = |e: CodecError| e.in_marker("COD");
    if r.u16("COD length").map_err(cod)? != 7 {
        return Err(cod(r.bad("bad COD length")));
    }
    let levels = r.u8("COD levels").map_err(cod)?;
    if levels > MAX_LEVELS {
        return Err(cod(r.bad(format!(
            "decomposition level count {levels} exceeds {MAX_LEVELS}"
        ))));
    }
    let layers = r.u8("COD layers").map_err(cod)?;
    if layers == 0 {
        return Err(cod(r.bad("zero quality layers")));
    }
    let cb_exp = r.u8("COD code-block exponent").map_err(cod)?;
    if !(2..=10).contains(&cb_exp) {
        return Err(cod(r.bad("code-block exponent out of range")));
    }
    let wavelet = match r.u8("COD wavelet").map_err(cod)? {
        0 => Wavelet::W97,
        1 => Wavelet::W53,
        v => return Err(cod(r.bad(format!("unknown wavelet id {v}")))),
    };
    let use_mct = match r.u8("COD mct").map_err(cod)? {
        0 => false,
        1 => true,
        v => return Err(cod(r.bad(format!("bad MCT flag {v}")))),
    };

    if r.u16("QCD marker")? != MARKER_QCD {
        return Err(r.bad("expected QCD after COD").in_marker("QCD"));
    }
    let qcd = |e: CodecError| e.in_marker("QCD");
    let qcd_len = r.u16("QCD length").map_err(qcd)?;
    let quant = match r.u8("QCD mode").map_err(qcd)? {
        0 => {
            if qcd_len != 3 {
                return Err(qcd(r.bad("bad QCD length (reversible)")));
            }
            QuantSpec::Reversible
        }
        1 => {
            if qcd_len != 7 {
                return Err(qcd(r.bad("bad QCD length (irreversible)")));
            }
            let fixed = r.u32("QCD step").map_err(qcd)?;
            if fixed == 0 {
                return Err(qcd(r.bad("zero quantisation step")));
            }
            QuantSpec::Irreversible {
                base_step: fixed as f64 / 65_536.0,
            }
        }
        v => return Err(qcd(r.bad(format!("unknown QCD mode {v}")))),
    };
    // Consistency: wavelet and quantisation must pair up.
    match (wavelet, quant) {
        (Wavelet::W53, QuantSpec::Reversible) | (Wavelet::W97, QuantSpec::Irreversible { .. }) => {}
        _ => return Err(qcd(r.bad("wavelet/quantisation mismatch"))),
    }

    Ok(MainHeader {
        width,
        height,
        tile_w,
        tile_h,
        num_components,
        depth,
        levels,
        layers,
        cb_exp,
        use_mct,
        wavelet,
        quant,
    })
}

/// Parses the next tile-part. `Ok(None)` at `EOC`.
fn parse_tile_part(r: &mut Reader<'_>) -> CodecResult<Option<TileSegment>> {
    let marker_pos = r.pos;
    let marker = r.u16("tile marker")?;
    if marker == MARKER_EOC {
        return Ok(None);
    }
    if marker != MARKER_SOT {
        return Err(
            CodecError::malformed(format!("expected SOT or EOC, found {marker:#06x}"))
                .at_offset(marker_pos),
        );
    }
    let sot = |e: CodecError| e.in_marker("SOT");
    if r.u16("SOT length").map_err(sot)? != 10 {
        return Err(sot(r.bad("bad SOT length")));
    }
    let index = r.u16("SOT tile index").map_err(sot)?;
    let psot = r.u32("SOT Psot").map_err(sot)? as usize;
    let _tpsot = r.u8("SOT TPsot").map_err(sot)?;
    let _tnsot = r.u8("SOT TNsot").map_err(sot)?;
    if r.u16("SOD").map_err(sot)? != MARKER_SOD {
        return Err(sot(r.bad("expected SOD in tile-part")).in_tile(index as usize));
    }
    if psot < 14 {
        return Err(sot(r.bad("Psot shorter than tile-part header")).in_tile(index as usize));
    }
    let data = r
        .bytes(psot - 14, "tile data")
        .map_err(|e| sot(e).in_tile(index as usize))?
        .to_vec();
    Ok(Some(TileSegment { index, data }))
}

/// Parses and validates a codestream into its header and tile segments.
///
/// # Errors
///
/// [`CodecError::Truncated`] or [`CodecError::Malformed`] on any
/// inconsistency (wrong markers, bad lengths, invalid field values),
/// with the byte offset and enclosing marker recorded in the error's
/// [`crate::error::ErrorSite`].
pub fn parse_codestream(bytes: &[u8]) -> CodecResult<(MainHeader, Vec<TileSegment>)> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    let header = parse_main_header(&mut r)?;
    let mut tiles = Vec::new();
    while let Some(t) = parse_tile_part(&mut r)? {
        tiles.push(t);
    }
    Ok((header, tiles))
}

/// The outcome of [`parse_codestream_tolerant`]: everything salvageable
/// from a possibly damaged stream.
#[derive(Debug, Clone)]
pub struct TolerantParse {
    /// The main header (always fully validated — see
    /// [`parse_codestream_tolerant`]).
    pub header: MainHeader,
    /// Every tile segment that could be recovered, in stream order.
    pub tiles: Vec<TileSegment>,
    /// Structural errors encountered in the tile-part section, each with
    /// its [`crate::error::ErrorSite`].
    pub errors: Vec<CodecError>,
}

/// Parses as much of a codestream as possible.
///
/// The main header is parsed *strictly* — without trusted geometry no
/// pixel can be placed, so main-header damage is returned as `Err`.
/// The tile-part section is parsed *tolerantly*: a damaged tile-part is
/// recorded in [`TolerantParse::errors`] and the parser resynchronises
/// by scanning forward for the next `SOT` marker (tile bodies cannot
/// contain one: both the MQ coder and the packet-header bit stuffing
/// keep `0xFF90..=0xFFFF` sequences out of entropy data). A missing
/// `EOC` simply ends the stream.
///
/// # Errors
///
/// Only main-header failures; tile-section damage never fails the call.
pub fn parse_codestream_tolerant(bytes: &[u8]) -> CodecResult<TolerantParse> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    let header = parse_main_header(&mut r)?;
    let mut tiles = Vec::new();
    let mut errors = Vec::new();
    loop {
        if r.pos >= bytes.len() {
            errors.push(CodecError::truncated("EOC").at_offset(bytes.len()));
            break;
        }
        let before = r.pos;
        match parse_tile_part(&mut r) {
            Ok(Some(t)) => tiles.push(t),
            Ok(None) => break,
            Err(e) => {
                errors.push(e);
                // Resynchronise: scan for the next SOT (or EOC) marker
                // strictly after the failed attempt's start.
                let from = (before + 1).min(bytes.len());
                let next = bytes[from..]
                    .windows(2)
                    .position(|w| w == MARKER_SOT.to_be_bytes() || w == MARKER_EOC.to_be_bytes());
                match next {
                    Some(off) => r.pos = from + off,
                    None => break,
                }
            }
        }
    }
    Ok(TolerantParse {
        header,
        tiles,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> MainHeader {
        MainHeader {
            width: 256,
            height: 192,
            tile_w: 64,
            tile_h: 64,
            num_components: 3,
            depth: 8,
            levels: 3,
            layers: 1,
            cb_exp: 5,
            use_mct: true,
            wavelet: Wavelet::W53,
            quant: QuantSpec::Reversible,
        }
    }

    #[test]
    fn roundtrip_lossless_header() {
        let tiles = vec![
            TileSegment {
                index: 0,
                data: vec![1, 2, 3],
            },
            TileSegment {
                index: 1,
                data: vec![0xFF, 0x42],
            },
        ];
        let bytes = write_codestream(&header(), &tiles);
        let (h, t) = parse_codestream(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(t, tiles);
    }

    #[test]
    fn roundtrip_lossy_header() {
        let mut h = header();
        h.wavelet = Wavelet::W97;
        h.quant = QuantSpec::Irreversible { base_step: 0.5 };
        let bytes = write_codestream(&h, &[]);
        let (parsed, tiles) = parse_codestream(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert!(tiles.is_empty());
    }

    #[test]
    fn step_size_survives_fixed_point() {
        let mut h = header();
        h.wavelet = Wavelet::W97;
        h.quant = QuantSpec::Irreversible {
            base_step: 0.123_456,
        };
        let bytes = write_codestream(&h, &[]);
        let (parsed, _) = parse_codestream(&bytes).unwrap();
        match parsed.quant {
            QuantSpec::Irreversible { base_step } => {
                assert!((base_step - 0.123_456).abs() < 1.0 / 65_536.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = write_codestream(
            &header(),
            &[TileSegment {
                index: 0,
                data: vec![7; 32],
            }],
        );
        // Chopping the stream at any point must yield an error, not a panic
        // or a silent success.
        for cut in 0..bytes.len() {
            let r = parse_codestream(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} parsed successfully");
        }
        assert!(parse_codestream(&bytes).is_ok());
    }

    #[test]
    fn wrong_first_marker() {
        let err = parse_codestream(&[0xFF, 0xD9]).unwrap_err();
        assert!(matches!(err, CodecError::Malformed { .. }));
    }

    #[test]
    fn wavelet_quant_mismatch_rejected() {
        let mut h = header();
        h.wavelet = Wavelet::W97; // with Reversible quant: invalid
        let bytes = write_codestream(&h, &[]);
        let err = parse_codestream(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Malformed { .. }));
    }

    #[test]
    fn garbage_after_sot_rejected() {
        let mut bytes = write_codestream(&header(), &[]);
        // Replace EOC with a bogus marker.
        let n = bytes.len();
        bytes[n - 2] = 0xFF;
        bytes[n - 1] = 0x00;
        let err = parse_codestream(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Malformed { .. }));
    }
}
