//! Property-based tests of the codec's core invariants.

use jpeg2000::codec::{
    decode, decode_quality, decode_thumbnail, decode_tolerant, encode, EncodeParams, Mode,
};
use jpeg2000::ct::{dc_shift_forward, dc_shift_inverse, rct_forward, rct_inverse};
use jpeg2000::dwt::{
    fdwt53_2d, fdwt97_2d, fixed_from_real, fixed_to_real, idwt53_2d, idwt97_2d_fixed,
};
use jpeg2000::image::{Image, Plane};
use jpeg2000::mq::{MqContext, MqDecoder, MqEncoder};
use jpeg2000::parallel::decode_parallel;
use jpeg2000::quant::{dequantize, quantize};
use jpeg2000::service::{DecodeService, Request, ServedFrom, ServiceConfig, ServiceError};
use jpeg2000::t1::{decode_block, encode_block};
use jpeg2000::t2::{
    read_packet, write_packet, BandBlocks, BitReader, BitWriter, BlockContribution, TagTree,
};
use jpeg2000::tile::BandKind;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Long-lived services shared across property cases: index 0 runs one
/// worker, index 1 runs two, so the bit-exactness property covers more
/// than one pool shape with warm caches.
fn shared_service(which: usize) -> &'static DecodeService {
    static SVCS: [OnceLock<DecodeService>; 2] = [OnceLock::new(), OnceLock::new()];
    SVCS[which].get_or_init(|| {
        DecodeService::new(ServiceConfig {
            workers: which + 1,
            ..ServiceConfig::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 5/3 integer lifting reconstructs bit-exactly for any geometry,
    /// level count and content.
    #[test]
    fn dwt53_perfect_reconstruction(
        w in 1usize..40,
        h in 1usize..40,
        levels in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let orig: Vec<i32> = (0..w * h).map(|_| rng.gen_range(-1000..1000)).collect();
        let mut buf = orig.clone();
        fdwt53_2d(&mut buf, w, h, levels);
        idwt53_2d(&mut buf, w, h, levels);
        prop_assert_eq!(buf, orig);
    }

    /// The f64 9/7 analysis followed by the Q16 fixed-point synthesis
    /// reconstructs to within the fixed-point tolerance (well under half
    /// an integer sample) for any geometry, level count and content.
    #[test]
    fn dwt97_reconstruction_close(
        w in 1usize..32,
        h in 1usize..32,
        levels in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let orig: Vec<f64> = (0..w * h).map(|_| rng.gen_range(-200.0..200.0)).collect();
        let mut buf = orig.clone();
        fdwt97_2d(&mut buf, w, h, levels);
        let mut fixed: Vec<i32> = buf.iter().map(|&v| fixed_from_real(v)).collect();
        idwt97_2d_fixed(&mut fixed, w, h, levels);
        for (a, b) in fixed.iter().zip(&orig) {
            let a = fixed_to_real(*a);
            prop_assert!((a - b).abs() < 0.5, "{} vs {}", a, b);
        }
    }

    /// The MQ coder round-trips arbitrary decision sequences over
    /// arbitrary context assignments.
    #[test]
    fn mq_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 0..2000),
        ctx_sel in proptest::collection::vec(0usize..19, 0..2000),
    ) {
        let n = bits.len().min(ctx_sel.len());
        let mut enc_ctx = [MqContext::default(); 19];
        let mut enc = MqEncoder::new();
        for i in 0..n {
            enc.encode(&mut enc_ctx[ctx_sel[i]], bits[i]);
        }
        let bytes = enc.finish();
        let mut dec_ctx = [MqContext::default(); 19];
        let mut dec = MqDecoder::new(&bytes);
        for i in 0..n {
            prop_assert_eq!(dec.decode(&mut dec_ctx[ctx_sel[i]]), bits[i], "bit {}", i);
        }
    }

    /// RCT is bit-exact invertible for the full post-DC-shift range.
    #[test]
    fn rct_invertible(samples in proptest::collection::vec((-128i32..=127, -128i32..=127, -128i32..=127), 1..256)) {
        let n = samples.len();
        let mut r = Plane::from_data(n, 1, samples.iter().map(|s| s.0).collect());
        let mut g = Plane::from_data(n, 1, samples.iter().map(|s| s.1).collect());
        let mut b = Plane::from_data(n, 1, samples.iter().map(|s| s.2).collect());
        let (r0, g0, b0) = (r.clone(), g.clone(), b.clone());
        rct_forward(&mut r, &mut g, &mut b);
        rct_inverse(&mut r, &mut g, &mut b);
        prop_assert_eq!((r, g, b), (r0, g0, b0));
    }

    /// DC shift round-trips any in-range plane.
    #[test]
    fn dc_shift_invertible(data in proptest::collection::vec(0i32..256, 1..128), depth in 8u8..=8) {
        let n = data.len();
        let mut p = Plane::from_data(n, 1, data.clone());
        dc_shift_forward(&mut p, depth);
        dc_shift_inverse(&mut p, depth);
        prop_assert_eq!(p.data, data);
    }

    /// Dead-zone quantiser: reconstruction error bounded by the step.
    #[test]
    fn quantizer_error_bound(c in -1e5f64..1e5, step in 0.01f64..16.0) {
        let q = quantize(c, step);
        let r = dequantize(q, step);
        if q == 0 {
            prop_assert!(c.abs() < step);
        } else {
            prop_assert!((c - r).abs() <= step / 2.0 + 1e-9);
        }
        // Sign preservation.
        prop_assert!(q == 0 || (q > 0) == (c > 0.0));
    }

    /// Tier-1 round-trips arbitrary code-blocks in every orientation.
    #[test]
    fn t1_roundtrip(
        w in 1usize..20,
        h in 1usize..20,
        seed in any::<u64>(),
        kind_sel in 0usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let kind = [BandKind::Ll, BandKind::Hl, BandKind::Lh, BandKind::Hh][kind_sel];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mags: Vec<u32> = (0..w * h)
            .map(|_| if rng.gen_bool(0.6) { 0 } else { rng.gen_range(1..4096) })
            .collect();
        let neg: Vec<bool> = (0..w * h).map(|_| rng.gen_bool(0.5)).collect();
        let enc = encode_block(&mags, &neg, w, h, kind);
        let (dm, dn) = decode_block(&enc.data, w, h, kind, enc.num_passes);
        prop_assert_eq!(&dm, &mags);
        for i in 0..mags.len() {
            if mags[i] != 0 {
                prop_assert_eq!(dn[i], neg[i], "sign {}", i);
            }
        }
    }

    /// Tag trees round-trip arbitrary value grids.
    #[test]
    fn tag_tree_roundtrip(
        w in 1usize..9,
        h in 1usize..9,
        values in proptest::collection::vec(0u32..30, 64),
    ) {
        let mut enc = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc.set_value(x, y, values[y * 8 + x]);
            }
        }
        let mut bw = BitWriter::new();
        for y in 0..h {
            for x in 0..w {
                enc.encode_value(&mut bw, x, y);
            }
        }
        let bytes = bw.finish();
        let mut dec = TagTree::new(w, h);
        let mut br = BitReader::new(&bytes);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(dec.decode_value(&mut br, x, y).unwrap(), values[y * 8 + x]);
            }
        }
    }

    /// Stuffed bit I/O is transparent for arbitrary bit strings.
    #[test]
    fn stuffed_bits_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..600)) {
        let mut bw = BitWriter::new();
        for &b in &bits {
            bw.put_bit(b);
        }
        let bytes = bw.finish();
        let mut br = BitReader::new(&bytes);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(br.get_bit().unwrap(), b, "bit {}", i);
        }
    }

    /// Packets round-trip arbitrary block populations.
    #[test]
    fn packet_roundtrip(
        cols in 1usize..4,
        rows in 1usize..4,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let blocks: Vec<BlockContribution> = (0..cols * rows)
            .map(|_| {
                let passes = if rng.gen_bool(0.3) { 0 } else { rng.gen_range(1..40u32) };
                let mb = passes.div_ceil(3);
                let len = if passes == 0 { 0 } else { rng.gen_range(1..300usize) };
                BlockContribution {
                    encoded: jpeg2000::t1::T1EncodedBlock {
                        data: (0..len).map(|_| rng.gen()).collect(),
                        num_passes: passes,
                        num_bitplanes: mb as u8,
                    },
                    zero_bitplanes: 18 - mb,
                }
            })
            .collect();
        let band = BandBlocks { cols, rows, blocks: blocks.clone() };
        let bytes = write_packet(std::slice::from_ref(&band));
        let (parsed, consumed) = read_packet(&bytes, &[(cols, rows)]).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        for (pb, orig) in parsed[0].iter().zip(&blocks) {
            prop_assert_eq!(pb.included, orig.encoded.num_passes > 0);
            if pb.included {
                prop_assert_eq!(pb.num_passes, orig.encoded.num_passes);
                prop_assert_eq!(&pb.data, &orig.encoded.data);
                prop_assert_eq!(pb.zero_bitplanes, orig.zero_bitplanes);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full lossless pipeline: any small image, any tile split, bit-exact.
    #[test]
    fn full_lossless_roundtrip(
        w in 8usize..48,
        h in 8usize..48,
        tile in 8usize..32,
        grey in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let img = if grey {
            Image::synthetic_grey(w, h, seed)
        } else {
            Image::synthetic_rgb(w, h, seed)
        };
        let params = EncodeParams::new(Mode::Lossless).tile_size(tile, tile);
        let bytes = encode(&img, &params).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(out.image, img);
    }

    /// Multi-layer lossless pipeline stays bit-exact for any layer count.
    #[test]
    fn layered_lossless_roundtrip(
        w in 8usize..40,
        h in 8usize..40,
        layers in 1u8..6,
        seed in any::<u64>(),
    ) {
        let img = Image::synthetic_rgb(w, h, seed);
        let params = EncodeParams::new(Mode::Lossless).layers(layers);
        let bytes = encode(&img, &params).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(out.image, img);
    }

    /// Lossy pipeline: decodes without error and with sane quality.
    #[test]
    fn full_lossy_roundtrip(
        w in 16usize..48,
        h in 16usize..48,
        step in 0.1f64..2.0,
        seed in any::<u64>(),
    ) {
        let img = Image::synthetic_rgb(w, h, seed);
        let params = EncodeParams::new(Mode::Lossy { base_step: step });
        let bytes = encode(&img, &params).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert!(img.psnr(&out.image) > 20.0);
    }

    /// The tile-parallel backend is bit-exact against the sequential
    /// decoder for every worker count, geometry, tile split and mode —
    /// the correctness contract behind the paper's 1/2/4-pipeline model
    /// versions (2–5).
    #[test]
    fn parallel_decode_matches_sequential(
        w in 8usize..56,
        h in 8usize..56,
        tile in 8usize..32,
        grey in any::<bool>(),
        lossy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let img = if grey {
            Image::synthetic_grey(w, h, seed)
        } else {
            Image::synthetic_rgb(w, h, seed)
        };
        let mode = if lossy { Mode::lossy_default() } else { Mode::Lossless };
        let params = EncodeParams::new(mode).tile_size(tile, tile);
        let bytes = encode(&img, &params).unwrap();
        let seq = decode(&bytes).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let par = decode_parallel(&bytes, workers).unwrap();
            prop_assert_eq!(&par.image, &seq.image, "workers = {}", workers);
        }
    }

    /// The persistent decode service is bit-exact against every
    /// one-shot entry point, for both modes, with and without stream
    /// damage, at more than one worker count. The services live across
    /// cases (that is the point — persistent workers, warm caches), so
    /// cache-served responses are covered by the same assertions.
    #[test]
    fn service_is_bit_exact_vs_one_shot_entry_points(
        w in 8usize..48,
        h in 8usize..48,
        tile in 8usize..32,
        lossy in any::<bool>(),
        corrupt in any::<bool>(),
        max_layers in 1usize..4,
        max_res in 0usize..3,
        seed in any::<u64>(),
    ) {
        let img = Image::synthetic_rgb(w, h, seed);
        let mode = if lossy { Mode::lossy_default() } else { Mode::Lossless };
        let mut bytes = encode(&img, &EncodeParams::new(mode).tile_size(tile, tile)).unwrap();
        if corrupt {
            let n = bytes.len();
            bytes[n / 2 + (seed as usize % (n / 2))] ^= 0x5a;
        }
        for svc in [shared_service(0), shared_service(1)] {
            // Strict: same image, or the same structured error.
            match (decode(&bytes), svc.decode(&bytes[..], Request::strict())) {
                (Ok(reference), Ok(got)) => prop_assert_eq!(&*got.image, &reference.image),
                (Err(e), Err(ServiceError::Decode(se))) => prop_assert_eq!(se, e),
                (r, s) => prop_assert!(false, "strict divergence: {:?} vs {:?}", r.is_ok(), s.is_ok()),
            }
            // Tolerant: same image and the same report.
            match (decode_tolerant(&bytes), svc.decode(&bytes[..], Request::tolerant())) {
                (Ok((ri, rr)), Ok(got)) => {
                    prop_assert_eq!(&*got.image, &ri);
                    prop_assert_eq!(got.report.as_ref(), Some(&rr));
                }
                (Err(e), Err(ServiceError::Decode(se))) => prop_assert_eq!(se, e),
                (r, s) => prop_assert!(false, "tolerant divergence: {:?} vs {:?}", r.is_ok(), s.is_ok()),
            }
            // Quality and thumbnail, on streams the strict path accepts.
            if let Ok(reference) = decode_quality(&bytes, max_layers) {
                let got = svc.decode(&bytes[..], Request::quality(max_layers)).unwrap();
                prop_assert_eq!(&*got.image, &reference);
            }
            if let Ok(reference) = decode_thumbnail(&bytes, max_res) {
                let got = svc.decode(&bytes[..], Request::thumbnail(max_res)).unwrap();
                prop_assert_eq!(&*got.image, &reference);
            }
        }
    }

    /// Single-flight coalescing is invisible to correctness under
    /// *any* thread interleaving: identical submissions racing an
    /// in-flight decode either attach to it (`Coalesced`) or — if the
    /// pool drained the flight before they arrived — start their own
    /// (`HeaderCache`, the leader parsed the header already), and in
    /// both cases every response is bit-identical to the matching
    /// one-shot entry point, for every request kind and more than one
    /// pool shape, tolerant report included. Exactly one decode runs
    /// per queued flight and the accounting stays exact. (The
    /// deterministic attach/expire/promote semantics are pinned by the
    /// gated unit tests in `service.rs`; this property covers the
    /// schedules those gates exclude.)
    #[test]
    fn coalesced_followers_are_bit_exact_for_every_kind(
        w in 8usize..40,
        h in 8usize..40,
        lossy in any::<bool>(),
        kind_sel in 0usize..4,
        max_layers in 1usize..4,
        max_res in 0usize..3,
        workers in 1usize..3,
        seed in any::<u64>(),
    ) {
        const FOLLOWERS: usize = 3;
        let mode = if lossy { Mode::lossy_default() } else { Mode::Lossless };
        let img = Image::synthetic_rgb(w, h, seed);
        let bytes = encode(&img, &EncodeParams::new(mode).tile_size(16, 16)).unwrap();
        let request = match kind_sel {
            0 => Request::strict(),
            1 => Request::tolerant(),
            2 => Request::quality(max_layers),
            _ => Request::thumbnail(max_res),
        };
        // One-shot reference for the same kind.
        let (ref_image, ref_report) = match kind_sel {
            0 => (decode(&bytes).unwrap().image, None),
            1 => {
                let (i, r) = decode_tolerant(&bytes).unwrap();
                (i, Some(r))
            }
            2 => (decode_quality(&bytes, max_layers).unwrap(), None),
            _ => (decode_thumbnail(&bytes, max_res).unwrap(), None),
        };

        let svc = DecodeService::new(ServiceConfig {
            workers,
            queue_capacity: workers + 2,
            image_cache_bytes: 0, // every flight costs a real decode
            ..ServiceConfig::default()
        });
        // Distinct filler streams keep the workers busy so the
        // followers usually catch the leader's flight in the air —
        // but nothing below *depends* on winning that race.
        let fillers: Vec<Vec<u8>> = (0..workers)
            .map(|i| {
                let fimg = Image::synthetic_rgb(96, 96, seed.wrapping_add(i as u64 + 1));
                encode(&fimg, &EncodeParams::new(Mode::Lossless)).unwrap()
            })
            .collect();
        let filler_tickets: Vec<_> = fillers
            .iter()
            .map(|fbytes| svc.submit(&fbytes[..], Request::strict()).unwrap())
            .collect();
        let leader = svc.submit(&bytes[..], request).unwrap();
        let followers: Vec<_> = (0..FOLLOWERS)
            .map(|_| svc.submit(&bytes[..], request).unwrap())
            .collect();
        for t in filler_tickets {
            t.wait().unwrap();
        }
        // The leader is always the stream's first flight: cold header,
        // image cache disabled.
        let lead = leader.wait().unwrap();
        prop_assert_eq!(lead.served_from, ServedFrom::Cold);
        prop_assert_eq!(&*lead.image, &ref_image);
        prop_assert_eq!(lead.report.as_ref(), ref_report.as_ref());
        let mut coalesced_seen = 0u64;
        for f in followers {
            let resp = f.wait().unwrap();
            match resp.served_from {
                // Attached to an in-flight decode: shares its buffer.
                ServedFrom::Coalesced => coalesced_seen += 1,
                // Lost the race (the pool drained the flight first)
                // and led its own — via the header the leader cached.
                ServedFrom::HeaderCache => {}
                other => prop_assert!(false, "unexpected follower path: {:?}", other),
            }
            prop_assert_eq!(&*resp.image, &ref_image);
            prop_assert_eq!(resp.report.as_ref(), ref_report.as_ref());
        }
        let stats = svc.shutdown();
        prop_assert!(stats.reconciles(), "{:?}", stats);
        prop_assert_eq!(stats.coalesced, coalesced_seen);
        let total = workers as u64 + 1 + FOLLOWERS as u64;
        prop_assert_eq!(stats.submitted + stats.coalesced, total);
        prop_assert_eq!(stats.completed, total);
        prop_assert_eq!(stats.failed, 0u64);
        prop_assert_eq!(stats.image_hits, 0u64, "image cache is disabled");
        prop_assert_eq!(
            stats.image_misses, stats.submitted,
            "exactly one decode per queued flight, coalesced or not"
        );
    }

    /// Worker counts far beyond the tile count are always safe: surplus
    /// workers find the queue drained and exit without contributing.
    #[test]
    fn parallel_decode_with_surplus_workers_is_safe(
        w in 8usize..32,
        h in 8usize..32,
        workers in 1usize..32,
        seed in any::<u64>(),
    ) {
        // Single tile regardless of geometry: workers >> num_tiles.
        let img = Image::synthetic_rgb(w, h, seed);
        let bytes = encode(&img, &EncodeParams::new(Mode::Lossless)).unwrap();
        let par = decode_parallel(&bytes, workers).unwrap();
        prop_assert_eq!(par.image, img);
    }
}
