//! Property-based verification of the synthesis passes: on randomly
//! generated designs, inlining and constant folding must preserve the
//! cycle-accurate behaviour (checked with the IR interpreter), and the
//! estimator must respond monotonically to the transformations.

use fossy::build::{e, s, EntityBuilder};
use fossy::estimate::{estimate_entity, Virtex4};
use fossy::interp::Interp;
use fossy::ir::{Entity, Expr, Ty};
use fossy::passes::{eliminate_dead_signals, fold_entity, inline_entity};
use proptest::prelude::*;

const W: u32 = 16;

/// A random expression tree over inputs `a`, `b`, `c` and calls to a
/// fixed helper function `f(x, y) = (x + y) - (x >> 1)`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|v| e::c(v, W)),
        Just(e::v("a", W)),
        Just(e::v("b", W)),
        Just(e::v("c", W)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| e::add(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| e::sub(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| e::mul(x, y)),
            (inner.clone(), 0i64..4).prop_map(|(x, sh)| e::shr(x, sh)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| e::call("f", vec![x, y])),
        ]
    })
}

fn entity_for(expr: Expr) -> Entity {
    EntityBuilder::new("rand")
        .input("a", Ty::Signed(W))
        .input("b", Ty::Signed(W))
        .input("c", Ty::Signed(W))
        .output("y", Ty::Signed(W))
        .function(
            "f",
            &[("x", Ty::Signed(W)), ("z", Ty::Signed(W))],
            Ty::Signed(W),
            vec![s::assign("t", e::add(e::v("x", W), e::v("z", W)))],
            &[("t", Ty::Signed(W))],
            e::sub(e::v("t", W), e::shr(e::v("x", W), 1)),
        )
        .clocked("p", vec![s::assign("y", expr)])
        .build()
}

fn traces_equal(a: &Entity, b: &Entity, stimuli: &[(i64, i64, i64)]) -> bool {
    let mut ia = Interp::new(a);
    let mut ib = Interp::new(b);
    for &(x, y, z) in stimuli {
        for it in [&mut ia, &mut ib] {
            it.set_input("a", x);
            it.set_input("b", y);
            it.set_input("c", z);
            it.step();
        }
        if ia.get("y") != ib.get("y") {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inlining is meaning-preserving on arbitrary expression forests.
    #[test]
    fn inlining_preserves_behaviour(
        expr in arb_expr(),
        stimuli in proptest::collection::vec((-500i64..500, -500i64..500, -500i64..500), 1..12),
    ) {
        let ent = entity_for(expr);
        let inlined = inline_entity(&ent);
        prop_assert!(inlined.functions.is_empty());
        prop_assert!(traces_equal(&ent, &inlined, &stimuli));
    }

    /// Constant folding is meaning-preserving and never increases the
    /// estimated LUT count.
    #[test]
    fn folding_preserves_behaviour_and_shrinks(
        expr in arb_expr(),
        stimuli in proptest::collection::vec((-500i64..500, -500i64..500, -500i64..500), 1..12),
    ) {
        let ent = inline_entity(&entity_for(expr));
        let folded = fold_entity(&ent);
        prop_assert!(traces_equal(&ent, &folded, &stimuli));
        let dev = Virtex4::lx25();
        let before = estimate_entity(&ent, &dev);
        let after = estimate_entity(&folded, &dev);
        prop_assert!(after.luts <= before.luts, "{} > {}", after.luts, before.luts);
    }

    /// Dead-signal elimination never touches live outputs.
    #[test]
    fn dse_preserves_live_outputs(
        expr in arb_expr(),
        stimuli in proptest::collection::vec((-500i64..500, -500i64..500, -500i64..500), 1..8),
    ) {
        // Add a dead chain alongside the live logic.
        let mut ent = inline_entity(&entity_for(expr));
        ent.signals.push(fossy::ir::SignalDecl {
            name: "dead_a".to_string(),
            ty: Ty::Signed(W),
        });
        if let fossy::ir::Process::Clocked { stmts, .. } = &mut ent.processes[0] {
            stmts.push(s::assign("dead_a", e::add(e::v("a", W), e::c(1, W))));
        }
        let cleaned = eliminate_dead_signals(&ent);
        prop_assert!(cleaned.signals.iter().all(|s| s.name != "dead_a"));
        // Compare only the live output.
        let mut ia = Interp::new(&ent);
        let mut ib = Interp::new(&cleaned);
        for &(x, y, z) in &stimuli {
            for it in [&mut ia, &mut ib] {
                it.set_input("a", x);
                it.set_input("b", y);
                it.set_input("c", z);
                it.step();
            }
            prop_assert_eq!(ia.get("y"), ib.get("y"));
        }
    }

    /// The full pipeline (inline → fold → DSE) keeps the entity valid and
    /// the estimator finite and positive.
    #[test]
    fn pipeline_output_is_well_formed(expr in arb_expr()) {
        let out = eliminate_dead_signals(&fold_entity(&inline_entity(&entity_for(expr))));
        prop_assert!(out.validate().is_ok());
        let r = estimate_entity(&out, &Virtex4::lx25());
        prop_assert!(r.fmax_mhz.is_finite() && r.fmax_mhz > 0.0);
        prop_assert!(r.utilisation >= 0.0);
    }
}
