//! An RTL interpreter for the IR: cycle-accurate execution of entities
//! with register (non-blocking) assignment semantics.
//!
//! The interpreter serves two purposes:
//!
//! * **pass verification** — an entity and its transformed version
//!   (inlined, constant-folded) must produce identical cycle-by-cycle
//!   traces; the pass tests prove this on concrete designs and on random
//!   expression forests;
//! * **design bring-up** — the shipped IDWT designs can be clocked and
//!   their control FSMs observed reaching completion, the IR-level
//!   equivalent of an RTL smoke simulation.

use std::collections::BTreeMap;

use crate::ir::{Dir, Entity, Expr, Function, Process, Stmt, Ty};

/// Masks `v` to `width` bits with the signedness of `signed`.
fn truncate(v: i64, width: u32, signed: bool) -> i64 {
    if width >= 64 {
        return v;
    }
    let mask = (1i64 << width) - 1;
    let t = v & mask;
    if signed && width > 0 && (t >> (width - 1)) & 1 == 1 {
        t - (1i64 << width)
    } else {
        t
    }
}

/// A cycle-accurate interpreter over one [`Entity`].
#[derive(Debug, Clone)]
pub struct Interp {
    entity: Entity,
    funcs: BTreeMap<String, Function>,
    /// Declared type per signal/port name.
    types: BTreeMap<String, Ty>,
    /// Current (registered) values.
    values: BTreeMap<String, i64>,
    /// Memory contents.
    mems: BTreeMap<String, Vec<i64>>,
    /// Current state index per FSM process.
    states: BTreeMap<String, usize>,
    /// Clock cycles executed.
    cycles: u64,
}

impl Interp {
    /// Creates an interpreter with all signals zero, memories cleared and
    /// every FSM in its reset (first) state.
    pub fn new(entity: &Entity) -> Self {
        let funcs = entity.function_map();
        let mut types = BTreeMap::new();
        let mut values = BTreeMap::new();
        for p in &entity.ports {
            types.insert(p.name.clone(), p.ty);
            values.insert(p.name.clone(), 0);
        }
        for s in &entity.signals {
            types.insert(s.name.clone(), s.ty);
            values.insert(s.name.clone(), 0);
        }
        let mems = entity
            .memories
            .iter()
            .map(|m| (m.name.clone(), vec![0i64; m.words as usize]))
            .collect();
        let states = entity
            .processes
            .iter()
            .filter_map(|p| match p {
                Process::Fsm { name, .. } => Some((name.clone(), 0)),
                Process::Clocked { .. } => None,
            })
            .collect();
        Interp {
            entity: entity.clone(),
            funcs,
            types,
            values,
            mems,
            states,
            cycles: 0,
        }
    }

    /// Drives an input port for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an input port.
    pub fn set_input(&mut self, name: &str, v: i64) {
        let is_input = self
            .entity
            .ports
            .iter()
            .any(|p| p.name == name && p.dir == Dir::In);
        assert!(is_input, "`{name}` is not an input port");
        let ty = self.types[name];
        self.values.insert(
            name.to_string(),
            truncate(v, ty.width(), matches!(ty, Ty::Signed(_))),
        );
    }

    /// Reads any signal or port.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not declared.
    pub fn get(&self, name: &str) -> i64 {
        *self
            .values
            .get(name)
            .unwrap_or_else(|| panic!("unknown signal `{name}`"))
    }

    /// Direct memory access (e.g. preloading a line buffer).
    ///
    /// # Panics
    ///
    /// Panics if the memory does not exist.
    pub fn mem_mut(&mut self, name: &str) -> &mut Vec<i64> {
        self.mems
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown memory `{name}`"))
    }

    /// The FSM state name of process `proc` (for assertions).
    ///
    /// # Panics
    ///
    /// Panics if the process is not an FSM.
    pub fn fsm_state(&self, proc_name: &str) -> &str {
        let idx = self.states[proc_name];
        for p in &self.entity.processes {
            if let Process::Fsm { name, states } = p {
                if name == proc_name {
                    return &states[idx].name;
                }
            }
        }
        panic!("`{proc_name}` is not an FSM process");
    }

    /// Clock cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Executes one rising clock edge: every process evaluates against the
    /// *current* values; all signal, memory and state updates apply
    /// simultaneously afterwards (non-blocking semantics).
    pub fn step(&mut self) {
        let mut sig_updates: BTreeMap<String, i64> = BTreeMap::new();
        let mut mem_updates: Vec<(String, usize, i64)> = Vec::new();
        let mut state_updates: BTreeMap<String, usize> = BTreeMap::new();

        let processes = self.entity.processes.clone();
        for p in &processes {
            match p {
                Process::Clocked { stmts, .. } => {
                    self.exec_stmts(
                        stmts,
                        None,
                        &mut sig_updates,
                        &mut mem_updates,
                        &mut state_updates,
                    );
                }
                Process::Fsm { name, states } => {
                    let idx = self.states[name];
                    self.exec_stmts(
                        &states[idx].stmts,
                        Some((name, states)),
                        &mut sig_updates,
                        &mut mem_updates,
                        &mut state_updates,
                    );
                }
            }
        }

        for (name, v) in sig_updates {
            let ty = self.types[&name];
            self.values
                .insert(name, truncate(v, ty.width(), matches!(ty, Ty::Signed(_))));
        }
        for (mem, addr, v) in mem_updates {
            let m = self.mems.get_mut(&mem).expect("declared memory");
            if addr < m.len() {
                let width = self
                    .entity
                    .memories
                    .iter()
                    .find(|d| d.name == mem)
                    .map(|d| d.width)
                    .unwrap_or(64);
                m[addr] = truncate(v, width, true);
            }
        }
        for (name, idx) in state_updates {
            self.states.insert(name, idx);
        }
        self.cycles += 1;
    }

    /// Steps until `pred` holds or `max_cycles` elapse; returns whether
    /// the predicate was reached.
    pub fn run_until(&mut self, max_cycles: u64, pred: impl Fn(&Interp) -> bool) -> bool {
        for _ in 0..max_cycles {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    fn exec_stmts(
        &self,
        stmts: &[Stmt],
        fsm: Option<(&str, &[crate::ir::State])>,
        sig_updates: &mut BTreeMap<String, i64>,
        mem_updates: &mut Vec<(String, usize, i64)>,
        state_updates: &mut BTreeMap<String, usize>,
    ) {
        for s in stmts {
            match s {
                Stmt::Assign { target, value } => {
                    let v = self.eval(value, &BTreeMap::new());
                    sig_updates.insert(target.clone(), v);
                }
                Stmt::MemWrite { mem, index, value } => {
                    let addr = self.eval(index, &BTreeMap::new()).max(0) as usize;
                    let v = self.eval(value, &BTreeMap::new());
                    mem_updates.push((mem.clone(), addr, v));
                }
                Stmt::If { cond, then_, else_ } => {
                    let c = self.eval(cond, &BTreeMap::new());
                    let branch = if c != 0 { then_ } else { else_ };
                    self.exec_stmts(branch, fsm, sig_updates, mem_updates, state_updates);
                }
                Stmt::Goto(target) => {
                    let (name, states) = fsm.expect("goto inside an FSM");
                    let idx = states
                        .iter()
                        .position(|st| &st.name == target)
                        .expect("validated state");
                    state_updates.insert(name.to_string(), idx);
                }
            }
        }
    }

    /// Evaluates an expression against current values plus a local
    /// environment (used for function parameters/locals).
    pub fn eval(&self, e: &Expr, env: &BTreeMap<String, i64>) -> i64 {
        match e {
            // Positive literals keep their unsigned reading (a 1-bit
            // constant `1` is '1', not −1); negative literals sign-extend.
            Expr::Const(v, w) => truncate(*v, *w, *v < 0),
            Expr::Var(name, _) => {
                if let Some(v) = env.get(name) {
                    *v
                } else {
                    *self
                        .values
                        .get(name)
                        .unwrap_or_else(|| panic!("unknown variable `{name}`"))
                }
            }
            Expr::Neg(a) => -self.eval(a, env),
            Expr::Bin(op, a, b) => {
                use crate::ir::BinOp;
                let x = self.eval(a, env);
                let y = self.eval(b, env);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Shl => x.wrapping_shl(y.clamp(0, 63) as u32),
                    BinOp::Shr => x >> y.clamp(0, 63),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Eq => (x == y) as i64,
                    BinOp::Ne => (x != y) as i64,
                }
            }
            Expr::Call(name, args) => {
                // Function evaluation is *macro-like*: values flow through
                // at full combinational precision, exactly as the inlining
                // pass substitutes them. Width truncation happens only at
                // sequential elements (registers and memories), which is
                // where hardware actually narrows values.
                let f = self
                    .funcs
                    .get(name)
                    .unwrap_or_else(|| panic!("unknown function `{name}`"));
                let mut local: BTreeMap<String, i64> = f
                    .params
                    .iter()
                    .zip(args)
                    .map(|((p, _), a)| (p.clone(), self.eval(a, env)))
                    .collect();
                for stmt in &f.body {
                    if let Stmt::Assign { target, value } = stmt {
                        let v = self.eval(value, &local);
                        local.insert(target.clone(), v);
                    }
                }
                self.eval(&f.result, &local)
            }
            Expr::MemRead(mem, idx, w) => {
                let addr = self.eval(idx, env).max(0) as usize;
                let m = self
                    .mems
                    .get(mem)
                    .unwrap_or_else(|| panic!("unknown memory `{mem}`"));
                truncate(m.get(addr).copied().unwrap_or(0), *w, true)
            }
        }
    }

    /// Snapshot of every signal/port value (for trace comparisons).
    pub fn snapshot(&self) -> BTreeMap<String, i64> {
        self.values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{e, s, EntityBuilder};
    use crate::passes::{fold_entity, inline_entity};

    fn counter() -> Entity {
        EntityBuilder::new("counter")
            .input("enable", Ty::Bit)
            .output("count", Ty::Unsigned(8))
            .clocked(
                "tick",
                vec![s::if_(
                    e::eq(e::v("enable", 1), e::c(1, 1)),
                    vec![s::assign("count", e::add(e::v("count", 8), e::c(1, 8)))],
                    vec![],
                )],
            )
            .build()
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut it = Interp::new(&counter());
        it.set_input("enable", 1);
        for _ in 0..5 {
            it.step();
        }
        assert_eq!(it.get("count"), 5);
        it.set_input("enable", 0);
        it.step();
        assert_eq!(it.get("count"), 5);
        assert_eq!(it.cycles(), 6);
    }

    #[test]
    fn width_truncation_wraps() {
        let mut it = Interp::new(&counter());
        it.set_input("enable", 1);
        for _ in 0..260 {
            it.step();
        }
        assert_eq!(it.get("count"), 4, "8-bit counter wraps at 256");
    }

    #[test]
    fn nonblocking_semantics_swap() {
        // a <= b; b <= a in one process swaps — the classic NBA check.
        let ent = EntityBuilder::new("swap")
            .signal("a", Ty::Signed(8))
            .signal("b", Ty::Signed(8))
            .input("seed", Ty::Signed(8))
            .clocked(
                "init",
                vec![s::if_(
                    e::eq(e::v("a", 8), e::c(0, 8)),
                    vec![s::assign("a", e::v("seed", 8)), s::assign("b", e::c(1, 8))],
                    vec![s::assign("a", e::v("b", 8)), s::assign("b", e::v("a", 8))],
                )],
            )
            .build();
        let mut it = Interp::new(&ent);
        it.set_input("seed", 9);
        it.step(); // a=9, b=1
        assert_eq!((it.get("a"), it.get("b")), (9, 1));
        it.step(); // swap: a=1, b=9 (not a=1, b=1, which blocking would give)
        assert_eq!((it.get("a"), it.get("b")), (1, 9));
    }

    #[test]
    fn fsm_walks_states() {
        let ent = EntityBuilder::new("fsm")
            .output("out", Ty::Unsigned(4))
            .fsm(
                "ctrl",
                vec![
                    ("s0", vec![s::assign("out", e::c(1, 4)), s::goto("s1")]),
                    ("s1", vec![s::assign("out", e::c(2, 4)), s::goto("s2")]),
                    ("s2", vec![s::assign("out", e::c(3, 4)), s::goto("s0")]),
                ],
            )
            .build();
        let mut it = Interp::new(&ent);
        assert_eq!(it.fsm_state("ctrl"), "s0");
        it.step();
        assert_eq!(it.fsm_state("ctrl"), "s1");
        assert_eq!(it.get("out"), 1);
        it.step();
        assert_eq!(it.fsm_state("ctrl"), "s2");
        assert_eq!(it.get("out"), 2);
    }

    #[test]
    fn memories_read_write() {
        let ent = EntityBuilder::new("m")
            .input("addr", Ty::Unsigned(4))
            .output("q", Ty::Signed(16))
            .memory("ram", 16, 16)
            .clocked(
                "read",
                vec![s::assign("q", e::mem("ram", e::v("addr", 4), 16))],
            )
            .build();
        let mut it = Interp::new(&ent);
        it.mem_mut("ram")[3] = -77;
        it.set_input("addr", 3);
        it.step();
        assert_eq!(it.get("q"), -77);
    }

    /// THE pass-correctness theorem, on a concrete design: a function-based
    /// entity and its fully inlined form produce identical cycle traces.
    #[test]
    fn inlining_preserves_cycle_trace() {
        let ent = EntityBuilder::new("lifted")
            .input("x", Ty::Signed(16))
            .output("y", Ty::Signed(16))
            .signal("t", Ty::Signed(16))
            .function(
                "lift",
                &[("a", Ty::Signed(16)), ("b", Ty::Signed(16))],
                Ty::Signed(16),
                vec![s::assign("sum", e::add(e::v("a", 16), e::v("b", 16)))],
                &[("sum", Ty::Signed(16))],
                e::sub(e::v("sum", 16), e::shr(e::v("a", 16), 2)),
            )
            .clocked(
                "p",
                vec![
                    s::assign("t", e::call("lift", vec![e::v("x", 16), e::c(3, 16)])),
                    s::assign("y", e::call("lift", vec![e::v("t", 16), e::v("x", 16)])),
                ],
            )
            .build();
        let inlined = inline_entity(&ent);
        let mut a = Interp::new(&ent);
        let mut b = Interp::new(&inlined);
        for step in 0..50i64 {
            let x = (step * 37 - 400) % 1000;
            a.set_input("x", x);
            b.set_input("x", x);
            a.step();
            b.step();
            assert_eq!(a.snapshot(), b.snapshot(), "cycle {step}");
        }
    }

    /// Constant folding preserves the cycle trace too.
    #[test]
    fn folding_preserves_cycle_trace() {
        let ent = EntityBuilder::new("folded")
            .input("x", Ty::Signed(16))
            .output("y", Ty::Signed(16))
            .clocked(
                "p",
                vec![s::assign(
                    "y",
                    e::add(
                        e::mul(e::c(3, 16), e::c(7, 16)),
                        e::sub(e::v("x", 16), e::c(10, 16)),
                    ),
                )],
            )
            .build();
        let folded = fold_entity(&ent);
        let mut a = Interp::new(&ent);
        let mut b = Interp::new(&folded);
        for step in 0..20i64 {
            a.set_input("x", step * 11 - 50);
            b.set_input("x", step * 11 - 50);
            a.step();
            b.step();
            assert_eq!(a.snapshot(), b.snapshot(), "cycle {step}");
        }
    }

    /// The shipped IDWT53 FOSSY design's control FSM runs to completion:
    /// an RTL-level smoke simulation of the case-study hardware.
    #[test]
    fn idwt53_fsm_reaches_done() {
        let ent = crate::idwt::idwt53_fossy_input();
        let mut it = Interp::new(&ent);
        // Preload a tiny line and configure a 4-sample sweep.
        for (i, v) in [10, -3, 7, 2, 5, -1, 0, 4].iter().enumerate() {
            it.mem_mut("linebuf")[i] = *v;
        }
        it.set_input("n_cols", 4);
        it.set_input("n_rows", 4);
        it.set_input("start", 1);
        let done = it.run_until(2000, |s| s.get("done") == 1);
        assert!(
            done,
            "IDWT53 FSM must assert done (state {})",
            it.fsm_state("ctrl")
        );
        // And the inlined version behaves identically.
        let mut reference = Interp::new(&ent);
        let mut inlined = Interp::new(&inline_entity(&ent));
        for m in [&mut reference, &mut inlined] {
            for (i, v) in [10, -3, 7, 2, 5, -1, 0, 4].iter().enumerate() {
                m.mem_mut("linebuf")[i] = *v;
            }
            m.set_input("n_cols", 4);
            m.set_input("n_rows", 4);
            m.set_input("start", 1);
        }
        for cycle in 0..500 {
            reference.step();
            inlined.step();
            assert_eq!(
                reference.snapshot(),
                inlined.snapshot(),
                "divergence at cycle {cycle}"
            );
        }
    }

    /// The IDWT97 FOSSY design also completes and survives inlining.
    #[test]
    fn idwt97_fsm_reaches_done() {
        let ent = crate::idwt::idwt97_fossy_input();
        let mut it = Interp::new(&ent);
        it.set_input("n_cols", 4);
        it.set_input("n_rows", 4);
        it.set_input("start", 1);
        let done = it.run_until(5000, |s| s.get("done") == 1);
        assert!(
            done,
            "IDWT97 FSM must assert done (state {})",
            it.fsm_state("ctrl")
        );
    }
}
