//! Virtex-4 resource and timing estimation.
//!
//! Substitutes for the Xilinx ISE/XST run of the paper's Table 2: maps the
//! IR onto 4-input LUTs, slice flip-flops, occupied slices (2 LUT + 2 FF
//! per Virtex-4 slice with a packing factor), block RAMs, an equivalent
//! gate count, and an fmax estimate from the deepest combinational path.
//! Absolute numbers are a model; the FOSSY-vs-reference *ratios* are what
//! the reproduction reports.

use std::collections::BTreeMap;

use crate::ir::{stmt_depth, BinOp, Entity, Expr, Function, Process, Stmt};

/// A Virtex-4 device capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Virtex4 {
    /// Total slices.
    pub slices: u32,
    /// Total 4-input LUTs.
    pub luts: u32,
    /// Total slice flip-flops.
    pub ffs: u32,
    /// Total 18-kbit block RAMs.
    pub brams: u32,
}

impl Virtex4 {
    /// The case study's XC4VLX25 device.
    pub fn lx25() -> Self {
        Virtex4 {
            slices: 10_752,
            luts: 21_504,
            ffs: 21_504,
            brams: 72,
        }
    }
}

/// Estimated resources of one entity — the Table 2 row shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// Slice flip-flops.
    pub ffs: u32,
    /// 4-input LUTs.
    pub luts: u32,
    /// Occupied slices.
    pub slices: u32,
    /// 18-kbit block RAMs.
    pub brams: u32,
    /// Total equivalent gate count.
    pub gates: u64,
    /// Estimated maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Device utilisation (occupied slices / device slices).
    pub utilisation: f64,
}

/// Per-LUT-level delay model (logic + average route), nanoseconds.
const LEVEL_DELAY_NS: f64 = 0.55;
/// Clock-to-out plus setup plus clock routing overhead, nanoseconds.
const SEQUENTIAL_OVERHEAD_NS: f64 = 1.50;
/// Slice packing inefficiency.
const PACKING_FACTOR: f64 = 1.15;

/// Estimates `entity` against `device`.
///
/// Call after inlining: `Expr::Call` sites are charged as if inlined
/// (shared-function hardware would be *cheaper*, which is exactly the
/// difference hand-optimised reference designs exploit).
pub fn estimate_entity(entity: &Entity, device: &Virtex4) -> ResourceReport {
    let funcs = entity.function_map();
    let mut luts: u64 = 0;
    let mut ffs: u64 = 0;
    let mut max_depth: u32 = 0;

    for p in &entity.processes {
        match p {
            Process::Clocked { stmts, .. } => {
                luts += stmts.iter().map(|s| stmt_luts(s, &funcs)).sum::<u64>();
                ffs += assigned_widths(stmts, &funcs);
                max_depth = max_depth.max(
                    stmts
                        .iter()
                        .map(|s| stmt_depth(s, &funcs))
                        .max()
                        .unwrap_or(0),
                );
            }
            Process::Fsm { states, .. } => {
                let n = states.len().max(1) as u32;
                let state_bits = 32 - (n - 1).leading_zeros().min(31);
                // State register + one-hot-ish decode logic.
                ffs += state_bits as u64;
                luts += (n as u64 * state_bits as u64).div_ceil(2);
                let mut fsm_targets: Vec<(String, u32)> = Vec::new();
                for st in states {
                    luts += st.stmts.iter().map(|s| stmt_luts(s, &funcs)).sum::<u64>();
                    collect_targets(&st.stmts, &funcs, &mut fsm_targets);
                    max_depth = max_depth.max(
                        st.stmts
                            .iter()
                            .map(|s| stmt_depth(s, &funcs))
                            .max()
                            .unwrap_or(0)
                            // The state decode sits in front of every datapath.
                            + state_bits.div_ceil(2),
                    );
                }
                ffs += fsm_targets.iter().map(|(_, w)| *w as u64).sum::<u64>();
                // Signals written in several states need state-selection
                // muxes in front of their registers.
                let mut seen: Vec<&str> = Vec::new();
                for (name, w) in &fsm_targets {
                    if seen.contains(&name.as_str()) {
                        luts += (*w as u64).div_ceil(2);
                    } else {
                        seen.push(name);
                    }
                }
            }
        }
    }

    // Functions still present (not inlined) are instantiated once.
    for f in &entity.functions {
        luts += f.body.iter().map(|s| stmt_luts(s, &funcs)).sum::<u64>();
        luts += expr_luts(&f.result, &funcs);
    }

    let mut bram_bits: u64 = 0;
    for m in &entity.memories {
        bram_bits += m.words as u64 * m.width as u64;
    }
    let brams = (bram_bits.div_ceil(18 * 1024)) as u32;

    let slices = ((luts.max(ffs) as f64 / 2.0) * PACKING_FACTOR).ceil() as u32;
    let gates = luts * 16 + ffs * 8 + bram_bits;
    let period = SEQUENTIAL_OVERHEAD_NS + max_depth as f64 * LEVEL_DELAY_NS;
    let fmax_mhz = 1_000.0 / period;

    ResourceReport {
        ffs: ffs as u32,
        luts: luts as u32,
        slices,
        brams,
        gates,
        fmax_mhz,
        utilisation: slices as f64 / device.slices as f64,
    }
}

/// A whole-design estimate: per-entity reports plus device-level totals.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// `(entity name, report)` per entity.
    pub entities: Vec<(String, ResourceReport)>,
    /// Sum of all entities against the device.
    pub total: ResourceReport,
}

/// Estimates every entity of `design` and the device-level total; the
/// total's fmax is the slowest entity's (one clock domain).
pub fn estimate_design(design: &crate::ir::Design, device: &Virtex4) -> DesignReport {
    let entities: Vec<(String, ResourceReport)> = design
        .entities
        .iter()
        .map(|e| (e.name.clone(), estimate_entity(e, device)))
        .collect();
    let mut total = ResourceReport {
        ffs: 0,
        luts: 0,
        slices: 0,
        brams: 0,
        gates: 0,
        fmax_mhz: f64::INFINITY,
        utilisation: 0.0,
    };
    for (_, r) in &entities {
        total.ffs += r.ffs;
        total.luts += r.luts;
        total.slices += r.slices;
        total.brams += r.brams;
        total.gates += r.gates;
        total.fmax_mhz = total.fmax_mhz.min(r.fmax_mhz);
    }
    if entities.is_empty() {
        total.fmax_mhz = 0.0;
    }
    total.utilisation = total.slices as f64 / device.slices as f64;
    DesignReport { entities, total }
}

fn collect_targets(
    stmts: &[Stmt],
    funcs: &BTreeMap<String, Function>,
    out: &mut Vec<(String, u32)>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { target, value } => out.push((target.clone(), value.width(funcs))),
            Stmt::If { then_, else_, .. } => {
                collect_targets(then_, funcs, out);
                collect_targets(else_, funcs, out);
            }
            _ => {}
        }
    }
}

fn assigned_widths(stmts: &[Stmt], funcs: &BTreeMap<String, Function>) -> u64 {
    let mut targets = Vec::new();
    collect_targets(stmts, funcs, &mut targets);
    let mut seen: Vec<&str> = Vec::new();
    let mut total = 0u64;
    for (name, w) in &targets {
        if !seen.contains(&name.as_str()) {
            seen.push(name);
            total += *w as u64;
        }
    }
    total
}

fn stmt_luts(s: &Stmt, funcs: &BTreeMap<String, Function>) -> u64 {
    match s {
        Stmt::Assign { value, .. } => expr_luts(value, funcs),
        Stmt::MemWrite { index, value, .. } => {
            expr_luts(index, funcs) + expr_luts(value, funcs) + 2
        }
        Stmt::If { cond, then_, else_ } => {
            let inner: u64 = then_.iter().chain(else_).map(|s| stmt_luts(s, funcs)).sum();
            let mut targets = Vec::new();
            collect_targets(std::slice::from_ref(s), funcs, &mut targets);
            let mux: u64 = targets.iter().map(|(_, w)| (*w as u64).div_ceil(2)).sum();
            expr_luts(cond, funcs) + inner + mux
        }
        Stmt::Goto(_) => 0,
    }
}

fn expr_luts(e: &Expr, funcs: &BTreeMap<String, Function>) -> u64 {
    match e {
        Expr::Const(..) | Expr::Var(..) => 0,
        Expr::Neg(a) => a.width(funcs) as u64 + expr_luts(a, funcs),
        Expr::MemRead(_, idx, _) => 2 + expr_luts(idx, funcs),
        Expr::Bin(op, a, b) => {
            let w = e.width(funcs) as u64;
            let own = match op {
                BinOp::Add | BinOp::Sub => w,
                BinOp::Mul => {
                    let (wa, wb) = (a.width(funcs) as u64, b.width(funcs) as u64);
                    wa * wb / 2
                }
                BinOp::Shl | BinOp::Shr => match **b {
                    Expr::Const(..) => 0, // constant shifts are wiring
                    _ => w * 3,
                },
                BinOp::And | BinOp::Or | BinOp::Xor => w,
                BinOp::Lt | BinOp::Eq | BinOp::Ne => a.width(funcs) as u64 / 2 + 1,
            };
            own + expr_luts(a, funcs) + expr_luts(b, funcs)
        }
        Expr::Call(name, args) => {
            // Charged as if inlined once per call site.
            let f = &funcs[name];
            let body: u64 = f.body.iter().map(|s| stmt_luts(s, funcs)).sum();
            let res = expr_luts(&f.result, funcs);
            let argcost: u64 = args.iter().map(|a| expr_luts(a, funcs)).sum();
            body + res + argcost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{e, s, EntityBuilder};
    use crate::ir::Ty;
    use crate::passes::inline_entity;

    fn adder(width: u32) -> Entity {
        EntityBuilder::new("adder")
            .input("a", Ty::Signed(width))
            .input("b", Ty::Signed(width))
            .output("y", Ty::Signed(width))
            .clocked(
                "p",
                vec![s::assign("y", e::add(e::v("a", width), e::v("b", width)))],
            )
            .build()
    }

    #[test]
    fn adder_costs_scale_with_width() {
        let dev = Virtex4::lx25();
        let r16 = estimate_entity(&adder(16), &dev);
        let r32 = estimate_entity(&adder(32), &dev);
        assert_eq!(r16.luts, 16);
        assert_eq!(r32.luts, 32);
        assert_eq!(r16.ffs, 16);
        assert!(r32.gates > r16.gates);
        assert!(r32.fmax_mhz < r16.fmax_mhz, "longer carry chain is slower");
    }

    #[test]
    fn multiplier_dominates_adder() {
        let dev = Virtex4::lx25();
        let mul_ent = EntityBuilder::new("mul")
            .input("a", Ty::Signed(16))
            .input("b", Ty::Signed(16))
            .output("y", Ty::Signed(32))
            .clocked(
                "p",
                vec![s::assign("y", e::mul(e::v("a", 16), e::v("b", 16)))],
            )
            .build();
        let rm = estimate_entity(&mul_ent, &dev);
        let ra = estimate_entity(&adder(16), &dev);
        assert!(rm.luts > 4 * ra.luts);
        assert!(rm.fmax_mhz < ra.fmax_mhz);
    }

    #[test]
    fn memories_map_to_brams() {
        let dev = Virtex4::lx25();
        let ent = EntityBuilder::new("m")
            .signal("q", Ty::Signed(16))
            .memory("tile", 2048, 16) // 32 kbit -> 2 BRAM18
            .clocked("p", vec![s::assign("q", e::mem("tile", e::c(0, 11), 16))])
            .build();
        let r = estimate_entity(&ent, &dev);
        assert_eq!(r.brams, 2);
        assert!(r.gates > 32_000, "BRAM bits count as gates");
    }

    #[test]
    fn pipelining_raises_fmax() {
        let dev = Virtex4::lx25();
        // Deep single-cycle chain: y = ((a+b)+c)+d.
        let deep = EntityBuilder::new("deep")
            .input("a", Ty::Signed(16))
            .input("b", Ty::Signed(16))
            .input("c", Ty::Signed(16))
            .input("d", Ty::Signed(16))
            .output("y", Ty::Signed(16))
            .clocked(
                "p",
                vec![s::assign(
                    "y",
                    e::add(
                        e::add(e::add(e::v("a", 16), e::v("b", 16)), e::v("c", 16)),
                        e::v("d", 16),
                    ),
                )],
            )
            .build();
        // Same function split into two registered stages.
        let piped = EntityBuilder::new("piped")
            .input("a", Ty::Signed(16))
            .input("b", Ty::Signed(16))
            .input("c", Ty::Signed(16))
            .input("d", Ty::Signed(16))
            .output("y", Ty::Signed(16))
            .signal("t0", Ty::Signed(16))
            .signal("t1", Ty::Signed(16))
            .clocked(
                "stage1",
                vec![
                    s::assign("t0", e::add(e::v("a", 16), e::v("b", 16))),
                    s::assign("t1", e::add(e::v("c", 16), e::v("d", 16))),
                ],
            )
            .clocked(
                "stage2",
                vec![s::assign("y", e::add(e::v("t0", 16), e::v("t1", 16)))],
            )
            .build();
        let rd = estimate_entity(&deep, &dev);
        let rp = estimate_entity(&piped, &dev);
        assert!(rp.fmax_mhz > rd.fmax_mhz, "pipelined design clocks faster");
        assert!(rp.ffs > rd.ffs, "pipelining costs registers");
    }

    #[test]
    fn inlining_duplicates_logic() {
        let shared = EntityBuilder::new("shared")
            .input("a", Ty::Signed(16))
            .input("b", Ty::Signed(16))
            .output("y0", Ty::Signed(16))
            .output("y1", Ty::Signed(16))
            .function(
                "f",
                &[("x", Ty::Signed(16))],
                Ty::Signed(16),
                vec![],
                &[],
                e::add(
                    e::add(e::v("x", 16), e::c(1, 16)),
                    e::mul(e::v("x", 16), e::c(3, 16)),
                ),
            )
            .clocked(
                "p",
                vec![
                    s::assign("y0", e::call("f", vec![e::v("a", 16)])),
                    s::assign("y1", e::call("f", vec![e::v("b", 16)])),
                ],
            )
            .build();
        let dev = Virtex4::lx25();
        let inlined = inline_entity(&shared);
        let r = estimate_entity(&inlined, &dev);
        // Two call sites, each charged the full function cost.
        let single_site = {
            let one = EntityBuilder::new("one")
                .input("a", Ty::Signed(16))
                .output("y0", Ty::Signed(16))
                .function(
                    "f",
                    &[("x", Ty::Signed(16))],
                    Ty::Signed(16),
                    vec![],
                    &[],
                    e::add(
                        e::add(e::v("x", 16), e::c(1, 16)),
                        e::mul(e::v("x", 16), e::c(3, 16)),
                    ),
                )
                .clocked(
                    "p",
                    vec![s::assign("y0", e::call("f", vec![e::v("a", 16)]))],
                )
                .build();
            estimate_entity(&inline_entity(&one), &dev)
        };
        assert!(r.luts >= 2 * single_site.luts - 4);
    }

    #[test]
    fn design_report_sums_and_takes_slowest_clock() {
        use crate::idwt;
        use crate::ir::Design;
        let design = Design {
            name: "jpeg2000_hw".into(),
            entities: vec![idwt::idwt53_reference(), idwt::idwt97_reference()],
        };
        let dev = Virtex4::lx25();
        let report = estimate_design(&design, &dev);
        assert_eq!(report.entities.len(), 2);
        let sum: u32 = report.entities.iter().map(|(_, r)| r.slices).sum();
        assert_eq!(report.total.slices, sum);
        let slowest = report
            .entities
            .iter()
            .map(|(_, r)| r.fmax_mhz)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(report.total.fmax_mhz, slowest);
        assert!(report.total.utilisation < 1.0, "fits the LX25");
    }

    #[test]
    fn empty_design_report() {
        let report = estimate_design(&crate::ir::Design::default(), &Virtex4::lx25());
        assert_eq!(report.total.slices, 0);
        assert_eq!(report.total.fmax_mhz, 0.0);
    }

    #[test]
    fn utilisation_fraction() {
        let dev = Virtex4::lx25();
        let r = estimate_entity(&adder(16), &dev);
        assert!(r.utilisation > 0.0 && r.utilisation < 0.01);
    }
}
