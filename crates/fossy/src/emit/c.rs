//! C code generation for software tasks.
//!
//! The OSSS flow cross-compiles software tasks and links them against an
//! embedded runtime that talks to the HW/SW shared object over the bus.
//! This emitter produces the task skeletons and the runtime header the
//! paper's Figure 4 shows entering the gcc branch of the flow.

use std::fmt::Write as _;

/// One remote method the task invokes on a shared object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteCall {
    /// C function name to generate.
    pub name: String,
    /// RMI method id.
    pub method_id: u32,
    /// Argument payload words.
    pub arg_words: u32,
    /// Result payload words.
    pub result_words: u32,
}

/// A software task to generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwTaskDesc {
    /// Task (and file) name.
    pub name: String,
    /// Remote calls available to the task body.
    pub calls: Vec<RemoteCall>,
    /// Free-form body statements for the task's main loop.
    pub body: Vec<String>,
}

/// Emits the OSSS embedded runtime header (`osss_rt.h`).
pub fn emit_runtime_header() -> String {
    let mut w = String::new();
    let _ = writeln!(w, "#ifndef OSSS_RT_H");
    let _ = writeln!(w, "#define OSSS_RT_H");
    let _ = writeln!(w);
    let _ = writeln!(w, "#include <stdint.h>");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "/* OSSS embedded runtime: RMI over the memory-mapped bus. */"
    );
    let _ = writeln!(w, "typedef struct {{");
    let _ = writeln!(w, "    volatile uint32_t *base;");
    let _ = writeln!(w, "}} osss_so_handle;");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "void osss_rmi_request(osss_so_handle *so, uint32_t method_id,"
    );
    let _ = writeln!(
        w,
        "                      const uint32_t *args, uint32_t arg_words);"
    );
    let _ = writeln!(
        w,
        "void osss_rmi_wait_response(osss_so_handle *so, uint32_t *result,"
    );
    let _ = writeln!(w, "                            uint32_t result_words);");
    let _ = writeln!(w, "void osss_task_yield(void);");
    let _ = writeln!(w);
    let _ = writeln!(w, "#endif /* OSSS_RT_H */");
    w
}

/// Emits the C source of one software task.
pub fn emit_task(task: &SwTaskDesc) -> String {
    let mut w = String::new();
    let _ = writeln!(w, "#include \"osss_rt.h\"");
    let _ = writeln!(w);
    let _ = writeln!(w, "extern osss_so_handle hwsw_so;");
    let _ = writeln!(w);
    for c in &task.calls {
        let _ = writeln!(
            w,
            "static void {}(const uint32_t *args, uint32_t *result) {{",
            c.name
        );
        let _ = writeln!(
            w,
            "    osss_rmi_request(&hwsw_so, {}u, args, {}u);",
            c.method_id, c.arg_words
        );
        let _ = writeln!(
            w,
            "    osss_rmi_wait_response(&hwsw_so, result, {}u);",
            c.result_words
        );
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);
    }
    let _ = writeln!(w, "void {}_main(void) {{", task.name);
    let _ = writeln!(w, "    for (;;) {{");
    for line in &task.body {
        let _ = writeln!(w, "        {line}");
    }
    let _ = writeln!(w, "        osss_task_yield();");
    let _ = writeln!(w, "    }}");
    let _ = writeln!(w, "}}");
    w
}

/// Basic C structural check: balanced braces and parens.
pub fn structural_check(code: &str) -> Result<(), String> {
    for (open, close, label) in [('{', '}', "braces"), ('(', ')', "parens")] {
        let o = code.matches(open).count();
        let c = code.matches(close).count();
        if o != c {
            return Err(format!("unbalanced {label}: {o} vs {c}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::loc;

    fn task() -> SwTaskDesc {
        SwTaskDesc {
            name: "arith_decoder".to_string(),
            calls: vec![
                RemoteCall {
                    name: "so_put_tile".into(),
                    method_id: 1,
                    arg_words: 1026,
                    result_words: 0,
                },
                RemoteCall {
                    name: "so_get_tile".into(),
                    method_id: 2,
                    arg_words: 1,
                    result_words: 1026,
                },
            ],
            body: vec![
                "uint32_t tile[1026];".into(),
                "decode_tile(tile);".into(),
                "so_put_tile(tile, 0);".into(),
            ],
        }
    }

    #[test]
    fn header_and_task_are_balanced() {
        let h = emit_runtime_header();
        structural_check(&h).expect("header balanced");
        assert!(h.contains("osss_rmi_request"));
        let c = emit_task(&task());
        structural_check(&c).expect("task balanced");
        assert!(c.contains("void arith_decoder_main(void)"));
        assert!(c.contains("osss_rmi_request(&hwsw_so, 1u, args, 1026u);"));
        assert!(loc(&c) > 15);
    }

    #[test]
    fn structural_check_detects_imbalance() {
        assert!(structural_check("void f( {").is_err());
        assert!(structural_check("void f() {}").is_ok());
    }
}
