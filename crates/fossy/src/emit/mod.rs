//! Code emitters: VHDL (hardware), SystemC-style rendering of the input
//! (for like-for-like line counting), C (software tasks) and MHS/MSS
//! platform files.

pub mod c;
pub mod platform;
pub mod systemc;
pub mod testbench;
pub mod vhdl;

/// Counts non-empty lines of generated code — the unit of the paper's
/// Table 2 code-size comparison.
pub fn loc(code: &str) -> usize {
    code.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ignores_blank_lines() {
        assert_eq!(loc("a\n\nb\n   \nc\n"), 3);
        assert_eq!(loc(""), 0);
    }
}
