//! VHDL-93 emission. Identifiers from the IR are preserved, matching the
//! paper's remark that FOSSY output "remains human readable".

use std::fmt::Write as _;

use crate::ir::{Dir, Entity, Expr, Function, Process, Stmt, Ty};

/// Output style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Hand-RTL-like: expressions stay nested on one line where short.
    Compact,
    /// FOSSY-generated: every operator becomes a named intermediate
    /// variable assignment ("three-address" form) — the verbose but
    /// traceable output style responsible for the generated-code line
    /// counts in Table 2.
    ThreeAddress,
}

/// Emits one entity in the given style.
pub fn emit_entity_styled(entity: &Entity, style: Style) -> String {
    match style {
        Style::Compact => emit_entity(entity),
        Style::ThreeAddress => emit_entity_three_address(entity),
    }
}

fn emit_entity_three_address(entity: &Entity) -> String {
    // Reuse the compact emitter's header/declarations by regenerating
    // them, but emit process bodies in three-address form.
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "library ieee;");
    let _ = writeln!(w, "use ieee.std_logic_1164.all;");
    let _ = writeln!(w, "use ieee.numeric_std.all;");
    let _ = writeln!(w);
    let _ = writeln!(w, "entity {} is", entity.name);
    let _ = writeln!(w, "  port (");
    let _ = writeln!(w, "    clk : in std_logic;");
    let _ = write!(w, "    rst : in std_logic");
    for p in &entity.ports {
        let dir = match p.dir {
            Dir::In => "in ",
            Dir::Out => "out",
        };
        let _ = write!(w, ";\n    {} : {} {}", p.name, dir, p.ty.vhdl());
    }
    let _ = writeln!(w, "\n  );");
    let _ = writeln!(w, "end entity {};", entity.name);
    let _ = writeln!(w);
    let _ = writeln!(w, "architecture rtl of {} is", entity.name);
    for p in &entity.processes {
        if let Process::Fsm { name, states } = p {
            let names: Vec<&str> = states.iter().map(|s| s.name.as_str()).collect();
            let _ = writeln!(w, "  type {name}_state_t is ({});", names.join(", "));
            let _ = writeln!(w, "  signal {name}_state : {name}_state_t := {};", names[0]);
            let _ = writeln!(w, "  signal {name}_state_next : {name}_state_t;");
            // Next-value shadow signals for the two-process FSM form.
            let mut targets: Vec<String> = Vec::new();
            for st in states {
                collect_assign_targets(&st.stmts, &mut targets);
            }
            targets.sort();
            targets.dedup();
            for t in &targets {
                let ty = entity
                    .signals
                    .iter()
                    .find(|s| s.name == *t)
                    .map(|s| s.ty.vhdl())
                    .or_else(|| {
                        entity
                            .ports
                            .iter()
                            .find(|p| p.name == *t)
                            .map(|p| p.ty.vhdl())
                    })
                    .unwrap_or_else(|| "std_logic".to_string());
                let _ = writeln!(w, "  signal {t}_next : {ty};");
            }
        }
    }
    for s in &entity.signals {
        let _ = writeln!(w, "  signal {} : {};", s.name, s.ty.vhdl());
    }
    for m in &entity.memories {
        let _ = writeln!(
            w,
            "  type {}_t is array (0 to {}) of signed({} downto 0);",
            m.name,
            m.words - 1,
            m.width - 1
        );
        let _ = writeln!(w, "  signal {} : {}_t;", m.name, m.name);
    }
    for f in &entity.functions {
        emit_function(w, f);
    }
    let _ = writeln!(w, "begin");
    let funcs = entity.function_map();
    for p in &entity.processes {
        let mut tac = Tac {
            funcs: &funcs,
            counter: 0,
            decls: Vec::new(),
        };
        match p {
            Process::Clocked { name, stmts } => {
                let mut inner = String::new();
                for s in stmts {
                    tac.stmt(&mut inner, s, 6, None);
                }
                let _ = writeln!(w, "  {name} : process (clk)");
                for d in &tac.decls {
                    let _ = writeln!(w, "    {d}");
                }
                let _ = writeln!(w, "  begin");
                let _ = writeln!(w, "    if rising_edge(clk) then");
                let _ = write!(w, "{inner}");
                let _ = writeln!(w, "    end if;");
                let _ = writeln!(w, "  end process {name};");
            }
            Process::Fsm { name, states } => {
                // FOSSY-generated FSMs use the classic two-process form:
                // a combinational next-state/next-value process full of
                // per-signal defaults plus a synchronous register slice —
                // verbose, mechanical and traceable.
                let mut targets: Vec<String> = Vec::new();
                for st in states {
                    collect_assign_targets(&st.stmts, &mut targets);
                }
                targets.sort();
                targets.dedup();
                let mut inner = String::new();
                for st in states {
                    let _ = writeln!(inner, "        when {} =>", st.name);
                    for s in &st.stmts {
                        tac.stmt_renamed(&mut inner, s, 10, Some(name), &targets);
                    }
                }
                // Combinational process.
                let _ = writeln!(w, "  {name}_comb : process ({name}_state)");
                for d in &tac.decls {
                    let _ = writeln!(w, "    {d}");
                }
                let _ = writeln!(w, "  begin");
                let _ = writeln!(w, "    {name}_state_next <= {name}_state;");
                for t in &targets {
                    let _ = writeln!(w, "    {t}_next <= {t};");
                }
                let _ = writeln!(w, "    case {name}_state is");
                let _ = write!(w, "{inner}");
                let _ = writeln!(w, "    end case;");
                let _ = writeln!(w, "  end process {name}_comb;");
                // Synchronous register slice.
                let _ = writeln!(w, "  {name}_sync : process (clk, rst)");
                let _ = writeln!(w, "  begin");
                let _ = writeln!(w, "    if rst = '1' then");
                let _ = writeln!(w, "      {name}_state <= {};", states[0].name);
                let _ = writeln!(w, "    elsif rising_edge(clk) then");
                let _ = writeln!(w, "      {name}_state <= {name}_state_next;");
                for t in &targets {
                    let _ = writeln!(w, "      {t} <= {t}_next;");
                }
                let _ = writeln!(w, "    end if;");
                let _ = writeln!(w, "  end process {name}_sync;");
                // Next-value signal declarations are appended after the
                // architecture head; emit them as a trailing comment block
                // here would be invalid, so they are collected up front
                // below (see pre-pass in the declarations section).
            }
        }
    }
    let _ = writeln!(w, "end architecture rtl;");
    out
}

/// Collects the names assigned (directly or in conditionals) by `stmts`.
fn collect_assign_targets(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { target, .. } => out.push(target.clone()),
            Stmt::If { then_, else_, .. } => {
                collect_assign_targets(then_, out);
                collect_assign_targets(else_, out);
            }
            _ => {}
        }
    }
}

/// Three-address-code emission state for one process.
struct Tac<'a> {
    funcs: &'a std::collections::BTreeMap<String, crate::ir::Function>,
    counter: u32,
    decls: Vec<String>,
}

impl Tac<'_> {
    fn fresh(&mut self, width: u32) -> String {
        let name = format!("fossy_tmp_{}", self.counter);
        self.counter += 1;
        self.decls.push(format!(
            "variable {name} : signed({} downto 0);",
            width.max(1) - 1
        ));
        name
    }

    /// Flattens `e` to an operand string, appending intermediate
    /// assignments to `w`.
    fn flatten(&mut self, w: &mut String, e: &Expr, indent: usize) -> String {
        let pad = " ".repeat(indent);
        match e {
            Expr::Const(v, width) => format!("to_signed({v}, {width})"),
            Expr::Var(name, _) => name.clone(),
            Expr::Neg(a) => {
                let fa = self.flatten(w, a, indent);
                let t = self.fresh(e.width(self.funcs));
                let _ = writeln!(w, "{pad}{t} := -({fa});");
                t
            }
            Expr::Bin(op, a, b) => {
                use crate::ir::BinOp;
                let fa = self.flatten(w, a, indent);
                let fb = self.flatten(w, b, indent);
                let t = self.fresh(e.width(self.funcs));
                match op {
                    BinOp::Shl | BinOp::Shr => {
                        let fun = if *op == BinOp::Shl {
                            "shift_left"
                        } else {
                            "shift_right"
                        };
                        let amount = match **b {
                            Expr::Const(v, _) => v.to_string(),
                            _ => format!("to_integer({fb})"),
                        };
                        let _ = writeln!(w, "{pad}{t} := {fun}({fa}, {amount});");
                    }
                    _ => {
                        let _ = writeln!(w, "{pad}{t} := {fa} {} {fb};", op.vhdl());
                    }
                }
                t
            }
            Expr::Call(name, args) => {
                let fargs: Vec<String> = args.iter().map(|a| self.flatten(w, a, indent)).collect();
                let t = self.fresh(e.width(self.funcs));
                let _ = writeln!(w, "{pad}{t} := {name}({});", fargs.join(", "));
                t
            }
            Expr::MemRead(mem, idx, width) => {
                let fi = self.flatten(w, idx, indent);
                let t = self.fresh(*width);
                let _ = writeln!(w, "{pad}{t} := {mem}(to_integer({fi}));");
                t
            }
        }
    }

    /// Like [`Tac::stmt`], but assignments to FSM-registered signals and
    /// `goto`s write the `_next` shadow signals (two-process form).
    fn stmt_renamed(
        &mut self,
        w: &mut String,
        s: &Stmt,
        indent: usize,
        fsm: Option<&str>,
        targets: &[String],
    ) {
        let pad = " ".repeat(indent);
        match s {
            Stmt::Assign { target, value } => {
                let v = self.flatten(w, value, indent);
                let t = if targets.contains(target) {
                    format!("{target}_next")
                } else {
                    target.clone()
                };
                let _ = writeln!(w, "{pad}{t} <= {v};");
            }
            Stmt::MemWrite { mem, index, value } => {
                let fi = self.flatten(w, index, indent);
                let fv = self.flatten(w, value, indent);
                let _ = writeln!(w, "{pad}{mem}(to_integer({fi})) <= {fv};");
            }
            Stmt::If { cond, then_, else_ } => {
                let c = match cond {
                    Expr::Bin(op, a, b) if op.is_compare() => {
                        let fa = self.flatten(w, a, indent);
                        let fb = self.flatten(w, b, indent);
                        format!("{fa} {} {fb}", op.vhdl())
                    }
                    other => {
                        let f = self.flatten(w, other, indent);
                        format!("{f} = '1'")
                    }
                };
                let _ = writeln!(w, "{pad}if {c} then");
                for s in then_ {
                    self.stmt_renamed(w, s, indent + 2, fsm, targets);
                }
                if !else_.is_empty() {
                    let _ = writeln!(w, "{pad}else");
                    for s in else_ {
                        self.stmt_renamed(w, s, indent + 2, fsm, targets);
                    }
                }
                let _ = writeln!(w, "{pad}end if;");
            }
            Stmt::Goto(target) => {
                let fsm = fsm.expect("goto outside an FSM process");
                let _ = writeln!(w, "{pad}{fsm}_state_next <= {target};");
            }
        }
    }

    fn stmt(&mut self, w: &mut String, s: &Stmt, indent: usize, fsm: Option<&str>) {
        let pad = " ".repeat(indent);
        match s {
            Stmt::Assign { target, value } => {
                let v = self.flatten(w, value, indent);
                let _ = writeln!(w, "{pad}{target} <= {v};");
            }
            Stmt::MemWrite { mem, index, value } => {
                let fi = self.flatten(w, index, indent);
                let fv = self.flatten(w, value, indent);
                let _ = writeln!(w, "{pad}{mem}(to_integer({fi})) <= {fv};");
            }
            Stmt::If { cond, then_, else_ } => {
                let c = match cond {
                    Expr::Bin(op, a, b) if op.is_compare() => {
                        let fa = self.flatten(w, a, indent);
                        let fb = self.flatten(w, b, indent);
                        format!("{fa} {} {fb}", op.vhdl())
                    }
                    other => {
                        let f = self.flatten(w, other, indent);
                        format!("{f} = '1'")
                    }
                };
                let _ = writeln!(w, "{pad}if {c} then");
                for s in then_ {
                    self.stmt(w, s, indent + 2, fsm);
                }
                if !else_.is_empty() {
                    let _ = writeln!(w, "{pad}else");
                    for s in else_ {
                        self.stmt(w, s, indent + 2, fsm);
                    }
                }
                let _ = writeln!(w, "{pad}end if;");
            }
            Stmt::Goto(target) => {
                let fsm = fsm.expect("goto outside an FSM process");
                let _ = writeln!(w, "{pad}{fsm}_state <= {target};");
            }
        }
    }
}

/// Emits one entity (entity declaration + `rtl` architecture).
pub fn emit_entity(entity: &Entity) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "library ieee;");
    let _ = writeln!(w, "use ieee.std_logic_1164.all;");
    let _ = writeln!(w, "use ieee.numeric_std.all;");
    let _ = writeln!(w);
    let _ = writeln!(w, "entity {} is", entity.name);
    let _ = writeln!(w, "  port (");
    let _ = writeln!(w, "    clk : in std_logic;");
    let _ = write!(w, "    rst : in std_logic");
    for p in &entity.ports {
        let dir = match p.dir {
            Dir::In => "in ",
            Dir::Out => "out",
        };
        let _ = write!(w, ";\n    {} : {} {}", p.name, dir, p.ty.vhdl());
    }
    let _ = writeln!(w, "\n  );");
    let _ = writeln!(w, "end entity {};", entity.name);
    let _ = writeln!(w);
    let _ = writeln!(w, "architecture rtl of {} is", entity.name);

    // State types.
    for p in &entity.processes {
        if let Process::Fsm { name, states } = p {
            let names: Vec<&str> = states.iter().map(|s| s.name.as_str()).collect();
            let _ = writeln!(w, "  type {name}_state_t is ({});", names.join(", "));
            let _ = writeln!(w, "  signal {name}_state : {name}_state_t := {};", names[0]);
        }
    }
    for s in &entity.signals {
        let _ = writeln!(w, "  signal {} : {};", s.name, s.ty.vhdl());
    }
    for m in &entity.memories {
        let _ = writeln!(
            w,
            "  type {}_t is array (0 to {}) of signed({} downto 0);",
            m.name,
            m.words - 1,
            m.width - 1
        );
        let _ = writeln!(w, "  signal {} : {}_t;", m.name, m.name);
    }
    for f in &entity.functions {
        emit_function(w, f);
    }
    let _ = writeln!(w, "begin");
    for p in &entity.processes {
        match p {
            Process::Clocked { name, stmts } => {
                let _ = writeln!(w, "  {name} : process (clk)");
                let _ = writeln!(w, "  begin");
                let _ = writeln!(w, "    if rising_edge(clk) then");
                for s in stmts {
                    emit_stmt(w, s, 6, None);
                }
                let _ = writeln!(w, "    end if;");
                let _ = writeln!(w, "  end process {name};");
            }
            Process::Fsm { name, states } => {
                let _ = writeln!(w, "  {name} : process (clk, rst)");
                let _ = writeln!(w, "  begin");
                let _ = writeln!(w, "    if rst = '1' then");
                let _ = writeln!(w, "      {name}_state <= {};", states[0].name);
                let _ = writeln!(w, "    elsif rising_edge(clk) then");
                let _ = writeln!(w, "      case {name}_state is");
                for st in states {
                    let _ = writeln!(w, "        when {} =>", st.name);
                    for s in &st.stmts {
                        emit_stmt(w, s, 10, Some(name));
                    }
                }
                let _ = writeln!(w, "      end case;");
                let _ = writeln!(w, "    end if;");
                let _ = writeln!(w, "  end process {name};");
            }
        }
    }
    let _ = writeln!(w, "end architecture rtl;");
    out
}

fn emit_function(w: &mut String, f: &Function) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(n, t)| format!("{n} : {}", t.vhdl()))
        .collect();
    let _ = writeln!(
        w,
        "  function {} ({}) return {} is",
        f.name,
        params.join("; "),
        base_ty(f.ret)
    );
    for (n, t) in &f.locals {
        let _ = writeln!(w, "    variable {n} : {};", t.vhdl());
    }
    let _ = writeln!(w, "  begin");
    for s in &f.body {
        if let Stmt::Assign { target, value } = s {
            let _ = writeln!(w, "    {target} := {};", emit_expr(value));
        }
    }
    let _ = writeln!(w, "    return {};", emit_expr(&f.result));
    let _ = writeln!(w, "  end function {};", f.name);
}

fn base_ty(t: Ty) -> &'static str {
    match t {
        Ty::Bit => "std_logic",
        Ty::Unsigned(_) => "unsigned",
        Ty::Signed(_) => "signed",
    }
}

/// Width beyond which generated expressions are split across lines —
/// machine-generated VHDL formats one operand per line, which is the main
/// source of the FOSSY-output line-count inflation Table 2 reports.
const LINE_BUDGET: usize = 56;

fn emit_rhs(w: &mut String, pad: &str, prefix: &str, value: &Expr) {
    let flat = emit_expr(value);
    if prefix.len() + flat.len() <= LINE_BUDGET {
        let _ = writeln!(w, "{pad}{prefix}{flat};");
    } else {
        let _ = writeln!(w, "{pad}{prefix}");
        emit_expr_ml(w, value, pad.len() + 2);
        let _ = writeln!(w, "{pad};");
    }
}

/// Multi-line expression rendering: one operand per line, explicit
/// parenthesis lines.
fn emit_expr_ml(w: &mut String, e: &Expr, indent: usize) {
    let pad = " ".repeat(indent);
    let flat = emit_expr(e);
    if flat.len() <= LINE_BUDGET {
        let _ = writeln!(w, "{pad}{flat}");
        return;
    }
    match e {
        Expr::Bin(op, a, b) => {
            use crate::ir::BinOp;
            match op {
                BinOp::Shl | BinOp::Shr => {
                    let fun = if *op == BinOp::Shl {
                        "shift_left"
                    } else {
                        "shift_right"
                    };
                    let amount = match **b {
                        Expr::Const(v, _) => v.to_string(),
                        _ => format!("to_integer({})", emit_expr(b)),
                    };
                    let _ = writeln!(w, "{pad}{fun}(");
                    emit_expr_ml(w, a, indent + 2);
                    let _ = writeln!(w, "{pad}, {amount})");
                }
                _ => {
                    let _ = writeln!(w, "{pad}(");
                    emit_expr_ml(w, a, indent + 2);
                    let _ = writeln!(w, "{pad}  {}", op.vhdl());
                    emit_expr_ml(w, b, indent + 2);
                    let _ = writeln!(w, "{pad})");
                }
            }
        }
        Expr::Neg(a) => {
            let _ = writeln!(w, "{pad}(-");
            emit_expr_ml(w, a, indent + 2);
            let _ = writeln!(w, "{pad})");
        }
        Expr::MemRead(mem, idx, _) => {
            let _ = writeln!(w, "{pad}{mem}(to_integer(");
            emit_expr_ml(w, idx, indent + 2);
            let _ = writeln!(w, "{pad}))");
        }
        Expr::Call(name, args) => {
            let _ = writeln!(w, "{pad}{name}(");
            for (i, a) in args.iter().enumerate() {
                emit_expr_ml(w, a, indent + 2);
                if i + 1 != args.len() {
                    let _ = writeln!(w, "{pad},");
                }
            }
            let _ = writeln!(w, "{pad})");
        }
        Expr::Const(..) | Expr::Var(..) => {
            let _ = writeln!(w, "{pad}{flat}");
        }
    }
}

fn emit_stmt(w: &mut String, s: &Stmt, indent: usize, fsm: Option<&str>) {
    let pad = " ".repeat(indent);
    match s {
        Stmt::Assign { target, value } => {
            emit_rhs(w, &pad, &format!("{target} <= "), value);
        }
        Stmt::MemWrite { mem, index, value } => {
            emit_rhs(
                w,
                &pad,
                &format!("{mem}(to_integer({})) <= ", emit_expr(index)),
                value,
            );
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(w, "{pad}if {} then", emit_cond(cond));
            for s in then_ {
                emit_stmt(w, s, indent + 2, fsm);
            }
            if !else_.is_empty() {
                let _ = writeln!(w, "{pad}else");
                for s in else_ {
                    emit_stmt(w, s, indent + 2, fsm);
                }
            }
            let _ = writeln!(w, "{pad}end if;");
        }
        Stmt::Goto(target) => {
            let fsm = fsm.expect("goto outside an FSM process");
            let _ = writeln!(w, "{pad}{fsm}_state <= {target};");
        }
    }
}

/// Conditions must read as booleans in VHDL.
fn emit_cond(e: &Expr) -> String {
    match e {
        Expr::Bin(op, a, b) if op.is_compare() => {
            format!("{} {} {}", emit_expr(a), op.vhdl(), emit_expr(b))
        }
        other => format!("{} = '1'", emit_expr(other)),
    }
}

/// Expression printer, fully parenthesised (FOSSY-style defensive output).
pub fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v, w) => format!("to_signed({v}, {w})"),
        Expr::Var(name, _) => name.clone(),
        Expr::Neg(a) => format!("(-{})", emit_expr(a)),
        Expr::Bin(op, a, b) => {
            use crate::ir::BinOp;
            match op {
                BinOp::Shl | BinOp::Shr => {
                    let amount = match **b {
                        Expr::Const(v, _) => v.to_string(),
                        _ => format!("to_integer({})", emit_expr(b)),
                    };
                    let fun = if *op == BinOp::Shl {
                        "shift_left"
                    } else {
                        "shift_right"
                    };
                    format!("{fun}({}, {amount})", emit_expr(a))
                }
                _ => format!("({} {} {})", emit_expr(a), op.vhdl(), emit_expr(b)),
            }
        }
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::MemRead(mem, idx, _) => {
            format!("{mem}(to_integer({}))", emit_expr(idx))
        }
    }
}

/// Structural sanity checks on emitted VHDL (balanced constructs); used by
/// tests in lieu of an external VHDL parser.
pub fn structural_check(code: &str) -> Result<(), String> {
    let count = |needle: &str| -> usize {
        code.lines()
            .map(|l| l.trim())
            .filter(|l| l.starts_with(needle) || l.contains(&format!(" {needle}")))
            .count()
    };
    let opens = code.matches("process (").count();
    let closes = code.matches("end process").count();
    if opens != closes {
        return Err(format!("unbalanced processes: {opens} vs {closes}"));
    }
    let ifs = count("if ") + count("elsif ");
    let endifs = code.matches("end if;").count();
    // Every `if/elsif` chain ends in exactly one `end if`, so ends <= ifs.
    if endifs > ifs {
        return Err(format!("unbalanced ifs: {ifs} if/elsif vs {endifs} end if"));
    }
    let cases = code.matches("case ").count();
    let endcases = code.matches("end case;").count();
    if cases != endcases {
        return Err(format!("unbalanced cases: {cases} vs {endcases}"));
    }
    if !code.contains("entity") || !code.contains("architecture") {
        return Err("missing entity/architecture".to_string());
    }
    let parens_open = code.matches('(').count();
    let parens_close = code.matches(')').count();
    if parens_open != parens_close {
        return Err(format!(
            "unbalanced parentheses: {parens_open} vs {parens_close}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{e, s, EntityBuilder};
    use crate::emit::loc;
    use crate::ir::Ty;
    use crate::passes::inline_entity;

    fn sample() -> Entity {
        EntityBuilder::new("lift53")
            .input("din", Ty::Signed(16))
            .output("dout", Ty::Signed(16))
            .signal("acc", Ty::Signed(16))
            .memory("linebuf", 64, 16)
            .function(
                "predict",
                &[
                    ("a", Ty::Signed(16)),
                    ("b", Ty::Signed(16)),
                    ("c", Ty::Signed(16)),
                ],
                Ty::Signed(16),
                vec![],
                &[],
                e::sub(
                    e::v("b", 16),
                    e::shr(e::add(e::v("a", 16), e::v("c", 16)), 1),
                ),
            )
            .fsm(
                "ctrl",
                vec![
                    ("idle", vec![s::assign("acc", e::c(0, 16)), s::goto("run")]),
                    (
                        "run",
                        vec![
                            s::assign(
                                "acc",
                                e::call(
                                    "predict",
                                    vec![
                                        e::mem("linebuf", e::c(0, 6), 16),
                                        e::v("din", 16),
                                        e::mem("linebuf", e::c(1, 6), 16),
                                    ],
                                ),
                            ),
                            s::store("linebuf", e::c(2, 6), e::v("acc", 16)),
                            s::if_(
                                e::lt(e::v("acc", 16), e::c(0, 16)),
                                vec![s::goto("idle")],
                                vec![s::goto("run")],
                            ),
                        ],
                    ),
                ],
            )
            .build()
    }

    #[test]
    fn emitted_vhdl_has_expected_landmarks() {
        let code = emit_entity(&sample());
        assert!(code.contains("entity lift53 is"));
        assert!(code.contains("architecture rtl of lift53"));
        assert!(code.contains("type ctrl_state_t is (idle, run);"));
        assert!(code.contains("function predict"));
        assert!(code.contains("shift_right"));
        assert!(code.contains("linebuf(to_integer("));
        structural_check(&code).expect("structurally sound");
    }

    #[test]
    fn identifiers_are_preserved() {
        let code = emit_entity(&sample());
        for ident in ["acc", "linebuf", "predict", "idle", "run", "din", "dout"] {
            assert!(code.contains(ident), "identifier `{ident}` lost");
        }
    }

    #[test]
    fn inlined_entity_emits_larger_code_without_functions() {
        let ent = sample();
        let plain = emit_entity(&ent);
        let inlined = emit_entity(&inline_entity(&ent));
        assert!(!inlined.contains("function predict"));
        assert!(!inlined.contains("predict("), "no call sites remain");
        structural_check(&inlined).expect("inlined output sound");
        // Inlined expression text exceeds the call text.
        assert!(loc(&inlined) + 6 >= loc(&plain) || inlined.len() > plain.len());
    }

    #[test]
    fn structural_check_catches_imbalance() {
        assert!(structural_check("entity x architecture ( ( )").is_err());
        let code = emit_entity(&sample());
        let broken = code.replace("end process ctrl;", "");
        assert!(structural_check(&broken).is_err());
    }

    #[test]
    fn goto_outside_fsm_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut out = String::new();
            emit_stmt(&mut out, &s::goto("x"), 2, None);
        });
        assert!(result.is_err());
    }
}
