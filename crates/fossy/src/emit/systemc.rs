//! Renders an IR entity in the synthesisable-SystemC input style, so the
//! code-size comparison of Table 2 (input lines vs generated VHDL lines)
//! can be made like-for-like.

use std::fmt::Write as _;

use crate::ir::{Dir, Entity, Expr, Process, Stmt, Ty};

/// Emits the SystemC-subset rendering of `entity`.
pub fn emit_entity(entity: &Entity) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "#include <systemc.h>");
    let _ = writeln!(w, "#include <osss.h>");
    let _ = writeln!(w);
    let _ = writeln!(w, "SC_MODULE({}) {{", entity.name);
    let _ = writeln!(w, "  sc_in_clk clk;");
    let _ = writeln!(w, "  sc_in<bool> rst;");
    for p in &entity.ports {
        let dir = match p.dir {
            Dir::In => "sc_in",
            Dir::Out => "sc_out",
        };
        let _ = writeln!(w, "  {}<{}> {};", dir, cpp_ty(p.ty), p.name);
    }
    for s in &entity.signals {
        let _ = writeln!(w, "  {} {};", cpp_ty(s.ty), s.name);
    }
    for m in &entity.memories {
        let _ = writeln!(
            w,
            "  osss_array<sc_int<{}>, {}> {};",
            m.width, m.words, m.name
        );
    }
    let _ = writeln!(w);
    for f in &entity.functions {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|(n, t)| format!("{} {n}", cpp_ty(*t)))
            .collect();
        let _ = writeln!(
            w,
            "  {} {}({}) {{",
            cpp_ty(f.ret),
            f.name,
            params.join(", ")
        );
        for (n, t) in &f.locals {
            let _ = writeln!(w, "    {} {n};", cpp_ty(*t));
        }
        for s in &f.body {
            if let Stmt::Assign { target, value } = s {
                let _ = writeln!(w, "    {target} = {};", emit_expr(value));
            }
        }
        let _ = writeln!(w, "    return {};", emit_expr(&f.result));
        let _ = writeln!(w, "  }}");
    }
    for p in &entity.processes {
        match p {
            Process::Clocked { name, stmts } => {
                let _ = writeln!(w, "  void {name}() {{");
                for s in stmts {
                    emit_stmt(w, s, 4);
                }
                let _ = writeln!(w, "  }}");
            }
            Process::Fsm { name, states } => {
                let _ = writeln!(w, "  void {name}() {{");
                let _ = writeln!(w, "    state = {};", states[0].name);
                let _ = writeln!(w, "    while (true) {{");
                let _ = writeln!(w, "      wait();");
                let _ = writeln!(w, "      switch (state) {{");
                for st in states {
                    let _ = writeln!(w, "      case {}:", st.name);
                    for s in &st.stmts {
                        emit_stmt(w, s, 8);
                    }
                    let _ = writeln!(w, "        break;");
                }
                let _ = writeln!(w, "      }}");
                let _ = writeln!(w, "    }}");
                let _ = writeln!(w, "  }}");
            }
        }
    }
    let _ = writeln!(w, "  SC_CTOR({}) {{", entity.name);
    for p in &entity.processes {
        let _ = writeln!(w, "    SC_CTHREAD({}, clk.pos());", p.name());
        let _ = writeln!(w, "    reset_signal_is(rst, true);");
    }
    let _ = writeln!(w, "  }}");
    let _ = writeln!(w, "}};");
    out
}

fn cpp_ty(t: Ty) -> String {
    match t {
        Ty::Bit => "bool".to_string(),
        Ty::Unsigned(w) => format!("sc_uint<{w}>"),
        Ty::Signed(w) => format!("sc_int<{w}>"),
    }
}

fn emit_stmt(w: &mut String, s: &Stmt, indent: usize) {
    let pad = " ".repeat(indent);
    match s {
        Stmt::Assign { target, value } => {
            let _ = writeln!(w, "{pad}{target} = {};", emit_expr(value));
        }
        Stmt::MemWrite { mem, index, value } => {
            let _ = writeln!(
                w,
                "{pad}{mem}[{}] = {};",
                emit_expr(index),
                emit_expr(value)
            );
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(w, "{pad}if ({}) {{", emit_expr(cond));
            for s in then_ {
                emit_stmt(w, s, indent + 2);
            }
            if !else_.is_empty() {
                let _ = writeln!(w, "{pad}}} else {{");
                for s in else_ {
                    emit_stmt(w, s, indent + 2);
                }
            }
            let _ = writeln!(w, "{pad}}}");
        }
        Stmt::Goto(t) => {
            let _ = writeln!(w, "{pad}state = {t};");
        }
    }
}

fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v, _) => v.to_string(),
        Expr::Var(n, _) => n.clone(),
        Expr::Neg(a) => format!("(-{})", emit_expr(a)),
        Expr::Bin(op, a, b) => {
            use crate::ir::BinOp;
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Lt => "<",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
            };
            format!("({} {} {})", emit_expr(a), sym, emit_expr(b))
        }
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::MemRead(m, idx, _) => format!("{m}[{}]", emit_expr(idx)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{e, s, EntityBuilder};
    use crate::emit::loc;

    #[test]
    fn renders_module_with_cthread() {
        let ent = EntityBuilder::new("demo")
            .input("x", Ty::Signed(8))
            .output("y", Ty::Signed(8))
            .fsm(
                "ctrl",
                vec![("s0", vec![s::assign("y", e::v("x", 8)), s::goto("s0")])],
            )
            .build();
        let code = emit_entity(&ent);
        assert!(code.contains("SC_MODULE(demo)"));
        assert!(code.contains("SC_CTHREAD(ctrl, clk.pos());"));
        assert!(code.contains("switch (state)"));
        assert!(loc(&code) > 10);
    }

    #[test]
    fn memories_render_as_osss_arrays() {
        let ent = EntityBuilder::new("m")
            .memory("tile", 128, 16)
            .clocked("p", vec![s::store("tile", e::c(0, 7), e::c(5, 16))])
            .build();
        let code = emit_entity(&ent);
        assert!(code.contains("osss_array<sc_int<16>, 128> tile;"));
        assert!(code.contains("tile[0] = 5;"));
    }
}
