//! VHDL testbench generation: clock/reset scaffolding, stimulus
//! application and expected-value checks for a synthesised entity.
//!
//! A real FOSSY flow hands the generated VHDL to an RTL simulator; this
//! emitter produces the self-checking bench that accompanies it. The
//! expected values come from the IR interpreter, so the bench encodes the
//! *verified* behaviour of the design.

use std::fmt::Write as _;

use crate::interp::Interp;
use crate::ir::{Dir, Entity, Ty};

/// One stimulus step: inputs to apply, then one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Step {
    /// `(input port, value)` assignments before the edge.
    pub inputs: Vec<(String, i64)>,
}

/// Generates a self-checking VHDL testbench for `entity`.
///
/// The bench instantiates the entity, drives the given stimulus and,
/// after each cycle, asserts the output values the IR interpreter
/// computed for the same stimulus.
pub fn emit_testbench(entity: &Entity, steps: &[Step]) -> String {
    // Compute expected outputs with the interpreter.
    let mut it = Interp::new(entity);
    let outputs: Vec<(String, Ty)> = entity
        .ports
        .iter()
        .filter(|p| p.dir == Dir::Out)
        .map(|p| (p.name.clone(), p.ty))
        .collect();
    let mut expected: Vec<Vec<i64>> = Vec::with_capacity(steps.len());
    for step in steps {
        for (name, v) in &step.inputs {
            it.set_input(name, *v);
        }
        it.step();
        expected.push(outputs.iter().map(|(n, _)| it.get(n)).collect());
    }

    let mut w = String::new();
    let name = &entity.name;
    let _ = writeln!(w, "library ieee;");
    let _ = writeln!(w, "use ieee.std_logic_1164.all;");
    let _ = writeln!(w, "use ieee.numeric_std.all;");
    let _ = writeln!(w);
    let _ = writeln!(w, "entity {name}_tb is");
    let _ = writeln!(w, "end entity {name}_tb;");
    let _ = writeln!(w);
    let _ = writeln!(w, "architecture bench of {name}_tb is");
    let _ = writeln!(w, "  signal clk : std_logic := '0';");
    let _ = writeln!(w, "  signal rst : std_logic := '1';");
    for p in &entity.ports {
        let _ = writeln!(
            w,
            "  signal {} : {}{};",
            p.name,
            p.ty.vhdl(),
            if p.ty == Ty::Bit {
                " := '0'"
            } else {
                " := (others => '0')"
            }
        );
    }
    let _ = writeln!(w, "begin");
    let _ = writeln!(w, "  clk <= not clk after 5 ns; -- 100 MHz");
    let _ = writeln!(w);
    let _ = writeln!(w, "  dut : entity work.{name}");
    let _ = writeln!(w, "    port map (");
    let _ = write!(w, "      clk => clk,\n      rst => rst");
    for p in &entity.ports {
        let _ = write!(w, ",\n      {} => {}", p.name, p.name);
    }
    let _ = writeln!(w, "\n    );");
    let _ = writeln!(w);
    let _ = writeln!(w, "  stimulus : process");
    let _ = writeln!(w, "  begin");
    let _ = writeln!(w, "    rst <= '1';");
    let _ = writeln!(w, "    wait until rising_edge(clk);");
    let _ = writeln!(w, "    rst <= '0';");
    for (i, step) in steps.iter().enumerate() {
        for (port, v) in &step.inputs {
            let ty = entity
                .ports
                .iter()
                .find(|p| &p.name == port)
                .map(|p| p.ty)
                .unwrap_or(Ty::Bit);
            match ty {
                Ty::Bit => {
                    let _ = writeln!(w, "    {port} <= '{}';", if *v != 0 { 1 } else { 0 });
                }
                Ty::Unsigned(width) => {
                    let _ = writeln!(w, "    {port} <= to_unsigned({v}, {width});");
                }
                Ty::Signed(width) => {
                    let _ = writeln!(w, "    {port} <= to_signed({v}, {width});");
                }
            }
        }
        let _ = writeln!(w, "    wait until rising_edge(clk);");
        let _ = writeln!(w, "    wait for 1 ns; -- settle");
        for ((out, ty), exp) in outputs.iter().zip(&expected[i]) {
            let check = match ty {
                Ty::Bit => format!("{out} = '{}'", if *exp != 0 { 1 } else { 0 }),
                Ty::Unsigned(width) => format!("{out} = to_unsigned({exp}, {width})"),
                Ty::Signed(width) => format!("{out} = to_signed({exp}, {width})"),
            };
            let _ = writeln!(
                w,
                "    assert {check}\n      report \"cycle {i}: {out} mismatch\" severity error;"
            );
        }
    }
    let _ = writeln!(w, "    report \"{name}_tb finished\" severity note;");
    let _ = writeln!(w, "    wait;");
    let _ = writeln!(w, "  end process stimulus;");
    let _ = writeln!(w, "end architecture bench;");
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{e, s, EntityBuilder};
    use crate::emit::vhdl::structural_check;

    fn counter() -> Entity {
        EntityBuilder::new("cnt")
            .input("enable", Ty::Bit)
            .output("count", Ty::Unsigned(8))
            .clocked(
                "tick",
                vec![s::if_(
                    e::eq(e::v("enable", 1), e::c(1, 1)),
                    vec![s::assign("count", e::add(e::v("count", 8), e::c(1, 8)))],
                    vec![],
                )],
            )
            .build()
    }

    #[test]
    fn bench_contains_interpreter_expectations() {
        let ent = counter();
        let steps: Vec<Step> = (0..4)
            .map(|i| Step {
                inputs: vec![("enable".to_string(), (i % 2 == 0) as i64)],
            })
            .collect();
        let bench = emit_testbench(&ent, &steps);
        assert!(bench.contains("entity cnt_tb is"));
        assert!(bench.contains("dut : entity work.cnt"));
        // Enabled on cycles 0 and 2: counts 1, 1, 2, 2.
        assert!(bench.contains("to_unsigned(1, 8)"));
        assert!(bench.contains("to_unsigned(2, 8)"));
        assert!(bench.contains("report \"cnt_tb finished\""));
        // Balanced constructs (the full structural check targets RTL
        // entities, not sensitivity-list-free benches).
        assert_eq!(bench.matches('(').count(), bench.matches(')').count());
        assert_eq!(
            bench.matches("process").count(),
            bench.matches("end process").count() * 2,
            "one process, one end process"
        );
        let _ = structural_check; // the full check targets RTL entities
    }

    #[test]
    fn bench_for_idwt_core_is_generated() {
        let ent = crate::idwt::idwt53_1d_core();
        let steps = vec![
            Step {
                inputs: vec![
                    ("n_low".to_string(), 4),
                    ("n_high".to_string(), 4),
                    ("start".to_string(), 1),
                ],
            },
            Step { inputs: vec![] },
            Step { inputs: vec![] },
        ];
        let bench = emit_testbench(&ent, &steps);
        assert!(bench.contains("idwt53_1d_core_tb"));
        assert!(bench.contains("n_low => n_low"));
        // Balanced parens at minimum.
        assert_eq!(bench.matches('(').count(), bench.matches(')').count());
    }
}
